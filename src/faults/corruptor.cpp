#include "faults/corruptor.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>

#include "common/time.hpp"

namespace ld {
namespace {

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Replaces the run of digits at `pos` with `value` (clamped to >= 0 so
/// a large negative skew cannot render a sign the formats don't allow).
void SpliceInteger(std::string& line, std::size_t pos, std::int64_t value) {
  std::size_t end = pos;
  while (end < line.size() && IsDigit(line[end])) ++end;
  if (end == pos) return;
  line.replace(pos, end - pos,
               std::to_string(std::max<std::int64_t>(0, value)));
}

Result<std::int64_t> ReadInteger(std::string_view text) {
  if (text.empty()) return ParseError("empty integer");
  std::int64_t value = 0;
  for (char c : text) {
    if (!IsDigit(c)) return ParseError("not an integer");
    value = value * 10 + (c - '0');
  }
  return value;
}

/// Skews the "MM/DD/YYYY HH:MM:SS" prefix and every authoritative epoch
/// k=v field of a Torque accounting line.
bool SkewTorque(std::string& line, std::int64_t delta) {
  bool touched = false;
  // Prefix.
  if (line.size() >= 19 && line[2] == '/' && line[5] == '/' &&
      line[10] == ' ' && line[13] == ':' && line[16] == ':') {
    const auto month = ReadInteger(std::string_view(line).substr(0, 2));
    const auto day = ReadInteger(std::string_view(line).substr(3, 2));
    const auto year = ReadInteger(std::string_view(line).substr(6, 4));
    const auto hour = ReadInteger(std::string_view(line).substr(11, 2));
    const auto minute = ReadInteger(std::string_view(line).substr(14, 2));
    const auto second = ReadInteger(std::string_view(line).substr(17, 2));
    if (month.ok() && day.ok() && year.ok() && hour.ok() && minute.ok() &&
        second.ok()) {
      const TimePoint when =
          TimePoint::FromCalendar(
              static_cast<int>(*year), static_cast<int>(*month),
              static_cast<int>(*day), static_cast<int>(*hour),
              static_cast<int>(*minute), static_cast<int>(*second)) +
          Duration::Seconds(delta);
      const CalendarTime cal = ToCalendar(when);
      char buf[20];
      std::snprintf(buf, sizeof buf, "%02d/%02d/%04d %02d:%02d:%02d",
                    cal.month, cal.day, cal.year, cal.hour, cal.minute,
                    cal.second);
      line.replace(0, 19, buf);
      touched = true;
    }
  }
  // Epoch fields (these are what the parser trusts).
  static constexpr std::array<std::string_view, 5> kKeys = {
      "ctime=", "qtime=", "etime=", "start=", "end="};
  for (std::string_view key : kKeys) {
    std::size_t pos = 0;
    while ((pos = line.find(key, pos)) != std::string::npos) {
      if (pos != 0 && line[pos - 1] != ' ' && line[pos - 1] != ';') {
        pos += key.size();
        continue;  // substring of a longer key (e.g. "end=" in "suspend=")
      }
      const std::size_t digits = pos + key.size();
      std::size_t end = digits;
      while (end < line.size() && IsDigit(line[end])) ++end;
      const auto value =
          ReadInteger(std::string_view(line).substr(digits, end - digits));
      if (value.ok()) {
        SpliceInteger(line, digits, *value + delta);
        touched = true;
      }
      pos = digits;
    }
  }
  return touched;
}

/// Skews the leading "YYYY-MM-DDTHH:MM:SS" stamp of an ALPS line.
bool SkewAlps(std::string& line, std::int64_t delta) {
  if (line.size() < 19) return false;
  const auto when = TimePoint::FromIso(line.substr(0, 19));
  if (!when.ok()) return false;
  line.replace(0, 19, (*when + Duration::Seconds(delta)).ToIso());
  return true;
}

/// Skews the leading "Mon dD HH:MM:SS" stamp of a classic syslog line.
bool SkewSyslog(std::string& line, std::int64_t delta, int year) {
  if (line.size() < 15 || line[3] != ' ' || line[9] != ':' ||
      line[12] != ':') {
    return false;
  }
  static constexpr std::array<std::string_view, 12> kMonths = {
      "Jan", "Feb", "Mar", "Apr", "May", "Jun",
      "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  const std::string_view view(line);
  int month = 0;
  for (std::size_t m = 0; m < kMonths.size(); ++m) {
    if (view.substr(0, 3) == kMonths[m]) {
      month = static_cast<int>(m) + 1;
      break;
    }
  }
  if (month == 0) return false;
  std::string_view day_text = view.substr(4, 2);
  if (!day_text.empty() && day_text.front() == ' ') day_text.remove_prefix(1);
  const auto day = ReadInteger(day_text);
  const auto hour = ReadInteger(view.substr(7, 2));
  const auto minute = ReadInteger(view.substr(10, 2));
  const auto second = ReadInteger(view.substr(13, 2));
  if (!day.ok() || !hour.ok() || !minute.ok() || !second.ok()) return false;
  const TimePoint when =
      TimePoint::FromCalendar(year, month, static_cast<int>(*day),
                              static_cast<int>(*hour),
                              static_cast<int>(*minute),
                              static_cast<int>(*second)) +
      Duration::Seconds(delta);
  line.replace(0, 15, when.ToSyslog());
  return true;
}

/// Skews the leading "<epoch>|" field of a hwerr line.
bool SkewHwerr(std::string& line, std::int64_t delta) {
  const std::size_t bar = line.find('|');
  if (bar == std::string::npos || bar == 0) return false;
  const auto value = ReadInteger(std::string_view(line).substr(0, bar));
  if (!value.ok()) return false;
  SpliceInteger(line, 0, *value + delta);
  return true;
}

bool SkewLine(StreamDialect dialect, std::string& line, std::int64_t delta,
              int syslog_year) {
  switch (dialect) {
    case StreamDialect::kTorque: return SkewTorque(line, delta);
    case StreamDialect::kAlps: return SkewAlps(line, delta);
    case StreamDialect::kSyslog: return SkewSyslog(line, delta, syslog_year);
    case StreamDialect::kHwerr: return SkewHwerr(line, delta);
  }
  return false;
}

}  // namespace

const char* CorruptionOpName(CorruptionOp op) {
  switch (op) {
    case CorruptionOp::kRotationGap: return "rotation_gap";
    case CorruptionOp::kDuplicate: return "duplicate";
    case CorruptionOp::kReorder: return "reorder";
    case CorruptionOp::kTimeSkew: return "time_skew";
    case CorruptionOp::kTruncate: return "truncate";
    case CorruptionOp::kGarble: return "garble";
  }
  return "unknown";
}

const char* StreamDialectName(StreamDialect dialect) {
  switch (dialect) {
    case StreamDialect::kTorque: return "torque";
    case StreamDialect::kAlps: return "alps";
    case StreamDialect::kSyslog: return "syslog";
    case StreamDialect::kHwerr: return "hwerr";
  }
  return "unknown";
}

std::uint64_t CorruptionLedger::total(CorruptionOp op) const {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < kStreamDialectCount; ++s) {
    sum += counts[s][static_cast<std::size_t>(op)];
  }
  return sum;
}

std::uint64_t CorruptionLedger::total() const {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < kStreamDialectCount; ++s) {
    for (std::size_t o = 0; o < kCorruptionOpCount; ++o) sum += counts[s][o];
  }
  return sum;
}

std::vector<std::string> CorruptionLedger::Render() const {
  std::vector<std::string> rows;
  for (std::size_t s = 0; s < kStreamDialectCount; ++s) {
    std::uint64_t stream_total = 0;
    for (std::size_t o = 0; o < kCorruptionOpCount; ++o) {
      stream_total += counts[s][o];
    }
    if (stream_total == 0) continue;
    std::string row = StreamDialectName(static_cast<StreamDialect>(s));
    row += ':';
    for (std::size_t o = 0; o < kCorruptionOpCount; ++o) {
      if (counts[s][o] == 0) continue;
      row += ' ';
      row += CorruptionOpName(static_cast<CorruptionOp>(o));
      row += '=';
      row += std::to_string(counts[s][o]);
    }
    row += " lines " + std::to_string(lines_in[s]) + "->" +
           std::to_string(lines_out[s]);
    rows.push_back(std::move(row));
  }
  return rows;
}

LogCorruptor::LogCorruptor(CorruptorConfig config)
    : config_(std::move(config)) {}

std::vector<CorruptionOp> LogCorruptor::AllOps() {
  return {CorruptionOp::kRotationGap, CorruptionOp::kDuplicate,
          CorruptionOp::kReorder,     CorruptionOp::kTimeSkew,
          CorruptionOp::kTruncate,    CorruptionOp::kGarble};
}

void LogCorruptor::CorruptStream(StreamDialect dialect,
                                 std::string_view stream_name,
                                 std::vector<std::string>& lines,
                                 const Rng& rng,
                                 CorruptionLedger* ledger) const {
  const auto si = static_cast<std::size_t>(dialect);
  if (ledger != nullptr) ledger->lines_in[si] += lines.size();
  const double rate = std::clamp(config_.rate, 0.0, 1.0);
  const auto enabled = [&](CorruptionOp op) {
    return rate > 0.0 &&
           std::find(config_.ops.begin(), config_.ops.end(), op) !=
               config_.ops.end();
  };
  const auto count = [&](CorruptionOp op, std::uint64_t n = 1) {
    if (ledger != nullptr) {
      ledger->counts[si][static_cast<std::size_t>(op)] += n;
    }
  };
  // Every stream and every operator draws from its own forked substream,
  // so enabling one operator never moves where another strikes.
  const Rng stream_rng = rng.Fork(stream_name);

  // 1. Rotation gap: one contiguous segment, `rate` of the stream, gone.
  if (enabled(CorruptionOp::kRotationGap) && !lines.empty()) {
    Rng r = stream_rng.Fork("rotation_gap");
    const auto drop =
        static_cast<std::size_t>(rate * static_cast<double>(lines.size()));
    if (drop > 0 && drop < lines.size()) {
      const std::size_t start = r.UniformInt(lines.size() - drop + 1);
      lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(start),
                  lines.begin() + static_cast<std::ptrdiff_t>(start + drop));
      count(CorruptionOp::kRotationGap, drop);
    }
  }

  // 2. Duplication: replayed copies land a bounded distance downstream.
  if (enabled(CorruptionOp::kDuplicate) && !lines.empty()) {
    Rng r = stream_rng.Fork("duplicate");
    std::map<std::size_t, std::vector<std::string>> inserts;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (!r.Bernoulli(rate)) continue;
      const std::size_t offset =
          1 +
          r.UniformInt(std::max<std::size_t>(1, config_.max_reorder_distance));
      inserts[std::min(lines.size() - 1, i + offset)].push_back(lines[i]);
      count(CorruptionOp::kDuplicate);
    }
    if (!inserts.empty()) {
      std::vector<std::string> out;
      out.reserve(lines.size() + inserts.size());
      for (std::size_t i = 0; i < lines.size(); ++i) {
        out.push_back(std::move(lines[i]));
        const auto it = inserts.find(i);
        if (it == inserts.end()) continue;
        for (std::string& copy : it->second) out.push_back(std::move(copy));
      }
      lines = std::move(out);
    }
  }

  // 3. Reordering: displace lines by up to max_reorder_distance, which
  //    by default exceeds any reorder slack a streaming caller grants.
  if (enabled(CorruptionOp::kReorder) && lines.size() > 1) {
    Rng r = stream_rng.Fork("reorder");
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (!r.Bernoulli(rate)) continue;
      const std::size_t d =
          1 +
          r.UniformInt(std::max<std::size_t>(1, config_.max_reorder_distance));
      const std::size_t j = r.Bernoulli(0.5)
                                ? std::min(lines.size() - 1, i + d)
                                : (i >= d ? i - d : 0);
      if (j == i) continue;
      std::swap(lines[i], lines[j]);
      count(CorruptionOp::kReorder);
    }
  }

  // 4. Time skew: rewrite stamps in-syntax so the line still parses but
  //    its claimed time lies.
  if (enabled(CorruptionOp::kTimeSkew)) {
    Rng r = stream_rng.Fork("time_skew");
    const std::int64_t bound =
        std::max<std::int64_t>(1, config_.max_skew_seconds);
    for (std::string& line : lines) {
      if (!r.Bernoulli(rate)) continue;
      std::int64_t delta = r.UniformInt(-bound, bound);
      if (delta == 0) delta = bound;
      if (SkewLine(dialect, line, delta, config_.syslog_year)) {
        count(CorruptionOp::kTimeSkew);
      }
    }
  }

  // 5. Torn writes.
  if (enabled(CorruptionOp::kTruncate)) {
    Rng r = stream_rng.Fork("truncate");
    for (std::string& line : lines) {
      if (line.empty() || !r.Bernoulli(rate)) continue;
      line.resize(r.UniformInt(line.size()));
      count(CorruptionOp::kTruncate);
    }
  }

  // 6. Byte garbling.
  if (enabled(CorruptionOp::kGarble)) {
    Rng r = stream_rng.Fork("garble");
    for (std::string& line : lines) {
      if (line.empty() || !r.Bernoulli(rate)) continue;
      const std::size_t bytes =
          1 + r.UniformInt(std::min<std::size_t>(8, line.size()));
      for (std::size_t b = 0; b < bytes; ++b) {
        const std::size_t pos = r.UniformInt(line.size());
        char byte = static_cast<char>(r.NextU64() & 0xff);
        if (byte == '\n' || byte == '\r') byte = '?';
        line[pos] = byte;
      }
      count(CorruptionOp::kGarble);
    }
  }

  if (ledger != nullptr) ledger->lines_out[si] += lines.size();
}

}  // namespace ld
