#include "faults/ledger.hpp"

#include <cstdio>

namespace ld {
namespace {

void Mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

}  // namespace

std::uint64_t FaultLedger::Fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const CategoryTally& t : by_category) {
    Mix(h, t.injected);
    Mix(h, t.undetected);
    Mix(h, t.kills);
  }
  Mix(h, events_total);
  Mix(h, events_undetected);
  Mix(h, gpu_fatal_injected);
  Mix(h, gpu_fatal_undetected);
  Mix(h, kills_total);
  Mix(h, kills_undetected_cause);
  Mix(h, xe_kills);
  Mix(h, xe_kills_undetected_cause);
  Mix(h, xk_kills);
  Mix(h, xk_kills_undetected_cause);
  return h;
}

std::vector<std::string> FaultLedger::Render() const {
  std::vector<std::string> rows;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "events=%llu undetected=%llu gpu_fatal=%llu/%llu kills=%llu "
                "undetected_cause=%llu (xe %llu/%llu, xk %llu/%llu)",
                static_cast<unsigned long long>(events_total),
                static_cast<unsigned long long>(events_undetected),
                static_cast<unsigned long long>(gpu_fatal_undetected),
                static_cast<unsigned long long>(gpu_fatal_injected),
                static_cast<unsigned long long>(kills_total),
                static_cast<unsigned long long>(kills_undetected_cause),
                static_cast<unsigned long long>(xe_kills_undetected_cause),
                static_cast<unsigned long long>(xe_kills),
                static_cast<unsigned long long>(xk_kills_undetected_cause),
                static_cast<unsigned long long>(xk_kills));
  rows.emplace_back(buf);
  for (int c = 0; c < kErrorCategoryCount; ++c) {
    const CategoryTally& t = by_category[static_cast<std::size_t>(c)];
    if (t.injected == 0 && t.kills == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-14s injected=%llu undetected=%llu "
                  "kills=%llu",
                  ErrorCategoryName(static_cast<ErrorCategory>(c)),
                  static_cast<unsigned long long>(t.injected),
                  static_cast<unsigned long long>(t.undetected),
                  static_cast<unsigned long long>(t.kills));
    rows.emplace_back(buf);
  }
  return rows;
}

FaultLedger BuildFaultLedger(const Workload& workload,
                             const InjectionResult& injection) {
  FaultLedger ledger;
  for (const ErrorEvent& ev : injection.events) {
    CategoryTally& t =
        ledger.by_category[static_cast<std::size_t>(ev.category)];
    ++t.injected;
    ++ledger.events_total;
    if (!ev.detected) {
      ++t.undetected;
      ++ledger.events_undetected;
    }
    const bool gpu = ev.category == ErrorCategory::kGpuDbe ||
                     ev.category == ErrorCategory::kGpuXid;
    if (gpu && ev.severity == Severity::kFatal && ev.scope == Scope::kNode) {
      ++ledger.gpu_fatal_injected;
      if (!ev.detected) ++ledger.gpu_fatal_undetected;
    }
  }
  for (const Application& app : workload.apps) {
    if (app.cancelled) continue;
    const auto it = injection.truth.find(app.apid);
    if (it == injection.truth.end()) continue;
    const TruthRecord& rec = it->second;
    if (rec.outcome != AppOutcome::kSystemFailure) continue;
    ++ledger.kills_total;
    ++ledger.by_category[static_cast<std::size_t>(rec.cause)].kills;
    const bool xk = workload.job_of(app).node_type == NodeType::kXK;
    (xk ? ledger.xk_kills : ledger.xe_kills) += 1;
    if (!rec.cause_detected) {
      ++ledger.kills_undetected_cause;
      (xk ? ledger.xk_kills_undetected_cause
          : ledger.xe_kills_undetected_cause) += 1;
    }
  }
  return ledger;
}

}  // namespace ld
