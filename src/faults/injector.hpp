// Fault injection and impact resolution.
//
// The injector overlays error events on a generated campaign and
// resolves their impact on application runs, producing (a) the event
// stream the log emitters will render and (b) per-application ground
// truth.  Because the injector knows the true cause of every kill,
// LogDiver's attribution can be *scored* — something the original field
// study could not do.
//
// Hazard model and calibration (see DESIGN.md "Calibration targets"):
//  - Node-attached fatal errors arrive as a Poisson process over each
//    node's *busy* time, at `xe_fatal_per_node_hour` on XE nodes and the
//    (higher) `xk_fatal_per_node_hour` on XK nodes.  An application's
//    exposure is therefore proportional to nodect x duration, which is
//    what makes full-machine hero runs fail ~20x more often (A4/A5).
//  - System-wide Lustre incidents arrive machine-wide and kill each
//    overlapping application with a size-independent probability; this
//    channel dominates the *population* failure rate (A2) because every
//    run, however small, is exposed.
//  - Gemini link failures usually fail over (degraded, log noise); an
//    unsuccessful failover kills the applications using the router.
//  - GPU-side fatal errors on XK nodes escape detection with
//    significant probability (A6); undetected kills leave no RAS line,
//    so LogDiver can categorize the failure (via the ALPS exit record)
//    but not attribute a cause — or, for app-scope kills, may
//    misclassify it as an application bug.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "faults/storms.hpp"
#include "faults/taxonomy.hpp"
#include "topology/machine.hpp"
#include "workload/types.hpp"

namespace ld {

struct FaultModelConfig {
  // --- node-attached fatal hazards (per busy node-hour) ---
  // Calibrated jointly with the Gemini/blade machine-wide channels so
  // the effective per-node-hour hazard lands the A4/A5 scale anchors;
  // the ~20x XE->XK gap is the paper's "hybrid nodes are less reliable".
  double xe_fatal_per_node_hour = 4.0e-7;
  double xk_fatal_per_node_hour = 3.0e-6;
  /// Share of XK fatal events that are GPU-side (DBE/Xid).
  double xk_gpu_share = 0.70;

  // --- per-application-hour fatal hazards (node count independent) ---
  // Software-side failures that strike once per run regardless of size:
  // launch failures, OOM kills, node-health false trips, GPU driver
  // (Xid) faults on the hybrid partition.  This channel gives small
  // applications a realistic node-level failure population (the field
  // study's cause tables are not all Lustre) without disturbing the
  // exposure-proportional scale anchors.
  double xe_app_fatal_per_hour = 0.0035;
  double xk_app_fatal_per_hour = 0.0060;
  /// Share of the XK per-app channel that is GPU-side.
  double xk_app_gpu_share = 0.60;

  // --- detection coverage (probability the event reaches any log) ---
  double cpu_error_detection = 0.96;
  double gpu_error_detection = 0.60;  // the A6 gap

  /// Deterministic detection-gap override for the scenario catalog.
  /// < 0 (default): GPU detection is the stochastic per-event draw
  /// above.  >= 0: GPU-side fatal events are injected fully detected,
  /// then exactly round(fraction * count) of them are flipped to
  /// undetected by a seeded post-pass — so the ledger identity
  /// `gpu_fatal_undetected == round(fraction * gpu_fatal_injected)`
  /// holds exactly (see faults/storms.hpp).
  double gpu_underreport_fraction = -1.0;

  /// Probability a node-attached fatal error downs the whole node (ALPS
  /// then reports "killed: node failure") rather than killing only the
  /// application process.
  double node_down_share_cpu = 0.55;
  double node_down_share_gpu = 0.15;  // GPU faults mostly kill the app

  // --- system-wide incidents (Lustre) ---
  // This channel dominates the *population* failure rate (anchor A2):
  // every run, however small, is exposed for its whole duration.
  double lustre_incidents_per_day = 1.2;
  double lustre_outage_median_minutes = 5.0;
  double lustre_outage_sigma = 0.8;  // lognormal
  /// Probability an application overlapping the incident window is killed.
  double lustre_kill_prob = 0.26;

  // --- Gemini interconnect ---
  double link_failures_per_day = 0.5;
  double link_failover_success = 0.90;
  /// On failover failure, apps on the router's nodes die with this prob.
  double link_kill_prob = 0.85;

  // --- blade-level faults ---
  double blade_faults_per_day = 0.01;

  // --- benign noise floor (log realism; never kills anything) ---
  double corrected_mce_per_day = 60.0;
  double corrected_gpu_per_day = 8.0;
  double link_degrade_per_day = 12.0;

  // --- scenario episode channels (all disabled by default) ---
  // Structured storms and windows layered on the steady-state hazards;
  // see faults/storms.hpp for the models and docs/SCENARIOS.md for the
  // catalog entries that exercise them.
  CascadeStormConfig cascade;
  LustreStormConfig lustre_storm;
  MaintenanceConfig maintenance;

  // --- reliability growth ---
  // Field systems harden over their production life: firmware fixes,
  // bad-part replacement, filesystem tuning.  All fatal channels are
  // scaled by a multiplier that interpolates linearly from
  // `hazard_multiplier_start` at campaign begin to `hazard_multiplier_end`
  // at campaign end.  (1.0, 1.0) = stationary hazards (the calibrated
  // default); pick a mean of ~1.0 to keep campaign totals comparable.
  double hazard_multiplier_start = 1.0;
  double hazard_multiplier_end = 1.0;
};

/// Per-application ground truth after injection.
struct TruthRecord {
  ApId apid = 0;
  AppOutcome outcome = AppOutcome::kSuccess;
  /// Root cause for system failures; kUnknown otherwise.
  ErrorCategory cause = ErrorCategory::kUnknown;
  /// The event that killed it (0 if none).
  std::uint64_t event_id = 0;
  /// Whether the killing event was detected (produced log evidence).
  bool cause_detected = false;
};

struct InjectionResult {
  /// All injected events, detected or not, time-ordered.
  std::vector<ErrorEvent> events;
  /// Ground truth per (non-cancelled) application, apid-keyed.
  std::unordered_map<ApId, TruthRecord> truth;

  std::uint64_t system_killed_apps = 0;
  std::uint64_t cancelled_apps = 0;
};

class FaultInjector {
 public:
  FaultInjector(const Machine& machine, FaultModelConfig config);

  /// Injects errors into the campaign.  Mutates `workload`: killed
  /// applications get truncated end times, kill exit codes, truth
  /// overrides, and possibly `alps_node_failure`; later runs of a job
  /// whose nodes died are cancelled.  Deterministic in the rng seed.
  Result<InjectionResult> Inject(Workload& workload, TimePoint epoch,
                                 Duration campaign, Rng& rng) const;

  const FaultModelConfig& config() const { return config_; }

 private:
  const Machine& machine_;
  FaultModelConfig config_;
};

}  // namespace ld
