#include "faults/taxonomy.hpp"

#include <array>

namespace ld {
namespace {

constexpr std::array<const char*, kErrorCategoryCount> kCategoryNames = {
    "machine_check", "memory_ue",      "gpu_dbe",     "gpu_xid",
    "gemini_link",   "lustre",         "node_heartbeat", "blade_fault",
    "kernel_software", "unknown",
};

constexpr std::array<const char*, 3> kSeverityNames = {"corrected", "degraded",
                                                       "fatal"};

}  // namespace

const char* ErrorCategoryName(ErrorCategory c) {
  const auto idx = static_cast<std::size_t>(c);
  return idx < kCategoryNames.size() ? kCategoryNames[idx] : "invalid";
}

Result<ErrorCategory> ParseErrorCategory(const std::string& name) {
  for (std::size_t i = 0; i < kCategoryNames.size(); ++i) {
    if (name == kCategoryNames[i]) return static_cast<ErrorCategory>(i);
  }
  return ParseError("unknown error category '" + name + "'");
}

const char* SeverityName(Severity s) {
  const auto idx = static_cast<std::size_t>(s);
  return idx < kSeverityNames.size() ? kSeverityNames[idx] : "invalid";
}

Result<Severity> ParseSeverity(const std::string& name) {
  for (std::size_t i = 0; i < kSeverityNames.size(); ++i) {
    if (name == kSeverityNames[i]) return static_cast<Severity>(i);
  }
  return ParseError("unknown severity '" + name + "'");
}

const char* ScopeName(Scope s) {
  switch (s) {
    case Scope::kNode: return "node";
    case Scope::kBlade: return "blade";
    case Scope::kSystem: return "system";
  }
  return "invalid";
}

}  // namespace ld
