#include "faults/storms.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ld {

NodeOccupancy::NodeOccupancy(const Workload& wl) {
  for (std::size_t j = 0; j < wl.jobs.size(); ++j) {
    const Job& job = wl.jobs[j];
    for (NodeIndex n : job.nodes) {
      spans_[n].push_back({job.start, job.end, j});
    }
  }
  for (auto& [node, spans] : spans_) {
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.start < b.start; });
  }
}

std::size_t NodeOccupancy::JobAt(NodeIndex node, TimePoint t) const {
  const auto it = spans_.find(node);
  if (it == spans_.end()) return npos;
  const auto& spans = it->second;
  auto pos =
      std::upper_bound(spans.begin(), spans.end(), t,
                       [](TimePoint v, const Span& s) { return v < s.start; });
  if (pos == spans.begin()) return npos;
  --pos;
  return (t >= pos->start && t < pos->end) ? pos->job : npos;
}

std::size_t AppAt(const Workload& wl, const Job& job, TimePoint t) {
  for (std::size_t idx : job.app_indices) {
    const Application& app = wl.apps[idx];
    if (!app.cancelled && t >= app.start && t < app.end) return idx;
  }
  return NodeOccupancy::npos;
}

namespace {

/// Torus dimensions (max coordinate + 1 per axis) from the node table.
struct TorusDims {
  int x = 1;
  int y = 1;
  int z = 1;
};

TorusDims MeasureTorus(const Machine& machine) {
  TorusDims dims;
  for (const Node& node : machine.nodes()) {
    dims.x = std::max(dims.x, node.gemini.x + 1);
    dims.y = std::max(dims.y, node.gemini.y + 1);
    dims.z = std::max(dims.z, node.gemini.z + 1);
  }
  return dims;
}

std::uint64_t CoordKey(const GeminiCoord& c) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.x)) << 42) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.y)) << 21) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.z));
}

/// The 6 torus neighbors of a router (±1 per axis, wrapping).
std::vector<GeminiCoord> TorusNeighbors(const GeminiCoord& c,
                                        const TorusDims& dims) {
  auto wrap = [](int v, int n) { return ((v % n) + n) % n; };
  return {
      {wrap(c.x - 1, dims.x), c.y, c.z}, {wrap(c.x + 1, dims.x), c.y, c.z},
      {c.x, wrap(c.y - 1, dims.y), c.z}, {c.x, wrap(c.y + 1, dims.y), c.z},
      {c.x, c.y, wrap(c.z - 1, dims.z)}, {c.x, c.y, wrap(c.z + 1, dims.z)},
  };
}

TimePoint UniformInCampaign(const ChannelContext& ctx, Rng& ch) {
  return ctx.epoch +
         Duration(static_cast<std::int64_t>(
             ch.UniformDouble() * static_cast<double>(ctx.campaign.seconds())));
}

ErrorEvent MakeEvent(std::uint64_t id, TimePoint t, ErrorCategory cat,
                     Severity sev, Scope scope, NodeIndex node, Duration outage,
                     bool detected) {
  ErrorEvent ev;
  ev.event_id = id;
  ev.time = t;
  ev.category = cat;
  ev.severity = sev;
  ev.scope = scope;
  ev.node = node;
  ev.outage = outage;
  ev.detected = detected;
  return ev;
}

}  // namespace

void InjectCascadeStorms(const ChannelContext& ctx,
                         const CascadeStormConfig& config,
                         const NodeOccupancy& occupancy,
                         std::vector<ErrorEvent>* events,
                         std::vector<KillCandidate>* kills,
                         std::uint64_t* next_event_id, Rng ch) {
  if (config.storms_per_campaign <= 0.0) return;
  const TorusDims dims = MeasureTorus(ctx.machine);
  const std::uint64_t storm_count = ch.Poisson(config.storms_per_campaign);
  for (std::uint64_t s = 0; s < storm_count; ++s) {
    const TimePoint start = UniformInCampaign(ctx, ch);
    const NodeIndex epicenter_node = static_cast<NodeIndex>(
        ch.UniformInt(static_cast<std::uint64_t>(ctx.machine.node_count())));
    const GeminiCoord epicenter = ctx.machine.node(epicenter_node).gemini;

    // Breadth-first failure front over the torus, one hop per delay
    // step.  Every tripped router is an unsuccessful failover.
    std::unordered_set<std::uint64_t> tripped{CoordKey(epicenter)};
    std::vector<GeminiCoord> frontier{epicenter};
    for (int hop = 0; hop <= config.torus_radius && !frontier.empty(); ++hop) {
      const TimePoint when =
          start + Duration(static_cast<std::int64_t>(
                      config.hop_delay_seconds * static_cast<double>(hop)));
      std::vector<GeminiCoord> next;
      for (const GeminiCoord& router : frontier) {
        const std::vector<NodeIndex> attached =
            ctx.machine.NodesOnGemini(router);
        const NodeIndex anchor =
            attached.empty() ? epicenter_node : attached.front();
        const bool detected = ch.Bernoulli(config.detection);
        const std::uint64_t id = (*next_event_id)++;
        events->push_back(MakeEvent(id, when, ErrorCategory::kGeminiLink,
                                    Severity::kFatal, Scope::kNode, anchor,
                                    Duration(0), detected));
        for (NodeIndex n : attached) {
          if (!ch.Bernoulli(config.kill_prob)) continue;
          const std::size_t j = occupancy.JobAt(n, when);
          if (j == NodeOccupancy::npos) continue;
          const std::size_t a = AppAt(ctx.workload, ctx.workload.jobs[j], when);
          if (a == NodeOccupancy::npos) continue;
          kills->push_back(
              {when, a, id, ErrorCategory::kGeminiLink, detected, true});
        }
        if (hop == config.torus_radius) continue;
        for (const GeminiCoord& neighbor : TorusNeighbors(router, dims)) {
          const std::uint64_t key = CoordKey(neighbor);
          if (tripped.contains(key)) continue;
          if (!ch.Bernoulli(config.hop_trip_prob)) continue;
          tripped.insert(key);
          next.push_back(neighbor);
        }
      }
      frontier = std::move(next);
    }
  }
}

void InjectLustreStorms(const ChannelContext& ctx,
                        const LustreStormConfig& config,
                        std::vector<ErrorEvent>* events,
                        std::vector<KillCandidate>* kills,
                        std::uint64_t* next_event_id, Rng ch) {
  if (config.storms_per_campaign <= 0.0) return;
  const std::uint64_t storm_count = ch.Poisson(config.storms_per_campaign);
  for (std::uint64_t s = 0; s < storm_count; ++s) {
    TimePoint when = UniformInCampaign(ctx, ch);
    const std::uint32_t incidents = static_cast<std::uint32_t>(ch.UniformInt(
        static_cast<std::int64_t>(config.incidents_min),
        static_cast<std::int64_t>(std::max(config.incidents_min,
                                           config.incidents_max))));
    for (std::uint32_t k = 0; k < incidents; ++k) {
      const double minutes = ch.LogNormal(
          std::log(config.outage_median_minutes), config.outage_sigma);
      const Duration outage(static_cast<std::int64_t>(minutes * 60.0));
      const TimePoint window_end = when + outage;
      const bool detected = ch.Bernoulli(0.98);
      const std::uint64_t id = (*next_event_id)++;
      events->push_back(MakeEvent(id, when, ErrorCategory::kLustre,
                                  Severity::kFatal, Scope::kSystem,
                                  kInvalidNode, outage, detected));
      for (std::size_t a = 0; a < ctx.workload.apps.size(); ++a) {
        const Application& app = ctx.workload.apps[a];
        if (app.cancelled) continue;
        if (app.end <= when || app.start >= window_end) continue;
        const double sensitivity =
            ctx.workload.job_of(app).lustre_sensitivity;
        if (!ch.Bernoulli(std::min(0.98, config.kill_prob * sensitivity))) {
          continue;
        }
        const TimePoint kill_at = std::max(app.start + Duration(1), when);
        kills->push_back(
            {kill_at, a, id, ErrorCategory::kLustre, detected, false});
      }
      when = window_end + Duration(static_cast<std::int64_t>(
                 ch.Exponential(1.0 / (config.spacing_mean_minutes * 60.0))));
    }
  }
}

void InjectMaintenanceWindows(const ChannelContext& ctx,
                              const MaintenanceConfig& config,
                              const NodeOccupancy& occupancy,
                              std::vector<ErrorEvent>* events,
                              std::vector<KillCandidate>* kills,
                              std::uint64_t* next_event_id, Rng ch) {
  if (config.windows_per_campaign <= 0.0) return;
  const std::uint32_t node_count = ctx.machine.node_count();
  const std::uint32_t slice = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(config.node_fraction *
                                    static_cast<double>(node_count)));
  const std::uint64_t window_count = ch.Poisson(config.windows_per_campaign);
  for (std::uint64_t w = 0; w < window_count; ++w) {
    const TimePoint start = UniformInCampaign(ctx, ch);
    const Duration length(
        static_cast<std::int64_t>(config.duration_hours * 3600.0));
    const NodeIndex first = static_cast<NodeIndex>(
        ch.UniformInt(static_cast<std::uint64_t>(node_count)));
    // Drain: every occupied node in the slice loses its run at window
    // start.  The SMW announces each loss, so these are always detected.
    for (std::uint32_t off = 0; off < slice; ++off) {
      const NodeIndex node = (first + off) % node_count;
      const std::size_t j = occupancy.JobAt(node, start);
      if (j == NodeOccupancy::npos) continue;
      const std::size_t a = AppAt(ctx.workload, ctx.workload.jobs[j], start);
      if (a == NodeOccupancy::npos) continue;
      const std::uint64_t id = (*next_event_id)++;
      events->push_back(MakeEvent(id, start, ErrorCategory::kNodeHeartbeat,
                                  Severity::kFatal, Scope::kNode, node,
                                  Duration(0), /*detected=*/true));
      kills->push_back(
          {start, a, id, ErrorCategory::kNodeHeartbeat, true, true});
    }
    // Reboot noise: benign machine checks sprinkled across the window.
    const std::uint64_t noise = ch.Poisson(
        config.reboot_noise_per_node * static_cast<double>(slice));
    for (std::uint64_t k = 0; k < noise; ++k) {
      const TimePoint when =
          start + Duration(static_cast<std::int64_t>(
                     ch.UniformDouble() *
                     static_cast<double>(length.seconds())));
      const NodeIndex node =
          (first + static_cast<NodeIndex>(ch.UniformInt(
                       static_cast<std::uint64_t>(slice)))) %
          node_count;
      events->push_back(MakeEvent((*next_event_id)++, when,
                                  ErrorCategory::kMachineCheck,
                                  Severity::kCorrected, Scope::kNode, node,
                                  Duration(0), /*detected=*/true));
    }
  }
}

std::uint64_t ApplyGpuDetectionGap(double fraction,
                                   std::vector<ErrorEvent>* events,
                                   std::vector<KillCandidate>* kills, Rng ch) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  std::vector<std::size_t> gpu_events;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const ErrorEvent& ev = (*events)[i];
    const bool gpu = ev.category == ErrorCategory::kGpuDbe ||
                     ev.category == ErrorCategory::kGpuXid;
    if (gpu && ev.severity == Severity::kFatal && ev.scope == Scope::kNode) {
      gpu_events.push_back(i);
    }
  }
  const std::uint64_t flip = static_cast<std::uint64_t>(std::llround(
      fraction * static_cast<double>(gpu_events.size())));
  // Seeded Fisher-Yates; the first `flip` entries lose their log lines.
  for (std::size_t i = gpu_events.size(); i > 1; --i) {
    std::swap(gpu_events[i - 1],
              gpu_events[ch.UniformInt(static_cast<std::uint64_t>(i))]);
  }
  std::unordered_set<std::uint64_t> undetected_ids;
  for (std::uint64_t k = 0; k < flip; ++k) {
    ErrorEvent& ev = (*events)[gpu_events[k]];
    ev.detected = false;
    undetected_ids.insert(ev.event_id);
  }
  for (KillCandidate& kill : *kills) {
    if (undetected_ids.contains(kill.event_id)) kill.detected = false;
  }
  return flip;
}

}  // namespace ld
