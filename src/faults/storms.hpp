// Scenario-grade fault channels layered on the base hazard model.
//
// The calibrated FaultModelConfig channels reproduce the field study's
// *steady-state* population (anchors A2-A6).  The scenario catalog
// (docs/SCENARIOS.md) needs structured *episodes* on top of that steady
// state: Gemini-torus cascade storms, clustered Lustre incident storms,
// scheduled maintenance windows, and a deterministic GPU detection-gap
// override whose under-report fraction the ledger can verify exactly.
//
// All channels here follow the injector's contract: they only *collect*
// KillCandidates and append ErrorEvents; the time-ordered kill
// application (exit codes, cancellations, ground truth) stays in
// FaultInjector::Inject so episodes and steady-state hazards compose.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "faults/taxonomy.hpp"
#include "topology/machine.hpp"
#include "workload/types.hpp"

namespace ld {

/// A pending application kill: which run dies, when, why, and whether
/// the killing event was detected / downed the whole node.  Channels
/// collect these; FaultInjector::Inject applies them in time order.
struct KillCandidate {
  TimePoint time;
  std::size_t app_idx;
  std::uint64_t event_id;
  ErrorCategory cause;
  bool detected;
  bool node_down;
};

/// Per-node occupancy: which job holds this node during which window.
/// Shared by every channel with a spatial blast radius.
class NodeOccupancy {
 public:
  explicit NodeOccupancy(const Workload& wl);

  /// Index of the job occupying `node` at time `t`, or npos.
  std::size_t JobAt(NodeIndex node, TimePoint t) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  struct Span {
    TimePoint start;
    TimePoint end;
    std::size_t job;
  };
  std::unordered_map<NodeIndex, std::vector<Span>> spans_;
};

/// The application of job `job` running at time `t`, or NodeOccupancy::npos.
std::size_t AppAt(const Workload& wl, const Job& job, TimePoint t);

// --- Gemini-torus cascade storms ------------------------------------
// A link failure that does NOT fail over cleanly can destabilize its
// torus neighborhood: rerouted traffic trips marginal LCBs on adjacent
// routers, and the failure front walks outward hop by hop.  Each
// tripped router is an unsuccessful-failover kGeminiLink fatal; apps on
// its attached nodes die as node losses.
struct CascadeStormConfig {
  /// Expected storm count over the campaign (Poisson); 0 disables.
  double storms_per_campaign = 0.0;
  /// Maximum hops the failure front propagates from the epicenter.
  int torus_radius = 2;
  /// Seconds per hop of front propagation.
  double hop_delay_seconds = 45.0;
  /// Probability each torus-neighbor router of a tripped router trips.
  double hop_trip_prob = 0.60;
  /// Probability an application on an isolated router's nodes is killed.
  double kill_prob = 0.90;
  /// Detection probability of the storm's link events.
  double detection = 0.95;
};

// --- Lustre incident storms -----------------------------------------
// Filesystem incidents cluster in the field (a sick OST rarely fails
// once): a storm is a burst of system-wide incidents a few minutes to
// tens of minutes apart, each with its own outage window.
struct LustreStormConfig {
  double storms_per_campaign = 0.0;  // 0 disables
  std::uint32_t incidents_min = 3;
  std::uint32_t incidents_max = 8;
  /// Mean spacing between a storm's incidents (exponential).
  double spacing_mean_minutes = 15.0;
  double outage_median_minutes = 18.0;
  double outage_sigma = 0.6;  // lognormal
  /// Per-overlapping-application kill probability (scaled by the job's
  /// lustre_sensitivity, like the steady-state channel).
  double kill_prob = 0.45;
};

// --- maintenance windows --------------------------------------------
// A scheduled window drains a contiguous slice of the machine: every
// run on a drained node is killed as a node loss (heartbeat category,
// always detected — the SMW knows exactly what it is doing), and the
// mass reboot produces a burst of benign machine-check noise that the
// filtering stage must not attribute.
struct MaintenanceConfig {
  double windows_per_campaign = 0.0;  // 0 disables
  double duration_hours = 8.0;
  /// Fraction of the node table (contiguous slice) taken down.
  double node_fraction = 0.25;
  /// Expected benign reboot-noise events per drained node.
  double reboot_noise_per_node = 0.05;
};

/// Shared inputs every episode channel needs.
struct ChannelContext {
  const Machine& machine;
  const Workload& workload;
  TimePoint epoch;
  Duration campaign;
};

/// Appends storm events/kills.  `next_event_id` is advanced for every
/// emitted event.  Deterministic in (context, config, rng state).
void InjectCascadeStorms(const ChannelContext& ctx,
                         const CascadeStormConfig& config,
                         const NodeOccupancy& occupancy,
                         std::vector<ErrorEvent>* events,
                         std::vector<KillCandidate>* kills,
                         std::uint64_t* next_event_id, Rng ch);

void InjectLustreStorms(const ChannelContext& ctx,
                        const LustreStormConfig& config,
                        std::vector<ErrorEvent>* events,
                        std::vector<KillCandidate>* kills,
                        std::uint64_t* next_event_id, Rng ch);

void InjectMaintenanceWindows(const ChannelContext& ctx,
                              const MaintenanceConfig& config,
                              const NodeOccupancy& occupancy,
                              std::vector<ErrorEvent>* events,
                              std::vector<KillCandidate>* kills,
                              std::uint64_t* next_event_id, Rng ch);

/// Deterministic GPU detection-gap override: flips exactly
/// round(fraction * N) of the N GPU-side fatal node-scope events to
/// undetected (selected by a seeded shuffle), updating the matching
/// KillCandidates.  Returns the number flipped.  Used with
/// FaultModelConfig::gpu_underreport_fraction >= 0, under which channel
/// 1 injects GPU events fully detected first — so the ledger identity
///   undetected_gpu == round(fraction * injected_gpu)
/// holds exactly, not just in expectation.
std::uint64_t ApplyGpuDetectionGap(double fraction,
                                   std::vector<ErrorEvent>* events,
                                   std::vector<KillCandidate>* kills, Rng ch);

}  // namespace ld
