// The injector-side ground-truth ledger.
//
// Summarizes what a fault-injection pass actually did — per-category
// event and kill counts, detection coverage, and the per-partition
// split — so scenario expectations can be checked against *injected*
// truth rather than against the analyzer's own output.  The detection-
// gap scenarios lean on the exact identity the deterministic override
// guarantees (see faults/storms.hpp): the ledger is where that identity
// is read back.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "faults/injector.hpp"
#include "faults/taxonomy.hpp"
#include "workload/types.hpp"

namespace ld {

struct CategoryTally {
  std::uint64_t injected = 0;    // all events of the category
  std::uint64_t undetected = 0;  // events with no log evidence
  std::uint64_t kills = 0;       // application kills attributed to it
};

struct FaultLedger {
  std::array<CategoryTally, kErrorCategoryCount> by_category{};

  std::uint64_t events_total = 0;
  std::uint64_t events_undetected = 0;

  /// GPU-side (kGpuDbe/kGpuXid) fatal node-scope events — the A6 pool.
  std::uint64_t gpu_fatal_injected = 0;
  std::uint64_t gpu_fatal_undetected = 0;

  std::uint64_t kills_total = 0;
  std::uint64_t kills_undetected_cause = 0;

  /// Per-partition kill split (XE vs XK), for the A6 contrast.
  std::uint64_t xe_kills = 0;
  std::uint64_t xe_kills_undetected_cause = 0;
  std::uint64_t xk_kills = 0;
  std::uint64_t xk_kills_undetected_cause = 0;

  /// Share of system kills whose cause left no log evidence.
  double UndetectedCauseShare() const {
    return kills_total == 0 ? 0.0
                            : static_cast<double>(kills_undetected_cause) /
                                  static_cast<double>(kills_total);
  }

  /// Order-insensitive FNV-style fingerprint over every counter; equal
  /// ledgers <=> equal fingerprints (used by the determinism tests).
  std::uint64_t Fingerprint() const;

  /// Human-readable rows for campaign reports.
  std::vector<std::string> Render() const;
};

/// Builds the ledger from a finished injection pass.  `workload` must be
/// the same (mutated) workload `Inject` ran over.
FaultLedger BuildFaultLedger(const Workload& workload,
                             const InjectionResult& injection);

}  // namespace ld
