#include "faults/injector.hpp"

#include <algorithm>
#include <cmath>

#include "common/obs/names.hpp"
#include "common/obs/obs.hpp"
#include "faults/storms.hpp"

namespace ld {
namespace {

constexpr int kSigKill = 9;

// Relative frequencies of the CPU-side fatal categories.
struct CategoryWeight {
  ErrorCategory category;
  double weight;
};
constexpr CategoryWeight kCpuFatalMix[] = {
    {ErrorCategory::kMachineCheck, 0.30},
    {ErrorCategory::kMemoryUE, 0.20},
    {ErrorCategory::kNodeHeartbeat, 0.32},
    {ErrorCategory::kKernelSoftware, 0.18},
};
constexpr CategoryWeight kGpuFatalMix[] = {
    {ErrorCategory::kGpuDbe, 0.60},
    {ErrorCategory::kGpuXid, 0.40},
};
// Per-application software-side channels (node count independent).
constexpr CategoryWeight kCpuAppFatalMix[] = {
    {ErrorCategory::kKernelSoftware, 0.55},
    {ErrorCategory::kNodeHeartbeat, 0.45},
};
constexpr CategoryWeight kGpuAppFatalMix[] = {
    {ErrorCategory::kGpuXid, 0.80},
    {ErrorCategory::kGpuDbe, 0.20},
};

// Exit codes an application shows when a system error kills the process
// (not the node).  Deliberately overlaps with user-failure codes: without
// log correlation these kills are indistinguishable from application
// bugs, which is the paper's core measurement problem.
constexpr int kAppKillExitCodes[] = {1, 134, 139, 255, 5};

template <std::size_t N>
ErrorCategory SampleCategory(const CategoryWeight (&mix)[N], Rng& rng) {
  std::vector<double> w;
  w.reserve(N);
  for (const auto& m : mix) w.push_back(m.weight);
  return mix[rng.WeightedIndex(w)].category;
}

}  // namespace

FaultInjector::FaultInjector(const Machine& machine, FaultModelConfig config)
    : machine_(machine), config_(config) {}

Result<InjectionResult> FaultInjector::Inject(Workload& workload,
                                              TimePoint epoch,
                                              Duration campaign,
                                              Rng& rng) const {
  InjectionResult out;
  std::uint64_t next_event_id = 1;
  std::vector<KillCandidate> kills;

  const double campaign_days = campaign.days();
  const TimePoint horizon = epoch + campaign;

  // Reliability-growth multiplier at a given instant (linear in time).
  const double mult_start = config_.hazard_multiplier_start;
  const double mult_end = config_.hazard_multiplier_end;
  const double mult_max = std::max(mult_start, mult_end);
  auto hazard_multiplier = [&](TimePoint t) {
    if (campaign.seconds() <= 0) return mult_start;
    const double frac =
        std::clamp(static_cast<double>((t - epoch).seconds()) /
                       static_cast<double>(campaign.seconds()),
                   0.0, 1.0);
    return mult_start + frac * (mult_end - mult_start);
  };
  // Acceptance test for time-uniform channels (Poisson thinning).
  auto thin_keep = [&](TimePoint t, Rng& ch) {
    if (mult_max <= 0.0) return false;
    return ch.UniformDouble() * mult_max < hazard_multiplier(t);
  };

  auto add_event = [&](TimePoint t, ErrorCategory cat, Severity sev,
                       Scope scope, NodeIndex node, Duration outage,
                       bool detected) -> std::uint64_t {
    ErrorEvent ev;
    ev.event_id = next_event_id++;
    ev.time = t;
    ev.category = cat;
    ev.severity = sev;
    ev.scope = scope;
    ev.node = node;
    ev.outage = outage;
    ev.detected = detected;
    out.events.push_back(ev);
    return ev.event_id;
  };

  // ---- channel 1: node-attached fatal errors during each run ----------
  // An application's hazard is rate x nodect; sampling the first arrival
  // is exact for the kill process (later arrivals on an already-dead run
  // change nothing the logs would see differently at these rates).
  {
    Rng ch = rng.Fork("node-fatal");
    for (std::size_t i = 0; i < workload.apps.size(); ++i) {
      Application& app = workload.apps[i];
      if (app.cancelled) continue;
      const Job& job = workload.job_of(app);
      const bool is_xk = job.node_type == NodeType::kXK;
      const double per_node_hour = is_xk ? config_.xk_fatal_per_node_hour
                                         : config_.xe_fatal_per_node_hour;
      const double exposure_rate =
          per_node_hour * static_cast<double>(job.nodect());
      const double app_rate = is_xk ? config_.xk_app_fatal_per_hour
                                    : config_.xe_app_fatal_per_hour;
      const double rate_per_sec = (exposure_rate + app_rate) *
                                  hazard_multiplier(app.start) / 3600.0;
      if (rate_per_sec <= 0.0) continue;
      const double t_fail = ch.Exponential(rate_per_sec);
      const double window = static_cast<double>(app.duration().seconds());
      if (t_fail >= window) continue;

      const TimePoint when =
          app.start + Duration(static_cast<std::int64_t>(t_fail));
      // Which channel struck: hardware exposure (scales with node count)
      // or per-application software.
      const bool exposure_channel =
          ch.UniformDouble() * (exposure_rate + app_rate) < exposure_rate;
      bool gpu_side;
      ErrorCategory cat;
      if (exposure_channel) {
        gpu_side = is_xk && ch.Bernoulli(config_.xk_gpu_share);
        cat = gpu_side ? SampleCategory(kGpuFatalMix, ch)
                       : SampleCategory(kCpuFatalMix, ch);
      } else {
        gpu_side = is_xk && ch.Bernoulli(config_.xk_app_gpu_share);
        cat = gpu_side ? SampleCategory(kGpuAppFatalMix, ch)
                       : SampleCategory(kCpuAppFatalMix, ch);
      }
      // Heartbeat faults are by definition whole-node losses.
      const double down_share = gpu_side ? config_.node_down_share_gpu
                                         : config_.node_down_share_cpu;
      const bool node_down =
          cat == ErrorCategory::kNodeHeartbeat || ch.Bernoulli(down_share);
      // The detection draw always happens (stream preservation: the
      // deterministic override must not shift later draws), but under
      // the scenario-catalog gap override GPU events are injected fully
      // detected and the exact-count post-pass flips them afterwards.
      bool detected = ch.Bernoulli(gpu_side ? config_.gpu_error_detection
                                            : config_.cpu_error_detection);
      if (gpu_side && config_.gpu_underreport_fraction >= 0.0) detected = true;
      const NodeIndex node =
          job.nodes[ch.UniformInt(static_cast<std::uint64_t>(job.nodes.size()))];
      const std::uint64_t id = add_event(when, cat, Severity::kFatal,
                                         Scope::kNode, node, Duration(0),
                                         detected);
      kills.push_back({when, i, id, cat, detected, node_down});
    }
  }

  // ---- channel 2: blade faults (4-node blast radius) -------------------
  {
    Rng ch = rng.Fork("blade");
    NodeOccupancy occupancy(workload);
    const std::uint64_t count =
        ch.Poisson(config_.blade_faults_per_day * mult_max * campaign_days);
    for (std::uint64_t k = 0; k < count; ++k) {
      const TimePoint when =
          epoch + Duration(static_cast<std::int64_t>(
                      ch.UniformDouble() * static_cast<double>(campaign.seconds())));
      if (!thin_keep(when, ch)) continue;
      const NodeIndex anchor = static_cast<NodeIndex>(
          ch.UniformInt(static_cast<std::uint64_t>(machine_.node_count())));
      const bool detected = ch.Bernoulli(0.97);
      const std::uint64_t id =
          add_event(when, ErrorCategory::kBladeFault, Severity::kFatal,
                    Scope::kBlade, anchor, Duration(0), detected);
      for (NodeIndex sib : machine_.BladeSiblings(anchor)) {
        const std::size_t j = occupancy.JobAt(sib, when);
        if (j == NodeOccupancy::npos) continue;
        const std::size_t a = AppAt(workload, workload.jobs[j], when);
        if (a == NodeOccupancy::npos) continue;
        kills.push_back(
            {when, a, id, ErrorCategory::kBladeFault, detected, true});
      }
    }
  }

  // ---- channel 3: Gemini link failures ---------------------------------
  {
    Rng ch = rng.Fork("gemini");
    NodeOccupancy occupancy(workload);
    const std::uint64_t count =
        ch.Poisson(config_.link_failures_per_day * mult_max * campaign_days);
    for (std::uint64_t k = 0; k < count; ++k) {
      const TimePoint when =
          epoch + Duration(static_cast<std::int64_t>(
                      ch.UniformDouble() * static_cast<double>(campaign.seconds())));
      if (!thin_keep(when, ch)) continue;
      const NodeIndex anchor = static_cast<NodeIndex>(
          ch.UniformInt(static_cast<std::uint64_t>(machine_.node_count())));
      const bool failover_ok = ch.Bernoulli(config_.link_failover_success);
      const bool detected = ch.Bernoulli(0.95);
      const Severity sev = failover_ok ? Severity::kDegraded : Severity::kFatal;
      const std::uint64_t id =
          add_event(when, ErrorCategory::kGeminiLink, sev, Scope::kNode,
                    anchor, Duration(0), detected);
      if (failover_ok) continue;
      // A failed failover isolates the router's nodes: to ALPS this is a
      // node loss, so the kill presents as a node failure.
      for (NodeIndex n : machine_.NodesOnGemini(machine_.node(anchor).gemini)) {
        if (!ch.Bernoulli(config_.link_kill_prob)) continue;
        const std::size_t j = occupancy.JobAt(n, when);
        if (j == NodeOccupancy::npos) continue;
        const std::size_t a = AppAt(workload, workload.jobs[j], when);
        if (a == NodeOccupancy::npos) continue;
        kills.push_back(
            {when, a, id, ErrorCategory::kGeminiLink, detected, true});
      }
    }
  }

  // ---- channel 4: system-wide Lustre incidents --------------------------
  {
    Rng ch = rng.Fork("lustre");
    // Arrival times, then a sweep over applications ordered by start.
    std::vector<std::pair<TimePoint, Duration>> incidents;
    const std::uint64_t count =
        ch.Poisson(config_.lustre_incidents_per_day * mult_max * campaign_days);
    for (std::uint64_t k = 0; k < count; ++k) {
      const TimePoint when =
          epoch + Duration(static_cast<std::int64_t>(
                      ch.UniformDouble() * static_cast<double>(campaign.seconds())));
      if (!thin_keep(when, ch)) continue;
      const double minutes = ch.LogNormal(
          std::log(config_.lustre_outage_median_minutes),
          config_.lustre_outage_sigma);
      incidents.emplace_back(
          when, Duration(static_cast<std::int64_t>(minutes * 60.0)));
    }
    std::sort(incidents.begin(), incidents.end());

    std::vector<std::size_t> by_start(workload.apps.size());
    for (std::size_t i = 0; i < by_start.size(); ++i) by_start[i] = i;
    std::sort(by_start.begin(), by_start.end(),
              [&workload](std::size_t a, std::size_t b) {
                return workload.apps[a].start < workload.apps[b].start;
              });

    std::size_t cursor = 0;
    std::vector<std::size_t> active;
    for (const auto& [when, outage] : incidents) {
      const TimePoint window_end = when + outage;
      while (cursor < by_start.size() &&
             workload.apps[by_start[cursor]].start < window_end) {
        active.push_back(by_start[cursor]);
        ++cursor;
      }
      const bool detected = ch.Bernoulli(0.98);
      const std::uint64_t id =
          add_event(when, ErrorCategory::kLustre, Severity::kFatal,
                    Scope::kSystem, kInvalidNode, outage, detected);
      std::vector<std::size_t> still_active;
      still_active.reserve(active.size());
      for (std::size_t a : active) {
        const Application& app = workload.apps[a];
        if (app.end <= when) continue;  // finished before this incident
        still_active.push_back(a);
        if (app.cancelled || app.start >= window_end) continue;
        // I/O-heavy applications (app-mix presets) are more exposed to a
        // filesystem outage; the default sensitivity of 1.0 reproduces
        // the calibrated size-independent kill probability bit-for-bit.
        const double p =
            std::min(0.98, config_.lustre_kill_prob *
                               workload.job_of(app).lustre_sensitivity);
        if (!ch.Bernoulli(p)) continue;
        const TimePoint kill_at = std::max(app.start + Duration(1), when);
        kills.push_back(
            {kill_at, a, id, ErrorCategory::kLustre, detected, false});
      }
      active = std::move(still_active);
    }
  }

  // ---- channel 5: benign noise floor ------------------------------------
  {
    Rng ch = rng.Fork("noise");
    auto sprinkle = [&](double per_day, ErrorCategory cat, Severity sev,
                        bool xk_only) {
      const std::uint64_t count = ch.Poisson(per_day * campaign_days);
      if (xk_only && machine_.xk_count() == 0) return;
      for (std::uint64_t k = 0; k < count; ++k) {
        const TimePoint when = epoch + Duration(static_cast<std::int64_t>(
                                   ch.UniformDouble() *
                                   static_cast<double>(campaign.seconds())));
        NodeIndex node;
        if (xk_only) {
          node = machine_.nodes_of_type(NodeType::kXK)[ch.UniformInt(
              static_cast<std::uint64_t>(machine_.xk_count()))];
        } else {
          node = static_cast<NodeIndex>(
              ch.UniformInt(static_cast<std::uint64_t>(machine_.node_count())));
        }
        add_event(when, cat, sev, Scope::kNode, node, Duration(0), true);
      }
    };
    sprinkle(config_.corrected_mce_per_day, ErrorCategory::kMachineCheck,
             Severity::kCorrected, /*xk_only=*/false);
    sprinkle(config_.corrected_gpu_per_day, ErrorCategory::kGpuXid,
             Severity::kCorrected, /*xk_only=*/true);
    sprinkle(config_.link_degrade_per_day, ErrorCategory::kGeminiLink,
             Severity::kCorrected, /*xk_only=*/false);
  }

  // ---- scenario episode channels (all gated; see faults/storms.hpp) ------
  // Each channel forks its own named stream only when enabled, so the
  // calibrated default campaigns stay bit-identical.
  if (config_.cascade.storms_per_campaign > 0.0 ||
      config_.lustre_storm.storms_per_campaign > 0.0 ||
      config_.maintenance.windows_per_campaign > 0.0) {
    const ChannelContext ctx{machine_, workload, epoch, campaign};
    const NodeOccupancy occupancy(workload);
    const std::size_t pre_episode = out.events.size();
    if (config_.cascade.storms_per_campaign > 0.0) {
      InjectCascadeStorms(ctx, config_.cascade, occupancy, &out.events, &kills,
                          &next_event_id, rng.Fork("cascade"));
    }
    if (config_.lustre_storm.storms_per_campaign > 0.0) {
      InjectLustreStorms(ctx, config_.lustre_storm, &out.events, &kills,
                         &next_event_id, rng.Fork("lustre-storm"));
    }
    if (config_.maintenance.windows_per_campaign > 0.0) {
      const std::size_t pre_kills = kills.size();
      InjectMaintenanceWindows(ctx, config_.maintenance, occupancy,
                               &out.events, &kills, &next_event_id,
                               rng.Fork("maintenance"));
      LD_OBS_COUNTER_ADD(obs::names::kFaultsMaintenanceKillsTotal,
                         kills.size() - pre_kills);
    }
    LD_OBS_COUNTER_ADD(obs::names::kFaultsStormEventsTotal,
                       out.events.size() - pre_episode);
  }

  // ---- deterministic GPU detection-gap override (A6, exact) --------------
  if (config_.gpu_underreport_fraction >= 0.0) {
    const std::uint64_t flipped =
        ApplyGpuDetectionGap(config_.gpu_underreport_fraction, &out.events,
                             &kills, rng.Fork("detection-gap"));
    LD_OBS_COUNTER_ADD(obs::names::kFaultsGapFlippedTotal, flipped);
  }

  // ---- apply kills in time order -----------------------------------------
  std::sort(kills.begin(), kills.end(),
            [](const KillCandidate& a, const KillCandidate& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.app_idx < b.app_idx;
            });
  Rng apply_rng = rng.Fork("apply");
  for (const KillCandidate& kill : kills) {
    Application& app = workload.apps[kill.app_idx];
    if (app.cancelled) continue;
    if (kill.time >= app.end) continue;   // run already over / already dead
    if (kill.time < app.start) continue;  // defensive; should not happen

    app.end = std::max(app.start + Duration(1), kill.time);
    app.truth = AppOutcome::kSystemFailure;
    if (kill.node_down) {
      app.alps_node_failure = true;
      app.exit_signal = kSigKill;
      app.exit_code = 128 + kSigKill;
    } else {
      app.exit_signal = 0;
      app.exit_code = kAppKillExitCodes[apply_rng.UniformInt(
          static_cast<std::uint64_t>(std::size(kAppKillExitCodes)))];
    }
    ++out.system_killed_apps;

    TruthRecord& rec = out.truth[app.apid];
    rec.apid = app.apid;
    rec.outcome = AppOutcome::kSystemFailure;
    rec.cause = kill.cause;
    rec.event_id = kill.event_id;
    rec.cause_detected = kill.detected;

    Job& job = workload.jobs[static_cast<std::size_t>(app.jobid - 1)];
    if (kill.node_down) {
      // The reservation lost a node: Torque tears the job down; any
      // aprun invocations the batch script had not reached never run.
      for (std::size_t idx : job.app_indices) {
        Application& later = workload.apps[idx];
        if (later.seq > app.seq && !later.cancelled) {
          later.cancelled = true;
          ++out.cancelled_apps;
        }
      }
      job.end = app.end + Duration(30);
      job.exit_status = -11;  // Torque's "node failure / requeue" family
    } else if (job.exit_status == 0) {
      job.exit_status = app.exit_code;
    }
  }

  // ---- ground truth for the remaining apps -------------------------------
  for (const Application& app : workload.apps) {
    if (app.cancelled) {
      out.truth.erase(app.apid);
      continue;
    }
    if (out.truth.contains(app.apid)) continue;
    TruthRecord rec;
    rec.apid = app.apid;
    rec.outcome = app.truth;
    out.truth.emplace(app.apid, rec);
  }

  std::sort(out.events.begin(), out.events.end(),
            [](const ErrorEvent& a, const ErrorEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.event_id < b.event_id;
            });

  LD_OBS_COUNTER_ADD(obs::names::kFaultsEventsInjectedTotal,
                     out.events.size());
  std::uint64_t undetected = 0;
  for (const ErrorEvent& ev : out.events) {
    if (!ev.detected) ++undetected;
  }
  LD_OBS_COUNTER_ADD(obs::names::kFaultsEventsUndetectedTotal, undetected);
  LD_OBS_COUNTER_ADD(obs::names::kFaultsKillsTotal, out.system_killed_apps);
  (void)horizon;
  return out;
}

}  // namespace ld
