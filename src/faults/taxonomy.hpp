// Error/failure taxonomy of the field study.
//
// Categories follow the Blue Waters error sources the paper correlates
// against application runs: machine checks and uncorrectable memory on
// compute blades, GPU double-bit ECC and Xid errors on XK nodes, Gemini
// high-speed-network failures, Lustre filesystem incidents, node
// heartbeat faults, and blade-level hardware faults.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "common/time.hpp"
#include "topology/machine.hpp"

namespace ld {

enum class ErrorCategory : std::uint8_t {
  kMachineCheck,   // CPU/cache machine-check exception
  kMemoryUE,       // uncorrectable DIMM error
  kGpuDbe,         // GPU double-bit ECC error (XK only)
  kGpuXid,         // GPU Xid software/hardware error (XK only)
  kGeminiLink,     // HSN link/LCB failure
  kLustre,         // filesystem incident (system-wide scope)
  kNodeHeartbeat,  // node stopped responding / crashed
  kBladeFault,     // blade controller or voltage fault (4-node blast)
  kKernelSoftware, // kernel panic / OS software failure
  kUnknown,        // attribution failed (LogDiver output only)
};

inline constexpr int kErrorCategoryCount = 10;

const char* ErrorCategoryName(ErrorCategory c);
Result<ErrorCategory> ParseErrorCategory(const std::string& name);

/// How severe a logged event is.  Only fatal-capable events are eligible
/// to be blamed for an application failure; "corrected" events are the
/// high-volume noise floor that the filtering stage must not attribute.
enum class Severity : std::uint8_t {
  kCorrected,  // recovered automatically; informational
  kDegraded,   // component impaired; service continued (e.g. failover)
  kFatal,      // component lost; anything running there is gone
};

const char* SeverityName(Severity s);
Result<Severity> ParseSeverity(const std::string& name);

/// Spatial blast radius of an event.
enum class Scope : std::uint8_t {
  kNode,    // one compute node
  kBlade,   // one blade: 4 nodes + 2 Gemini ASICs
  kSystem,  // machine-wide service (Lustre, site infrastructure)
};

const char* ScopeName(Scope s);

/// A ground-truth error event produced by the fault injector.  The
/// simulator knows everything; what reaches the logs is the subset with
/// `detected == true`, rendered by the emitters.
struct ErrorEvent {
  std::uint64_t event_id = 0;
  TimePoint time;
  ErrorCategory category = ErrorCategory::kUnknown;
  Severity severity = Severity::kCorrected;
  Scope scope = Scope::kNode;
  NodeIndex node = kInvalidNode;  // valid for node/blade scope
  /// Outage length for system-scope events (Lustre incident window).
  Duration outage{0};
  /// Whether the event produced any log line.  The XK detection gap
  /// (anchor A6) is modeled as a lower detection probability for
  /// GPU-side errors.
  bool detected = true;
};

}  // namespace ld
