// Dirty-log fault injection: the LogCorruptor mutates *rendered* log
// bundles the way real collection pipelines do — torn writes, bit rot in
// transit, replayed syslog segments, out-of-order delivery past any
// reasonable reorder slack, per-daemon clock skew, and lost rotation
// segments.
//
// Where the FaultInjector perturbs the *simulated machine* (and the logs
// faithfully describe the perturbed truth), the LogCorruptor perturbs
// the *logs themselves*, leaving the ground truth intact.  That split is
// what makes ingestion robustness scorable: run LogDiver over the
// corrupted bundle, score against the uncorrupted truth, and the
// accuracy drop is attributable to the corruption alone.  The ledger
// records exactly which operators fired how often per stream, so a
// campaign can assert "graceful" degradation rather than eyeball it.
//
// Layering: this lives in ld_faults, *below* simlog and logdiver, so it
// deliberately knows nothing about EmittedLogs or LogSource.  It speaks
// in stream dialects (which timestamp syntax to skew) and a bundle
// template that matches any struct with torque/alps/syslog/hwerr line
// vectors.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace ld {

/// The corruption operators, in the order they are applied to a stream.
/// Whole-stream operators (gap, duplication, reordering, skew) run before
/// the per-line byte mutations so a duplicated line can itself be torn.
enum class CorruptionOp : std::uint8_t {
  kRotationGap,  // a contiguous segment lost to rotation/transfer
  kDuplicate,    // replayed records (at-least-once log shipping)
  kReorder,      // delivery order breaks, beyond any reorder slack
  kTimeSkew,     // per-line clock jitter/regression between sources
  kTruncate,     // torn write: the line ends mid-record
  kGarble,       // byte corruption in transit or on disk
};
inline constexpr std::size_t kCorruptionOpCount = 6;
const char* CorruptionOpName(CorruptionOp op);

/// Timestamp dialect of a stream, so kTimeSkew can rewrite stamps
/// in-syntax (a skewed line must still parse; skew attacks *semantics*,
/// not syntax — kGarble attacks syntax).
enum class StreamDialect : std::uint8_t {
  kTorque,  // "MM/DD/YYYY HH:MM:SS;..." + authoritative epoch k=v fields
  kAlps,    // leading "YYYY-MM-DDTHH:MM:SS"
  kSyslog,  // leading "Mon dD HH:MM:SS" (no year)
  kHwerr,   // leading "<epoch>|"
};
inline constexpr std::size_t kStreamDialectCount = 4;
const char* StreamDialectName(StreamDialect dialect);

struct CorruptorConfig {
  /// Per-operator application rate in [0, 1]: the probability each line
  /// (or, for kRotationGap, the stream fraction) is hit by each enabled
  /// operator.  0 = identity regardless of the op set.
  double rate = 0.0;
  /// Operators to apply; empty = none.  AllOps() enables everything.
  std::vector<CorruptionOp> ops;
  /// kTimeSkew draws a nonzero offset uniformly in +/- this bound.  The
  /// default sits beyond the 5-minute reorder slack streaming callers
  /// typically grant, so skew is a real attack, not absorbed jitter.
  std::int64_t max_skew_seconds = 600;
  /// kDuplicate inserts the replayed copy, and kReorder displaces a
  /// line, at most this many positions away.
  std::size_t max_reorder_distance = 400;
  /// Calendar year for re-rendering skewed syslog stamps (the dialect
  /// carries no year of its own).
  int syslog_year = 2013;
};

/// What a corruption pass actually did: per-stream, per-operator hit
/// counts plus line totals.  This is the injector-side ground truth the
/// robustness campaign scores degradation against.
struct CorruptionLedger {
  std::uint64_t counts[kStreamDialectCount][kCorruptionOpCount] = {};
  std::uint64_t lines_in[kStreamDialectCount] = {};
  std::uint64_t lines_out[kStreamDialectCount] = {};

  std::uint64_t total(CorruptionOp op) const;
  std::uint64_t total() const;
  /// One row per stream with nonzero activity, for campaign reports.
  std::vector<std::string> Render() const;
};

class LogCorruptor {
 public:
  explicit LogCorruptor(CorruptorConfig config);

  /// Mutates `lines` in place.  Deterministic in (rng lineage,
  /// stream_name, config): each stream and each operator draw from
  /// independent forked substreams, so enabling one operator never
  /// changes where another one strikes.
  void CorruptStream(StreamDialect dialect, std::string_view stream_name,
                     std::vector<std::string>& lines, const Rng& rng,
                     CorruptionLedger* ledger = nullptr) const;

  /// Corrupts any bundle with torque/alps/syslog/hwerr line vectors
  /// (e.g. simlog's EmittedLogs) and returns the ledger.
  template <typename Bundle>
  CorruptionLedger CorruptBundle(Bundle& logs, const Rng& rng) const {
    CorruptionLedger ledger;
    CorruptStream(StreamDialect::kTorque, "torque", logs.torque, rng, &ledger);
    CorruptStream(StreamDialect::kAlps, "alps", logs.alps, rng, &ledger);
    CorruptStream(StreamDialect::kSyslog, "syslog", logs.syslog, rng, &ledger);
    CorruptStream(StreamDialect::kHwerr, "hwerr", logs.hwerr, rng, &ledger);
    return ledger;
  }

  static std::vector<CorruptionOp> AllOps();

  const CorruptorConfig& config() const { return config_; }

 private:
  CorruptorConfig config_;
};

}  // namespace ld
