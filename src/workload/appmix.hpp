// Named application-mix presets.
//
// The default generator samples sizes from calibrated *anonymous*
// buckets — the right model for population statistics, but the scenario
// catalog (docs/SCENARIOS.md) needs recognizable application classes
// with distinct I/O behaviour: a filesystem storm should hit an
// I/O-heavy mosaicking pipeline harder than a compute-bound MD run.
// An AppMixEntry names such a class; when WorkloadConfig::app_mix is
// non-empty, each planned job draws one entry by weight instead of the
// (partition, bucket) pair, carries the entry's name into the Torque
// job name, and inherits its `lustre_sensitivity` (the multiplier the
// injector's Lustre channels apply — see workload/types.hpp).
//
// The presets are modeled on well-known HPC/ML workloads (the classes
// the field study's workload tables name, not the actual codes): WRF
// (weather; frequent history/restart writes), NAMD (molecular dynamics;
// compute-bound), SPECFEM3D (seismic wave propagation at scale),
// Montage (mosaicking; I/O-dominated many-small-files), and ResNet/BERT
// style accelerator training (input-pipeline and checkpoint-heavy, XK
// partition).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ld {

struct AppMixEntry {
  const char* name;             // short slug; becomes the job-name stem
  bool xk;                      // partition
  std::uint32_t nodes_lo;       // inclusive node-count range
  std::uint32_t nodes_hi;
  double median_hours;          // lognormal median of run duration
  double weight;                // unnormalized selection weight
  double lustre_sensitivity;    // Lustre kill-probability multiplier
};

/// The I/O-heavy scenario mix (six classes, both partitions).
std::vector<AppMixEntry> IoHeavyMix();

/// Entry with the given name, or nullptr.
const AppMixEntry* FindMixEntry(const std::vector<AppMixEntry>& mix,
                                std::string_view name);

/// Weight-averaged lustre_sensitivity of the mix — the expected
/// population-level multiplier scenario validation checks against.
double MixMeanLustreSensitivity(const std::vector<AppMixEntry>& mix);

}  // namespace ld
