// Node allocation for the campaign simulator.
//
// A deliberately simple first-come-first-served allocator: each job asks
// for N nodes of one type at its arrival time; if the partition cannot
// supply them, the start is delayed until enough reservations release.
// Placement is a uniform random draw from the free set, which matches
// the "applications span arbitrary parts of the torus" reality that
// makes spatial correlation in LogDiver non-trivial.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "topology/machine.hpp"
#include "workload/types.hpp"

namespace ld {

class NodeAllocator {
 public:
  NodeAllocator(const Machine& machine, NodeType type);

  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(free_.size() + allocated_count_);
  }
  std::uint32_t free_count() const {
    return static_cast<std::uint32_t>(free_.size());
  }

  /// Allocates `count` nodes for [not-before, release_time).  Returns the
  /// node set and the actual start time (>= not_before; pushed later if
  /// the partition is full).  `hold` is the reservation length; release
  /// is start + hold.  Fails if count exceeds partition capacity.
  struct Allocation {
    TimePoint start;
    std::vector<NodeIndex> nodes;
  };
  Result<Allocation> Allocate(TimePoint not_before, Duration hold,
                              std::uint32_t count, Rng& rng);

 private:
  struct PendingRelease {
    TimePoint time;
    std::vector<NodeIndex> nodes;
    bool operator>(const PendingRelease& o) const { return time > o.time; }
  };

  void DrainReleases(TimePoint now);

  /// Start times are monotone (strict FCFS, no backfill): a job delayed
  /// by a full-machine drain holds everything behind it, exactly like a
  /// scheduler draining for a hero run.  This also guarantees physical
  /// consistency — no node ever hosts two reservations at once.
  TimePoint clock_;
  std::vector<NodeIndex> free_;
  std::size_t allocated_count_ = 0;
  std::priority_queue<PendingRelease, std::vector<PendingRelease>,
                      std::greater<PendingRelease>>
      releases_;
};

}  // namespace ld
