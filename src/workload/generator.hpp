// Synthetic campaign generator calibrated to the Blue Waters population.
//
// The field study measures 5M+ application runs over 518 production
// days.  This generator reproduces that population's *shape*: a
// heavy-tailed application size mix (most runs are small; a thin tail of
// full-machine "hero" runs), lognormal durations whose medians grow with
// scale (full-machine production runs are long), sequential aprun chains
// inside Torque jobs, Zipf-distributed users, and user-caused failures /
// walltime kills at realistic rates.  System-caused failures are NOT
// produced here — the fault injector overlays them afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "topology/machine.hpp"
#include "workload/appmix.hpp"
#include "workload/scheduler.hpp"
#include "workload/types.hpp"

namespace ld {

/// One bin of the application node-count mixture.
struct SizeBucket {
  std::uint32_t lo = 1;        // inclusive
  std::uint32_t hi = 1;        // inclusive
  double weight = 0.0;         // unnormalized selection weight
  double median_hours = 1.0;   // lognormal median of run duration
};

struct WorkloadConfig {
  TimePoint epoch = TimePoint::FromCalendar(2013, 4, 1);
  Duration campaign = Duration::Days(518);
  std::uint64_t target_app_runs = 5'000'000;
  /// Fraction of jobs that run on the XK (GPU) partition.
  double xk_job_fraction = 0.12;
  /// Mean aprun invocations per job (geometric, >= 1).
  double apps_per_job_mean = 4.0;
  std::uint32_t max_apps_per_job = 40;
  std::uint32_t user_count = 400;
  double user_zipf_alpha = 1.2;
  /// Per-application probability of an application-caused failure.
  double user_failure_prob = 0.055;
  /// Probability a job's walltime limit undercuts its intended work.
  double walltime_undercut_prob = 0.03;
  /// Lognormal sigma of run durations.  The heavy within-bucket duration
  /// tail matters: failure probability grows with exposure time, so
  /// failures select long runs — which is what makes failed runs consume
  /// a disproportionate share of node-hours (anchor A3).
  double duration_sigma = 1.35;
  /// Multiplies the selection weight of the two largest buckets of each
  /// partition; used by the scale-study benches to oversample full-scale
  /// runs (per-bucket failure-probability estimates stay unbiased).
  double large_bucket_boost = 1.0;
  /// Batch-scheduling policy.  FCFS reproduces the strict drain
  /// behaviour described in DESIGN.md; EASY backfill fills the drain
  /// bubbles (per-run failure statistics are schedule-independent).
  SchedulerPolicy scheduler_policy = SchedulerPolicy::kFcfs;
  /// Size/duration mixture; empty = calibrated Blue Waters defaults.
  std::vector<SizeBucket> xe_buckets;
  std::vector<SizeBucket> xk_buckets;

  /// Named application-mix presets (workload/appmix.hpp).  Empty (the
  /// default) keeps the anonymous bucket mixture and draws nothing
  /// extra, so calibrated campaigns stay bit-identical.  Non-empty:
  /// each job draws one entry by weight; the entry fixes partition,
  /// node-count range, duration median, job-name stem, and the job's
  /// lustre_sensitivity.
  std::vector<AppMixEntry> app_mix;

  /// Diurnal load modulation: arrival rate follows
  /// 1 + A*cos(2*pi*(hour - peak)/24).  0 (default) disables the
  /// channel entirely (no extra rng draws).
  double diurnal_amplitude = 0.0;
  int diurnal_peak_hour = 14;

  /// The calibrated default mixtures (also used when the vectors above
  /// are empty); exposed for tests and documentation.
  static std::vector<SizeBucket> DefaultXeBuckets();
  static std::vector<SizeBucket> DefaultXkBuckets();
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const Machine& machine, WorkloadConfig config);

  /// Generates the campaign.  Deterministic in (machine, config, rng seed).
  Result<Workload> Generate(Rng& rng) const;

  /// Offered load as a fraction of partition capacity (diagnostic; the
  /// allocator delays jobs if a burst exceeds free nodes).
  double OfferedUtilization(NodeType type) const;

  const WorkloadConfig& config() const { return config_; }

 private:
  const Machine& machine_;
  WorkloadConfig config_;
};

}  // namespace ld
