#include "workload/appmix.hpp"

namespace ld {

std::vector<AppMixEntry> IoHeavyMix() {
  // Sizes/durations are plausible for the named class on a Cray XE/XK
  // (and clamp to testbeds like every bucket mixture does); sensitivities
  // order the classes by I/O intensity: mosaicking > training input
  // pipelines > checkpoint-heavy weather > compute-bound solvers.
  return {
      {"wrf", /*xk=*/false, 32, 512, 2.0, 0.20, 2.2},
      {"namd", /*xk=*/false, 64, 1024, 4.0, 0.24, 0.8},
      {"specfem", /*xk=*/false, 256, 4096, 3.0, 0.06, 1.2},
      {"montage", /*xk=*/false, 1, 16, 0.5, 0.26, 3.0},
      {"resnet", /*xk=*/true, 8, 128, 6.0, 0.14, 2.5},
      {"bert", /*xk=*/true, 16, 256, 8.0, 0.10, 2.0},
  };
}

const AppMixEntry* FindMixEntry(const std::vector<AppMixEntry>& mix,
                                std::string_view name) {
  for (const AppMixEntry& e : mix) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

double MixMeanLustreSensitivity(const std::vector<AppMixEntry>& mix) {
  double wsum = 0.0, acc = 0.0;
  for (const AppMixEntry& e : mix) {
    wsum += e.weight;
    acc += e.weight * e.lustre_sensitivity;
  }
  return wsum > 0.0 ? acc / wsum : 1.0;
}

}  // namespace ld
