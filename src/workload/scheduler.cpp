#include "workload/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <set>

namespace ld {
namespace {

struct RunningJob {
  TimePoint end;          // actual completion (frees the nodes)
  TimePoint bounded_end;  // walltime-limit bound the scheduler plans with
  std::uint64_t serial = 0;
  std::vector<NodeIndex> nodes;
};

/// Running jobs ordered by their walltime bound, for shadow-time
/// computation; (bounded_end, serial) keys keep entries unique.
using BoundSet = std::set<std::tuple<TimePoint, std::uint64_t, std::uint32_t>>;

struct EndLater {
  bool operator()(const RunningJob& a, const RunningJob& b) const {
    return a.end > b.end;
  }
};

}  // namespace

const char* SchedulerPolicyName(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFcfs: return "fcfs";
    case SchedulerPolicy::kEasyBackfill: return "easy-backfill";
  }
  return "invalid";
}

Result<std::vector<Placement>> ScheduleJobs(const Machine& machine,
                                            NodeType partition,
                                            const std::vector<JobRequest>& jobs,
                                            SchedulerPolicy policy, Rng& rng,
                                            ScheduleStats* stats) {
  const std::uint32_t capacity =
      static_cast<std::uint32_t>(machine.nodes_of_type(partition).size());
  for (const JobRequest& job : jobs) {
    if (job.nodect == 0) {
      return InvalidArgumentError("ScheduleJobs: zero-node request");
    }
    if (job.nodect > capacity) {
      return OutOfRangeError("ScheduleJobs: request of " +
                             std::to_string(job.nodect) +
                             " exceeds partition capacity of " +
                             std::to_string(capacity));
    }
  }

  // Requests must be visited in arrival order; keep original indices.
  std::vector<std::size_t> arrival_order(jobs.size());
  for (std::size_t i = 0; i < arrival_order.size(); ++i) arrival_order[i] = i;
  std::stable_sort(arrival_order.begin(), arrival_order.end(),
                   [&jobs](std::size_t a, std::size_t b) {
                     return jobs[a].arrival < jobs[b].arrival;
                   });

  std::vector<Placement> placements(jobs.size());
  std::vector<NodeIndex> free = machine.nodes_of_type(partition);
  std::priority_queue<RunningJob, std::vector<RunningJob>, EndLater> running;
  BoundSet bounds;  // (bounded_end, serial, nodect) of running jobs
  std::uint64_t next_serial = 0;
  std::deque<std::size_t> queue;  // job indices waiting, arrival order
  std::size_t next_arrival = 0;

  ScheduleStats local;
  local.jobs = jobs.size();
  double wait_sum_hours = 0.0;
  double busy_node_hours = 0.0;
  TimePoint span_lo, span_hi;
  bool have_span = false;

  auto start_job = [&](std::size_t idx, TimePoint now) {
    const JobRequest& job = jobs[idx];
    Placement& placement = placements[idx];
    placement.start = now;
    placement.nodes.reserve(job.nodect);
    for (std::uint32_t i = 0; i < job.nodect; ++i) {
      const std::size_t pick = rng.UniformInt(free.size());
      placement.nodes.push_back(free[pick]);
      free[pick] = free.back();
      free.pop_back();
    }
    RunningJob run;
    run.end = now + job.hold;
    run.bounded_end = now + std::max(job.walltime_limit, job.hold);
    run.nodes = placement.nodes;
    run.serial = next_serial++;
    bounds.emplace(run.bounded_end, run.serial, job.nodect);
    running.push(std::move(run));

    const double wait = (now - job.arrival).hours();
    wait_sum_hours += wait;
    local.max_wait_hours = std::max(local.max_wait_hours, wait);
    busy_node_hours += job.hold.hours() * static_cast<double>(job.nodect);
    if (!have_span) {
      span_lo = job.arrival;
      span_hi = now + job.hold;
      have_span = true;
    } else {
      span_lo = std::min(span_lo, job.arrival);
      span_hi = std::max(span_hi, now + job.hold);
    }
  };

  // Starts whatever the policy allows at time `now`.
  auto dispatch = [&](TimePoint now) {
    // FCFS portion: start in order while the head fits.
    while (!queue.empty() && jobs[queue.front()].nodect <= free.size()) {
      start_job(queue.front(), now);
      queue.pop_front();
    }
    if (queue.empty() || policy != SchedulerPolicy::kEasyBackfill) return;

    // EASY: reserve the head at the shadow time, backfill behind it.
    const JobRequest& head = jobs[queue.front()];
    // Guaranteed-free accumulation over running jobs by bounded end.
    std::size_t avail = free.size();
    TimePoint shadow = now;
    for (const auto& [bounded_end, serial, nodect] : bounds) {
      if (avail >= head.nodect) break;
      avail += nodect;
      shadow = bounded_end;
    }
    if (avail < head.nodect) return;  // cannot happen (capacity checked)
    // Nodes beyond the head's need at the shadow instant.
    const std::size_t extra = avail - head.nodect;

    for (std::size_t qi = 1; qi < queue.size();) {
      const std::size_t idx = queue[qi];
      const JobRequest& candidate = jobs[idx];
      const bool fits_now = candidate.nodect <= free.size();
      const bool ends_before_shadow =
          now + std::max(candidate.walltime_limit, candidate.hold) <= shadow;
      const bool within_spare = candidate.nodect <= extra;
      if (fits_now && (ends_before_shadow || within_spare)) {
        start_job(idx, now);
        ++local.backfilled;
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(qi));
        // The reservation math is conservative: re-deriving shadow after
        // each backfill only shrinks the opportunity, so keep it fixed
        // for this dispatch round (standard EASY behaviour).
      } else {
        ++qi;
      }
    }
  };

  while (next_arrival < arrival_order.size() || !queue.empty()) {
    // Next event time: the earlier of next arrival and next completion.
    TimePoint now;
    const bool arrivals_left = next_arrival < arrival_order.size();
    if (!queue.empty()) {
      // Jobs are waiting: they can only start on a completion, but new
      // arrivals still enter the queue in between.
      if (running.empty()) {
        // Nothing running and head does not fit: impossible given the
        // capacity check, unless the queue head simply fits — dispatch
        // handles it.  Guard against livelock.
        now = arrivals_left ? jobs[arrival_order[next_arrival]].arrival
                            : TimePoint(0);
      } else if (arrivals_left &&
                 jobs[arrival_order[next_arrival]].arrival <
                     running.top().end) {
        now = jobs[arrival_order[next_arrival]].arrival;
      } else {
        now = running.top().end;
      }
    } else {
      now = jobs[arrival_order[next_arrival]].arrival;
    }

    // Retire completions due by `now`.
    while (!running.empty() && running.top().end <= now) {
      const RunningJob& done = running.top();
      free.insert(free.end(), done.nodes.begin(), done.nodes.end());
      bounds.erase({done.bounded_end, done.serial,
                    static_cast<std::uint32_t>(done.nodes.size())});
      running.pop();
    }
    // Admit arrivals due by `now`.
    while (next_arrival < arrival_order.size() &&
           jobs[arrival_order[next_arrival]].arrival <= now) {
      queue.push_back(arrival_order[next_arrival]);
      ++next_arrival;
    }
    dispatch(now);

    // If the queue is still blocked and no arrivals remain, fast-forward
    // through completions.
    if (!queue.empty() && next_arrival >= arrival_order.size() &&
        running.empty()) {
      return InternalError("ScheduleJobs: scheduler livelock");
    }
  }

  if (stats != nullptr) {
    local.mean_wait_hours =
        jobs.empty() ? 0.0
                     : wait_sum_hours / static_cast<double>(jobs.size());
    const double span_hours = have_span ? (span_hi - span_lo).hours() : 0.0;
    local.utilization =
        span_hours > 0.0
            ? busy_node_hours / (span_hours * static_cast<double>(capacity))
            : 0.0;
    *stats = local;
  }
  return placements;
}

}  // namespace ld
