#include "workload/types.hpp"

#include "common/status.hpp"

namespace ld {

const char* AppOutcomeName(AppOutcome outcome) {
  switch (outcome) {
    case AppOutcome::kSuccess: return "success";
    case AppOutcome::kUserFailure: return "user_failure";
    case AppOutcome::kSystemFailure: return "system_failure";
    case AppOutcome::kWalltime: return "walltime";
    case AppOutcome::kUnknown: return "unknown";
  }
  return "invalid";
}

const Job& Workload::job_of(const Application& app) const {
  // Jobs are stored in jobid order and jobids are dense from 1.
  LD_CHECK(app.jobid >= 1 && app.jobid <= jobs.size(),
           "application references unknown job");
  const Job& job = jobs[static_cast<std::size_t>(app.jobid - 1)];
  LD_CHECK(job.jobid == app.jobid, "job table out of order");
  return job;
}

double Workload::TotalNodeHours() const {
  double total = 0.0;
  for (const Application& app : apps) {
    total += app.NodeHours(job_of(app).nodect());
  }
  return total;
}

}  // namespace ld
