#include "workload/swf.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/strings.hpp"

namespace ld {

Result<Workload> ImportSwf(const std::vector<std::string>& lines,
                           const Machine& machine,
                           const SwfImportConfig& config, Rng& rng,
                           SwfImportStats* stats) {
  SwfImportStats local;
  if (config.cores_per_node == 0) {
    return InvalidArgumentError("ImportSwf: cores_per_node must be > 0");
  }
  const auto& partition = machine.nodes_of_type(config.node_type);
  if (partition.empty()) {
    return InvalidArgumentError("ImportSwf: empty target partition");
  }

  Workload wl;
  for (const std::string& line : lines) {
    ++local.lines;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == ';') {
      ++local.comments;
      continue;
    }
    const auto fields = SplitWhitespace(trimmed);
    if (fields.size() < 12) {
      ++local.malformed;
      continue;
    }
    const auto job_number = ParseInt(fields[0]);
    const auto submit = ParseInt(fields[1]);
    const auto wait = ParseInt(fields[2]);
    const auto run = ParseInt(fields[3]);
    const auto procs = ParseInt(fields[4]);
    const auto status = ParseInt(fields[10]);
    const auto requested = ParseInt(fields[8]);
    const auto user = ParseInt(fields[11]);
    if (!job_number.ok() || !submit.ok() || !wait.ok() || !run.ok() ||
        !procs.ok() || !status.ok()) {
      ++local.malformed;
      continue;
    }
    if (*run <= 0 || *procs <= 0) {
      ++local.skipped;  // cancelled before start, or bogus row
      continue;
    }

    std::uint32_t nodect = static_cast<std::uint32_t>(
        (*procs + config.cores_per_node - 1) / config.cores_per_node);
    if (nodect > partition.size()) {
      if (!config.clamp_oversized) {
        ++local.skipped;
        continue;
      }
      nodect = static_cast<std::uint32_t>(partition.size());
      ++local.clamped;
    }

    Job job;
    job.jobid = static_cast<JobId>(wl.jobs.size() + 1);
    job.user = user.ok() && *user > 0 ? static_cast<UserId>(*user) : 0;
    char uname[16];
    std::snprintf(uname, sizeof(uname), "u%04u", job.user);
    job.user_name = uname;
    job.queue = "normal";
    char jname[32];
    std::snprintf(jname, sizeof(jname), "swf_%lld",
                  static_cast<long long>(*job_number));
    job.job_name = jname;
    job.node_type = config.node_type;
    job.submit = config.epoch + Duration(std::max<std::int64_t>(0, *submit));
    job.start = job.submit + Duration(std::max<std::int64_t>(0, *wait));
    job.end = job.start + Duration(*run) + Duration(30);
    job.walltime_limit = requested.ok() && *requested > 0
                             ? Duration(*requested)
                             : Duration(*run * 2);

    // Random placement over the partition (sampling without replacement
    // via partial shuffle of a scratch copy).
    std::vector<NodeIndex> pool = partition;
    job.nodes.reserve(nodect);
    for (std::uint32_t i = 0; i < nodect; ++i) {
      const std::size_t pick =
          i + static_cast<std::size_t>(rng.UniformInt(pool.size() - i));
      std::swap(pool[i], pool[pick]);
      job.nodes.push_back(pool[i]);
    }

    Application app;
    app.apid = 0;  // renumbered below
    app.jobid = job.jobid;
    app.seq = 0;
    app.start = job.start;
    app.end = job.start + Duration(*run);
    // SWF status: 1 = completed; 0/5 = failed/cancelled mid-run.
    if (*status == 1) {
      app.truth = AppOutcome::kSuccess;
    } else {
      app.truth = AppOutcome::kUserFailure;
      app.exit_code = 1;
      job.exit_status = 1;
    }
    wl.apps.push_back(app);
    job.app_indices.push_back(wl.apps.size() - 1);
    wl.jobs.push_back(std::move(job));
    ++local.jobs;
  }

  // Assign monotone apids by start time, matching ALPS behaviour.
  std::vector<std::size_t> order(wl.apps.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&wl](std::size_t a, std::size_t b) {
    if (wl.apps[a].start != wl.apps[b].start) {
      return wl.apps[a].start < wl.apps[b].start;
    }
    return a < b;
  });
  ApId next_apid = 100000;
  for (std::size_t idx : order) wl.apps[idx].apid = next_apid++;

  if (stats != nullptr) *stats = local;
  if (wl.jobs.empty()) {
    return InvalidArgumentError("ImportSwf: trace contained no usable jobs");
  }
  return wl;
}

Result<Workload> ImportSwfFile(const std::string& path, const Machine& machine,
                               const SwfImportConfig& config, Rng& rng,
                               SwfImportStats* stats) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return ImportSwf(lines, machine, config, rng, stats);
}

}  // namespace ld
