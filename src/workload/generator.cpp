#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>

#include "workload/scheduler.hpp"

namespace ld {
namespace {

// Signals used for application-caused aborts (SIGABRT, SIGSEGV, SIGFPE,
// SIGBUS) and their rough relative frequencies in the field.
struct UserFailureMode {
  int exit_code;
  int signal;
  double weight;
};
constexpr UserFailureMode kUserFailureModes[] = {
    {1, 0, 0.35},    // application returned nonzero
    {2, 0, 0.08},
    {255, 0, 0.12},  // MPI abort convention
    {134, 6, 0.18},  // SIGABRT
    {139, 11, 0.22}, // SIGSEGV
    {136, 8, 0.03},  // SIGFPE
    {135, 7, 0.02},  // SIGBUS
};

constexpr int kSigTerm = 15;

double BucketMeanNodes(const SizeBucket& b) {
  return 0.5 * (static_cast<double>(b.lo) + static_cast<double>(b.hi));
}

}  // namespace

std::vector<SizeBucket> WorkloadConfig::DefaultXeBuckets() {
  // Calibrated so that offered load is ~75% of the XE partition over the
  // campaign and the large-scale tail is thin but non-empty (a few
  // hundred full-machine runs out of 5M), matching the field study's
  // population shape.  Medians grow with scale: full-machine production
  // runs are long "hero" runs — this is what produces the dramatic
  // failure-probability blowup at scale (anchor A4).
  return {
      {1, 1, 0.40, 0.25},
      {2, 8, 0.30, 0.40},
      {9, 64, 0.15, 0.50},
      {65, 512, 0.02, 0.80},
      {513, 2048, 0.002, 1.50},
      {2049, 8192, 0.0007, 2.20},
      // Large-scale *test* runs are short (capability scaling tests),
      // while full-machine hero runs are long production runs; this
      // duration asymmetry is what produces the 20x failure-probability
      // blowup between the 10k and 22k buckets (anchor A4).
      {8193, 16384, 0.00025, 0.10},
      {16385, 22640, 0.00010, 6.00},
  };
}

std::vector<SizeBucket> WorkloadConfig::DefaultXkBuckets() {
  return {
      {1, 1, 0.38, 0.25},
      {2, 8, 0.30, 0.40},
      {9, 64, 0.18, 0.50},
      {65, 256, 0.04, 0.70},
      {257, 1024, 0.01, 0.90},
      {1025, 2048, 0.003, 1.00},
      {2049, 3500, 0.0012, 0.40},
      {3501, 4224, 0.0004, 3.50},
  };
}

WorkloadGenerator::WorkloadGenerator(const Machine& machine,
                                     WorkloadConfig config)
    : machine_(machine), config_(std::move(config)) {
  if (config_.xe_buckets.empty()) {
    config_.xe_buckets = WorkloadConfig::DefaultXeBuckets();
  }
  if (config_.xk_buckets.empty()) {
    config_.xk_buckets = WorkloadConfig::DefaultXkBuckets();
  }
  // Clamp bucket bounds to the machine at hand so small testbeds work
  // with the default mixture.
  auto clamp = [](std::vector<SizeBucket>& buckets, std::uint32_t cap) {
    std::vector<SizeBucket> kept;
    for (SizeBucket b : buckets) {
      if (b.lo > cap) continue;
      b.hi = std::min(b.hi, cap);
      kept.push_back(b);
    }
    buckets = std::move(kept);
  };
  clamp(config_.xe_buckets, machine_.xe_count());
  clamp(config_.xk_buckets, machine_.xk_count());
  LD_CHECK(!config_.xe_buckets.empty() || !config_.xk_buckets.empty(),
           "no feasible size buckets for this machine");
  // Clamp app-mix entries the same way; entries whose partition does not
  // exist on this machine are dropped.
  if (!config_.app_mix.empty()) {
    std::vector<AppMixEntry> kept;
    for (AppMixEntry e : config_.app_mix) {
      const std::uint32_t cap =
          e.xk ? machine_.xk_count() : machine_.xe_count();
      if (e.nodes_lo > cap || cap == 0) continue;
      e.nodes_hi = std::min(e.nodes_hi, cap);
      kept.push_back(e);
    }
    config_.app_mix = std::move(kept);
    LD_CHECK(!config_.app_mix.empty(),
             "no feasible app-mix entries for this machine");
  }
  // Scale-study oversampling of the two largest buckets.
  if (config_.large_bucket_boost != 1.0) {
    for (auto* buckets : {&config_.xe_buckets, &config_.xk_buckets}) {
      const std::size_t n = buckets->size();
      for (std::size_t i = n >= 2 ? n - 2 : 0; i < n; ++i) {
        (*buckets)[i].weight *= config_.large_bucket_boost;
      }
    }
  }
}

double WorkloadGenerator::OfferedUtilization(NodeType type) const {
  const auto& buckets =
      type == NodeType::kXK ? config_.xk_buckets : config_.xe_buckets;
  const double type_fraction = type == NodeType::kXK
                                   ? config_.xk_job_fraction
                                   : 1.0 - config_.xk_job_fraction;
  double wsum = 0.0, load = 0.0;
  for (const SizeBucket& b : buckets) {
    wsum += b.weight;
    // Lognormal mean = median * exp(sigma^2 / 2).
    const double mean_hours =
        b.median_hours *
        std::exp(0.5 * config_.duration_sigma * config_.duration_sigma);
    load += b.weight * BucketMeanNodes(b) * mean_hours;
  }
  if (wsum <= 0.0) return 0.0;
  const double per_app_node_hours = load / wsum;
  const double apps = static_cast<double>(config_.target_app_runs) * type_fraction;
  const double capacity_node_hours =
      static_cast<double>(machine_.nodes_of_type(type).size()) *
      config_.campaign.hours();
  return apps * per_app_node_hours / capacity_node_hours;
}

Result<Workload> WorkloadGenerator::Generate(Rng& rng) const {
  if (config_.target_app_runs == 0) {
    return InvalidArgumentError("target_app_runs must be > 0");
  }
  if (config_.apps_per_job_mean < 1.0) {
    return InvalidArgumentError("apps_per_job_mean must be >= 1");
  }

  Workload wl;
  wl.jobs.reserve(static_cast<std::size_t>(
      static_cast<double>(config_.target_app_runs) / config_.apps_per_job_mean));
  wl.apps.reserve(config_.target_app_runs);

  ZipfSampler user_sampler(config_.user_count, config_.user_zipf_alpha);

  std::vector<double> xe_weights, xk_weights;
  for (const auto& b : config_.xe_buckets) xe_weights.push_back(b.weight);
  for (const auto& b : config_.xk_buckets) xk_weights.push_back(b.weight);
  std::vector<double> mix_weights;
  for (const auto& e : config_.app_mix) mix_weights.push_back(e.weight);

  // Job arrivals: Poisson with the rate that lands target_app_runs over
  // the campaign.  The *effective* chain length is shorter than the
  // geometric mean because a user failure aborts the batch script:
  // app i exists iff the previous i-1 apps continued AND succeeded, so
  // E[len] = (1 - (q*s)^max) / (1 - q*s) with q = continue prob and
  // s = per-app survival prob.
  const double p_extra_app = 1.0 / config_.apps_per_job_mean;  // geometric
  const double qs =
      (1.0 - p_extra_app) * (1.0 - config_.user_failure_prob);
  const double effective_chain =
      qs < 1.0 ? (1.0 - std::pow(qs, config_.max_apps_per_job)) / (1.0 - qs)
               : static_cast<double>(config_.max_apps_per_job);
  const double jobs_target =
      static_cast<double>(config_.target_app_runs) / effective_chain;
  const double arrival_rate =
      jobs_target / static_cast<double>(config_.campaign.seconds());

  // ---- phase 1: plan jobs (arrivals, sizes, chains, walltimes) --------
  struct PlannedApp {
    std::int64_t duration;
    bool user_fail;
    int exit_code;
    int signal;
  };
  struct JobPlan {
    TimePoint submit;
    bool is_xk;
    std::uint32_t nodect;
    std::vector<PlannedApp> apps;
    std::int64_t walltime;
    std::int64_t hold;
    UserId user;
    std::string queue;
    const AppMixEntry* mix = nullptr;  // into config_.app_mix, or null
  };
  std::vector<JobPlan> plans;
  double arrival_clock = 0.0;
  std::uint64_t planned_apps = 0;

  // Diurnal modulation by Poisson thinning: draw arrivals at the peak
  // rate, then accept each with prob lambda(t)/lambda_max.  Amplitude 0
  // takes the unmodulated path with no extra draws.
  const double diurnal_amp = std::clamp(config_.diurnal_amplitude, 0.0, 1.0);
  const double plan_rate = arrival_rate * (1.0 + diurnal_amp);

  while (planned_apps < config_.target_app_runs) {
    arrival_clock += rng.Exponential(plan_rate);
    if (arrival_clock >= static_cast<double>(config_.campaign.seconds())) {
      break;  // campaign window exhausted
    }
    if (diurnal_amp > 0.0) {
      const double hour = std::fmod(arrival_clock / 3600.0, 24.0);
      const double lambda_frac =
          (1.0 + diurnal_amp *
                     std::cos(2.0 * std::numbers::pi *
                              (hour - static_cast<double>(
                                          config_.diurnal_peak_hour)) /
                              24.0)) /
          (1.0 + diurnal_amp);
      if (rng.UniformDouble() >= lambda_frac) continue;
    }
    JobPlan job_plan;
    job_plan.submit =
        config_.epoch + Duration(static_cast<std::int64_t>(arrival_clock));

    bool is_xk;
    double median_hours;
    std::uint32_t nodect;
    if (!config_.app_mix.empty()) {
      const AppMixEntry& entry = config_.app_mix[rng.WeightedIndex(mix_weights)];
      job_plan.mix = &entry;
      is_xk = entry.xk;
      median_hours = entry.median_hours;
      nodect = static_cast<std::uint32_t>(
          rng.UniformInt(static_cast<std::int64_t>(entry.nodes_lo),
                         static_cast<std::int64_t>(entry.nodes_hi)));
    } else {
      is_xk = !xk_weights.empty() &&
              (xe_weights.empty() || rng.Bernoulli(config_.xk_job_fraction));
      const auto& buckets = is_xk ? config_.xk_buckets : config_.xe_buckets;
      const auto& weights = is_xk ? xk_weights : xe_weights;
      const SizeBucket& bucket = buckets[rng.WeightedIndex(weights)];
      median_hours = bucket.median_hours;
      nodect = static_cast<std::uint32_t>(
          rng.UniformInt(static_cast<std::int64_t>(bucket.lo),
                         static_cast<std::int64_t>(bucket.hi)));
    }
    job_plan.is_xk = is_xk;
    job_plan.nodect = nodect;

    // Plan the aprun chain: intended durations, user failures.
    std::uint32_t app_count = 1;
    while (app_count < config_.max_apps_per_job &&
           rng.Bernoulli(1.0 - p_extra_app)) {
      ++app_count;
    }
    const double mu = std::log(median_hours * 3600.0);
    std::int64_t total_runtime = 0;
    for (std::uint32_t i = 0; i < app_count; ++i) {
      double secs = rng.LogNormal(mu, config_.duration_sigma);
      secs = std::clamp(secs, 10.0, 24.0 * 3600.0);
      PlannedApp app{static_cast<std::int64_t>(secs), false, 0, 0};
      if (rng.Bernoulli(config_.user_failure_prob)) {
        app.user_fail = true;
        app.duration = std::max<std::int64_t>(
            5, static_cast<std::int64_t>(
                   static_cast<double>(app.duration) *
                   rng.UniformDouble(0.02, 0.95)));
        std::vector<double> mode_weights;
        for (const auto& m : kUserFailureModes) mode_weights.push_back(m.weight);
        const auto& mode = kUserFailureModes[rng.WeightedIndex(mode_weights)];
        app.exit_code = mode.exit_code;
        app.signal = mode.signal;
      }
      total_runtime += app.duration + 30;  // inter-aprun script time
      job_plan.apps.push_back(app);
      if (app.user_fail) break;  // batch script aborts on failure
    }
    planned_apps += job_plan.apps.size();

    // Walltime limit: normally generous; occasionally undercuts the work.
    if (rng.Bernoulli(config_.walltime_undercut_prob)) {
      job_plan.walltime = std::max<std::int64_t>(
          60, static_cast<std::int64_t>(static_cast<double>(total_runtime) *
                                        rng.UniformDouble(0.40, 0.95)));
    } else {
      job_plan.walltime = static_cast<std::int64_t>(
          static_cast<double>(total_runtime) * rng.UniformDouble(1.10, 3.00));
      job_plan.walltime =
          std::clamp<std::int64_t>(job_plan.walltime, 900, 48 * 3600);
    }
    job_plan.hold = std::min(total_runtime, job_plan.walltime) + 60;
    job_plan.user = static_cast<UserId>(user_sampler.Sample(rng));
    job_plan.queue = nodect <= 8 && rng.Bernoulli(0.08) ? "debug"
                     : rng.Bernoulli(0.15)              ? "high"
                                                        : "normal";
    plans.push_back(std::move(job_plan));
  }

  // ---- phase 2: schedule each partition ---------------------------------
  std::vector<JobRequest> xe_requests, xk_requests;
  std::vector<std::size_t> xe_plan_idx, xk_plan_idx;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    JobRequest request;
    request.arrival = plans[i].submit;
    request.nodect = plans[i].nodect;
    request.hold = Duration(plans[i].hold);
    request.walltime_limit = Duration(plans[i].walltime);
    if (plans[i].is_xk) {
      xk_requests.push_back(request);
      xk_plan_idx.push_back(i);
    } else {
      xe_requests.push_back(request);
      xe_plan_idx.push_back(i);
    }
  }
  std::vector<Placement> placements(plans.size());
  for (const auto& [requests, idx, type] :
       {std::tuple{&xe_requests, &xe_plan_idx, NodeType::kXE},
        std::tuple{&xk_requests, &xk_plan_idx, NodeType::kXK}}) {
    if (requests->empty()) continue;
    auto scheduled = ScheduleJobs(machine_, type, *requests,
                                  config_.scheduler_policy, rng);
    if (!scheduled.ok()) return scheduled.status();
    for (std::size_t k = 0; k < idx->size(); ++k) {
      placements[(*idx)[k]] = std::move((*scheduled)[k]);
    }
  }

  // ---- phase 3: materialize jobs and application runs -------------------
  std::uint64_t next_jobid = 1;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const JobPlan& job_plan = plans[i];
    Job job;
    job.jobid = next_jobid++;
    job.user = job_plan.user;
    char uname[16];
    std::snprintf(uname, sizeof(uname), "u%04u", job.user);
    job.user_name = uname;
    job.queue = job_plan.queue;
    char jname[24];
    if (job_plan.mix != nullptr) {
      std::snprintf(jname, sizeof(jname), "%s_%llu", job_plan.mix->name,
                    static_cast<unsigned long long>(job.jobid % 9973));
      job.lustre_sensitivity = job_plan.mix->lustre_sensitivity;
    } else {
      std::snprintf(jname, sizeof(jname), "run_%c%llu",
                    job_plan.is_xk ? 'k' : 'e',
                    static_cast<unsigned long long>(job.jobid % 9973));
    }
    job.job_name = jname;
    job.node_type = job_plan.is_xk ? NodeType::kXK : NodeType::kXE;
    job.nodes = std::move(placements[i].nodes);
    job.submit = job_plan.submit;
    job.start = placements[i].start;
    job.walltime_limit = Duration(job_plan.walltime);

    // Materialize the chain, truncating at the walltime limit.
    TimePoint cursor = job.start;
    const TimePoint kill_at = job.start + Duration(job_plan.walltime);
    int job_exit = 0;
    for (const PlannedApp& planned : job_plan.apps) {
      if (cursor >= kill_at) break;
      Application app;
      app.apid = 0;  // assigned after global time-sort below
      app.jobid = job.jobid;
      app.seq = static_cast<std::uint32_t>(job.app_indices.size());
      app.start = cursor;
      TimePoint end = cursor + Duration(planned.duration);
      if (end > kill_at) {
        // Scheduler kills the job at the limit; the running aprun dies
        // with SIGTERM.  Torque records Exit_status=271 (256+15).
        app.end = kill_at;
        app.exit_signal = kSigTerm;
        app.exit_code = 128 + kSigTerm;
        app.truth = AppOutcome::kWalltime;
        job_exit = 271;
        wl.apps.push_back(app);
        job.app_indices.push_back(wl.apps.size() - 1);
        cursor = kill_at;
        break;
      }
      app.end = end;
      if (planned.user_fail) {
        app.exit_code = planned.exit_code;
        app.exit_signal = planned.signal;
        app.truth = AppOutcome::kUserFailure;
        job_exit = planned.exit_code;
      } else {
        app.truth = AppOutcome::kSuccess;
      }
      wl.apps.push_back(app);
      job.app_indices.push_back(wl.apps.size() - 1);
      cursor = end + Duration(30);
      if (planned.user_fail) break;
    }
    job.end = cursor;
    job.exit_status = job_exit;
    wl.jobs.push_back(std::move(job));
  }

  // ALPS apids increase monotonically with application start time on the
  // real system; renumber after the fact to match.
  std::vector<std::size_t> order(wl.apps.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&wl](std::size_t a, std::size_t b) {
    if (wl.apps[a].start != wl.apps[b].start) {
      return wl.apps[a].start < wl.apps[b].start;
    }
    return a < b;
  });
  ApId next_apid = 100000;  // realistic-looking starting apid
  for (std::size_t idx : order) wl.apps[idx].apid = next_apid++;

  return wl;
}

}  // namespace ld
