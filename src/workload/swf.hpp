// Standard Workload Format (SWF) import.
//
// SWF is the de-facto interchange format of the Parallel Workloads
// Archive: one job per line, 18 whitespace-separated fields, `;` header
// comments.  Importing a real trace lets a downstream user replay an
// actual machine's workload through the fault injector and LogDiver
// instead of the synthetic generator.
//
// Fields used (1-based SWF numbering):
//   1 job number        2 submit time (s)   3 wait time (s)
//   4 run time (s)      5 allocated processors
//   9 requested time (walltime limit)     12 user id
//   11 status (1 = completed OK, 0/5 = failed/cancelled)
// Remaining fields are ignored.  Processor counts are mapped to node
// counts with a configurable cores-per-node divisor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "topology/machine.hpp"
#include "workload/types.hpp"

namespace ld {

struct SwfImportConfig {
  /// Trace times are relative; they are anchored at this epoch.
  TimePoint epoch = TimePoint::FromCalendar(2013, 4, 1);
  /// Processors per node for the traced machine (SWF counts CPUs).
  std::uint32_t cores_per_node = 32;
  /// Partition the imported jobs run on.
  NodeType node_type = NodeType::kXE;
  /// Jobs larger than the partition are clamped (true) or rejected
  /// (false).
  bool clamp_oversized = true;
};

struct SwfImportStats {
  std::uint64_t lines = 0;
  std::uint64_t comments = 0;
  std::uint64_t jobs = 0;
  std::uint64_t skipped = 0;  // unusable rows (zero runtime/processors)
  std::uint64_t malformed = 0;
  std::uint64_t clamped = 0;
};

/// Parses an SWF trace into a Workload: one application per job, placed
/// on the machine with the same random-placement policy as the
/// generator.  Jobs are placed at their SWF start time (submit + wait);
/// node assignment is random among the partition's nodes and does NOT
/// enforce machine-wide occupancy consistency (real traces already
/// encode a feasible schedule for *their* machine, which may differ
/// from ours).  Failed-status jobs become user failures.
Result<Workload> ImportSwf(const std::vector<std::string>& lines,
                           const Machine& machine,
                           const SwfImportConfig& config, Rng& rng,
                           SwfImportStats* stats = nullptr);

/// Reads the file and imports it.
Result<Workload> ImportSwfFile(const std::string& path, const Machine& machine,
                               const SwfImportConfig& config, Rng& rng,
                               SwfImportStats* stats = nullptr);

}  // namespace ld
