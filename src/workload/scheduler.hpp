// Batch scheduler: turns job requests into start times and placements.
//
// Two policies:
//   kFcfs          — strict arrival order; a job that does not fit
//                    blocks everything behind it (a full-machine job
//                    drains the partition, as Torque without backfill).
//   kEasyBackfill  — EASY: the queue head gets a reservation at the
//                    earliest time enough nodes are *guaranteed* free
//                    (running jobs bounded by their walltime limits);
//                    later jobs may start out of order iff they fit now
//                    and cannot delay that reservation (they finish, by
//                    their own walltime bound, before the shadow time —
//                    or they use only nodes the reservation leaves
//                    spare).
//
// The engine is a discrete-event simulation over arrivals and
// completions; placement is a uniform random draw from the free set
// (node identity matters for fault correlation, not locality).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "topology/machine.hpp"

namespace ld {

enum class SchedulerPolicy : std::uint8_t { kFcfs, kEasyBackfill };

const char* SchedulerPolicyName(SchedulerPolicy policy);

/// One job's scheduling request.  `hold` is the actual occupancy
/// (known to the simulator, not the scheduler); `walltime_limit` is the
/// user-declared bound the scheduler plans with (hold <= limit + grace).
struct JobRequest {
  TimePoint arrival;
  std::uint32_t nodect = 0;
  Duration hold{0};
  Duration walltime_limit{0};
};

struct Placement {
  TimePoint start;
  std::vector<NodeIndex> nodes;
};

struct ScheduleStats {
  std::uint64_t jobs = 0;
  std::uint64_t backfilled = 0;  // started ahead of an older queued job
  double mean_wait_hours = 0.0;
  double max_wait_hours = 0.0;
  /// Busy node-hours divided by (span x partition size).
  double utilization = 0.0;
};

/// Schedules all requests on one partition.  Returns one placement per
/// request, in request order.  Fails if any request exceeds the
/// partition or has nodect == 0.
Result<std::vector<Placement>> ScheduleJobs(const Machine& machine,
                                            NodeType partition,
                                            const std::vector<JobRequest>& jobs,
                                            SchedulerPolicy policy, Rng& rng,
                                            ScheduleStats* stats = nullptr);

}  // namespace ld
