#include "workload/allocator.hpp"

#include <algorithm>
#include <utility>

namespace ld {

NodeAllocator::NodeAllocator(const Machine& machine, NodeType type)
    : free_(machine.nodes_of_type(type)) {}

void NodeAllocator::DrainReleases(TimePoint now) {
  while (!releases_.empty() && releases_.top().time <= now) {
    const auto& top = releases_.top();
    allocated_count_ -= top.nodes.size();
    free_.insert(free_.end(), top.nodes.begin(), top.nodes.end());
    releases_.pop();
  }
}

Result<NodeAllocator::Allocation> NodeAllocator::Allocate(TimePoint not_before,
                                                          Duration hold,
                                                          std::uint32_t count,
                                                          Rng& rng) {
  if (count == 0) return InvalidArgumentError("Allocate: zero nodes");
  if (count > capacity()) {
    return OutOfRangeError("Allocate: request of " + std::to_string(count) +
                           " exceeds partition capacity of " +
                           std::to_string(capacity()));
  }

  TimePoint start = std::max(not_before, clock_);
  DrainReleases(start);
  // Partition full: walk the release queue until enough nodes are back.
  while (free_.size() < count) {
    LD_CHECK(!releases_.empty(), "allocator accounting out of sync");
    start = std::max(start, releases_.top().time);
    DrainReleases(start);
  }

  Allocation alloc;
  alloc.start = start;
  alloc.nodes.reserve(count);
  // Uniform sample without replacement via swap-remove: O(1) per node.
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t pick = rng.UniformInt(free_.size());
    alloc.nodes.push_back(free_[pick]);
    free_[pick] = free_.back();
    free_.pop_back();
  }
  allocated_count_ += count;
  clock_ = start;
  releases_.push(PendingRelease{start + hold, alloc.nodes});
  return alloc;
}

}  // namespace ld
