// Workload model: Torque jobs and ALPS applications.
//
// The unit of analysis in the field study is the *application run*: one
// aprun invocation (identified by an ALPS apid) executing on a set of
// compute nodes inside a Torque job's reservation.  A job owns the node
// reservation for its whole lifetime; its applications run sequentially
// on those nodes — exactly the Torque+ALPS semantics on Blue Waters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "topology/machine.hpp"

namespace ld {

using JobId = std::uint64_t;
using ApId = std::uint64_t;
using UserId = std::uint32_t;

/// Outcome of an application run.  Used both for simulator ground truth
/// and for LogDiver's exit-status categorization, so the two can be
/// scored against each other.
enum class AppOutcome : std::uint8_t {
  kSuccess,        // exit 0
  kUserFailure,    // nonzero exit / signal caused by the application itself
  kSystemFailure,  // killed by a system error or failure
  kWalltime,       // killed by the scheduler at the walltime limit
  kUnknown,        // could not be determined (LogDiver only)
};

const char* AppOutcomeName(AppOutcome outcome);

struct Application {
  ApId apid = 0;
  JobId jobid = 0;
  std::uint32_t seq = 0;  // position within the job's aprun sequence
  TimePoint start;
  TimePoint end;
  int exit_code = 0;
  int exit_signal = 0;  // 0 = exited normally, else the fatal signal
  /// Set when ALPS itself observed the compute-node loss and recorded a
  /// "killed: node failure" event — definitive system evidence even when
  /// the underlying hardware error escaped the RAS logs.
  bool alps_node_failure = false;
  /// True if the run never happened (its job was torn down by an earlier
  /// system kill); cancelled runs appear in no log and no metric.
  bool cancelled = false;
  /// Ground truth assigned by the generator (success / user / walltime)
  /// and later overridden by the fault injector for system kills.
  AppOutcome truth = AppOutcome::kSuccess;

  Duration duration() const { return end - start; }
  /// Node-hours consumed, given the owning job's node count.
  double NodeHours(std::uint32_t nodect) const {
    return duration().hours() * static_cast<double>(nodect);
  }
};

struct Job {
  JobId jobid = 0;
  UserId user = 0;
  std::string user_name;
  std::string queue;
  std::string job_name;
  NodeType node_type = NodeType::kXE;
  std::vector<NodeIndex> nodes;  // the reservation; apps run on these
  TimePoint submit;
  TimePoint start;
  TimePoint end;
  Duration walltime_limit{0};
  int exit_status = 0;  // Torque accounting Exit_status
  std::vector<std::size_t> app_indices;  // indices into Workload::apps
  /// Multiplier on the Lustre-incident kill probability.  1.0 (default)
  /// is the calibrated size-independent exposure; app-mix presets raise
  /// it for I/O-heavy codes (see workload/appmix.hpp).
  double lustre_sensitivity = 1.0;

  std::uint32_t nodect() const {
    return static_cast<std::uint32_t>(nodes.size());
  }
};

/// A generated campaign: all jobs and application runs, time-ordered by
/// job start.  Applications are stored flat so the fault injector and
/// the emitters can iterate them without chasing per-job vectors.
struct Workload {
  std::vector<Job> jobs;
  std::vector<Application> apps;

  const Job& job_of(const Application& app) const;
  double TotalNodeHours() const;
};

}  // namespace ld
