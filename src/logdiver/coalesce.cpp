#include "logdiver/coalesce.hpp"

#include <algorithm>

#include "logdiver/columns.hpp"
#include "logdiver/snapshot.hpp"
#include "topology/cname.hpp"

namespace ld {
namespace {

/// Resolves a tuple's location string to the affected node set.
/// Returns false when the component is unknown on this machine.
bool ResolveNodes(const Machine& machine, LocScope scope,
                  std::string_view location, std::vector<NodeIndex>& out) {
  switch (scope) {
    case LocScope::kSystem:
      out.clear();  // empty = machine-wide
      return true;
    case LocScope::kNode: {
      auto idx = machine.FindByCname(std::string(location));
      if (!idx.ok()) return false;
      out = {*idx};
      return true;
    }
    case LocScope::kBlade: {
      // Location is a blade prefix "cX-YcCsS"; resolve all 4 node slots.
      out.clear();
      for (int nd = 0; nd < 4; ++nd) {
        auto idx = machine.FindByCname(std::string(location) + "n" +
                                       std::to_string(nd));
        if (idx.ok()) out.push_back(*idx);
      }
      return !out.empty();
    }
    case LocScope::kGemini: {
      // Location "cX-YcCsSg{P}": router P serves nodes 2P and 2P+1.
      const std::size_t g = location.rfind('g');
      if (g == std::string_view::npos || g + 1 >= location.size()) return false;
      const int pair = location[g + 1] - '0';
      if (pair < 0 || pair > 1) return false;
      const std::string blade(location.substr(0, g));
      out.clear();
      for (int nd = pair * 2; nd < pair * 2 + 2; ++nd) {
        auto idx = machine.FindByCname(blade + "n" + std::to_string(nd));
        if (idx.ok()) out.push_back(*idx);
      }
      return !out.empty();
    }
  }
  return false;
}

/// open_ key: the (category, location) identity packed into 64 bits.
/// Symbol ids are process-local and nondeterministic, which is fine
/// here — the key never leaves the process (snapshots re-derive it).
std::uint64_t OpenKey(ErrorCategory category, Symbol location) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(category))
          << 32) |
         location.id();
}

/// Window applied to a system incident whose recovery never arrived.
constexpr std::int64_t kDefaultIncidentSeconds = 1800;

void SortByFirst(std::vector<ErrorTuple>& tuples) {
  std::sort(tuples.begin(), tuples.end(),
            [](const ErrorTuple& a, const ErrorTuple& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.id < b.id;
            });
}

}  // namespace

Interval ErrorTuple::ImpactWindow() const {
  const TimePoint end = recovered.has_value() ? *recovered : last;
  return Interval{first, std::max(end, first) + Duration(1)};
}

StreamingCoalescer::StreamingCoalescer(const Machine& machine,
                                       CoalesceConfig config)
    : machine_(machine), config_(config) {
  // The open set tracks one tuple per actively-erroring (category,
  // location); a few hundred is a bad day.  Reserving ahead keeps the
  // per-record Add() from ever rehashing mid-stream.
  open_.reserve(256);
}

void StreamingCoalescer::Add(const ErrorRecord& record) {
  ++stats_.input_events;
  const std::uint64_t key = OpenKey(record.category, record.location);
  auto it = open_.find(key);
  if (it != open_.end()) {
    ErrorTuple& tuple = it->second;
    // An unrecovered system incident is ongoing by definition: error
    // reports and the eventual recovery line merge into it no matter how
    // long it lasts.
    const bool open_incident = tuple.scope == LocScope::kSystem &&
                               !tuple.recovered.has_value();
    const bool in_window =
        (record.time >= tuple.first - config_.tupling_window &&
         record.time <= tuple.last + config_.tupling_window) ||
        (open_incident &&
         record.time >= tuple.first - config_.tupling_window);
    if (in_window) {
      tuple.first = std::min(tuple.first, record.time);
      tuple.last = std::max(tuple.last, record.time);
      tuple.severity = std::max(tuple.severity, record.severity);
      tuple.count += 1;
      tuple.from_syslog |= record.source == LogSource::kSyslog;
      tuple.from_hwerr |= record.source == LogSource::kHwerr;
      if (record.recovered.has_value()) {
        tuple.recovered = tuple.recovered.has_value()
                              ? std::max(*tuple.recovered, *record.recovered)
                              : record.recovered;
      }
      return;
    }
    // The gap exceeded the window: the old tuple is complete.  Its map
    // slot is reused for the new burst below instead of paying an
    // erase + emplace on every displacement — displacements are the
    // common case (most bursts on a key are long over when the next
    // one starts).
    closed_.push_back(std::move(it->second));
  }
  ErrorTuple tuple;
  tuple.id = next_id_++;
  tuple.category = record.category;
  tuple.severity = record.severity;
  tuple.scope = record.scope;
  tuple.location = record.location;
  tuple.first = record.time;
  tuple.last = record.time;
  tuple.recovered = record.recovered;
  tuple.count = 1;
  tuple.from_syslog = record.source == LogSource::kSyslog;
  tuple.from_hwerr = record.source == LogSource::kHwerr;
  // Resolution is memoized per (scope, location): the same few thousand
  // component names recur across the whole log, and a cache hit replaces
  // the cname map lookups (and their string building) with a copy of a
  // short node list.
  const std::uint64_t resolve_key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(record.scope))
       << 32) |
      record.location.id();
  auto [cached, fresh] = resolve_cache_.try_emplace(resolve_key);
  if (fresh) {
    cached->second.ok = ResolveNodes(machine_, record.scope,
                                     record.location.view(),
                                     cached->second.nodes);
  }
  if (!cached->second.ok) {
    ++stats_.unresolved_locations;
    // component not on this machine: drop (and release the displaced
    // slot, if the record evicted one).
    if (it != open_.end()) open_.erase(it);
    return;
  }
  tuple.nodes = cached->second.nodes;
  if (it != open_.end()) {
    it->second = std::move(tuple);
  } else {
    open_.emplace(key, std::move(tuple));
  }
}

std::vector<ErrorTuple> StreamingCoalescer::Flush(TimePoint watermark) {
  std::vector<ErrorTuple> out = std::move(closed_);
  closed_.clear();
  for (auto it = open_.begin(); it != open_.end();) {
    ErrorTuple& tuple = it->second;
    const bool window_closed =
        tuple.last + config_.tupling_window < watermark;
    const bool incident_open = tuple.scope == LocScope::kSystem &&
                               !tuple.recovered.has_value();
    if (window_closed && !incident_open) {
      out.push_back(std::move(tuple));
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.tuples += out.size();
  SortByFirst(out);
  return out;
}

std::vector<ErrorTuple> StreamingCoalescer::FlushAll() {
  std::vector<ErrorTuple> out = std::move(closed_);
  closed_.clear();
  for (auto& [key, tuple] : open_) {
    if (tuple.scope == LocScope::kSystem && !tuple.recovered.has_value()) {
      tuple.recovered = tuple.first + Duration(kDefaultIncidentSeconds);
    }
    out.push_back(std::move(tuple));
  }
  open_.clear();
  stats_.tuples += out.size();
  SortByFirst(out);
  return out;
}

std::optional<TimePoint> StreamingCoalescer::EarliestOpenIncident() const {
  std::optional<TimePoint> earliest;
  for (const auto& [key, tuple] : open_) {
    if (tuple.scope != LocScope::kSystem || tuple.recovered.has_value()) {
      continue;
    }
    if (!earliest.has_value() || tuple.first < *earliest) {
      earliest = tuple.first;
    }
  }
  return earliest;
}

void StreamingCoalescer::MergeFrom(const StreamingCoalescer& other) {
  stats_.input_events += other.stats_.input_events;
  stats_.tuples += other.stats_.tuples;
  stats_.unresolved_locations += other.stats_.unresolved_locations;
  // Shift the other side's ids past ours: ids are 1-based, so offsetting
  // by next_id_ - 1 keeps the merged space dense and unique, and makes
  // the shift compose associatively across repeated merges.
  const std::uint64_t offset = next_id_ - 1;
  next_id_ += other.next_id_ - 1;
  closed_.reserve(closed_.size() + other.closed_.size());
  for (const ErrorTuple& tuple : other.closed_) {
    closed_.push_back(tuple);
    closed_.back().id += offset;
  }
  for (const auto& [key, theirs] : other.open_) {
    ErrorTuple shifted = theirs;
    shifted.id += offset;
    auto [it, inserted] = open_.emplace(key, std::move(shifted));
    if (inserted) continue;
    // Key collision: the partition was not key-disjoint.  Merge
    // conservatively rather than dropping either burst.
    ErrorTuple& mine = it->second;
    mine.id = std::min(mine.id, theirs.id + offset);
    mine.first = std::min(mine.first, theirs.first);
    mine.last = std::max(mine.last, theirs.last);
    mine.severity = std::max(mine.severity, theirs.severity);
    mine.count += theirs.count;
    mine.from_syslog |= theirs.from_syslog;
    mine.from_hwerr |= theirs.from_hwerr;
    if (theirs.recovered.has_value()) {
      mine.recovered = mine.recovered.has_value()
                           ? std::max(*mine.recovered, *theirs.recovered)
                           : theirs.recovered;
    }
  }
}

void StreamingCoalescer::SaveState(SnapshotWriter& w) const {
  w.U64(stats_.input_events);
  w.U64(stats_.tuples);
  w.U64(stats_.unresolved_locations);
  w.U64(next_id_);
  // The open map is unordered and its keys embed nondeterministic
  // symbol ids; serialize in (category, location string) order so the
  // snapshot bytes are a pure function of the analyzed stream.
  std::vector<const ErrorTuple*> open_sorted;
  open_sorted.reserve(open_.size());
  for (const auto& [key, tuple] : open_) open_sorted.push_back(&tuple);
  std::sort(open_sorted.begin(), open_sorted.end(),
            [](const ErrorTuple* a, const ErrorTuple* b) {
              if (a->category != b->category) return a->category < b->category;
              return a->location.view() < b->location.view();
            });
  w.U32(static_cast<std::uint32_t>(open_sorted.size()));
  for (const ErrorTuple* tuple : open_sorted) {
    w.I32(static_cast<std::int32_t>(tuple->category));
    w.Str(tuple->location.view());
    SaveErrorTuple(w, *tuple);
  }
  w.U32(static_cast<std::uint32_t>(closed_.size()));
  for (const ErrorTuple& tuple : closed_) SaveErrorTuple(w, tuple);
}

void StreamingCoalescer::LoadState(SnapshotReader& r) {
  stats_.input_events = r.U64();
  stats_.tuples = r.U64();
  stats_.unresolved_locations = r.U64();
  next_id_ = r.U64();
  open_.clear();
  const std::uint32_t open_count = r.U32();
  if (r.ok()) open_.reserve(std::max<std::uint32_t>(open_count, 256));
  for (std::uint32_t i = 0; i < open_count && r.ok(); ++i) {
    const auto cat = static_cast<ErrorCategory>(r.I32());
    const Symbol location = Intern(r.Str());
    ErrorTuple tuple;
    LoadErrorTuple(r, tuple);
    open_.emplace(OpenKey(cat, location), std::move(tuple));
  }
  closed_.clear();
  const std::uint32_t closed_count = r.U32();
  if (r.ok()) closed_.reserve(closed_count);
  for (std::uint32_t i = 0; i < closed_count && r.ok(); ++i) {
    ErrorTuple tuple;
    LoadErrorTuple(r, tuple);
    closed_.push_back(std::move(tuple));
  }
}

std::vector<ErrorTuple> CoalesceEvents(const Machine& machine,
                                       const ErrorColumns& records,
                                       const CoalesceConfig& config,
                                       CoalesceStats* stats) {
  // Sort keyed by (time, input index): streaming the dense int64 time
  // column instead of shuffling ~48-byte records, and — unlike the
  // unstable by-time record sort this replaced — fully deterministic on
  // equal timestamps, so the text-parse and bundle-cache paths assign
  // identical tuple ids.  The key is packed next to the index so the
  // sort's comparisons stay sequential instead of chasing the time
  // column through an index indirection.
  struct OrderKey {
    std::int64_t time;  // unix seconds, same key the column stores
    std::uint32_t index;
  };
  std::vector<OrderKey> order;
  order.reserve(records.size());
  for (std::uint32_t i = 0; i < records.size(); ++i) {
    order.push_back(OrderKey{records.time[i], i});
  }
  std::sort(order.begin(), order.end(),
            [](const OrderKey& a, const OrderKey& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.index < b.index;
            });
  StreamingCoalescer coalescer(machine, config);
  for (const OrderKey& key : order) coalescer.Add(records.Row(key.index));
  std::vector<ErrorTuple> out = coalescer.FlushAll();
  if (stats != nullptr) *stats = coalescer.stats();
  return out;
}

std::vector<ErrorTuple> CoalesceEvents(const Machine& machine,
                                       std::vector<ErrorRecord> records,
                                       const CoalesceConfig& config,
                                       CoalesceStats* stats) {
  return CoalesceEvents(machine, ErrorColumns::FromRecords(records), config,
                        stats);
}

}  // namespace ld
