#include "logdiver/records.hpp"

#include "common/strings.hpp"

namespace ld {

const char* LocScopeName(LocScope s) {
  switch (s) {
    case LocScope::kNode: return "node";
    case LocScope::kBlade: return "blade";
    case LocScope::kGemini: return "gemini";
    case LocScope::kSystem: return "system";
  }
  return "invalid";
}

const char* LogSourceName(LogSource s) {
  switch (s) {
    case LogSource::kTorque: return "torque";
    case LogSource::kAlps: return "alps";
    case LogSource::kSyslog: return "syslog";
    case LogSource::kHwerr: return "hwerr";
  }
  return "invalid";
}

Result<std::vector<NodeIndex>> ParseNidRanges(std::string_view text) {
  std::vector<NodeIndex> out;
  if (Trim(text).empty()) return ParseError("empty nid list");
  for (std::string_view piece : Split(text, ',')) {
    const std::size_t dash = piece.find('-');
    if (dash == std::string_view::npos) {
      auto v = ParseUint(piece);
      if (!v.ok()) return v.status();
      out.push_back(static_cast<NodeIndex>(*v));
      continue;
    }
    auto lo = ParseUint(piece.substr(0, dash));
    auto hi = ParseUint(piece.substr(dash + 1));
    if (!lo.ok()) return lo.status();
    if (!hi.ok()) return hi.status();
    if (*hi < *lo || *hi - *lo > 1u << 20) {
      return ParseError("bad nid range: '" + std::string(piece) + "'");
    }
    for (std::uint64_t v = *lo; v <= *hi; ++v) {
      out.push_back(static_cast<NodeIndex>(v));
    }
  }
  return out;
}

}  // namespace ld
