#include "logdiver/records.hpp"

#include "common/strings.hpp"

namespace ld {

const char* LocScopeName(LocScope s) {
  switch (s) {
    case LocScope::kNode: return "node";
    case LocScope::kBlade: return "blade";
    case LocScope::kGemini: return "gemini";
    case LocScope::kSystem: return "system";
  }
  return "invalid";
}

const char* LogSourceName(LogSource s) {
  switch (s) {
    case LogSource::kTorque: return "torque";
    case LogSource::kAlps: return "alps";
    case LogSource::kSyslog: return "syslog";
    case LogSource::kHwerr: return "hwerr";
  }
  return "invalid";
}

Result<std::vector<NodeIndex>> ParseNidRanges(std::string_view text) {
  if (Trim(text).empty()) return ParseError("empty nid list");
  // Every placeApp record funnels through here, so the parse is split
  // into a validate pass that lands the [lo, hi] bounds in a stack
  // buffer and a fill pass into a single exact reservation — no Split
  // vector and no geometric regrowth of the output.  Payloads with more
  // comma pieces than the stack holds spill to a heap bounds vector;
  // the fill pass is identical either way.
  struct Bounds {
    std::uint64_t lo;
    std::uint64_t hi;
  };
  constexpr std::size_t kStackBounds = 64;
  Bounds stack_bounds[kStackBounds];
  std::vector<Bounds> heap_bounds;
  std::size_t nbounds = 0;
  std::uint64_t total = 0;
  const auto push_bounds = [&](Bounds b) {
    if (nbounds < kStackBounds) {
      stack_bounds[nbounds] = b;
    } else {
      if (heap_bounds.empty()) {
        heap_bounds.assign(stack_bounds, stack_bounds + kStackBounds);
      }
      heap_bounds.push_back(b);
    }
    ++nbounds;
    total += b.hi - b.lo + 1;
  };
  std::size_t pos = 0;
  while (true) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view piece = text.substr(pos, comma - pos);
    const std::size_t dash = piece.find('-');
    if (dash == std::string_view::npos) {
      auto v = ParseUint(piece);
      if (!v.ok()) return v.status();
      push_bounds(Bounds{*v, *v});
    } else {
      auto lo = ParseUint(piece.substr(0, dash));
      auto hi = ParseUint(piece.substr(dash + 1));
      if (!lo.ok()) return lo.status();
      if (!hi.ok()) return hi.status();
      if (*hi < *lo || *hi - *lo > 1u << 20) {
        return ParseError("bad nid range: '" + std::string(piece) + "'");
      }
      push_bounds(Bounds{*lo, *hi});
    }
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  const Bounds* bounds =
      heap_bounds.empty() ? stack_bounds : heap_bounds.data();
  std::vector<NodeIndex> out;
  out.reserve(total);
  for (std::size_t i = 0; i < nbounds; ++i) {
    for (std::uint64_t v = bounds[i].lo; v <= bounds[i].hi; ++v) {
      out.push_back(static_cast<NodeIndex>(v));
    }
  }
  return out;
}

}  // namespace ld
