// Parser for structured hardware-error logs.
//
// Record grammar: `epoch|category|cname|severity|detail`, one per line.
// This source overlaps with syslog for hardware categories — the
// coalescing stage is responsible for collapsing the duplicates.
#pragma once

#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "logdiver/records.hpp"

namespace ld {

class QuarantineSink;

class HwerrParser {
 public:
  Result<std::optional<ErrorRecord>> ParseLine(std::string_view line);
  /// Rejected lines are captured in `sink` when one is provided.
  std::vector<ErrorRecord> ParseLines(const std::vector<std::string>& lines,
                                      QuarantineSink* sink = nullptr);
  const ParseStats& stats() const { return stats_; }
  /// Checkpoint-restore hook: the parser's only cross-line state is its
  /// counters.
  void RestoreStats(const ParseStats& stats) { stats_ = stats; }

 private:
  ParseStats stats_;
};

}  // namespace ld
