#include "logdiver/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/obs/obs.hpp"
#include "logdiver/coalesce.hpp"
#include "logdiver/metrics.hpp"
#include "logdiver/quarantine.hpp"
#include "logdiver/reconstruct.hpp"
#include "logdiver/records.hpp"

namespace ld {
namespace {

namespace fs = std::filesystem;

/// File magic: "LDSNAP" + 0x1A (stops accidental text-mode readers) + a
/// free byte reserved as zero.
constexpr std::array<std::uint8_t, 8> kMagic = {'L', 'D', 'S', 'N',
                                                'A', 'P', 0x1A, 0x00};
// magic | u32 version | u32 payload CRC | u64 payload size | u64 input
// fingerprint (since version 2).
constexpr std::size_t kHeaderSize = kMagic.size() + 4 + 4 + 8 + 8;

constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".ldsnap";

// Slice-by-8 CRC tables: table[0] is the classic bytewise table, and
// table[j][b] is the CRC of byte b followed by j zero bytes, so eight
// bytes fold in one step.  Validating a multi-megabyte snapshot or
// parsed-bundle-cache payload is on the cache's warm hit path, where
// the bytewise loop was the single largest cost.
const std::array<std::array<std::uint32_t, 256>, 8>& Crc32Tables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t j = 1; j < 8; ++j) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[j][i] = c;
      }
    }
    return t;
  }();
  return tables;
}

void PutU32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t GetU32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

std::uint64_t GetU64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(GetU32(in)) |
         static_cast<std::uint64_t>(GetU32(in + 4)) << 32;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size) {
  const auto& t = Crc32Tables();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  // The 8-at-a-time fold reads the words little-endian; on a big-endian
  // host the bytewise tail below handles everything.
  if constexpr (std::endian::native == std::endian::little) {
    while (size >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, bytes, 4);
      std::memcpy(&hi, bytes + 4, 4);
      lo ^= crc;
      crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
            t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
            t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^
            t[0][hi >> 24];
      bytes += 8;
      size -= 8;
    }
  }
  for (std::size_t i = 0; i < size; ++i) {
    crc = t[0][(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void SnapshotWriter::U32(std::uint32_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 16));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void SnapshotWriter::U64(std::uint64_t v) {
  U32(static_cast<std::uint32_t>(v));
  U32(static_cast<std::uint32_t>(v >> 32));
}

void SnapshotWriter::F64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void SnapshotWriter::Str(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void SnapshotWriter::Raw(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

void SnapshotWriter::Varint(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void SnapshotWriter::VarintSigned(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  Varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void SnapshotReader::Fail(std::string why) {
  if (status_.ok()) {
    status_ = InternalError("snapshot payload: " + std::move(why));
  }
}

std::uint8_t SnapshotReader::U8() {
  if (pos_ + 1 > size_) {
    Fail("truncated u8 at offset " + std::to_string(pos_));
    return 0;
  }
  return data_[pos_++];
}

std::uint32_t SnapshotReader::U32() {
  if (pos_ + 4 > size_) {
    Fail("truncated u32 at offset " + std::to_string(pos_));
    pos_ = size_;
    return 0;
  }
  const std::uint32_t v = GetU32(data_ + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t SnapshotReader::U64() {
  const std::uint64_t lo = U32();
  const std::uint64_t hi = U32();
  return lo | hi << 32;
}

double SnapshotReader::F64() {
  const std::uint64_t bits = U64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void SnapshotReader::Raw(void* out, std::size_t size) {
  if (pos_ + size > size_ || pos_ + size < pos_) {
    Fail("truncated raw block of " + std::to_string(size) + " bytes");
    pos_ = size_;
    std::memset(out, 0, size);
    return;
  }
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
}

std::uint64_t SnapshotReader::Varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= size_) {
      Fail("truncated varint at offset " + std::to_string(pos_));
      return 0;
    }
    const std::uint8_t byte = data_[pos_++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // The 10th group carries only bit 63: anything above is an
      // over-long encoding, not a value.
      if (shift == 63 && byte > 1) break;
      return v;
    }
  }
  Fail("malformed varint at offset " + std::to_string(pos_));
  return 0;
}

std::int64_t SnapshotReader::VarintSigned() {
  const std::uint64_t u = Varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::string SnapshotReader::Str() {
  const std::uint32_t len = U32();
  if (pos_ + len > size_) {
    Fail("truncated string of length " + std::to_string(len));
    pos_ = size_;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

// --- shared struct serializers ---------------------------------------

void SaveParseStats(SnapshotWriter& w, const ParseStats& s) {
  w.U64(s.lines);
  w.U64(s.records);
  w.U64(s.skipped);
  w.U64(s.malformed);
}

void LoadParseStats(SnapshotReader& r, ParseStats& s) {
  s.lines = r.U64();
  s.records = r.U64();
  s.skipped = r.U64();
  s.malformed = r.U64();
}

void SaveIngestStats(SnapshotWriter& w, const IngestStats& s) {
  w.U64(s.quarantined);
  w.U64(s.quarantine_overflow);
  w.U64(s.duplicate_placements);
  w.U64(s.duplicate_terminations);
  w.U64(s.duplicate_job_records);
  w.U64(s.watermark_regressions);
  w.U64(s.evicted_pending_runs);
  w.U64(s.evicted_tuples);
  w.U64(s.budget_exhausted_sources);
  w.U64(s.lines_dropped_after_budget);
}

void LoadIngestStats(SnapshotReader& r, IngestStats& s) {
  s.quarantined = r.U64();
  s.quarantine_overflow = r.U64();
  s.duplicate_placements = r.U64();
  s.duplicate_terminations = r.U64();
  s.duplicate_job_records = r.U64();
  s.watermark_regressions = r.U64();
  s.evicted_pending_runs = r.U64();
  s.evicted_tuples = r.U64();
  s.budget_exhausted_sources = r.U64();
  s.lines_dropped_after_budget = r.U64();
}

void SaveStatus(SnapshotWriter& w, const Status& s) {
  w.U8(static_cast<std::uint8_t>(s.code()));
  w.Str(s.message());
}

Status LoadStatus(SnapshotReader& r) {
  const auto code = static_cast<StatusCode>(r.U8());
  std::string message = r.Str();
  if (code == StatusCode::kOk) return Status::Ok();
  return Status(code, std::move(message));
}

void SaveTorqueRecord(SnapshotWriter& w, const TorqueRecord& rec) {
  w.U8(static_cast<std::uint8_t>(rec.kind));
  w.Time(rec.time);
  w.U64(rec.jobid);
  w.Str(rec.user.view());
  w.Str(rec.queue.view());
  w.Str(rec.job_name.view());
  w.Time(rec.submit);
  w.Time(rec.start);
  w.Time(rec.end);
  w.I32(rec.exit_status);
  w.U32(rec.nodect);
  w.Dur(rec.walltime_limit);
  w.Dur(rec.walltime_used);
}

void LoadTorqueRecord(SnapshotReader& r, TorqueRecord& rec) {
  rec.kind = static_cast<TorqueRecord::Kind>(r.U8());
  rec.time = r.Time();
  rec.jobid = r.U64();
  rec.user = Intern(r.Str());
  rec.queue = Intern(r.Str());
  rec.job_name = Intern(r.Str());
  rec.submit = r.Time();
  rec.start = r.Time();
  rec.end = r.Time();
  rec.exit_status = r.I32();
  rec.nodect = r.U32();
  rec.walltime_limit = r.Dur();
  rec.walltime_used = r.Dur();
}

void SaveAppRun(SnapshotWriter& w, const AppRun& run) {
  w.U64(run.apid);
  w.U64(run.jobid);
  w.Str(run.user.view());
  w.Str(run.queue.view());
  w.U8(static_cast<std::uint8_t>(run.node_type));
  w.U32(static_cast<std::uint32_t>(run.nodes.size()));
  for (NodeIndex n : run.nodes) w.U32(n);
  w.U32(run.nodect);
  w.Time(run.start);
  w.Time(run.end);
  w.Bool(run.has_termination);
  w.I32(run.exit_code);
  w.I32(run.exit_signal);
  w.Bool(run.killed_node_failure);
  w.U32(run.failed_nid);
  w.Time(run.job_submit);
  w.Time(run.job_start);
  w.Dur(run.walltime_limit);
  w.I32(run.job_exit_status);
}

void LoadAppRun(SnapshotReader& r, AppRun& run) {
  run.apid = r.U64();
  run.jobid = r.U64();
  run.user = Intern(r.Str());
  run.queue = Intern(r.Str());
  run.node_type = static_cast<NodeType>(r.U8());
  const std::uint32_t nodes = r.U32();
  run.nodes.clear();
  if (r.ok()) run.nodes.reserve(nodes);
  for (std::uint32_t i = 0; i < nodes && r.ok(); ++i) {
    run.nodes.push_back(r.U32());
  }
  run.nodect = r.U32();
  run.start = r.Time();
  run.end = r.Time();
  run.has_termination = r.Bool();
  run.exit_code = r.I32();
  run.exit_signal = r.I32();
  run.killed_node_failure = r.Bool();
  run.failed_nid = r.U32();
  run.job_submit = r.Time();
  run.job_start = r.Time();
  run.walltime_limit = r.Dur();
  run.job_exit_status = r.I32();
}

void SaveErrorTuple(SnapshotWriter& w, const ErrorTuple& tuple) {
  w.U64(tuple.id);
  w.U8(static_cast<std::uint8_t>(tuple.category));
  w.U8(static_cast<std::uint8_t>(tuple.severity));
  w.U8(static_cast<std::uint8_t>(tuple.scope));
  w.Str(tuple.location.view());
  w.U32(static_cast<std::uint32_t>(tuple.nodes.size()));
  for (NodeIndex n : tuple.nodes) w.U32(n);
  w.Time(tuple.first);
  w.Time(tuple.last);
  w.Bool(tuple.recovered.has_value());
  if (tuple.recovered.has_value()) w.Time(*tuple.recovered);
  w.U32(tuple.count);
  w.Bool(tuple.from_syslog);
  w.Bool(tuple.from_hwerr);
}

void LoadErrorTuple(SnapshotReader& r, ErrorTuple& tuple) {
  tuple.id = r.U64();
  tuple.category = static_cast<ErrorCategory>(r.U8());
  tuple.severity = static_cast<Severity>(r.U8());
  tuple.scope = static_cast<LocScope>(r.U8());
  tuple.location = Intern(r.Str());
  const std::uint32_t nodes = r.U32();
  tuple.nodes.clear();
  if (r.ok()) tuple.nodes.reserve(nodes);
  for (std::uint32_t i = 0; i < nodes && r.ok(); ++i) {
    tuple.nodes.push_back(r.U32());
  }
  tuple.first = r.Time();
  tuple.last = r.Time();
  tuple.recovered.reset();
  if (r.Bool()) tuple.recovered = r.Time();
  tuple.count = r.U32();
  tuple.from_syslog = r.Bool();
  tuple.from_hwerr = r.Bool();
}

void SaveQuarantineEntry(SnapshotWriter& w, const QuarantineEntry& e) {
  w.U8(static_cast<std::uint8_t>(e.source));
  w.U64(e.line_number);
  w.Str(e.reason);
  w.Str(e.line);
}

void LoadQuarantineEntry(SnapshotReader& r, QuarantineEntry& e) {
  e.source = static_cast<LogSource>(r.U8());
  e.line_number = r.U64();
  e.reason = r.Str();
  e.line = r.Str();
}

void SaveMetricsReport(SnapshotWriter& w, const MetricsReport& report) {
  w.U64(report.total_runs);
  w.F64(report.total_node_hours);
  w.F64(report.system_failure_fraction);
  w.F64(report.lost_node_hours_fraction);
  w.F64(report.overall_mtti_hours);

  w.U32(static_cast<std::uint32_t>(report.outcomes.size()));
  for (const OutcomeRow& row : report.outcomes) {
    w.U8(static_cast<std::uint8_t>(row.outcome));
    w.U64(row.runs);
    w.F64(row.runs_share);
    w.F64(row.node_hours);
    w.F64(row.node_hours_share);
  }

  w.U32(static_cast<std::uint32_t>(report.categories.size()));
  for (const CategoryRow& row : report.categories) {
    w.U8(static_cast<std::uint8_t>(row.category));
    w.U64(row.tuples);
    w.U64(row.fatal_tuples);
    w.U64(row.raw_events);
    w.F64(row.fatal_mtbe_hours);
  }

  w.U64(report.availability.incidents);
  w.F64(report.availability.downtime_hours);
  w.F64(report.availability.availability);

  w.U32(static_cast<std::uint32_t>(report.attribution.size()));
  for (const AttributionRow& row : report.attribution) {
    w.U8(static_cast<std::uint8_t>(row.cause));
    w.U64(row.xe_failures);
    w.U64(row.xk_failures);
  }

  for (const auto* scale : {&report.xe_scale, &report.xk_scale}) {
    w.U32(static_cast<std::uint32_t>(scale->size()));
    for (const ScalePoint& p : *scale) {
      w.U32(p.lo);
      w.U32(p.hi);
      w.U64(p.runs);
      w.U64(p.system_failures);
      w.F64(p.failure_probability.point);
      w.F64(p.failure_probability.lo);
      w.F64(p.failure_probability.hi);
    }
  }

  w.U32(static_cast<std::uint32_t>(report.monthly.size()));
  for (const MonthlyPoint& p : report.monthly) {
    w.I32(p.year);
    w.I32(p.month);
    w.U64(p.runs);
    w.U64(p.system_failures);
    w.F64(p.node_hours);
    w.F64(p.lost_node_hours);
    w.F64(p.mtti_hours);
  }

  w.U32(static_cast<std::uint32_t>(report.detection_gap.size()));
  for (const DetectionGapRow& row : report.detection_gap) {
    w.U8(static_cast<std::uint8_t>(row.type));
    w.U64(row.system_failures);
    w.U64(row.attributed);
    w.U64(row.unattributed);
    w.F64(row.unattributed_share);
  }

  w.U32(static_cast<std::uint32_t>(report.queue_waits.size()));
  for (const QueueWaitRow& row : report.queue_waits) {
    w.U32(row.lo);
    w.U32(row.hi);
    w.U64(row.jobs);
    w.F64(row.mean_wait_hours);
    w.F64(row.p95_wait_hours);
  }

  w.U64(report.job_impact.jobs);
  w.U64(report.job_impact.jobs_with_system_failure);
  w.F64(report.job_impact.fraction);

  SaveIngestStats(w, report.ingest);
}

void LoadMetricsReport(SnapshotReader& r, MetricsReport& report) {
  report.total_runs = r.U64();
  report.total_node_hours = r.F64();
  report.system_failure_fraction = r.F64();
  report.lost_node_hours_fraction = r.F64();
  report.overall_mtti_hours = r.F64();

  report.outcomes.resize(r.U32());
  for (OutcomeRow& row : report.outcomes) {
    row.outcome = static_cast<AppOutcome>(r.U8());
    row.runs = r.U64();
    row.runs_share = r.F64();
    row.node_hours = r.F64();
    row.node_hours_share = r.F64();
  }

  report.categories.resize(r.U32());
  for (CategoryRow& row : report.categories) {
    row.category = static_cast<ErrorCategory>(r.U8());
    row.tuples = r.U64();
    row.fatal_tuples = r.U64();
    row.raw_events = r.U64();
    row.fatal_mtbe_hours = r.F64();
  }

  report.availability.incidents = r.U64();
  report.availability.downtime_hours = r.F64();
  report.availability.availability = r.F64();

  report.attribution.resize(r.U32());
  for (AttributionRow& row : report.attribution) {
    row.cause = static_cast<ErrorCategory>(r.U8());
    row.xe_failures = r.U64();
    row.xk_failures = r.U64();
  }

  for (auto* scale : {&report.xe_scale, &report.xk_scale}) {
    scale->resize(r.U32());
    for (ScalePoint& p : *scale) {
      p.lo = r.U32();
      p.hi = r.U32();
      p.runs = r.U64();
      p.system_failures = r.U64();
      p.failure_probability.point = r.F64();
      p.failure_probability.lo = r.F64();
      p.failure_probability.hi = r.F64();
    }
  }

  report.monthly.resize(r.U32());
  for (MonthlyPoint& p : report.monthly) {
    p.year = r.I32();
    p.month = r.I32();
    p.runs = r.U64();
    p.system_failures = r.U64();
    p.node_hours = r.F64();
    p.lost_node_hours = r.F64();
    p.mtti_hours = r.F64();
  }

  report.detection_gap.resize(r.U32());
  for (DetectionGapRow& row : report.detection_gap) {
    row.type = static_cast<NodeType>(r.U8());
    row.system_failures = r.U64();
    row.attributed = r.U64();
    row.unattributed = r.U64();
    row.unattributed_share = r.F64();
  }

  report.queue_waits.resize(r.U32());
  for (QueueWaitRow& row : report.queue_waits) {
    row.lo = r.U32();
    row.hi = r.U32();
    row.jobs = r.U64();
    row.mean_wait_hours = r.F64();
    row.p95_wait_hours = r.F64();
  }

  report.job_impact.jobs = r.U64();
  report.job_impact.jobs_with_system_failure = r.U64();
  report.job_impact.fraction = r.F64();

  LoadIngestStats(r, report.ingest);
}

std::uint32_t FingerprintReport(const MetricsReport& report) {
  SnapshotWriter w;
  SaveMetricsReport(w, report);
  return Crc32(w.bytes());
}

std::uint32_t FingerprintIngest(const IngestStats& stats) {
  SnapshotWriter w;
  SaveIngestStats(w, stats);
  return Crc32(w.bytes());
}

// --- snapshot files --------------------------------------------------

Status WriteSnapshotFile(const std::string& path,
                         const std::vector<std::uint8_t>& payload,
                         std::uint64_t fingerprint) {
  LD_OBS_SPAN("snapshot/write");
  const std::uint64_t write_start_ns = LD_OBS_NOW_NS();
  std::vector<std::uint8_t> framed;
  framed.reserve(kHeaderSize + payload.size());
  framed.insert(framed.end(), kMagic.begin(), kMagic.end());
  std::uint8_t scratch[8];
  PutU32(scratch, kSnapshotFileVersion);
  framed.insert(framed.end(), scratch, scratch + 4);
  PutU32(scratch, Crc32(payload));
  framed.insert(framed.end(), scratch, scratch + 4);
  const std::uint64_t size = payload.size();
  PutU32(scratch, static_cast<std::uint32_t>(size));
  PutU32(scratch + 4, static_cast<std::uint32_t>(size >> 32));
  framed.insert(framed.end(), scratch, scratch + 8);
  PutU32(scratch, static_cast<std::uint32_t>(fingerprint));
  PutU32(scratch + 4, static_cast<std::uint32_t>(fingerprint >> 32));
  framed.insert(framed.end(), scratch, scratch + 8);
  framed.insert(framed.end(), payload.begin(), payload.end());

  // The tmp name is pid-qualified: two processes sharing a snapshot dir
  // (the daemon's per-tenant layout, or a test racing two writers) must
  // never interleave writes into one tmp file — with a shared name, one
  // writer's rename could publish a file the other was still appending
  // to, a torn snapshot under the *final* name that atomicity exists to
  // prevent.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return InternalError("snapshot: cannot create " + tmp + ": " +
                         std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n =
        ::write(fd, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return InternalError("snapshot: short write to " + tmp + ": " + why);
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must never become durable ahead of
  // the data it points at.
  if (::fsync(fd) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return InternalError("snapshot: fsync " + tmp + " failed: " + why);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return InternalError("snapshot: close " + tmp + " failed");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = std::strerror(errno);
    ::unlink(tmp.c_str());
    return InternalError("snapshot: rename to " + path + " failed: " + why);
  }
  LD_OBS_COUNTER_ADD(obs::names::kSnapshotWritesTotal, 1);
  LD_OBS_COUNTER_ADD(obs::names::kSnapshotWriteBytesTotal, framed.size());
  if (write_start_ns != 0) {
    LD_OBS_HIST_RECORD(obs::names::kSnapshotWriteMicros,
                       (LD_OBS_NOW_NS() - write_start_ns) / 1000);
  }
  return Status::Ok();
}

Result<std::vector<std::uint8_t>> ReadSnapshotFile(
    const std::string& path, std::uint64_t* fingerprint) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("snapshot: cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (file_size < 0 || static_cast<std::size_t>(file_size) < kHeaderSize) {
    std::fclose(f);
    return ParseError("snapshot: " + path + " shorter than the header");
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(file_size));
  const std::size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    return ParseError("snapshot: short read from " + path);
  }
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes.begin())) {
    return ParseError("snapshot: " + path + " has a bad magic number");
  }
  const std::uint32_t version = GetU32(bytes.data() + kMagic.size());
  if (version != kSnapshotFileVersion) {
    return ParseError("snapshot: " + path + " has unsupported version " +
                      std::to_string(version));
  }
  const std::uint32_t crc = GetU32(bytes.data() + kMagic.size() + 4);
  const std::uint64_t declared = GetU64(bytes.data() + kMagic.size() + 8);
  if (declared != bytes.size() - kHeaderSize) {
    return ParseError("snapshot: " + path + " is torn (declares " +
                      std::to_string(declared) + " payload bytes, has " +
                      std::to_string(bytes.size() - kHeaderSize) + ")");
  }
  std::vector<std::uint8_t> payload(bytes.begin() + kHeaderSize, bytes.end());
  if (Crc32(payload) != crc) {
    return ParseError("snapshot: " + path + " fails its CRC check");
  }
  if (fingerprint != nullptr) {
    *fingerprint = GetU64(bytes.data() + kMagic.size() + 16);
  }
  return payload;
}

SnapshotStore::SnapshotStore(std::string dir, std::size_t keep_generations)
    : dir_(std::move(dir)),
      keep_generations_(std::max<std::size_t>(keep_generations, 2)) {}

std::string SnapshotStore::PathFor(std::uint64_t generation) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%06llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(generation), kSnapshotSuffix);
  return dir_ + "/" + name;
}

std::vector<std::uint64_t> SnapshotStore::Generations() const {
  std::vector<std::uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= std::strlen(kSnapshotPrefix) + std::strlen(kSnapshotSuffix) ||
        name.rfind(kSnapshotPrefix, 0) != 0 ||
        name.substr(name.size() - std::strlen(kSnapshotSuffix)) !=
            kSnapshotSuffix) {
      continue;
    }
    const std::string digits =
        name.substr(std::strlen(kSnapshotPrefix),
                    name.size() - std::strlen(kSnapshotPrefix) -
                        std::strlen(kSnapshotSuffix));
    char* end = nullptr;
    const std::uint64_t gen = std::strtoull(digits.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && gen > 0) gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

Result<std::uint64_t> SnapshotStore::Write(
    const std::vector<std::uint8_t>& payload, std::uint64_t fingerprint) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return InternalError("snapshot: cannot create directory " + dir_ + ": " +
                         ec.message());
  }
  const std::vector<std::uint64_t> gens = Generations();
  const std::uint64_t next = gens.empty() ? 1 : gens.back() + 1;
  LD_TRY(WriteSnapshotFile(PathFor(next), payload, fingerprint));
  // Prune: keep the newest keep_generations_ (the new one included).
  if (gens.size() + 1 > keep_generations_) {
    const std::size_t drop = gens.size() + 1 - keep_generations_;
    for (std::size_t i = 0; i < drop && i < gens.size(); ++i) {
      fs::remove(PathFor(gens[i]), ec);
    }
  }
  return next;
}

Result<SnapshotStore::Loaded> SnapshotStore::LoadLatest(
    std::uint64_t expected_fingerprint) const {
  const std::vector<std::uint64_t> gens = Generations();
  Loaded loaded;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    std::uint64_t fingerprint = 0;
    auto payload = ReadSnapshotFile(PathFor(*it), &fingerprint);
    if (payload.ok() && expected_fingerprint != 0 &&
        fingerprint != expected_fingerprint) {
      // Structurally intact but computed from different input: a stale
      // directory or a foreign partial.  As unusable as a torn file.
      payload = ParseError("snapshot: " + PathFor(*it) +
                           " fingerprints a different input");
    }
    if (payload.ok()) {
      loaded.payload = std::move(*payload);
      loaded.generation = *it;
      loaded.fingerprint = fingerprint;
      LD_OBS_COUNTER_ADD(obs::names::kSnapshotRestoresTotal, 1);
      return loaded;
    }
    // Counted per rejection (not batched on a successful load) so a
    // directory whose every generation is bad still shows up.
    ++loaded.rejected;
    LD_OBS_COUNTER_ADD(obs::names::kSnapshotRejectedTotal, 1);
  }
  return NotFoundError("snapshot: no valid snapshot in " + dir_ +
                       (loaded.rejected != 0
                            ? " (" + std::to_string(loaded.rejected) +
                                  " rejected as torn/corrupt/mismatched)"
                            : ""));
}

Status SnapshotStore::Clear() const {
  std::error_code ec;
  for (std::uint64_t gen : Generations()) {
    fs::remove(PathFor(gen), ec);
    if (ec) {
      return InternalError("snapshot: cannot remove " + PathFor(gen) + ": " +
                           ec.message());
    }
  }
  return Status::Ok();
}

}  // namespace ld
