// SoA (structure-of-arrays) layouts for the hot analysis passes.
//
// The coalesce feed, the tuple index and the classify loop each touch a
// handful of scalar fields per element; the AoS record structs make
// every touch a strided load dragging the rest of the struct through
// the cache.  These column sets keep exactly the fields a pass streams
// over in dense int64 / small-enum / Symbol arrays.
//
// ErrorColumns is also the unit of exchange with the parsed-bundle
// cache (src/logdiver/cache): raw little-endian column arrays dump and
// load with bulk memcpy instead of a per-record decode loop.  Symbols
// are process-local (intern.hpp: ids are not deterministic), so the
// cache serializes resolved strings and re-interns on load.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/intern.hpp"
#include "common/time.hpp"
#include "logdiver/coalesce.hpp"
#include "logdiver/reconstruct.hpp"
#include "logdiver/records.hpp"

namespace ld {

/// Column-major ErrorRecord storage.  push_back/Row convert to and from
/// the AoS struct; all columns always have equal length.
struct ErrorColumns {
  std::vector<std::int64_t> time;       // unix seconds
  std::vector<std::uint8_t> category;   // ErrorCategory
  std::vector<std::uint8_t> severity;   // Severity
  std::vector<std::uint8_t> scope;      // LocScope
  std::vector<std::uint8_t> source;     // LogSource
  std::vector<Symbol> location;
  std::vector<std::uint8_t> recovered_set;  // optional engaged?
  std::vector<std::int64_t> recovered;      // unix seconds; 0 when unset

  std::size_t size() const { return time.size(); }
  bool empty() const { return time.empty(); }

  void reserve(std::size_t n) {
    time.reserve(n);
    category.reserve(n);
    severity.reserve(n);
    scope.reserve(n);
    source.reserve(n);
    location.reserve(n);
    recovered_set.reserve(n);
    recovered.reserve(n);
  }

  void push_back(const ErrorRecord& r) {
    time.push_back(r.time.unix_seconds());
    category.push_back(static_cast<std::uint8_t>(r.category));
    severity.push_back(static_cast<std::uint8_t>(r.severity));
    scope.push_back(static_cast<std::uint8_t>(r.scope));
    source.push_back(static_cast<std::uint8_t>(r.source));
    location.push_back(r.location);
    recovered_set.push_back(r.recovered.has_value() ? 1 : 0);
    recovered.push_back(r.recovered ? r.recovered->unix_seconds() : 0);
  }

  void Append(const std::vector<ErrorRecord>& records) {
    reserve(size() + records.size());
    for (const ErrorRecord& r : records) push_back(r);
  }

  ErrorRecord Row(std::size_t i) const {
    ErrorRecord r;
    r.time = TimePoint(time[i]);
    r.category = static_cast<ErrorCategory>(category[i]);
    r.severity = static_cast<Severity>(severity[i]);
    r.scope = static_cast<LocScope>(scope[i]);
    r.source = static_cast<LogSource>(source[i]);
    r.location = location[i];
    if (recovered_set[i] != 0) r.recovered = TimePoint(recovered[i]);
    return r;
  }

  static ErrorColumns FromRecords(const std::vector<ErrorRecord>& records) {
    ErrorColumns c;
    c.Append(records);
    return c;
  }
};

/// The ErrorTuple fields the classify loop reads per candidate, as
/// dense arrays indexed by tuple index.  The binary searches inside
/// TupleIndex run over the `first` column instead of striding through
/// ~100-byte ErrorTuple structs.
struct TupleColumns {
  std::vector<std::int64_t> first;     // unix seconds
  std::vector<std::uint64_t> id;
  std::vector<std::uint8_t> category;  // ErrorCategory
  std::vector<std::uint8_t> severity;  // Severity
  std::vector<std::uint8_t> scope;     // LocScope

  std::size_t size() const { return first.size(); }

  static TupleColumns FromTuples(const std::vector<ErrorTuple>& tuples) {
    TupleColumns c;
    c.first.reserve(tuples.size());
    c.id.reserve(tuples.size());
    c.category.reserve(tuples.size());
    c.severity.reserve(tuples.size());
    c.scope.reserve(tuples.size());
    for (const ErrorTuple& t : tuples) {
      c.first.push_back(t.first.unix_seconds());
      c.id.push_back(t.id);
      c.category.push_back(static_cast<std::uint8_t>(t.category));
      c.severity.push_back(static_cast<std::uint8_t>(t.severity));
      c.scope.push_back(static_cast<std::uint8_t>(t.scope));
    }
    return c;
  }
};

/// The AppRun fields the classify loop reads, as dense arrays plus one
/// CSR (offsets + packed entries) for node placements.
struct RunColumns {
  std::vector<std::int64_t> end;             // unix seconds
  std::vector<std::int64_t> job_start;       // unix seconds
  std::vector<std::int64_t> walltime_limit;  // seconds
  std::vector<std::int32_t> exit_code;
  std::vector<std::int32_t> exit_signal;
  std::vector<std::uint8_t> flags;  // bit 0: has_termination,
                                    // bit 1: killed_node_failure
  std::vector<NodeIndex> failed_nid;
  std::vector<std::uint64_t> node_offsets;  // size runs + 1
  std::vector<NodeIndex> node_entries;

  static constexpr std::uint8_t kHasTermination = 1;
  static constexpr std::uint8_t kKilledNodeFailure = 2;

  std::size_t size() const { return end.size(); }

  std::span<const NodeIndex> Nodes(std::size_t i) const {
    return std::span<const NodeIndex>(node_entries.data() + node_offsets[i],
                                      node_offsets[i + 1] - node_offsets[i]);
  }

  static RunColumns FromRuns(const std::vector<AppRun>& runs) {
    RunColumns c;
    const std::size_t n = runs.size();
    c.end.reserve(n);
    c.job_start.reserve(n);
    c.walltime_limit.reserve(n);
    c.exit_code.reserve(n);
    c.exit_signal.reserve(n);
    c.flags.reserve(n);
    c.failed_nid.reserve(n);
    c.node_offsets.reserve(n + 1);
    c.node_offsets.push_back(0);
    std::size_t total_nodes = 0;
    for (const AppRun& r : runs) total_nodes += r.nodes.size();
    c.node_entries.reserve(total_nodes);
    for (const AppRun& r : runs) {
      c.end.push_back(r.end.unix_seconds());
      c.job_start.push_back(r.job_start.unix_seconds());
      c.walltime_limit.push_back(r.walltime_limit.seconds());
      c.exit_code.push_back(r.exit_code);
      c.exit_signal.push_back(r.exit_signal);
      std::uint8_t flags = 0;
      if (r.has_termination) flags |= kHasTermination;
      if (r.killed_node_failure) flags |= kKilledNodeFailure;
      c.flags.push_back(flags);
      c.failed_nid.push_back(r.failed_nid);
      c.node_entries.insert(c.node_entries.end(), r.nodes.begin(),
                            r.nodes.end());
      c.node_offsets.push_back(c.node_entries.size());
    }
    return c;
  }
};

}  // namespace ld
