// Streaming analyzer: the LogDiver pipeline with bounded memory.
//
// Production log bundles are tens of gigabytes; holding every parsed
// record is not an option on an analysis node.  StreamingAnalyzer
// consumes lines incrementally and retains only:
//   - open jobs (Torque S seen, E pending) and recently-ended jobs,
//   - open runs (ALPS placement seen, termination pending),
//   - terminated runs waiting for their attribution window to close,
//   - a rolling buffer of recent error tuples,
//   - O(aggregates) metric state (MetricsAccumulator).
//
// The caller advances a *watermark* — a promise that no further log line
// carries an earlier timestamp (minus a reorder slack the caller
// chooses).  A terminated run is classified once the watermark passes
// its death time plus the attribution + coalescing guard, and once no
// still-open system incident could cover it; finalized runs fold into
// the metric accumulators and are dropped.
//
// Classification results are exactly those of the batch pipeline for
// well-ordered streams (the integration test asserts this).
#pragma once

#include <deque>
#include <map>
#include <string_view>
#include <vector>

#include "logdiver/alps_parser.hpp"
#include "logdiver/coalesce.hpp"
#include "logdiver/correlate.hpp"
#include "logdiver/hwerr_parser.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/metrics.hpp"
#include "logdiver/syslog_parser.hpp"
#include "logdiver/torque_parser.hpp"

namespace ld {

class StreamingAnalyzer {
 public:
  StreamingAnalyzer(const Machine& machine, LogDiverConfig config);

  void AddTorqueLine(std::string_view line);
  void AddAlpsLine(std::string_view line);
  void AddSyslogLine(std::string_view line);
  void AddHwerrLine(std::string_view line);

  /// Finalizes every run that is provably classifiable before
  /// `watermark`; returns how many were finalized in this call.
  std::size_t Advance(TimePoint watermark);

  struct Summary {
    MetricsReport metrics;
    std::uint64_t runs_finalized = 0;
    ParseStats torque_stats;
    ParseStats alps_stats;
    ParseStats syslog_stats;
    ParseStats hwerr_stats;
    CoalesceStats coalesce_stats;
    /// Placements that never terminated (classified unknown at the end).
    std::uint64_t unterminated_runs = 0;
    /// Terminations that matched no placement.
    std::uint64_t orphan_terminations = 0;
  };

  /// Flushes all remaining state and returns the final report.  The
  /// analyzer is spent afterwards.
  Summary Finalize();

  /// Retained-state sizes, for bounded-memory assertions and ops
  /// visibility.
  struct StateSize {
    std::size_t open_jobs = 0;
    std::size_t open_runs = 0;
    std::size_t pending_runs = 0;
    std::size_t buffered_tuples = 0;
    std::size_t open_tuples = 0;
  };
  StateSize state_size() const;

  std::uint64_t runs_finalized() const { return runs_finalized_; }

 private:
  /// Guard between a run's death and the moment every tuple that could
  /// explain it has provably been flushed.
  Duration FinalizeGuard() const;
  void ClassifyBatch(std::vector<AppRun>&& batch);
  void EvictOldState(TimePoint watermark);

  const Machine& machine_;
  LogDiverConfig config_;

  TorqueParser torque_parser_;
  AlpsParser alps_parser_;
  SyslogParser syslog_parser_;
  HwerrParser hwerr_parser_;
  StreamingCoalescer coalescer_;
  Correlator correlator_;
  MetricsAccumulator metrics_;

  /// jobid -> best job record so far (E overrides S).
  std::map<JobId, TorqueRecord> jobs_;
  /// apid -> placed-but-running run.
  std::map<ApId, AppRun> open_runs_;
  /// Terminated runs ordered by end time, waiting for the guard.
  std::deque<AppRun> pending_;  // kept sorted by end (stream order)
  /// Flushed tuples still inside some pending run's attribution reach.
  std::deque<ErrorTuple> tuple_buffer_;

  std::uint64_t runs_finalized_ = 0;
  std::uint64_t orphan_terminations_ = 0;
};

}  // namespace ld
