// Streaming analyzer: the LogDiver pipeline with bounded memory.
//
// Production log bundles are tens of gigabytes; holding every parsed
// record is not an option on an analysis node.  StreamingAnalyzer
// consumes lines incrementally and retains only:
//   - open jobs (Torque S seen, E pending) and recently-ended jobs,
//   - open runs (ALPS placement seen, termination pending),
//   - terminated runs waiting for their attribution window to close,
//   - a rolling buffer of recent error tuples,
//   - O(aggregates) metric state (MetricsAccumulator).
//
// The caller advances a *watermark* — a promise that no further log line
// carries an earlier timestamp (minus a reorder slack the caller
// chooses).  A terminated run is classified once the watermark passes
// its death time plus the attribution + coalescing guard, and once no
// still-open system incident could cover it; finalized runs fold into
// the metric accumulators and are dropped.
//
// Classification results are exactly those of the batch pipeline for
// well-ordered streams (the integration test asserts this).
#pragma once

#include <array>
#include <deque>
#include <map>
#include <string_view>
#include <vector>

#include "logdiver/alps_parser.hpp"
#include "logdiver/coalesce.hpp"
#include "logdiver/correlate.hpp"
#include "logdiver/hwerr_parser.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/metrics.hpp"
#include "logdiver/quarantine.hpp"
#include "logdiver/syslog_parser.hpp"
#include "logdiver/torque_parser.hpp"

namespace ld {

class StreamingAnalyzer {
 public:
  StreamingAnalyzer(const Machine& machine, LogDiverConfig config);

  void AddTorqueLine(std::string_view line);
  void AddAlpsLine(std::string_view line);
  void AddSyslogLine(std::string_view line);
  void AddHwerrLine(std::string_view line);

  /// Finalizes every run that is provably classifiable before
  /// `watermark`; returns how many were finalized in this call.
  /// A watermark behind the furthest one seen is a broken promise
  /// (clock skew, replayed segment): it is clamped to the previous
  /// watermark and counted in IngestStats::watermark_regressions
  /// rather than allowed to re-open finalized state.
  std::size_t Advance(TimePoint watermark);

  struct Summary {
    MetricsReport metrics;
    std::uint64_t runs_finalized = 0;
    ParseStats torque_stats;
    ParseStats alps_stats;
    ParseStats syslog_stats;
    ParseStats hwerr_stats;
    CoalesceStats coalesce_stats;
    /// Placements that never terminated (classified unknown at the end).
    std::uint64_t unterminated_runs = 0;
    /// Terminations that matched no placement.
    std::uint64_t orphan_terminations = 0;
    /// Quarantine, dedup, watermark-clamp and eviction counters
    /// (all-zero on a clean, well-ordered stream).
    IngestStats ingest;
    /// Error when a fail-fast error budget tripped; OK otherwise.
    Status ingest_status;
  };

  /// Flushes all remaining state and returns the final report.  The
  /// analyzer is spent afterwards: feeding lines, advancing, snapshotting
  /// or finalizing again is a programming error (LD_CHECK).
  Summary Finalize();

  /// Serializes the full retained state — parsers, coalescer, metric
  /// accumulators, quarantine, open/pending runs, tuple buffer, replay
  /// memory, ingest counters and the watermark — into `w`.  Restoring
  /// into an analyzer constructed with the same machine and config
  /// continues the stream bit-identically to never having stopped
  /// (bench/crash_campaign asserts this; layout in docs/FORMATS.md).
  void Snapshot(SnapshotWriter& w) const;
  /// Overwrites this analyzer's state from a snapshot payload.  Errors
  /// on a layout/version mismatch or a snapshot taken on a different
  /// machine geometry; the analyzer may be partially overwritten then
  /// and must be discarded.
  Status Restore(SnapshotReader& r);

  /// Retained-state sizes, for bounded-memory assertions and ops
  /// visibility.
  struct StateSize {
    std::size_t open_jobs = 0;
    std::size_t open_runs = 0;
    std::size_t pending_runs = 0;
    std::size_t buffered_tuples = 0;
    std::size_t open_tuples = 0;
  };
  StateSize state_size() const;

  std::uint64_t runs_finalized() const { return runs_finalized_; }

  /// The (possibly shard-filtered) metric accumulator — what a fleet
  /// worker ships as its mergeable partial aggregate.
  const MetricsAccumulator& metrics_accumulator() const { return metrics_; }
  /// Ingestion-health counters accumulated so far.
  const IngestStats& ingest_stats() const { return ingest_; }
  /// Rejected lines captured with reasons (bounded).
  const QuarantineSink& quarantine() const { return quarantine_; }
  /// Error once a fail-fast error budget trips; the offending source's
  /// remaining lines are discarded (and counted) from then on.
  const Status& ingest_status() const { return ingest_status_; }

 private:
  /// Guard between a run's death and the moment every tuple that could
  /// explain it has provably been flushed.
  Duration FinalizeGuard() const;
  void ClassifyBatch(std::vector<AppRun>&& batch);
  void EvictOldState(TimePoint watermark);
  /// Enforces the bounded-growth caps on pending_ and tuple_buffer_.
  void EnforceBounds();
  /// Returns true when the source is still ingestible; otherwise counts
  /// the dropped line.  Rejected lines go to the quarantine.
  bool SourceOpen(LogSource source);
  void Reject(LogSource source, std::uint64_t line_number,
              std::string_view line, const Status& why);
  void CheckBudget(LogSource source, const ParseStats& stats);

  const Machine& machine_;
  LogDiverConfig config_;

  TorqueParser torque_parser_;
  AlpsParser alps_parser_;
  SyslogParser syslog_parser_;
  HwerrParser hwerr_parser_;
  StreamingCoalescer coalescer_;
  Correlator correlator_;
  MetricsAccumulator metrics_;
  QuarantineSink quarantine_;

  /// jobid -> best job record so far (E overrides S).
  std::map<JobId, TorqueRecord> jobs_;
  /// apid -> placed-but-running run.
  std::map<ApId, AppRun> open_runs_;
  /// Terminated runs ordered by end time, waiting for the guard.
  std::deque<AppRun> pending_;  // kept sorted by end (stream order)
  /// Flushed tuples still inside some pending run's attribution reach.
  std::deque<ErrorTuple> tuple_buffer_;
  /// apid -> termination time of runs already moved past open_runs_,
  /// kept briefly so replayed placements/terminations are recognized as
  /// duplicates instead of becoming phantom runs or orphans.
  std::map<ApId, TimePoint> recent_terminated_;

  std::uint64_t runs_finalized_ = 0;
  std::uint64_t orphan_terminations_ = 0;
  IngestStats ingest_;
  Status ingest_status_;
  TimePoint last_watermark_;
  bool have_watermark_ = false;
  bool finalized_ = false;
  std::array<bool, kNumLogSources> source_closed_{};
  std::array<bool, kNumLogSources> budget_counted_{};
};

}  // namespace ld
