// Crash-tolerant streaming analysis: the recovery half of the
// checkpoint-recovery pattern (snapshot.hpp is the checkpoint half).
//
// RunResumableAnalysis streams an on-disk bundle through a
// StreamingAnalyzer exactly as a live shipper would — four file tails
// merged by claimed head time — writing a snapshot every N lines.  On
// startup it loads the newest *valid* snapshot (torn or corrupt files
// are rejected by CRC and the loader falls back a generation), restores
// the analyzer, and resumes reading each file at the recorded offset,
// so every line is applied exactly once.  Because the merge order, the
// watermark schedule and the serialization are all deterministic, an
// interrupted-and-resumed pass produces a *bit-identical* MetricsReport
// to an uninterrupted one — bench/crash_campaign asserts this across a
// kill-point × snapshot-interval sweep.
//
// CrashSupervisor is the process-level loop: it runs an analysis
// attempt in a forked child, distinguishes a crash (signal, or an exit
// code >= 128 such as the injected kCrashExitCode) from an ordinary
// failure, and restarts crashed attempts up to a budget.  Ordinary
// failures pass through — a tripped ingest error budget must not be
// retried into an infinite loop.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.hpp"
#include "logdiver/streaming.hpp"

namespace ld {

/// The four log files of a bundle, each consumed strictly in order.
struct StreamInputs {
  std::string torque_path;
  std::string alps_path;
  std::string syslog_path;
  std::string hwerr_path;
  /// Convenience: the standard bundle layout under `dir`.
  static StreamInputs FromBundleDir(const std::string& dir) {
    return {dir + "/torque.log", dir + "/alps.log", dir + "/syslog.log",
            dir + "/hwerr.log"};
  }
};

/// The deterministic advance schedule shared by every replay path
/// (single-process resume and fleet workers).  Watermark advances key
/// off the total merged line count, so two replays of the same bundle
/// with the same schedule make identical Advance() calls — the defaults
/// must stay in lockstep with ResumeOptions for a fleet worker's
/// classification context to be bit-identical to the serial analyzer's.
struct ReplaySchedule {
  /// Lines between watermark advances.
  std::uint64_t advance_every = 500;
  /// Reorder slack subtracted from the claimed head time at each
  /// advance.
  Duration reorder_slack = Duration::Minutes(5);
};

struct ResumeOptions {
  /// Snapshot directory; empty disables both snapshots and resume.
  std::string snapshot_dir;
  /// Lines between snapshots; 0 disables snapshotting.
  std::uint64_t snapshot_interval = 20000;
  /// Lines between watermark advances.  Part of the deterministic
  /// schedule: derived from the *total* line count, so a resumed pass
  /// advances at exactly the same points as an uninterrupted one.
  std::uint64_t advance_every = 500;
  /// Reorder slack subtracted from the claimed head time at each
  /// advance.
  Duration reorder_slack = Duration::Minutes(5);
  /// Load the newest valid snapshot on startup; false starts fresh
  /// (existing snapshots are left alone — Clear() is the caller's call).
  bool resume = true;
  /// Snapshot generations retained (min 2: the newest always has a
  /// fallback in case it is torn by the next crash).
  std::size_t keep_generations = 2;
};

struct ResumableSummary {
  StreamingAnalyzer::Summary summary;
  /// Lines applied by the whole logical pass (replayed + fresh).
  std::uint64_t total_lines = 0;
  /// Snapshots written by *this* process.
  std::uint64_t snapshots_written = 0;
  /// Generation restored from; 0 when the pass started fresh.
  std::uint64_t resumed_generation = 0;
  /// Torn/corrupt newer generations skipped while loading.
  std::uint64_t snapshots_rejected = 0;
  /// Lines skipped on resume because the snapshot already covered them.
  std::uint64_t lines_skipped = 0;
};

/// Streams `inputs` through a fresh analyzer (resuming from the newest
/// valid snapshot when options allow), finalizes, and returns the
/// summary.  Errors on unreadable inputs or an unusable snapshot
/// payload (version/geometry mismatch — *corruption* is handled by
/// falling back, a mismatch means the operator pointed the tool at the
/// wrong directory).
Result<ResumableSummary> RunResumableAnalysis(const Machine& machine,
                                              const LogDiverConfig& config,
                                              const StreamInputs& inputs,
                                              const ResumeOptions& options);

/// Claims-cache activity observed while loading a bundle for replay.
/// Fleet workers report these through their partial record (the obs
/// registry dies with the forked process), so the supervisor — and the
/// warm-cache campaign cell — can see whether warm shards actually
/// skipped the claimed-time re-parse.
struct BundleLoadStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_rejected = 0;
  std::uint64_t cache_stores = 0;
};

/// Streams the whole bundle through `analyzer` with the deterministic
/// merge order and advance schedule of RunResumableAnalysis, but no
/// snapshotting or resume — the replay core a fleet worker runs.  The
/// caller owns the analyzer (and calls Finalize()); `config` must be
/// the one the analyzer was built with (it supplies the syslog base
/// year for claimed-time recomputation).  Returns total merged lines;
/// fills `load_stats` (optional) with the claims-cache activity of the
/// bundle load.
Result<std::uint64_t> ReplayBundle(const LogDiverConfig& config,
                                   const StreamInputs& inputs,
                                   const ReplaySchedule& schedule,
                                   StreamingAnalyzer& analyzer,
                                   BundleLoadStats* load_stats = nullptr);

/// Deterministic fingerprint of (bundle bytes, shard partition):
/// delegates to bundle_cache's LinesFingerprint (word-folded FNV-1a-64)
/// over every source's raw lines, mixed with `shard_count`.  This is
/// the id stamped into snapshot/partial headers so a loader can tell
/// "same bundle, same partition" from "stale directory or foreign
/// partial" without parsing a payload.  `shard_count` 0 is the
/// single-process resume flavor (no partition); a fleet with N shards
/// uses N, so partials from a differently-sharded run never merge.
Result<std::uint64_t> BundlePartitionFingerprint(const StreamInputs& inputs,
                                                 std::uint32_t shard_count);

/// Process-level restart loop around a crashing analysis attempt.
class CrashSupervisor {
 public:
  struct Options {
    /// Crashed attempts restarted before giving up.
    int max_restarts = 10;
    /// Wall-clock budget per attempt, in milliseconds; a child still
    /// running past it is SIGKILLed and treated as a crash (counted in
    /// Outcome::hangs_killed and retried like any other).  0 keeps the
    /// old blocking wait: no timeout, a hung child hangs the
    /// supervisor.
    std::uint64_t timeout_ms = 0;
  };

  struct Outcome {
    /// Exit code of the last attempt (the successful one, the ordinary
    /// failure passed through, or the final crash when exhausted).
    int exit_code = 0;
    int attempts = 0;
    int crashes = 0;
    /// Attempts that blew the wall-clock budget and were SIGKILLed
    /// (each is also counted in `crashes`).
    int hangs_killed = 0;
    /// True when the restart budget ran out on a still-crashing child.
    bool exhausted = false;
  };

  /// Runs `child(attempt)` in a forked process until it exits without
  /// crashing or the restart budget is spent.  `attempt` starts at 0
  /// and increments per run — campaign code uses it to arm a crash
  /// point on the first attempt only.  A crash is a signal death, an
  /// exit code >= 128, or a timeout escalation; anything else passes
  /// through unretried.
  static Outcome Run(const std::function<int(int attempt)>& child,
                     const Options& options);
  static Outcome Run(const std::function<int(int attempt)>& child) {
    return Run(child, Options());
  }
};

}  // namespace ld
