// Shared plumbing for chunk-parallel ParseLines.
//
// A source's lines are cut into consecutive chunks; each chunk parses —
// on any thread — into a private (records, ParseStats, quarantine sink)
// triple with no shared mutable state, and an ordered reduction stitches
// the triples back in original chunk order.  Because the per-line parse
// of the stateless parsers (Torque/ALPS/hwerr) is a pure function of the
// line, the reduced output is bit-identical to a sequential pass at any
// thread count or chunk size.  SyslogParser carries cross-line state and
// implements its own chunk type on top of the same pattern (see
// syslog_parser.hpp).
#pragma once

#include <cstdint>
#include <iterator>
#include <span>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "logdiver/quarantine.hpp"
#include "logdiver/records.hpp"

namespace ld {

/// One chunk's private parse output.
template <typename Record>
struct ParsedChunk {
  std::vector<Record> records;
  ParseStats stats;
  QuarantineSink sink;
};

/// Parses one chunk with a stateless per-line function returning
/// Result<std::optional<Record>>.  `first_line_no` is the 1-based global
/// line number of lines[0]; `capture` null skips quarantine capture
/// entirely (callers without a sink pay nothing).
template <typename Record, typename PerLine>
ParsedChunk<Record> ParseChunkWith(std::span<const std::string_view> lines,
                                   std::uint64_t first_line_no,
                                   const QuarantineConfig* capture,
                                   LogSource source, PerLine&& per_line) {
  ParsedChunk<Record> chunk;
  if (capture != nullptr) chunk.sink = QuarantineSink(*capture);
  chunk.records.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    ++chunk.stats.lines;
    auto rec = per_line(line);
    if (!rec.ok()) {
      ++chunk.stats.malformed;
      if (capture != nullptr) {
        chunk.sink.Add(source, first_line_no + i, line, rec.status());
      }
      continue;
    }
    if (!rec->has_value()) {
      ++chunk.stats.skipped;
      continue;
    }
    ++chunk.stats.records;
    chunk.records.push_back(std::move(**rec));
  }
  return chunk;
}

/// Ordered reduction: concatenates records chunk by chunk, folds the
/// counters into `stats`, and merges the chunk-local quarantine sinks
/// (in order) into `sink` when one is provided.
template <typename Record>
std::vector<Record> ReduceParsedChunks(std::vector<ParsedChunk<Record>>&& chunks,
                                       ParseStats* stats,
                                       QuarantineSink* sink) {
  std::size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.records.size();
  std::vector<Record> out;
  out.reserve(total);
  for (auto& chunk : chunks) {
    out.insert(out.end(), std::make_move_iterator(chunk.records.begin()),
               std::make_move_iterator(chunk.records.end()));
    stats->MergeFrom(chunk.stats);
    if (sink != nullptr) sink->MergeFrom(std::move(chunk.sink));
  }
  return out;
}

/// Cuts `lines` into ranges of `chunk_lines` and runs `chunk_fn(span,
/// first_line_no, capture)` over them on the pool, returning the chunk
/// results in original order.  `chunk_fn` must be pure.
template <typename ChunkFn>
auto MapLineChunks(std::span<const std::string_view> lines,
                   std::size_t chunk_lines, ThreadPool* pool,
                   const QuarantineConfig* capture, ChunkFn&& chunk_fn)
    -> std::vector<decltype(chunk_fn(lines, std::uint64_t{1}, capture))> {
  const std::vector<IndexRange> ranges = ChunkRanges(lines.size(), chunk_lines);
  return ParallelMap(pool, ranges.size(), [&](std::size_t i) {
    return chunk_fn(lines.subspan(ranges[i].begin, ranges[i].size()),
                    static_cast<std::uint64_t>(ranges[i].begin) + 1, capture);
  });
}

/// Builds a string_view per line of an owning vector (the compatibility
/// shim under the legacy vector<string> ParseLines overloads).
inline std::vector<std::string_view> LineViews(
    const std::vector<std::string>& lines) {
  std::vector<std::string_view> views;
  views.reserve(lines.size());
  for (const std::string& line : lines) views.emplace_back(line);
  return views;
}

}  // namespace ld
