#include "logdiver/correlate.hpp"

#include <algorithm>
#include <cstdlib>
#include <span>

#include "common/obs/names.hpp"
#include "common/obs/obs.hpp"
#include "common/parallel.hpp"
#include "logdiver/columns.hpp"

namespace ld {
namespace {

constexpr int kSigTerm = 15;

constexpr std::uint32_t kNoTuple = 0xffffffffu;

/// Runs per classification chunk.  Each run is a handful of binary
/// searches, so chunks are kept large enough to amortize task dispatch
/// while still splitting a multi-million-run trace across the pool.
constexpr std::size_t kClassifyChunkRuns = 4096;

/// Spatial index: for each node, the fatal node-scoped tuples that can
/// affect it, plus the system-wide incident list.
///
/// Layout is CSR (one offsets array + one packed index array) rather
/// than a map of per-node vectors: candidate lookup is two array reads
/// and a binary search over a contiguous row, and building it is three
/// linear passes with exactly two allocations.  The eligible tuples are
/// pre-sorted by (first, index) once, so every row and the system list
/// come out time-ordered without any per-row sort.
///
/// Queries read only the TupleColumns SoA view (dense int64 first-event
/// times and byte-wide enums); the AoS tuple vector is touched solely
/// while building, for the per-tuple node lists and impact windows.
class TupleIndex {
 public:
  TupleIndex(const std::vector<ErrorTuple>& tuples, const TupleColumns& cols,
             std::size_t node_count, Duration incident_slack)
      : cols_(cols) {
    std::vector<std::uint32_t> fatal;
    fatal.reserve(cols.size());
    for (std::uint32_t i = 0; i < cols.size(); ++i) {
      if (static_cast<Severity>(cols.severity[i]) == Severity::kFatal) {
        fatal.push_back(i);
      }
    }
    std::sort(fatal.begin(), fatal.end(),
              [&cols](std::uint32_t a, std::uint32_t b) {
                if (cols.first[a] != cols.first[b]) {
                  return cols.first[a] < cols.first[b];
                }
                return a < b;
              });

    // Pass 1: per-node row widths (into offsets_[n + 1]) + system list.
    offsets_.assign(node_count + 1, 0);
    for (std::uint32_t idx : fatal) {
      if (static_cast<LocScope>(cols.scope[idx]) == LocScope::kSystem) {
        system_.push_back(idx);
        continue;
      }
      for (NodeIndex n : tuples[idx].nodes) {
        if (n < node_count) ++offsets_[n + 1];
      }
    }
    // Pass 2: widths -> row start offsets.
    for (std::size_t n = 0; n < node_count; ++n) {
      offsets_[n + 1] += offsets_[n];
    }
    // Pass 3: fill rows; the fill order inherits the (first, index)
    // sort, so each row is already time-ordered.
    entries_.resize(offsets_[node_count]);
    std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (std::uint32_t idx : fatal) {
      if (static_cast<LocScope>(cols.scope[idx]) == LocScope::kSystem) {
        continue;
      }
      for (NodeIndex n : tuples[idx].nodes) {
        if (n < node_count) entries_[cursor[n]++] = idx;
      }
    }

    // System incidents answer "which window covers this death?" with two
    // binary searches: one over start times for the eligible prefix, one
    // over the running max of slack-inflated window ends.  The prefix
    // max is non-decreasing by construction, and the first position
    // where it exceeds the death time is itself a covering incident.
    sys_start_.reserve(system_.size());
    sys_prefix_max_end_.reserve(system_.size());
    for (std::uint32_t idx : system_) {
      const Interval window =
          tuples[idx].ImpactWindow().Inflate(incident_slack);
      sys_start_.push_back(cols.first[idx]);
      const std::int64_t end = window.end.unix_seconds();
      sys_prefix_max_end_.push_back(
          sys_prefix_max_end_.empty()
              ? end
              : std::max(sys_prefix_max_end_.back(), end));
    }
  }

  /// Fatal tuples touching `node` with first-event time inside
  /// [lo, hi].  Appends indices to `out` in time order.
  void NodeCandidates(NodeIndex node, std::int64_t lo, std::int64_t hi,
                      std::vector<std::uint32_t>& out) const {
    if (static_cast<std::size_t>(node) + 1 >= offsets_.size()) return;
    const std::uint32_t* begin = entries_.data() + offsets_[node];
    const std::uint32_t* end = entries_.data() + offsets_[node + 1];
    const std::int64_t* first = cols_.first.data();
    const std::uint32_t* it = std::lower_bound(
        begin, end, lo, [first](std::uint32_t idx, std::int64_t v) {
          return first[idx] < v;
        });
    for (; it != end && first[*it] <= hi; ++it) {
      out.push_back(*it);
    }
  }

  /// Earliest system incident whose slack-inflated impact window covers
  /// `death`, or kNoTuple.  `slack` must match the constructor's.
  std::uint32_t FindSystemCause(std::int64_t death,
                                std::int64_t slack) const {
    // Eligible prefix: inflated window start (first - slack) <= death.
    const auto hi =
        std::upper_bound(sys_start_.begin(), sys_start_.end(), death + slack) -
        sys_start_.begin();
    // First position whose running-max window end is past the death.
    const auto it = std::upper_bound(sys_prefix_max_end_.begin(),
                                     sys_prefix_max_end_.begin() + hi, death);
    if (it == sys_prefix_max_end_.begin() + hi) return kNoTuple;
    return system_[it - sys_prefix_max_end_.begin()];
  }

 private:
  const TupleColumns& cols_;
  std::vector<std::uint32_t> offsets_;  // node -> row start; size nodes + 1
  std::vector<std::uint32_t> entries_;  // packed tuple indices, row-major
  std::vector<std::uint32_t> system_;   // system incidents by (first, index)
  std::vector<std::int64_t> sys_start_;
  std::vector<std::int64_t> sys_prefix_max_end_;
};

}  // namespace

Correlator::Correlator(const Machine& machine, CorrelatorConfig config)
    : machine_(machine), config_(config) {}

std::vector<ClassifiedRun> Correlator::Classify(
    const std::vector<AppRun>& runs, const std::vector<ErrorTuple>& tuples,
    ThreadPool* pool) const {
  const std::uint64_t start_ns = LD_OBS_NOW_NS();
  const TupleColumns tcols = TupleColumns::FromTuples(tuples);
  const RunColumns rcols = RunColumns::FromRuns(runs);
  const TupleIndex index(tuples, tcols, machine_.node_count(),
                         config_.incident_slack);
  if (start_ns != 0) {
    LD_OBS_HIST_RECORD(obs::names::kCorrelateIndexMicros,
                       (LD_OBS_NOW_NS() - start_ns) / 1000);
  }

  // The widest per-category `before` window bounds the candidate fetch;
  // each candidate is then checked against its own category's window.
  Duration max_before = config_.attribution_before;
  for (const auto& [cat, window] : config_.category_before) {
    max_before = std::max(max_before, window);
  }
  const std::int64_t slack = config_.incident_slack.seconds();

  // Finds the best node-scoped fatal tuple explaining a death at
  // `death` on `nodes`: the closest-in-time candidate whose category
  // window admits it.  `candidates` is caller-provided scratch so a
  // worker classifying a whole chunk reuses one buffer.
  auto find_node_cause =
      [&](std::span<const NodeIndex> nodes, std::int64_t death,
          std::vector<std::uint32_t>& candidates) -> std::uint32_t {
    candidates.clear();
    const std::int64_t lo = death - max_before.seconds();
    const std::int64_t hi = death + config_.attribution_after.seconds();
    for (NodeIndex n : nodes) {
      index.NodeCandidates(n, lo, hi, candidates);
    }
    std::uint32_t best = kNoTuple;
    std::int64_t best_gap = 0;
    for (std::uint32_t idx : candidates) {
      const auto category = static_cast<ErrorCategory>(tcols.category[idx]);
      const std::int64_t first = tcols.first[idx];
      if (first < death - config_.BeforeWindow(category).seconds()) continue;
      const std::int64_t gap = std::llabs(first - death);
      if (best == kNoTuple || gap < best_gap) {
        best = idx;
        best_gap = gap;
      }
    }
    return best;
  };

  // Each run's verdict is a pure function of (run, index, config);
  // chunks write disjoint index-ordered slots of `out`, so the result
  // cannot depend on thread count or scheduling.
  auto classify_run = [&](std::uint32_t i,
                          std::vector<std::uint32_t>& candidates) {
    ClassifiedRun cls;
    cls.run_index = i;

    const auto attribute = [&](std::uint32_t cause) {
      if (cause != kNoTuple) {
        cls.cause = static_cast<ErrorCategory>(tcols.category[cause]);
        cls.tuple_id = tcols.id[cause];
      }
    };

    if ((rcols.flags[i] & RunColumns::kHasTermination) == 0) {
      cls.outcome = AppOutcome::kUnknown;
      return cls;
    }
    if (rcols.exit_code[i] == 0 && rcols.exit_signal[i] == 0) {
      cls.outcome = AppOutcome::kSuccess;
      return cls;
    }
    const std::int64_t death = rcols.end[i];
    if ((rcols.flags[i] & RunColumns::kKilledNodeFailure) != 0) {
      // ALPS observed the node loss: definitively system-caused.  Root
      // cause comes from correlation; search the failed node first.
      cls.outcome = AppOutcome::kSystemFailure;
      std::uint32_t cause =
          rcols.failed_nid[i] != kInvalidNode
              ? find_node_cause(
                    std::span<const NodeIndex>(&rcols.failed_nid[i], 1),
                    death, candidates)
              : kNoTuple;
      if (cause == kNoTuple) {
        cause = find_node_cause(rcols.Nodes(i), death, candidates);
      }
      if (cause == kNoTuple) {
        cause = index.FindSystemCause(death, slack);
      }
      attribute(cause);
      return cls;
    }
    // Walltime: the job hit its limit and the run died by SIGTERM at
    // (or right before) job_start + limit.
    if (rcols.walltime_limit[i] > 0 && rcols.exit_signal[i] == kSigTerm) {
      const std::int64_t used = death - rcols.job_start[i];
      if (used + config_.walltime_tolerance.seconds() >=
          rcols.walltime_limit[i]) {
        cls.outcome = AppOutcome::kWalltime;
        return cls;
      }
    }
    // Abnormal exit: blame a system error only with log evidence.
    std::uint32_t cause = find_node_cause(rcols.Nodes(i), death, candidates);
    if (cause == kNoTuple) {
      cause = index.FindSystemCause(death, slack);
    }
    if (cause != kNoTuple) {
      cls.outcome = AppOutcome::kSystemFailure;
      attribute(cause);
    } else {
      cls.outcome = AppOutcome::kUserFailure;
    }
    return cls;
  };

  std::vector<ClassifiedRun> out(runs.size());
  const std::vector<IndexRange> chunks =
      ChunkRanges(runs.size(), kClassifyChunkRuns);
  ParallelFor(pool, chunks.size(), [&](std::size_t c) {
    LD_OBS_SPAN("classify/chunk");
    std::vector<std::uint32_t> candidates;  // reused across the chunk
    const IndexRange range = chunks[c];
    for (std::size_t i = range.begin; i < range.end; ++i) {
      out[i] = classify_run(static_cast<std::uint32_t>(i), candidates);
    }
  });
  LD_OBS_COUNTER_ADD(obs::names::kCorrelateRunsTotal, runs.size());
  LD_OBS_COUNTER_ADD(obs::names::kCorrelateChunksTotal, chunks.size());
  if (start_ns != 0) {
    LD_OBS_HIST_RECORD(obs::names::kCorrelateTotalMicros,
                       (LD_OBS_NOW_NS() - start_ns) / 1000);
  }
  return out;
}

}  // namespace ld
