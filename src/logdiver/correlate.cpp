#include "logdiver/correlate.hpp"

#include <algorithm>
#include <cstdlib>
#include <span>

#include "common/obs/names.hpp"
#include "common/obs/obs.hpp"
#include "common/parallel.hpp"

namespace ld {
namespace {

constexpr int kSigTerm = 15;

/// Runs per classification chunk.  Each run is a handful of binary
/// searches, so chunks are kept large enough to amortize task dispatch
/// while still splitting a multi-million-run trace across the pool.
constexpr std::size_t kClassifyChunkRuns = 4096;

/// Spatial index: for each node, the fatal node-scoped tuples that can
/// affect it, plus the system-wide incident list.
///
/// Layout is CSR (one offsets array + one packed index array) rather
/// than a map of per-node vectors: candidate lookup is two array reads
/// and a binary search over a contiguous row, and building it is three
/// linear passes with exactly two allocations.  The eligible tuples are
/// pre-sorted by (first, index) once, so every row and the system list
/// come out time-ordered without any per-row sort.
class TupleIndex {
 public:
  TupleIndex(const std::vector<ErrorTuple>& tuples, std::size_t node_count,
             Duration incident_slack) {
    std::vector<std::uint32_t> fatal;
    fatal.reserve(tuples.size());
    for (std::uint32_t i = 0; i < tuples.size(); ++i) {
      if (tuples[i].severity == Severity::kFatal) fatal.push_back(i);
    }
    std::sort(fatal.begin(), fatal.end(),
              [&tuples](std::uint32_t a, std::uint32_t b) {
                if (tuples[a].first != tuples[b].first) {
                  return tuples[a].first < tuples[b].first;
                }
                return a < b;
              });

    // Pass 1: per-node row widths (into offsets_[n + 1]) + system list.
    offsets_.assign(node_count + 1, 0);
    for (std::uint32_t idx : fatal) {
      const ErrorTuple& t = tuples[idx];
      if (t.scope == LocScope::kSystem) {
        system_.push_back(idx);
        continue;
      }
      for (NodeIndex n : t.nodes) {
        if (n < node_count) ++offsets_[n + 1];
      }
    }
    // Pass 2: widths -> row start offsets.
    for (std::size_t n = 0; n < node_count; ++n) {
      offsets_[n + 1] += offsets_[n];
    }
    // Pass 3: fill rows; the fill order inherits the (first, index)
    // sort, so each row is already time-ordered.
    entries_.resize(offsets_[node_count]);
    std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (std::uint32_t idx : fatal) {
      const ErrorTuple& t = tuples[idx];
      if (t.scope == LocScope::kSystem) continue;
      for (NodeIndex n : t.nodes) {
        if (n < node_count) entries_[cursor[n]++] = idx;
      }
    }

    // System incidents answer "which window covers this death?" with two
    // binary searches: one over start times for the eligible prefix, one
    // over the running max of slack-inflated window ends.  The prefix
    // max is non-decreasing by construction, and the first position
    // where it exceeds the death time is itself a covering incident.
    sys_start_.reserve(system_.size());
    sys_prefix_max_end_.reserve(system_.size());
    for (std::uint32_t idx : system_) {
      const Interval window =
          tuples[idx].ImpactWindow().Inflate(incident_slack);
      sys_start_.push_back(tuples[idx].first);
      const TimePoint prev = sys_prefix_max_end_.empty()
                                 ? window.end
                                 : sys_prefix_max_end_.back();
      sys_prefix_max_end_.push_back(std::max(prev, window.end));
    }
  }

  /// Fatal tuples touching `node` with first-event time inside
  /// [lo, hi].  Appends indices to `out` in time order.
  void NodeCandidates(const std::vector<ErrorTuple>& tuples, NodeIndex node,
                      TimePoint lo, TimePoint hi,
                      std::vector<std::uint32_t>& out) const {
    if (static_cast<std::size_t>(node) + 1 >= offsets_.size()) return;
    const std::uint32_t* begin = entries_.data() + offsets_[node];
    const std::uint32_t* end = entries_.data() + offsets_[node + 1];
    const std::uint32_t* it = std::lower_bound(
        begin, end, lo, [&tuples](std::uint32_t idx, TimePoint v) {
          return tuples[idx].first < v;
        });
    for (; it != end && tuples[*it].first <= hi; ++it) {
      out.push_back(*it);
    }
  }

  /// Earliest system incident whose slack-inflated impact window covers
  /// `death`, or null.  `slack` must match the constructor's.
  const ErrorTuple* FindSystemCause(const std::vector<ErrorTuple>& tuples,
                                    TimePoint death, Duration slack) const {
    // Eligible prefix: inflated window start (first - slack) <= death.
    const auto hi =
        std::upper_bound(sys_start_.begin(), sys_start_.end(), death + slack) -
        sys_start_.begin();
    // First position whose running-max window end is past the death.
    const auto it = std::upper_bound(sys_prefix_max_end_.begin(),
                                     sys_prefix_max_end_.begin() + hi, death);
    if (it == sys_prefix_max_end_.begin() + hi) return nullptr;
    return &tuples[system_[it - sys_prefix_max_end_.begin()]];
  }

 private:
  std::vector<std::uint32_t> offsets_;  // node -> row start; size nodes + 1
  std::vector<std::uint32_t> entries_;  // packed tuple indices, row-major
  std::vector<std::uint32_t> system_;   // system incidents by (first, index)
  std::vector<TimePoint> sys_start_;
  std::vector<TimePoint> sys_prefix_max_end_;
};

}  // namespace

Correlator::Correlator(const Machine& machine, CorrelatorConfig config)
    : machine_(machine), config_(config) {}

std::vector<ClassifiedRun> Correlator::Classify(
    const std::vector<AppRun>& runs, const std::vector<ErrorTuple>& tuples,
    ThreadPool* pool) const {
  const std::uint64_t start_ns = LD_OBS_NOW_NS();
  const TupleIndex index(tuples, machine_.node_count(),
                         config_.incident_slack);
  if (start_ns != 0) {
    LD_OBS_HIST_RECORD(obs::names::kCorrelateIndexMicros,
                       (LD_OBS_NOW_NS() - start_ns) / 1000);
  }

  // The widest per-category `before` window bounds the candidate fetch;
  // each candidate is then checked against its own category's window.
  Duration max_before = config_.attribution_before;
  for (const auto& [cat, window] : config_.category_before) {
    max_before = std::max(max_before, window);
  }

  // Finds the best node-scoped fatal tuple explaining a death at
  // `death` on `nodes`: the closest-in-time candidate whose category
  // window admits it.  `candidates` is caller-provided scratch so a
  // worker classifying a whole chunk reuses one buffer.
  auto find_node_cause =
      [&](std::span<const NodeIndex> nodes, TimePoint death,
          std::vector<std::uint32_t>& candidates) -> const ErrorTuple* {
    candidates.clear();
    const TimePoint lo = death - max_before;
    const TimePoint hi = death + config_.attribution_after;
    for (NodeIndex n : nodes) {
      index.NodeCandidates(tuples, n, lo, hi, candidates);
    }
    const ErrorTuple* best = nullptr;
    std::int64_t best_gap = 0;
    for (std::uint32_t idx : candidates) {
      const ErrorTuple& t = tuples[idx];
      if (t.first < death - config_.BeforeWindow(t.category)) continue;
      const std::int64_t gap = std::llabs((t.first - death).seconds());
      if (best == nullptr || gap < best_gap) {
        best = &t;
        best_gap = gap;
      }
    }
    return best;
  };

  // Each run's verdict is a pure function of (run, index, config);
  // chunks write disjoint index-ordered slots of `out`, so the result
  // cannot depend on thread count or scheduling.
  auto classify_run = [&](std::uint32_t i,
                          std::vector<std::uint32_t>& candidates) {
    const AppRun& run = runs[i];
    ClassifiedRun cls;
    cls.run_index = i;

    if (!run.has_termination) {
      cls.outcome = AppOutcome::kUnknown;
      return cls;
    }
    if (run.exit_code == 0 && run.exit_signal == 0) {
      cls.outcome = AppOutcome::kSuccess;
      return cls;
    }
    if (run.killed_node_failure) {
      // ALPS observed the node loss: definitively system-caused.  Root
      // cause comes from correlation; search the failed node first.
      cls.outcome = AppOutcome::kSystemFailure;
      const ErrorTuple* cause =
          run.failed_nid != kInvalidNode
              ? find_node_cause(std::span<const NodeIndex>(&run.failed_nid, 1),
                                run.end, candidates)
              : nullptr;
      if (cause == nullptr) {
        cause = find_node_cause(run.nodes, run.end, candidates);
      }
      if (cause == nullptr) {
        cause = index.FindSystemCause(tuples, run.end, config_.incident_slack);
      }
      if (cause != nullptr) {
        cls.cause = cause->category;
        cls.tuple_id = cause->id;
      }
      return cls;
    }
    // Walltime: the job hit its limit and the run died by SIGTERM at
    // (or right before) job_start + limit.
    if (run.walltime_limit.seconds() > 0 && run.exit_signal == kSigTerm) {
      const Duration used = run.end - run.job_start;
      if (used + config_.walltime_tolerance >= run.walltime_limit) {
        cls.outcome = AppOutcome::kWalltime;
        return cls;
      }
    }
    // Abnormal exit: blame a system error only with log evidence.
    const ErrorTuple* cause = find_node_cause(run.nodes, run.end, candidates);
    if (cause == nullptr) {
      cause = index.FindSystemCause(tuples, run.end, config_.incident_slack);
    }
    if (cause != nullptr) {
      cls.outcome = AppOutcome::kSystemFailure;
      cls.cause = cause->category;
      cls.tuple_id = cause->id;
    } else {
      cls.outcome = AppOutcome::kUserFailure;
    }
    return cls;
  };

  std::vector<ClassifiedRun> out(runs.size());
  const std::vector<IndexRange> chunks =
      ChunkRanges(runs.size(), kClassifyChunkRuns);
  ParallelFor(pool, chunks.size(), [&](std::size_t c) {
    LD_OBS_SPAN("classify/chunk");
    std::vector<std::uint32_t> candidates;  // reused across the chunk
    const IndexRange range = chunks[c];
    for (std::size_t i = range.begin; i < range.end; ++i) {
      out[i] = classify_run(static_cast<std::uint32_t>(i), candidates);
    }
  });
  LD_OBS_COUNTER_ADD(obs::names::kCorrelateRunsTotal, runs.size());
  LD_OBS_COUNTER_ADD(obs::names::kCorrelateChunksTotal, chunks.size());
  if (start_ns != 0) {
    LD_OBS_HIST_RECORD(obs::names::kCorrelateTotalMicros,
                       (LD_OBS_NOW_NS() - start_ns) / 1000);
  }
  return out;
}

}  // namespace ld
