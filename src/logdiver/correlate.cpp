#include "logdiver/correlate.hpp"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

namespace ld {
namespace {

constexpr int kSigTerm = 15;

/// Spatial index: for each node, the fatal node-scoped tuples that can
/// affect it, sorted by first-event time.
class TupleIndex {
 public:
  TupleIndex(const std::vector<ErrorTuple>& tuples) {
    for (std::uint32_t i = 0; i < tuples.size(); ++i) {
      const ErrorTuple& t = tuples[i];
      if (t.severity != Severity::kFatal) continue;
      if (t.scope == LocScope::kSystem) {
        system_.push_back(i);
        continue;
      }
      for (NodeIndex n : t.nodes) {
        per_node_[n].push_back(i);
      }
    }
    auto by_time = [&tuples](std::uint32_t a, std::uint32_t b) {
      return tuples[a].first < tuples[b].first;
    };
    for (auto& [node, list] : per_node_) {
      std::sort(list.begin(), list.end(), by_time);
    }
    std::sort(system_.begin(), system_.end(), by_time);
  }

  /// Fatal tuples touching `node` with first-event time inside
  /// [lo, hi].  Appends indices to `out`.
  void NodeCandidates(const std::vector<ErrorTuple>& tuples, NodeIndex node,
                      TimePoint lo, TimePoint hi,
                      std::vector<std::uint32_t>& out) const {
    const auto it = per_node_.find(node);
    if (it == per_node_.end()) return;
    const auto& list = it->second;
    auto begin = std::lower_bound(
        list.begin(), list.end(), lo,
        [&tuples](std::uint32_t idx, TimePoint v) {
          return tuples[idx].first < v;
        });
    for (; begin != list.end() && tuples[*begin].first <= hi; ++begin) {
      out.push_back(*begin);
    }
  }

  const std::vector<std::uint32_t>& system_tuples() const { return system_; }

 private:
  std::unordered_map<NodeIndex, std::vector<std::uint32_t>> per_node_;
  std::vector<std::uint32_t> system_;
};

}  // namespace

Correlator::Correlator(const Machine& machine, CorrelatorConfig config)
    : machine_(machine), config_(config) {}

std::vector<ClassifiedRun> Correlator::Classify(
    const std::vector<AppRun>& runs,
    const std::vector<ErrorTuple>& tuples) const {
  const TupleIndex index(tuples);

  // The widest per-category `before` window bounds the candidate fetch;
  // each candidate is then checked against its own category's window.
  Duration max_before = config_.attribution_before;
  for (const auto& [cat, window] : config_.category_before) {
    max_before = std::max(max_before, window);
  }

  // Finds the best node-scoped fatal tuple explaining a death at
  // `death` on `nodes`: the closest-in-time candidate whose category
  // window admits it.
  auto find_node_cause = [&](const std::vector<NodeIndex>& nodes,
                             TimePoint death) -> const ErrorTuple* {
    const TimePoint lo = death - max_before;
    const TimePoint hi = death + config_.attribution_after;
    std::vector<std::uint32_t> candidates;
    for (NodeIndex n : nodes) {
      index.NodeCandidates(tuples, n, lo, hi, candidates);
    }
    const ErrorTuple* best = nullptr;
    std::int64_t best_gap = 0;
    for (std::uint32_t idx : candidates) {
      const ErrorTuple& t = tuples[idx];
      if (t.first < death - config_.BeforeWindow(t.category)) continue;
      const std::int64_t gap =
          std::llabs((t.first - death).seconds());
      if (best == nullptr || gap < best_gap) {
        best = &t;
        best_gap = gap;
      }
    }
    return best;
  };

  // Finds a system incident whose (slack-inflated) impact window covers
  // the death time.
  auto find_system_cause = [&](TimePoint death) -> const ErrorTuple* {
    for (std::uint32_t idx : index.system_tuples()) {
      const ErrorTuple& t = tuples[idx];
      const Interval window = t.ImpactWindow().Inflate(config_.incident_slack);
      if (window.Contains(death)) return &t;
      if (t.first > death + config_.incident_slack) break;  // sorted
    }
    return nullptr;
  };

  std::vector<ClassifiedRun> out;
  out.reserve(runs.size());
  for (std::uint32_t i = 0; i < runs.size(); ++i) {
    const AppRun& run = runs[i];
    ClassifiedRun cls;
    cls.run_index = i;

    if (!run.has_termination) {
      cls.outcome = AppOutcome::kUnknown;
      out.push_back(cls);
      continue;
    }
    if (run.exit_code == 0 && run.exit_signal == 0) {
      cls.outcome = AppOutcome::kSuccess;
      out.push_back(cls);
      continue;
    }
    if (run.killed_node_failure) {
      // ALPS observed the node loss: definitively system-caused.  Root
      // cause comes from correlation; search the failed node first.
      cls.outcome = AppOutcome::kSystemFailure;
      std::vector<NodeIndex> focus;
      if (run.failed_nid != kInvalidNode) focus.push_back(run.failed_nid);
      const ErrorTuple* cause = focus.empty()
                                    ? nullptr
                                    : find_node_cause(focus, run.end);
      if (cause == nullptr) cause = find_node_cause(run.nodes, run.end);
      if (cause == nullptr) cause = find_system_cause(run.end);
      if (cause != nullptr) {
        cls.cause = cause->category;
        cls.tuple_id = cause->id;
      }
      out.push_back(cls);
      continue;
    }
    // Walltime: the job hit its limit and the run died by SIGTERM at
    // (or right before) job_start + limit.
    if (run.walltime_limit.seconds() > 0 && run.exit_signal == kSigTerm) {
      const Duration used = run.end - run.job_start;
      if (used + config_.walltime_tolerance >= run.walltime_limit) {
        cls.outcome = AppOutcome::kWalltime;
        out.push_back(cls);
        continue;
      }
    }
    // Abnormal exit: blame a system error only with log evidence.
    const ErrorTuple* cause = find_node_cause(run.nodes, run.end);
    if (cause == nullptr) cause = find_system_cause(run.end);
    if (cause != nullptr) {
      cls.outcome = AppOutcome::kSystemFailure;
      cls.cause = cause->category;
      cls.tuple_id = cause->id;
    } else {
      cls.outcome = AppOutcome::kUserFailure;
    }
    out.push_back(cls);
  }
  return out;
}

}  // namespace ld
