// Zero-copy file ingestion: mmap-backed file views split into newline-
// aligned blocks, each block split into string_view lines.
//
// The batch pipeline reads multi-gigabyte bundles; copying every line
// into a std::string (the old ReadLines path) doubles the memory and
// burns the parse budget on allocator traffic.  Here the file is mapped
// once (with a read-into-buffer fallback for filesystems that refuse
// mmap), cut into ~4 MB blocks whose edges land on newline boundaries —
// so a line spanning a block edge belongs wholly to the earlier block —
// and the per-block line splitting runs on the ingestion thread pool.
// Every line is a view into the mapping: zero copies until a parser
// materializes the fields it keeps.
//
// Line semantics match the legacy ReadLines exactly: '\n' terminates a
// line, a trailing '\r' is stripped (CRLF logs), a final unterminated
// line is kept, and a trailing newline does not produce an empty line.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace ld {

class ThreadPool;

/// Target block size for SplitBlocks/SplitLinesParallel: big enough to
/// amortize task dispatch, small enough to load-balance a 4-thread pool
/// on a ~100 MB source file.
inline constexpr std::size_t kDefaultBlockBytes = std::size_t{4} << 20;

/// A read-only view of a whole file.  Prefers mmap (the kernel pages in
/// what the parsers touch, nothing is copied); falls back to reading the
/// file into an owned buffer when mmap is unavailable.  Move-only; the
/// data() view stays valid across moves (the mapping address does not
/// change) and dies with the object.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  static Result<MappedFile> Open(const std::string& path);

  std::string_view data() const {
    if (map_ != nullptr) {
      return std::string_view(static_cast<const char*>(map_), size_);
    }
    return std::string_view(fallback_.data(), fallback_.size());
  }
  std::size_t size() const { return data().size(); }
  /// True when the data is an actual mmap (false: fallback buffer).
  bool mapped() const { return map_ != nullptr; }

 private:
  void Reset();

  void* map_ = nullptr;
  std::size_t size_ = 0;
  std::vector<char> fallback_;
};

/// Cuts `data` into consecutive blocks of roughly `target_block_bytes`,
/// extending each block to the next '\n' so no line spans two blocks.
/// Concatenating the blocks reproduces `data` byte for byte.
std::vector<std::string_view> SplitBlocks(std::string_view data,
                                          std::size_t target_block_bytes);

/// Appends the lines of `block` to `out` (ReadLines semantics, see the
/// file comment).  Views alias `block`.
void AppendLines(std::string_view block, std::vector<std::string_view>* out);

/// Splits a whole buffer into lines: blocks are split in parallel on the
/// pool (inline when the pool is null) and concatenated in file order,
/// so the result is identical at any thread count.
std::vector<std::string_view> SplitLinesParallel(
    std::string_view data, ThreadPool* pool,
    std::size_t target_block_bytes = kDefaultBlockBytes);

}  // namespace ld
