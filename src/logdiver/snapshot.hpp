// Versioned, CRC-checksummed binary snapshots of streaming-analysis
// state — the checkpoint half of the checkpoint-recovery pattern the
// tool applies to itself (DESIGN.md "Crash-tolerant streaming").
//
// A snapshot file is written atomically (tmp + fsync + rename) so a
// crash mid-write can never leave a half-written file under the final
// name; a torn or bit-flipped file is rejected by size/CRC validation
// and the loader falls back to the previous generation.  The byte
// layout is documented in docs/FORMATS.md ("snapshot — analyzer
// checkpoint files") and is the contract the version number guards.
//
// Serialization is deliberately exact: doubles round-trip through their
// IEEE-754 bit pattern, so a restored analyzer continues producing
// *bit-identical* metrics to an uninterrupted pass — the property
// bench/crash_campaign asserts cell by cell.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"

namespace ld {

struct AppRun;
struct ErrorTuple;
struct TorqueRecord;
struct ParseStats;
struct IngestStats;
struct QuarantineEntry;
struct MetricsReport;

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected).  This is the
/// checksum both the snapshot file trailer and the report fingerprints
/// use; Crc32("123456789") == 0xCBF43926.
std::uint32_t Crc32(const void* data, std::size_t size);
inline std::uint32_t Crc32(const std::vector<std::uint8_t>& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

/// Append-only little-endian byte sink.  All multi-byte integers are
/// written LE regardless of host order; doubles as their bit pattern.
class SnapshotWriter {
 public:
  void U8(std::uint8_t v) { buffer_.push_back(v); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v);
  void Time(TimePoint t) { I64(t.unix_seconds()); }
  void Dur(Duration d) { I64(d.seconds()); }
  /// u32 length prefix + raw bytes.
  void Str(std::string_view s);
  /// Unprefixed raw bytes (the bulk column dumps of the parsed-bundle
  /// cache); the caller owns length framing.
  void Raw(const void* data, std::size_t size);
  /// LEB128 variable-length unsigned integer: 7 value bits per byte,
  /// high bit = continuation, little-endian groups.  1 byte for values
  /// < 128 — the workhorse of the bundle cache's compacted columns.
  void Varint(std::uint64_t v);
  /// Zigzag-mapped signed varint ((v << 1) ^ (v >> 63)), so small
  /// negative deltas stay small on disk.
  void VarintSigned(std::int64_t v);

  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::vector<std::uint8_t> TakeBytes() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Sequential reader over a snapshot payload.  Reading past the end (or
/// a length prefix past the end) latches an error status and returns
/// zero values; callers check `status()` once after a batch of reads
/// instead of per-field — the CRC already vouches for the bytes, so a
/// failure here means a layout/version bug, not data corruption.
class SnapshotReader {
 public:
  SnapshotReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit SnapshotReader(const std::vector<std::uint8_t>& bytes)
      : SnapshotReader(bytes.data(), bytes.size()) {}

  std::uint8_t U8();
  bool Bool() { return U8() != 0; }
  std::uint32_t U32();
  std::uint64_t U64();
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64();
  TimePoint Time() { return TimePoint(I64()); }
  Duration Dur() { return Duration(I64()); }
  std::string Str();
  /// Bulk copy of `size` raw bytes into `out`; zero-fills and latches
  /// an error when fewer remain.
  void Raw(void* out, std::size_t size);
  /// LEB128 unsigned varint; latches an error on truncation or on an
  /// encoding longer than 10 bytes (malformed input, not corruption —
  /// the CRC vouches for the bytes).
  std::uint64_t Varint();
  /// Zigzag-decoded signed varint.
  std::int64_t VarintSigned();

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  /// Bytes not yet consumed; 0 when fully read.
  std::size_t remaining() const { return size_ - pos_; }
  void Fail(std::string why);

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  Status status_;
};

// --- shared struct serializers (used by the analyzer state hooks) ----

void SaveParseStats(SnapshotWriter& w, const ParseStats& s);
void LoadParseStats(SnapshotReader& r, ParseStats& s);
void SaveIngestStats(SnapshotWriter& w, const IngestStats& s);
void LoadIngestStats(SnapshotReader& r, IngestStats& s);
void SaveStatus(SnapshotWriter& w, const Status& s);
Status LoadStatus(SnapshotReader& r);
void SaveTorqueRecord(SnapshotWriter& w, const TorqueRecord& rec);
void LoadTorqueRecord(SnapshotReader& r, TorqueRecord& rec);
void SaveAppRun(SnapshotWriter& w, const AppRun& run);
void LoadAppRun(SnapshotReader& r, AppRun& run);
void SaveErrorTuple(SnapshotWriter& w, const ErrorTuple& tuple);
void LoadErrorTuple(SnapshotReader& r, ErrorTuple& tuple);
void SaveQuarantineEntry(SnapshotWriter& w, const QuarantineEntry& e);
void LoadQuarantineEntry(SnapshotReader& r, QuarantineEntry& e);

/// Serializes every field of a report (fractions, CI bounds, ingest
/// counters, all tables and series) into `w` — the basis of the
/// bit-identical equivalence check in bench/crash_campaign.
void SaveMetricsReport(SnapshotWriter& w, const MetricsReport& report);
/// Inverse of SaveMetricsReport: reads the exact field layout back.  A
/// loaded report re-serializes to the same bytes (FingerprintReport
/// equal) — the parsed-bundle cache depends on this round trip.
void LoadMetricsReport(SnapshotReader& r, MetricsReport& report);
/// CRC-32 over the full serialized report: two reports fingerprint
/// equal iff every number in them is bit-identical.
std::uint32_t FingerprintReport(const MetricsReport& report);
/// CRC-32 over the serialized ingest counters.
std::uint32_t FingerprintIngest(const IngestStats& stats);

// --- snapshot files --------------------------------------------------

/// On-disk framing version; bump when the header layout changes.  The
/// analyzer payload carries its own version (see streaming.cpp).
/// Version 2 added the input fingerprint to the header, making every
/// snapshot (and every fleet partial built on this framing) a
/// self-describing unit: a loader can reject a file that belongs to a
/// different bundle or bundle partition without parsing the payload.
inline constexpr std::uint32_t kSnapshotFileVersion = 2;

/// Writes `magic | version | crc | size | fingerprint | payload` to
/// `path` atomically: the bytes go to `path + ".tmp"`, are fsync'd, and
/// the tmp is renamed over `path`.  A crash at any point leaves either
/// the old file or no file — never a torn one under the final name.
/// `fingerprint` identifies the input the payload was computed from
/// (see BundlePartitionFingerprint in resume.hpp); 0 = unspecified.
Status WriteSnapshotFile(const std::string& path,
                         const std::vector<std::uint8_t>& payload,
                         std::uint64_t fingerprint = 0);

/// Reads and validates a snapshot file: magic, version, declared size
/// against file size, and payload CRC.  Any mismatch is an error — a
/// torn/corrupt snapshot must never be silently restored.  The header
/// fingerprint is returned through `fingerprint` when non-null;
/// matching it against the caller's input is SnapshotStore's (or the
/// fleet validator's) job.
Result<std::vector<std::uint8_t>> ReadSnapshotFile(
    const std::string& path, std::uint64_t* fingerprint = nullptr);

/// Generation-managed snapshot directory: snapshot-000001.ldsnap,
/// snapshot-000002.ldsnap, ...  Writes always create the next
/// generation; loads walk newest-first past invalid files so a torn
/// final snapshot degrades to the previous one instead of failing.
class SnapshotStore {
 public:
  /// `keep_generations` older snapshots are retained after each write
  /// (min 2, so the newest generation always has a fallback).
  explicit SnapshotStore(std::string dir, std::size_t keep_generations = 2);

  /// Creates the directory if needed and writes the next generation,
  /// stamping `fingerprint` into the file header (0 = unspecified).
  Result<std::uint64_t> Write(const std::vector<std::uint8_t>& payload,
                              std::uint64_t fingerprint = 0);

  struct Loaded {
    std::vector<std::uint8_t> payload;
    std::uint64_t generation = 0;
    /// Header fingerprint of the loaded snapshot.
    std::uint64_t fingerprint = 0;
    /// Newer generations that failed validation and were skipped.
    std::uint64_t rejected = 0;
  };
  /// Newest valid snapshot; NotFound when the directory holds none.
  /// A non-zero `expected_fingerprint` additionally rejects snapshots
  /// whose header fingerprint differs — a checkpoint of a *different*
  /// bundle (the directory was reused, or a partial from another shard
  /// partition landed here) is as unusable as a torn one, and falls
  /// back the same way.  Every rejected generation, torn or
  /// mismatched, bumps `ld.snapshot.rejected_total`.
  Result<Loaded> LoadLatest(std::uint64_t expected_fingerprint = 0) const;

  /// Existing generation numbers, ascending.
  std::vector<std::uint64_t> Generations() const;
  /// Deletes every snapshot (fresh-start semantics for --no-resume).
  Status Clear() const;

  const std::string& dir() const { return dir_; }
  std::string PathFor(std::uint64_t generation) const;

 private:
  std::string dir_;
  std::size_t keep_generations_;
};

}  // namespace ld
