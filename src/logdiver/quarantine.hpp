// Ingestion hardening: quarantine sink, per-source error budgets, and
// the degradation policy that decides what happens when a log source
// turns out to be dirtier than expected.
//
// Real field bundles contain torn writes, replayed records, and clock
// skew (the corruption model in docs/FORMATS.md).  The parsers already
// reject malformed *lines*; this layer decides what the pipeline does
// with the rejects: capture them with reasons (quarantine-and-continue)
// or stop trusting the source entirely (fail-fast).  Either way, every
// dropped or deduplicated record is counted in IngestStats so degraded
// output is never silently presented as clean.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "logdiver/records.hpp"

namespace ld {

/// What to do when a source exceeds its malformed-line budget.
enum class DegradationPolicy : std::uint8_t {
  /// Abort the analysis: a source this dirty is probably the wrong file
  /// or a truncated transfer, and partial numbers would mislead.
  kFailFast,
  /// Keep analyzing what parses; the rejects land in the quarantine and
  /// the IngestStats counters disclose the damage.
  kQuarantineAndContinue,
};

const char* DegradationPolicyName(DegradationPolicy policy);

/// One rejected line, captured with its rejection reason.
struct QuarantineEntry {
  LogSource source = LogSource::kTorque;
  std::uint64_t line_number = 0;  // 1-based within the source stream
  std::string reason;             // Status::ToString() of the parse error
  std::string line;               // possibly truncated to max_line_bytes
};

struct QuarantineConfig {
  /// Entries retained verbatim; beyond this only counters grow.
  std::size_t max_entries = 10000;
  /// Captured line prefix length (quarantined lines can be huge garbage).
  std::size_t max_line_bytes = 256;
};

class SnapshotWriter;
class SnapshotReader;

/// Bounded capture of rejected lines.  Adding is cheap and never fails;
/// overflow beyond max_entries is counted, not stored.
class QuarantineSink {
 public:
  explicit QuarantineSink(QuarantineConfig config = {});

  void Add(LogSource source, std::uint64_t line_number, std::string_view line,
           const Status& why);

  /// Folds a chunk-local sink into this one, preserving the order the
  /// entries were added with and re-applying this sink's max_entries
  /// bound.  The parallel parse path gives every chunk a private sink
  /// (no locks on the hot path) and merges them in original chunk order,
  /// so the merged sink is bit-identical to a sequential pass.
  void MergeFrom(QuarantineSink&& other);

  const QuarantineConfig& config() const { return config_; }

  const std::vector<QuarantineEntry>& entries() const { return entries_; }
  /// Every rejection seen, including entries dropped on overflow.
  std::uint64_t total() const { return total_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t count(LogSource source) const;

  /// Renders the quarantine file format (see docs/FORMATS.md):
  ///   source|line_number|reason|line
  std::vector<std::string> Render() const;
  Status WriteTo(const std::string& path) const;

  /// Snapshot serialization hooks: entries, totals, overflow and the
  /// per-source counters round-trip; the config stays construction-time.
  void SaveState(SnapshotWriter& w) const;
  void LoadState(SnapshotReader& r);

 private:
  QuarantineConfig config_;
  std::vector<QuarantineEntry> entries_;
  std::uint64_t total_ = 0;
  std::uint64_t overflow_ = 0;
  std::array<std::uint64_t, kNumLogSources> by_source_{};
};

/// Per-source malformed-line budget: a source is over budget once its
/// malformed count exceeds BOTH the grace floor and the fraction of the
/// lines seen so far.  The floor keeps tiny test streams from tripping
/// on a single bad line; the fraction scales to production volumes.
struct ErrorBudget {
  std::uint64_t min_malformed = 100;
  double max_malformed_fraction = 0.05;

  bool Exceeded(const ParseStats& stats) const {
    return stats.malformed > min_malformed &&
           static_cast<double>(stats.malformed) >
               max_malformed_fraction * static_cast<double>(stats.lines);
  }
};

/// Knobs for the hardened ingestion path (batch and streaming).
struct IngestConfig {
  DegradationPolicy policy = DegradationPolicy::kQuarantineAndContinue;
  ErrorBudget budget;
  QuarantineConfig quarantine;
  /// Bounded-growth caps for the streaming analyzer's retained state.
  /// Exceeding them forcibly flushes the oldest entries (counted in
  /// IngestStats) instead of growing without bound on adversarial input.
  std::size_t max_pending_runs = 50000;
  std::size_t max_buffered_tuples = 100000;
};

/// Health counters of one ingestion pass.  All-zero on a clean bundle;
/// any nonzero field means the input was degraded and says exactly how.
struct IngestStats {
  std::uint64_t quarantined = 0;           // rejected lines captured
  std::uint64_t quarantine_overflow = 0;   // rejected beyond max_entries
  std::uint64_t duplicate_placements = 0;  // replayed apid placements
  std::uint64_t duplicate_terminations = 0;
  std::uint64_t duplicate_job_records = 0;  // replayed Torque S/E records
  std::uint64_t watermark_regressions = 0;  // Advance() calls clamped
  /// Runs classified before their finalize guard elapsed because
  /// pending_ hit max_pending_runs (attribution may be incomplete).
  std::uint64_t evicted_pending_runs = 0;
  /// Tuples dropped from the attribution buffer at max_buffered_tuples.
  std::uint64_t evicted_tuples = 0;
  /// Sources whose malformed-line budget was exceeded.
  std::uint64_t budget_exhausted_sources = 0;
  /// Lines discarded unread after fail-fast closed their source.
  std::uint64_t lines_dropped_after_budget = 0;

  bool clean() const {
    return quarantined == 0 && quarantine_overflow == 0 &&
           duplicate_placements == 0 && duplicate_terminations == 0 &&
           duplicate_job_records == 0 && watermark_regressions == 0 &&
           evicted_pending_runs == 0 && evicted_tuples == 0 &&
           budget_exhausted_sources == 0 && lines_dropped_after_budget == 0;
  }

  /// Counter-wise sum; associative and commutative, so partial stats
  /// from disjoint inputs merge in any order.
  void MergeFrom(const IngestStats& other) {
    quarantined += other.quarantined;
    quarantine_overflow += other.quarantine_overflow;
    duplicate_placements += other.duplicate_placements;
    duplicate_terminations += other.duplicate_terminations;
    duplicate_job_records += other.duplicate_job_records;
    watermark_regressions += other.watermark_regressions;
    evicted_pending_runs += other.evicted_pending_runs;
    evicted_tuples += other.evicted_tuples;
    budget_exhausted_sources += other.budget_exhausted_sources;
    lines_dropped_after_budget += other.lines_dropped_after_budget;
  }
};

}  // namespace ld
