#include "logdiver/torque_parser.hpp"

#include "common/strings.hpp"

namespace ld {
namespace {

Result<Duration> ParseWalltime(std::string_view text) {
  const auto parts = Split(text, ':');
  if (parts.size() != 3) {
    return ParseError("bad walltime: '" + std::string(text) + "'");
  }
  auto h = ParseInt(parts[0]);
  auto m = ParseInt(parts[1]);
  auto s = ParseInt(parts[2]);
  if (!h.ok()) return h.status();
  if (!m.ok()) return m.status();
  if (!s.ok()) return s.status();
  return Duration(*h * 3600 + *m * 60 + *s);
}

Result<TimePoint> EpochField(std::string_view record, std::string_view key) {
  auto raw = FindKeyValue(record, key);
  if (!raw.ok()) return raw.status();
  auto v = ParseInt(*raw);
  if (!v.ok()) return v.status();
  return TimePoint(*v);
}

}  // namespace

Result<std::optional<TorqueRecord>> TorqueParser::ParseLine(
    std::string_view line) {
  ++stats_.lines;
  const auto fields = Split(line, ';');
  if (fields.size() < 3) {
    ++stats_.malformed;
    return ParseError("torque: too few ';' fields");
  }
  const std::string_view type = fields[1];
  if (type != "S" && type != "E") {
    ++stats_.skipped;
    return std::optional<TorqueRecord>{};
  }
  // Jobid "123.bw" -> 123.
  const std::string_view jobid_text = fields[2];
  const std::size_t dot = jobid_text.find('.');
  auto jobid = ParseUint(dot == std::string_view::npos
                             ? jobid_text
                             : jobid_text.substr(0, dot));
  if (!jobid.ok()) {
    ++stats_.malformed;
    return jobid.status();
  }

  // Everything after the third ';' is the key=value payload; a jobname
  // containing ';' would split it, so rejoin.
  std::string payload;
  for (std::size_t i = 3; i < fields.size(); ++i) {
    if (i > 3) payload += ';';
    payload += std::string(fields[i]);
  }

  TorqueRecord rec;
  rec.jobid = *jobid;
  rec.kind = type == "S" ? TorqueRecord::Kind::kStart : TorqueRecord::Kind::kEnd;

  if (auto v = FindKeyValue(payload, "user"); v.ok()) rec.user = *v;
  if (auto v = FindKeyValue(payload, "queue"); v.ok()) rec.queue = *v;
  if (auto v = FindKeyValue(payload, "jobname"); v.ok()) rec.job_name = *v;

  auto submit = EpochField(payload, "ctime");
  auto start = EpochField(payload, "start");
  if (!submit.ok() || !start.ok()) {
    ++stats_.malformed;
    return ParseError("torque: missing ctime/start epoch fields");
  }
  rec.submit = *submit;
  rec.start = *start;
  rec.time = rec.start;

  if (auto v = FindKeyValue(payload, "Resource_List.nodect"); v.ok()) {
    if (auto n = ParseUint(*v); n.ok()) {
      rec.nodect = static_cast<std::uint32_t>(*n);
    }
  }
  if (auto v = FindKeyValue(payload, "Resource_List.walltime"); v.ok()) {
    if (auto d = ParseWalltime(*v); d.ok()) rec.walltime_limit = *d;
  }

  if (rec.kind == TorqueRecord::Kind::kEnd) {
    auto end = EpochField(payload, "end");
    if (!end.ok()) {
      ++stats_.malformed;
      return ParseError("torque: E record missing end epoch");
    }
    rec.end = *end;
    rec.time = rec.end;
    if (auto v = FindKeyValue(payload, "Exit_status"); v.ok()) {
      if (auto code = ParseInt(*v); code.ok()) {
        rec.exit_status = static_cast<int>(*code);
      }
    }
    if (auto v = FindKeyValue(payload, "resources_used.walltime"); v.ok()) {
      if (auto d = ParseWalltime(*v); d.ok()) rec.walltime_used = *d;
    }
  }

  ++stats_.records;
  return std::optional<TorqueRecord>{rec};
}

std::vector<TorqueRecord> TorqueParser::ParseLines(
    const std::vector<std::string>& lines) {
  std::vector<TorqueRecord> out;
  out.reserve(lines.size());
  for (const std::string& line : lines) {
    auto rec = ParseLine(line);
    if (rec.ok() && rec->has_value()) out.push_back(**rec);
  }
  return out;
}

}  // namespace ld
