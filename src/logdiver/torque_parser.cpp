#include "logdiver/torque_parser.hpp"

#include "common/strings.hpp"
#include "logdiver/quarantine.hpp"

namespace ld {
namespace {

Result<Duration> ParseWalltime(std::string_view text) {
  const auto parts = Split(text, ':');
  if (parts.size() != 3) {
    return ParseError("bad walltime: '" + std::string(text) + "'");
  }
  LD_ASSIGN_OR_RETURN(const auto h, ParseInt(parts[0]));
  LD_ASSIGN_OR_RETURN(const auto m, ParseInt(parts[1]));
  LD_ASSIGN_OR_RETURN(const auto s, ParseInt(parts[2]));
  return Duration(h * 3600 + m * 60 + s);
}

std::optional<TimePoint> EpochField(std::string_view record,
                                    std::string_view key) {
  const auto raw = FindKeyValueOpt(record, key);
  if (!raw.has_value()) return std::nullopt;
  const auto v = ParseInt(*raw);
  if (!v.ok()) return std::nullopt;
  return TimePoint(*v);
}

Result<std::optional<TorqueRecord>> ParseLineImpl(std::string_view line) {
  const auto fields = Split(line, ';');
  if (fields.size() < 3) {
    return ParseError("torque: too few ';' fields");
  }
  const std::string_view type = fields[1];
  if (type != "S" && type != "E") {
    return std::optional<TorqueRecord>{};
  }
  // Jobid "123.bw" -> 123.
  const std::string_view jobid_text = fields[2];
  const std::size_t dot = jobid_text.find('.');
  LD_ASSIGN_OR_RETURN(const auto jobid,
                      ParseUint(dot == std::string_view::npos
                                    ? jobid_text
                                    : jobid_text.substr(0, dot)));

  // Everything after the third ';' is the key=value payload.  The split
  // views alias `line`, so the payload — ';' separators included — is
  // just the tail of the line from fields[3] on; no re-join allocation.
  std::string_view payload;
  if (fields.size() > 3) {
    payload = std::string_view(
        fields[3].data(),
        static_cast<std::size_t>(line.data() + line.size() - fields[3].data()));
  }

  TorqueRecord rec;
  rec.jobid = jobid;
  rec.kind = type == "S" ? TorqueRecord::Kind::kStart : TorqueRecord::Kind::kEnd;

  if (auto v = FindKeyValueOpt(payload, "user")) rec.user = Intern(*v);
  if (auto v = FindKeyValueOpt(payload, "queue")) rec.queue = Intern(*v);
  if (auto v = FindKeyValueOpt(payload, "jobname")) rec.job_name = Intern(*v);

  const auto submit = EpochField(payload, "ctime");
  const auto start = EpochField(payload, "start");
  if (!submit.has_value() || !start.has_value()) {
    return ParseError("torque: missing ctime/start epoch fields");
  }
  rec.submit = *submit;
  rec.start = *start;
  rec.time = rec.start;

  if (auto v = FindKeyValueOpt(payload, "Resource_List.nodect")) {
    if (auto n = ParseUint(*v); n.ok()) {
      rec.nodect = static_cast<std::uint32_t>(*n);
    }
  }
  if (auto v = FindKeyValueOpt(payload, "Resource_List.walltime")) {
    if (auto d = ParseWalltime(*v); d.ok()) rec.walltime_limit = *d;
  }

  if (rec.kind == TorqueRecord::Kind::kEnd) {
    const auto end = EpochField(payload, "end");
    if (!end.has_value()) {
      return ParseError("torque: E record missing end epoch");
    }
    rec.end = *end;
    rec.time = rec.end;
    if (auto v = FindKeyValueOpt(payload, "Exit_status")) {
      if (auto code = ParseInt(*v); code.ok()) {
        rec.exit_status = static_cast<int>(*code);
      }
    }
    if (auto v = FindKeyValueOpt(payload, "resources_used.walltime")) {
      if (auto d = ParseWalltime(*v); d.ok()) rec.walltime_used = *d;
    }
  }

  return std::optional<TorqueRecord>{std::move(rec)};
}

}  // namespace

Result<std::optional<TorqueRecord>> TorqueParser::ParseLine(
    std::string_view line) {
  ++stats_.lines;
  auto rec = ParseLineImpl(line);
  if (!rec.ok()) {
    ++stats_.malformed;
  } else if (rec->has_value()) {
    ++stats_.records;
  } else {
    ++stats_.skipped;
  }
  return rec;
}

TorqueParser::Chunk TorqueParser::ParseChunk(
    std::span<const std::string_view> lines, std::uint64_t first_line_no,
    const QuarantineConfig* capture) {
  return ParseChunkWith<TorqueRecord>(
      lines, first_line_no, capture, LogSource::kTorque,
      [](std::string_view line) { return ParseLineImpl(line); });
}

std::vector<TorqueRecord> TorqueParser::ReduceChunks(
    std::vector<Chunk>&& chunks, QuarantineSink* sink) {
  return ReduceParsedChunks(std::move(chunks), &stats_, sink);
}

std::vector<TorqueRecord> TorqueParser::ParseLines(
    std::span<const std::string_view> lines, QuarantineSink* sink,
    ThreadPool* pool, std::size_t chunk_lines) {
  auto chunks = MapLineChunks(
      lines, chunk_lines, pool,
      sink != nullptr ? &sink->config() : nullptr,
      [](std::span<const std::string_view> slice, std::uint64_t first,
         const QuarantineConfig* capture) {
        return ParseChunk(slice, first, capture);
      });
  return ReduceChunks(std::move(chunks), sink);
}

std::vector<TorqueRecord> TorqueParser::ParseLines(
    const std::vector<std::string>& lines, QuarantineSink* sink) {
  const std::vector<std::string_view> views = LineViews(lines);
  return ParseLines(std::span<const std::string_view>(views), sink);
}

}  // namespace ld
