#include "logdiver/torque_parser.hpp"

#include "common/strings.hpp"
#include "logdiver/quarantine.hpp"

namespace ld {
namespace {

Result<Duration> ParseWalltime(std::string_view text) {
  const auto parts = Split(text, ':');
  if (parts.size() != 3) {
    return ParseError("bad walltime: '" + std::string(text) + "'");
  }
  LD_ASSIGN_OR_RETURN(const auto h, ParseInt(parts[0]));
  LD_ASSIGN_OR_RETURN(const auto m, ParseInt(parts[1]));
  LD_ASSIGN_OR_RETURN(const auto s, ParseInt(parts[2]));
  return Duration(h * 3600 + m * 60 + s);
}

Result<TimePoint> EpochField(std::string_view record, std::string_view key) {
  LD_ASSIGN_OR_RETURN(const auto raw, FindKeyValue(record, key));
  LD_ASSIGN_OR_RETURN(const auto v, ParseInt(raw));
  return TimePoint(v);
}

Result<std::optional<TorqueRecord>> ParseLineImpl(std::string_view line) {
  const auto fields = Split(line, ';');
  if (fields.size() < 3) {
    return ParseError("torque: too few ';' fields");
  }
  const std::string_view type = fields[1];
  if (type != "S" && type != "E") {
    return std::optional<TorqueRecord>{};
  }
  // Jobid "123.bw" -> 123.
  const std::string_view jobid_text = fields[2];
  const std::size_t dot = jobid_text.find('.');
  LD_ASSIGN_OR_RETURN(const auto jobid,
                      ParseUint(dot == std::string_view::npos
                                    ? jobid_text
                                    : jobid_text.substr(0, dot)));

  // Everything after the third ';' is the key=value payload; a jobname
  // containing ';' would split it, so rejoin.
  std::string payload;
  for (std::size_t i = 3; i < fields.size(); ++i) {
    if (i > 3) payload += ';';
    payload += std::string(fields[i]);
  }

  TorqueRecord rec;
  rec.jobid = jobid;
  rec.kind = type == "S" ? TorqueRecord::Kind::kStart : TorqueRecord::Kind::kEnd;

  if (auto v = FindKeyValue(payload, "user"); v.ok()) rec.user = *v;
  if (auto v = FindKeyValue(payload, "queue"); v.ok()) rec.queue = *v;
  if (auto v = FindKeyValue(payload, "jobname"); v.ok()) rec.job_name = *v;

  auto submit = EpochField(payload, "ctime");
  auto start = EpochField(payload, "start");
  if (!submit.ok() || !start.ok()) {
    return ParseError("torque: missing ctime/start epoch fields");
  }
  rec.submit = *submit;
  rec.start = *start;
  rec.time = rec.start;

  if (auto v = FindKeyValue(payload, "Resource_List.nodect"); v.ok()) {
    if (auto n = ParseUint(*v); n.ok()) {
      rec.nodect = static_cast<std::uint32_t>(*n);
    }
  }
  if (auto v = FindKeyValue(payload, "Resource_List.walltime"); v.ok()) {
    if (auto d = ParseWalltime(*v); d.ok()) rec.walltime_limit = *d;
  }

  if (rec.kind == TorqueRecord::Kind::kEnd) {
    auto end = EpochField(payload, "end");
    if (!end.ok()) {
      return ParseError("torque: E record missing end epoch");
    }
    rec.end = *end;
    rec.time = rec.end;
    if (auto v = FindKeyValue(payload, "Exit_status"); v.ok()) {
      if (auto code = ParseInt(*v); code.ok()) {
        rec.exit_status = static_cast<int>(*code);
      }
    }
    if (auto v = FindKeyValue(payload, "resources_used.walltime"); v.ok()) {
      if (auto d = ParseWalltime(*v); d.ok()) rec.walltime_used = *d;
    }
  }

  return std::optional<TorqueRecord>{rec};
}

}  // namespace

Result<std::optional<TorqueRecord>> TorqueParser::ParseLine(
    std::string_view line) {
  ++stats_.lines;
  auto rec = ParseLineImpl(line);
  if (!rec.ok()) {
    ++stats_.malformed;
  } else if (rec->has_value()) {
    ++stats_.records;
  } else {
    ++stats_.skipped;
  }
  return rec;
}

std::vector<TorqueRecord> TorqueParser::ParseLines(
    const std::vector<std::string>& lines, QuarantineSink* sink) {
  std::vector<TorqueRecord> out;
  out.reserve(lines.size());
  std::uint64_t line_no = 0;
  for (const std::string& line : lines) {
    ++line_no;
    auto rec = ParseLine(line);
    if (!rec.ok()) {
      if (sink != nullptr) {
        sink->Add(LogSource::kTorque, line_no, line, rec.status());
      }
      continue;
    }
    if (rec->has_value()) out.push_back(**rec);
  }
  return out;
}

}  // namespace ld
