#include "logdiver/torque_parser.hpp"

#include "common/strings.hpp"
#include "logdiver/quarantine.hpp"

namespace ld {
namespace {

Result<Duration> ParseWalltime(std::string_view text) {
  const auto parts = Split(text, ':');
  if (parts.size() != 3) {
    return ParseError("bad walltime: '" + std::string(text) + "'");
  }
  LD_ASSIGN_OR_RETURN(const auto h, ParseInt(parts[0]));
  LD_ASSIGN_OR_RETURN(const auto m, ParseInt(parts[1]));
  LD_ASSIGN_OR_RETURN(const auto s, ParseInt(parts[2]));
  return Duration(h * 3600 + m * 60 + s);
}

std::optional<TimePoint> EpochField(const KeyValueView& kv,
                                    std::string_view key) {
  const auto raw = kv.Get(key);
  if (!raw.has_value()) return std::nullopt;
  const auto v = ParseInt(*raw);
  if (!v.ok()) return std::nullopt;
  return TimePoint(*v);
}

Result<std::optional<TorqueRecord>> ParseLineImpl(std::string_view line) {
  // "stamp;TYPE;jobid;payload" — only the three leading separators are
  // located; the payload (which may itself contain ';') is the raw tail,
  // so the line is never fully split.
  const std::size_t sep1 = line.find(';');
  const std::size_t sep2 =
      sep1 == std::string_view::npos ? sep1 : line.find(';', sep1 + 1);
  if (sep2 == std::string_view::npos) {
    return ParseError("torque: too few ';' fields");
  }
  const std::string_view type = line.substr(sep1 + 1, sep2 - sep1 - 1);
  if (type != "S" && type != "E") {
    return std::optional<TorqueRecord>{};
  }
  const std::size_t sep3 = line.find(';', sep2 + 1);
  // Jobid "123.bw" -> 123.
  const std::string_view jobid_text =
      sep3 == std::string_view::npos
          ? line.substr(sep2 + 1)
          : line.substr(sep2 + 1, sep3 - sep2 - 1);
  const std::size_t dot = jobid_text.find('.');
  LD_ASSIGN_OR_RETURN(const auto jobid,
                      ParseUint(dot == std::string_view::npos
                                    ? jobid_text
                                    : jobid_text.substr(0, dot)));

  std::string_view payload;
  if (sep3 != std::string_view::npos) {
    payload = line.substr(sep3 + 1);
  }

  TorqueRecord rec;
  rec.jobid = jobid;
  rec.kind = type == "S" ? TorqueRecord::Kind::kStart : TorqueRecord::Kind::kEnd;

  // One SIMD tokenization pass; every field lookup below scans the
  // small entry table instead of re-walking the payload.
  const KeyValueView kv(payload);

  if (auto v = kv.Get("user")) rec.user = Intern(*v);
  if (auto v = kv.Get("queue")) rec.queue = Intern(*v);
  if (auto v = kv.Get("jobname")) rec.job_name = Intern(*v);

  const auto submit = EpochField(kv, "ctime");
  const auto start = EpochField(kv, "start");
  if (!submit.has_value() || !start.has_value()) {
    return ParseError("torque: missing ctime/start epoch fields");
  }
  rec.submit = *submit;
  rec.start = *start;
  rec.time = rec.start;

  if (auto v = kv.Get("Resource_List.nodect")) {
    if (auto n = ParseUint(*v); n.ok()) {
      rec.nodect = static_cast<std::uint32_t>(*n);
    }
  }
  if (auto v = kv.Get("Resource_List.walltime")) {
    if (auto d = ParseWalltime(*v); d.ok()) rec.walltime_limit = *d;
  }

  if (rec.kind == TorqueRecord::Kind::kEnd) {
    const auto end = EpochField(kv, "end");
    if (!end.has_value()) {
      return ParseError("torque: E record missing end epoch");
    }
    rec.end = *end;
    rec.time = rec.end;
    if (auto v = kv.Get("Exit_status")) {
      if (auto code = ParseInt(*v); code.ok()) {
        rec.exit_status = static_cast<int>(*code);
      }
    }
    if (auto v = kv.Get("resources_used.walltime")) {
      if (auto d = ParseWalltime(*v); d.ok()) rec.walltime_used = *d;
    }
  }

  return std::optional<TorqueRecord>{std::move(rec)};
}

}  // namespace

Result<std::optional<TorqueRecord>> TorqueParser::ParseLine(
    std::string_view line) {
  ++stats_.lines;
  auto rec = ParseLineImpl(line);
  if (!rec.ok()) {
    ++stats_.malformed;
  } else if (rec->has_value()) {
    ++stats_.records;
  } else {
    ++stats_.skipped;
  }
  return rec;
}

TorqueParser::Chunk TorqueParser::ParseChunk(
    std::span<const std::string_view> lines, std::uint64_t first_line_no,
    const QuarantineConfig* capture) {
  return ParseChunkWith<TorqueRecord>(
      lines, first_line_no, capture, LogSource::kTorque,
      [](std::string_view line) { return ParseLineImpl(line); });
}

std::vector<TorqueRecord> TorqueParser::ReduceChunks(
    std::vector<Chunk>&& chunks, QuarantineSink* sink) {
  return ReduceParsedChunks(std::move(chunks), &stats_, sink);
}

std::vector<TorqueRecord> TorqueParser::ParseLines(
    std::span<const std::string_view> lines, QuarantineSink* sink,
    ThreadPool* pool, std::size_t chunk_lines) {
  auto chunks = MapLineChunks(
      lines, chunk_lines, pool,
      sink != nullptr ? &sink->config() : nullptr,
      [](std::span<const std::string_view> slice, std::uint64_t first,
         const QuarantineConfig* capture) {
        return ParseChunk(slice, first, capture);
      });
  return ReduceChunks(std::move(chunks), sink);
}

std::vector<TorqueRecord> TorqueParser::ParseLines(
    const std::vector<std::string>& lines, QuarantineSink* sink) {
  const std::vector<std::string_view> views = LineViews(lines);
  return ParseLines(std::span<const std::string_view>(views), sink);
}

}  // namespace ld
