// Metric computation: the numbers the field study reports.
//
// Everything the evaluation tables/figures need is derived here from the
// classified runs and the coalesced tuples: outcome breakdowns with
// node-hour shares (Table 3 / anchors A2+A3), error-category rates and
// MTBE (Table 4), root-cause attribution by partition (Table 5), failure
// probability by application scale (Figs 2-3 / anchors A4+A5), monthly
// lost node-hours and MTTI series (Figs 4-5), and the detection-gap
// breakdown (Fig 6 / anchor A6).
#pragma once

#include <cstdint>
#include <vector>

#include <map>
#include <unordered_set>

#include "common/stats.hpp"
#include "logdiver/coalesce.hpp"
#include "logdiver/correlate.hpp"
#include "logdiver/quarantine.hpp"
#include "logdiver/reconstruct.hpp"

namespace ld {

class SnapshotWriter;
class SnapshotReader;

struct OutcomeRow {
  AppOutcome outcome = AppOutcome::kUnknown;
  std::uint64_t runs = 0;
  double runs_share = 0.0;
  double node_hours = 0.0;
  double node_hours_share = 0.0;
};

struct CategoryRow {
  ErrorCategory category = ErrorCategory::kUnknown;
  std::uint64_t tuples = 0;        // all severities
  std::uint64_t fatal_tuples = 0;
  std::uint64_t raw_events = 0;    // pre-coalescing members
  double fatal_mtbe_hours = 0.0;   // campaign span / fatal tuples
};

struct AttributionRow {
  ErrorCategory cause = ErrorCategory::kUnknown;
  std::uint64_t xe_failures = 0;
  std::uint64_t xk_failures = 0;
};

struct ScalePoint {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  std::uint64_t runs = 0;
  std::uint64_t system_failures = 0;
  ProportionCi failure_probability{};
};

struct MonthlyPoint {
  int year = 0;
  int month = 0;
  std::uint64_t runs = 0;
  std::uint64_t system_failures = 0;
  double node_hours = 0.0;
  double lost_node_hours = 0.0;  // consumed by system-failed runs
  double mtti_hours = 0.0;       // wall hours in month / system failures
};

/// Queue-wait statistics per job-size band (jobs deduplicated from
/// their runs; the wait is Torque submit -> start).
struct QueueWaitRow {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  std::uint64_t jobs = 0;
  double mean_wait_hours = 0.0;
  double p95_wait_hours = 0.0;
};

struct DetectionGapRow {
  NodeType type = NodeType::kXE;
  std::uint64_t system_failures = 0;
  std::uint64_t attributed = 0;    // a tuple explains the failure
  std::uint64_t unattributed = 0;  // cause == kUnknown
  double unattributed_share = 0.0;
};

/// System-service availability derived from system-scope incident
/// windows (overlapping incidents merged before summing downtime).
struct AvailabilityReport {
  std::uint64_t incidents = 0;
  double downtime_hours = 0.0;
  /// 1 - downtime / observed span; 1.0 when no incidents or no span.
  double availability = 1.0;
};

struct MetricsConfig {
  /// Scale buckets for the failure-probability curves.  Empty = defaults
  /// matching the Blue Waters partitions.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> xe_scale_buckets;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> xk_scale_buckets;
};

/// Job-level rollup: the user-facing unit is the batch job; one system
/// kill anywhere in its aprun chain costs the whole submission.
struct JobImpactSummary {
  std::uint64_t jobs = 0;
  std::uint64_t jobs_with_system_failure = 0;
  double fraction = 0.0;
};

struct MetricsReport {
  // Headline (abstract anchors).
  std::uint64_t total_runs = 0;
  double total_node_hours = 0.0;
  double system_failure_fraction = 0.0;    // A2: ~0.0153
  double lost_node_hours_fraction = 0.0;   // A3: ~0.09
  double overall_mtti_hours = 0.0;

  std::vector<OutcomeRow> outcomes;             // Table 3
  std::vector<CategoryRow> categories;          // Table 4
  AvailabilityReport availability;              // Table 4 (service row)
  std::vector<AttributionRow> attribution;      // Table 5
  std::vector<ScalePoint> xe_scale;             // Fig 2
  std::vector<ScalePoint> xk_scale;             // Fig 3
  std::vector<MonthlyPoint> monthly;            // Figs 4-5
  std::vector<DetectionGapRow> detection_gap;   // Fig 6
  std::vector<QueueWaitRow> queue_waits;        // scheduling context
  JobImpactSummary job_impact;                  // job-level rollup
  /// Ingestion health of the pass that produced this report (quarantine,
  /// dedup, watermark and eviction counters); all-zero on clean input.
  /// Filled by the pipeline drivers, not by the accumulator.
  IngestStats ingest;
};

/// Incremental metric accumulation: feed (run, classification) pairs and
/// tuples in any order, read the report whenever needed.  This is what
/// lets the streaming analyzer keep O(aggregates) state instead of
/// retaining every run.  (Queue-wait samples keep one entry per job and
/// the job-dedup set keeps one id per job; everything else is
/// fixed-size.)
///
/// The accumulator is a *mergeable partial aggregate*: every tally is
/// either an exact integer sum (node-time is tracked in node-seconds,
/// not floating node-hours), a min/max, a set union, or a keyed
/// minimum, so MergeFrom is associative and commutative and disjoint
/// shard partials merge to the serial accumulator's exact state —
/// byte-identical SaveState output, bit-identical Report numbers.
/// Floating point appears only in Report(), computed once from the
/// merged integers.
class MetricsAccumulator {
 public:
  explicit MetricsAccumulator(MetricsConfig config = {});

  void AddRun(const AppRun& run, const ClassifiedRun& cls);
  void AddTuple(const ErrorTuple& tuple);

  /// Folds another accumulator's tallies into this one.  Both sides
  /// must be built with the same config (scale-bucket geometry is
  /// checked).  The canonical fleet merge order is ascending shard
  /// index, but the algebra does not depend on it: sums, min/max, set
  /// unions and the min-apid queue-wait rule are order-free.  Merging
  /// partials whose inputs overlap double-counts; callers own the
  /// disjoint-partition invariant (fleet shards own runs by
  /// `apid % shard_count` and tuples by `id % shard_count`).
  void MergeFrom(const MetricsAccumulator& other);

  /// Snapshot of the metrics over everything accumulated so far.
  MetricsReport Report() const;

  /// Checkpoint serialization hooks: every accumulator (scale buckets,
  /// monthly/outcome/category/attribution maps, downtime intervals,
  /// job-dedup sets, queue-wait samples) round-trips exactly, so a
  /// restored accumulator reports bit-identical numbers.  The config
  /// stays construction-time; Restore expects an accumulator built with
  /// the same config.
  void SaveState(SnapshotWriter& w) const;
  void LoadState(SnapshotReader& r);

 private:
  /// Internal integer tallies mirroring the report rows; doubles are
  /// derived in Report() so merge order can never perturb a bit.
  struct OutcomeTally {
    std::uint64_t runs = 0;
    std::int64_t node_seconds = 0;
  };
  struct MonthlyTally {
    std::uint64_t runs = 0;
    std::uint64_t system_failures = 0;
    std::int64_t node_seconds = 0;
    std::int64_t lost_node_seconds = 0;
  };
  /// The queue-wait sample a job contributes: from its lowest-apid run
  /// that has a submit->start record.  Keying the winner on apid (not
  /// arrival order) keeps the sample set identical no matter which
  /// shard sees which run first.
  struct WaitSample {
    ApId apid = 0;
    std::uint32_t band = 0;  // kWaitBands index
    Duration wait{0};
  };

  MetricsConfig config_;
  std::uint64_t total_runs_ = 0;
  std::int64_t total_node_seconds_ = 0;
  std::uint64_t system_failures_ = 0;
  std::int64_t lost_node_seconds_ = 0;
  TimePoint span_lo_, span_hi_;
  bool have_span_ = false;
  std::map<AppOutcome, OutcomeTally> outcome_rows_;
  std::map<ErrorCategory, CategoryRow> cat_rows_;
  std::map<ErrorCategory, AttributionRow> attr_rows_;
  std::vector<ScalePoint> xe_scale_;
  std::vector<ScalePoint> xk_scale_;
  std::map<std::pair<int, int>, MonthlyTally> monthly_;
  DetectionGapRow xe_gap_{NodeType::kXE, 0, 0, 0, 0.0};
  DetectionGapRow xk_gap_{NodeType::kXK, 0, 0, 0, 0.0};
  std::uint64_t incidents_ = 0;
  IntervalSet downtime_;
  /// Job-dedup sets are unordered (this is the per-run hot lookup);
  /// SaveState writes their ids sorted so snapshot bytes stay
  /// deterministic and match the old ordered-set layout.
  std::unordered_set<JobId> seen_jobs_;
  std::unordered_set<JobId> failed_jobs_;
  /// One queue-wait sample per job, min-apid winner (see WaitSample).
  std::map<JobId, WaitSample> waits_;
};

/// One-shot convenience over MetricsAccumulator.
MetricsReport ComputeMetrics(const std::vector<AppRun>& runs,
                             const std::vector<ClassifiedRun>& classified,
                             const std::vector<ErrorTuple>& tuples,
                             const MetricsConfig& config = {});

/// Default scale buckets.
std::vector<std::pair<std::uint32_t, std::uint32_t>> DefaultXeScaleBuckets();
std::vector<std::pair<std::uint32_t, std::uint32_t>> DefaultXkScaleBuckets();

}  // namespace ld
