// Report rendering: fixed-width text tables for the metric structures,
// matching the rows/series the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "logdiver/logdiver.hpp"
#include "logdiver/metrics.hpp"

namespace ld {

/// Renders a fixed-width table; first row is the header.
std::string RenderTable(const std::vector<std::vector<std::string>>& rows);

void PrintOutcomeBreakdown(std::ostream& out, const MetricsReport& report);
void PrintCategoryTable(std::ostream& out, const MetricsReport& report);
void PrintAttributionTable(std::ostream& out, const MetricsReport& report);
void PrintScaleCurve(std::ostream& out, const std::vector<ScalePoint>& points,
                     const std::string& title);
void PrintMonthlySeries(std::ostream& out, const MetricsReport& report);
void PrintDetectionGap(std::ostream& out, const MetricsReport& report);
void PrintQueueWaits(std::ostream& out, const MetricsReport& report);
void PrintParseSummary(std::ostream& out, const AnalysisResult& analysis);

/// The headline numbers (anchors A2/A3) in one block.
void PrintHeadline(std::ostream& out, const MetricsReport& report);

}  // namespace ld
