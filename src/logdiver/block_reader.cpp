#include "logdiver/block_reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/obs/obs.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace ld {

MappedFile::MappedFile(MappedFile&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      fallback_(std::move(other.fallback_)) {
  other.fallback_.clear();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    map_ = std::exchange(other.map_, nullptr);
    size_ = std::exchange(other.size_, 0);
    fallback_ = std::move(other.fallback_);
    other.fallback_.clear();
  }
  return *this;
}

MappedFile::~MappedFile() { Reset(); }

void MappedFile::Reset() {
  if (map_ != nullptr) {
    ::munmap(map_, size_);
    map_ = nullptr;
    size_ = 0;
  }
  fallback_.clear();
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return NotFoundError("cannot open '" + path + "'");
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return InvalidArgumentError("cannot read '" + path +
                                "': not a regular file");
  }
  MappedFile file;
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return file;  // empty view; nothing to map
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map != MAP_FAILED) {
    file.map_ = map;
    file.size_ = size;
    ::close(fd);
    LD_OBS_COUNTER_ADD(obs::names::kIngestBytesMappedTotal, size);
    return file;
  }
  LD_OBS_COUNTER_ADD(obs::names::kIngestMmapFallbackTotal, 1);
  // mmap can fail on odd filesystems (some network mounts, /proc):
  // degrade to reading the whole file into an owned buffer.
  file.fallback_.resize(size);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, file.fallback_.data() + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      return InternalError("cannot read '" + path + "': " + why);
    }
    if (n == 0) break;  // file shrank under us; keep what we got
    done += static_cast<std::size_t>(n);
  }
  file.fallback_.resize(done);
  ::close(fd);
  return file;
}

std::vector<std::string_view> SplitBlocks(std::string_view data,
                                          std::size_t target_block_bytes) {
  if (target_block_bytes == 0) target_block_bytes = 1;
  std::vector<std::string_view> blocks;
  blocks.reserve(data.size() / target_block_bytes + 1);
  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t end = pos + target_block_bytes;
    if (end >= data.size()) {
      end = data.size();
    } else {
      // Extend to the next newline so the edge line stays whole.
      const std::size_t nl = simd::FindByte(data, '\n', end - 1);
      end = (nl == std::string_view::npos) ? data.size() : nl + 1;
    }
    blocks.push_back(data.substr(pos, end - pos));
    pos = end;
  }
  return blocks;
}

void AppendLines(std::string_view block, std::vector<std::string_view>* out) {
  LD_OBS_COUNTER_ADD(obs::names::kSimdBytesScannedTotal, block.size());
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = simd::FindByte(block, '\n', start);
    if (nl == std::string_view::npos) break;
    std::string_view line = block.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    out->push_back(line);
    start = nl + 1;
  }
  if (start < block.size()) {  // final line without a terminating newline
    std::string_view line = block.substr(start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    out->push_back(line);
  }
}

std::vector<std::string_view> SplitLinesParallel(
    std::string_view data, ThreadPool* pool, std::size_t target_block_bytes) {
  LD_OBS_SPAN("split_lines");
  const std::vector<std::string_view> blocks =
      SplitBlocks(data, target_block_bytes);
  LD_OBS_COUNTER_ADD(obs::names::kIngestBlocksTotal, blocks.size());
  std::vector<std::vector<std::string_view>> per_block =
      ParallelMap(pool, blocks.size(), [&blocks](std::size_t i) {
        std::vector<std::string_view> lines;
        AppendLines(blocks[i], &lines);
        return lines;
      });
  std::size_t total = 0;
  for (const auto& lines : per_block) total += lines.size();
  std::vector<std::string_view> out;
  out.reserve(total);
  for (const auto& lines : per_block) {
    out.insert(out.end(), lines.begin(), lines.end());
  }
  return out;
}

}  // namespace ld
