#include "logdiver/metrics.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "logdiver/snapshot.hpp"

namespace ld {
namespace {

constexpr AppOutcome kOutcomeOrder[] = {
    AppOutcome::kSuccess, AppOutcome::kUserFailure, AppOutcome::kSystemFailure,
    AppOutcome::kWalltime, AppOutcome::kUnknown};

const std::vector<std::pair<std::uint32_t, std::uint32_t>> kWaitBands = {
    {1, 1}, {2, 8}, {9, 64}, {65, 512}, {513, 4096}, {4097, 1u << 30}};

double SecondsToHours(std::int64_t node_seconds) {
  return static_cast<double>(node_seconds) / 3600.0;
}

}  // namespace

std::vector<std::pair<std::uint32_t, std::uint32_t>> DefaultXeScaleBuckets() {
  return {{1, 1},        {2, 8},        {9, 64},        {65, 512},
          {513, 2048},   {2049, 8192},  {8193, 16384},  {16385, 22640}};
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> DefaultXkScaleBuckets() {
  return {{1, 1},       {2, 8},       {9, 64},      {65, 256},
          {257, 1024},  {1025, 2048}, {2049, 3500}, {3501, 4224}};
}

MetricsAccumulator::MetricsAccumulator(MetricsConfig config)
    : config_(std::move(config)) {
  auto init_scale = [](std::vector<ScalePoint>& points,
                       const std::vector<std::pair<std::uint32_t,
                                                   std::uint32_t>>& buckets) {
    points.clear();
    for (const auto& [lo, hi] : buckets) {
      ScalePoint p;
      p.lo = lo;
      p.hi = hi;
      points.push_back(p);
    }
  };
  init_scale(xe_scale_, config_.xe_scale_buckets.empty()
                            ? DefaultXeScaleBuckets()
                            : config_.xe_scale_buckets);
  init_scale(xk_scale_, config_.xk_scale_buckets.empty()
                            ? DefaultXkScaleBuckets()
                            : config_.xk_scale_buckets);
  // Sized for a realistic campaign's job population; AddRun then never
  // rehashes mid-stream.
  seen_jobs_.reserve(1024);
  failed_jobs_.reserve(256);
}

void MetricsAccumulator::AddRun(const AppRun& run, const ClassifiedRun& cls) {
  ++total_runs_;
  if (!have_span_) {
    span_lo_ = run.start;
    span_hi_ = run.end;
    have_span_ = true;
  } else {
    span_lo_ = std::min(span_lo_, run.start);
    span_hi_ = std::max(span_hi_, run.end);
  }

  // Outcomes + headline.  Node-time is summed in integer node-seconds
  // (lossless: logs are second-granular) so totals are independent of
  // accumulation and merge order.
  OutcomeTally& orow = outcome_rows_[cls.outcome];
  ++orow.runs;
  const std::int64_t ns = run.NodeSeconds();
  orow.node_seconds += ns;
  total_node_seconds_ += ns;
  if (cls.outcome == AppOutcome::kSystemFailure) {
    ++system_failures_;
    lost_node_seconds_ += ns;
  }

  // Scale curves (unknown outcomes excluded).
  if (cls.outcome != AppOutcome::kUnknown) {
    auto& points = run.node_type == NodeType::kXK ? xk_scale_ : xe_scale_;
    for (ScalePoint& p : points) {
      if (run.nodect >= p.lo && run.nodect <= p.hi) {
        ++p.runs;
        if (cls.outcome == AppOutcome::kSystemFailure) ++p.system_failures;
        break;
      }
    }
  }

  // Attribution by partition.
  if (cls.outcome == AppOutcome::kSystemFailure) {
    AttributionRow& arow = attr_rows_[cls.cause];
    arow.cause = cls.cause;
    if (run.node_type == NodeType::kXK) {
      ++arow.xk_failures;
    } else {
      ++arow.xe_failures;
    }
    DetectionGapRow& gap =
        run.node_type == NodeType::kXK ? xk_gap_ : xe_gap_;
    ++gap.system_failures;
    if (cls.cause == ErrorCategory::kUnknown) {
      ++gap.unattributed;
    } else {
      ++gap.attributed;
    }
  }

  // Monthly series.
  const CalendarTime c = ToCalendar(run.end);
  MonthlyTally& mp = monthly_[{c.year, c.month}];
  ++mp.runs;
  mp.node_seconds += ns;
  if (cls.outcome == AppOutcome::kSystemFailure) {
    ++mp.system_failures;
    mp.lost_node_seconds += ns;
  }

  if (cls.outcome == AppOutcome::kSystemFailure) {
    failed_jobs_.insert(run.jobid);
  }

  // Queue waits, once per job: the job's lowest-apid run with a
  // submit->start record wins, so the winner (and hence the sample set)
  // does not depend on the order runs arrive or which shard saw them.
  if (run.job_start >= run.job_submit) {
    seen_jobs_.insert(run.jobid);
    for (std::size_t b = 0; b < kWaitBands.size(); ++b) {
      if (run.nodect >= kWaitBands[b].first &&
          run.nodect <= kWaitBands[b].second) {
        WaitSample sample{run.apid, static_cast<std::uint32_t>(b),
                          run.queue_wait()};
        auto [it, inserted] = waits_.emplace(run.jobid, sample);
        if (!inserted && sample.apid < it->second.apid) it->second = sample;
        break;
      }
    }
  }
}

void MetricsAccumulator::AddTuple(const ErrorTuple& tuple) {
  CategoryRow& row = cat_rows_[tuple.category];
  row.category = tuple.category;
  ++row.tuples;
  row.raw_events += tuple.count;
  if (tuple.severity == Severity::kFatal) ++row.fatal_tuples;

  if (tuple.scope == LocScope::kSystem && tuple.severity == Severity::kFatal) {
    ++incidents_;
    downtime_.Add(tuple.ImpactWindow());
  }
}

MetricsReport MetricsAccumulator::Report() const {
  MetricsReport report;
  report.total_runs = total_runs_;
  const double total_node_hours = SecondsToHours(total_node_seconds_);
  report.total_node_hours = total_node_hours;
  const double span_hours = have_span_ ? (span_hi_ - span_lo_).hours() : 0.0;

  report.outcomes.reserve(outcome_rows_.size());
  report.categories.reserve(cat_rows_.size());
  report.attribution.reserve(attr_rows_.size());
  report.monthly.reserve(monthly_.size());
  report.queue_waits.reserve(kWaitBands.size());
  for (AppOutcome o : kOutcomeOrder) {
    const auto it = outcome_rows_.find(o);
    if (it == outcome_rows_.end()) continue;
    OutcomeRow row;
    row.outcome = o;
    row.runs = it->second.runs;
    row.node_hours = SecondsToHours(it->second.node_seconds);
    row.runs_share = total_runs_ ? static_cast<double>(row.runs) /
                                       static_cast<double>(total_runs_)
                                 : 0.0;
    row.node_hours_share =
        total_node_hours > 0.0 ? row.node_hours / total_node_hours : 0.0;
    report.outcomes.push_back(row);
  }
  report.system_failure_fraction =
      total_runs_ ? static_cast<double>(system_failures_) /
                        static_cast<double>(total_runs_)
                  : 0.0;
  report.lost_node_hours_fraction =
      total_node_seconds_ > 0
          ? static_cast<double>(lost_node_seconds_) /
                static_cast<double>(total_node_seconds_)
          : 0.0;
  report.overall_mtti_hours =
      system_failures_ > 0
          ? span_hours / static_cast<double>(system_failures_)
          : 0.0;

  for (const auto& [cat, row] : cat_rows_) {
    CategoryRow out = row;
    out.fatal_mtbe_hours =
        out.fatal_tuples > 0
            ? span_hours / static_cast<double>(out.fatal_tuples)
            : 0.0;
    report.categories.push_back(out);
  }

  report.availability.incidents = incidents_;
  report.availability.downtime_hours = downtime_.TotalLength().hours();
  if (span_hours > 0.0) {
    report.availability.availability = std::max(
        0.0, 1.0 - report.availability.downtime_hours / span_hours);
  }

  for (const auto& [cat, row] : attr_rows_) report.attribution.push_back(row);
  std::sort(report.attribution.begin(), report.attribution.end(),
            [](const AttributionRow& a, const AttributionRow& b) {
              return a.xe_failures + a.xk_failures >
                     b.xe_failures + b.xk_failures;
            });

  report.xe_scale = xe_scale_;
  report.xk_scale = xk_scale_;
  for (auto* points : {&report.xe_scale, &report.xk_scale}) {
    for (ScalePoint& p : *points) {
      p.failure_probability = WilsonInterval(p.system_failures, p.runs);
    }
  }

  for (const auto& [ym, p] : monthly_) {
    MonthlyPoint out;
    out.year = ym.first;
    out.month = ym.second;
    out.runs = p.runs;
    out.system_failures = p.system_failures;
    out.node_hours = SecondsToHours(p.node_seconds);
    out.lost_node_hours = SecondsToHours(p.lost_node_seconds);
    const TimePoint month_start = TimePoint::FromCalendar(out.year, out.month, 1);
    const TimePoint next =
        out.month == 12 ? TimePoint::FromCalendar(out.year + 1, 1, 1)
                        : TimePoint::FromCalendar(out.year, out.month + 1, 1);
    const double hours = (next - month_start).hours();
    out.mtti_hours = p.system_failures > 0
                         ? hours / static_cast<double>(p.system_failures)
                         : 0.0;
    report.monthly.push_back(out);
  }

  report.detection_gap = {xe_gap_, xk_gap_};
  for (DetectionGapRow& row : report.detection_gap) {
    row.unattributed_share =
        row.system_failures > 0
            ? static_cast<double>(row.unattributed) /
                  static_cast<double>(row.system_failures)
            : 0.0;
  }

  // Regroup the per-job winners into bands.  Iterating the jobid-keyed
  // map gives a canonical order, so the per-band sums and quantile
  // inputs are identical however the samples were accumulated.
  std::vector<std::vector<double>> band_samples(kWaitBands.size());
  for (const auto& [jobid, sample] : waits_) {
    band_samples[sample.band].push_back(sample.wait.hours());
  }
  for (std::size_t b = 0; b < kWaitBands.size(); ++b) {
    const std::vector<double>& samples = band_samples[b];
    if (samples.empty()) continue;
    QueueWaitRow row;
    row.lo = kWaitBands[b].first;
    row.hi = kWaitBands[b].second;
    row.jobs = samples.size();
    double sum = 0.0;
    for (double w : samples) sum += w;
    row.mean_wait_hours = sum / static_cast<double>(samples.size());
    row.p95_wait_hours = Quantile(samples, 0.95);
    report.queue_waits.push_back(row);
  }
  report.job_impact.jobs = seen_jobs_.size();
  report.job_impact.jobs_with_system_failure = failed_jobs_.size();
  report.job_impact.fraction =
      report.job_impact.jobs
          ? static_cast<double>(report.job_impact.jobs_with_system_failure) /
                static_cast<double>(report.job_impact.jobs)
          : 0.0;
  return report;
}

void MetricsAccumulator::MergeFrom(const MetricsAccumulator& other) {
  LD_CHECK(xe_scale_.size() == other.xe_scale_.size() &&
               xk_scale_.size() == other.xk_scale_.size(),
           "MergeFrom requires accumulators with the same scale buckets");

  total_runs_ += other.total_runs_;
  total_node_seconds_ += other.total_node_seconds_;
  system_failures_ += other.system_failures_;
  lost_node_seconds_ += other.lost_node_seconds_;
  if (other.have_span_) {
    if (!have_span_) {
      span_lo_ = other.span_lo_;
      span_hi_ = other.span_hi_;
      have_span_ = true;
    } else {
      span_lo_ = std::min(span_lo_, other.span_lo_);
      span_hi_ = std::max(span_hi_, other.span_hi_);
    }
  }

  for (const auto& [outcome, tally] : other.outcome_rows_) {
    OutcomeTally& mine = outcome_rows_[outcome];
    mine.runs += tally.runs;
    mine.node_seconds += tally.node_seconds;
  }
  for (const auto& [category, row] : other.cat_rows_) {
    CategoryRow& mine = cat_rows_[category];
    mine.category = category;
    mine.tuples += row.tuples;
    mine.fatal_tuples += row.fatal_tuples;
    mine.raw_events += row.raw_events;
  }
  for (const auto& [cause, row] : other.attr_rows_) {
    AttributionRow& mine = attr_rows_[cause];
    mine.cause = cause;
    mine.xe_failures += row.xe_failures;
    mine.xk_failures += row.xk_failures;
  }
  for (auto [mine, theirs] : {std::pair{&xe_scale_, &other.xe_scale_},
                              std::pair{&xk_scale_, &other.xk_scale_}}) {
    for (std::size_t i = 0; i < mine->size(); ++i) {
      LD_CHECK((*mine)[i].lo == (*theirs)[i].lo &&
                   (*mine)[i].hi == (*theirs)[i].hi,
               "MergeFrom requires accumulators with the same scale buckets");
      (*mine)[i].runs += (*theirs)[i].runs;
      (*mine)[i].system_failures += (*theirs)[i].system_failures;
    }
  }
  for (const auto& [ym, tally] : other.monthly_) {
    MonthlyTally& mine = monthly_[ym];
    mine.runs += tally.runs;
    mine.system_failures += tally.system_failures;
    mine.node_seconds += tally.node_seconds;
    mine.lost_node_seconds += tally.lost_node_seconds;
  }
  for (auto [mine, theirs] : {std::pair{&xe_gap_, &other.xe_gap_},
                              std::pair{&xk_gap_, &other.xk_gap_}}) {
    mine->system_failures += theirs->system_failures;
    mine->attributed += theirs->attributed;
    mine->unattributed += theirs->unattributed;
  }
  incidents_ += other.incidents_;
  for (const Interval& iv : other.downtime_.intervals()) downtime_.Add(iv);
  seen_jobs_.insert(other.seen_jobs_.begin(), other.seen_jobs_.end());
  failed_jobs_.insert(other.failed_jobs_.begin(), other.failed_jobs_.end());
  for (const auto& [jobid, sample] : other.waits_) {
    auto [it, inserted] = waits_.emplace(jobid, sample);
    if (!inserted && sample.apid < it->second.apid) it->second = sample;
  }
}

void MetricsAccumulator::SaveState(SnapshotWriter& w) const {
  w.U64(total_runs_);
  w.I64(total_node_seconds_);
  w.U64(system_failures_);
  w.I64(lost_node_seconds_);
  w.Time(span_lo_);
  w.Time(span_hi_);
  w.Bool(have_span_);

  w.U32(static_cast<std::uint32_t>(outcome_rows_.size()));
  for (const auto& [outcome, row] : outcome_rows_) {
    w.U8(static_cast<std::uint8_t>(outcome));
    w.U64(row.runs);
    w.I64(row.node_seconds);
  }

  w.U32(static_cast<std::uint32_t>(cat_rows_.size()));
  for (const auto& [category, row] : cat_rows_) {
    w.U8(static_cast<std::uint8_t>(category));
    w.U8(static_cast<std::uint8_t>(row.category));
    w.U64(row.tuples);
    w.U64(row.fatal_tuples);
    w.U64(row.raw_events);
  }

  w.U32(static_cast<std::uint32_t>(attr_rows_.size()));
  for (const auto& [cause, row] : attr_rows_) {
    w.U8(static_cast<std::uint8_t>(cause));
    w.U8(static_cast<std::uint8_t>(row.cause));
    w.U64(row.xe_failures);
    w.U64(row.xk_failures);
  }

  for (const auto* scale : {&xe_scale_, &xk_scale_}) {
    w.U32(static_cast<std::uint32_t>(scale->size()));
    for (const ScalePoint& p : *scale) {
      w.U32(p.lo);
      w.U32(p.hi);
      w.U64(p.runs);
      w.U64(p.system_failures);
    }
  }

  w.U32(static_cast<std::uint32_t>(monthly_.size()));
  for (const auto& [ym, p] : monthly_) {
    w.I32(ym.first);
    w.I32(ym.second);
    w.U64(p.runs);
    w.U64(p.system_failures);
    w.I64(p.node_seconds);
    w.I64(p.lost_node_seconds);
  }

  for (const DetectionGapRow* gap : {&xe_gap_, &xk_gap_}) {
    w.U8(static_cast<std::uint8_t>(gap->type));
    w.U64(gap->system_failures);
    w.U64(gap->attributed);
    w.U64(gap->unattributed);
  }

  w.U64(incidents_);
  w.U32(static_cast<std::uint32_t>(downtime_.intervals().size()));
  for (const Interval& iv : downtime_.intervals()) {
    w.Time(iv.start);
    w.Time(iv.end);
  }

  // Sorted ids: the sets are unordered in memory, the bytes must not be.
  for (const std::unordered_set<JobId>* jobs : {&seen_jobs_, &failed_jobs_}) {
    std::vector<JobId> sorted(jobs->begin(), jobs->end());
    std::sort(sorted.begin(), sorted.end());
    w.U64(sorted.size());
    for (JobId id : sorted) w.U64(id);
  }

  // Per-job winners in jobid order (the map's iteration order).
  w.U32(static_cast<std::uint32_t>(waits_.size()));
  for (const auto& [jobid, sample] : waits_) {
    w.U64(jobid);
    w.U64(sample.apid);
    w.U32(sample.band);
    w.I64(sample.wait.seconds());
  }
}

void MetricsAccumulator::LoadState(SnapshotReader& r) {
  total_runs_ = r.U64();
  total_node_seconds_ = r.I64();
  system_failures_ = r.U64();
  lost_node_seconds_ = r.I64();
  span_lo_ = r.Time();
  span_hi_ = r.Time();
  have_span_ = r.Bool();

  outcome_rows_.clear();
  const std::uint32_t outcomes = r.U32();
  for (std::uint32_t i = 0; i < outcomes && r.ok(); ++i) {
    const auto key = static_cast<AppOutcome>(r.U8());
    OutcomeTally row;
    row.runs = r.U64();
    row.node_seconds = r.I64();
    outcome_rows_.emplace(key, row);
  }

  cat_rows_.clear();
  const std::uint32_t cats = r.U32();
  for (std::uint32_t i = 0; i < cats && r.ok(); ++i) {
    const auto key = static_cast<ErrorCategory>(r.U8());
    CategoryRow row;
    row.category = static_cast<ErrorCategory>(r.U8());
    row.tuples = r.U64();
    row.fatal_tuples = r.U64();
    row.raw_events = r.U64();
    cat_rows_.emplace(key, row);
  }

  attr_rows_.clear();
  const std::uint32_t attrs = r.U32();
  for (std::uint32_t i = 0; i < attrs && r.ok(); ++i) {
    const auto key = static_cast<ErrorCategory>(r.U8());
    AttributionRow row;
    row.cause = static_cast<ErrorCategory>(r.U8());
    row.xe_failures = r.U64();
    row.xk_failures = r.U64();
    attr_rows_.emplace(key, row);
  }

  for (auto* scale : {&xe_scale_, &xk_scale_}) {
    scale->clear();
    const std::uint32_t points = r.U32();
    if (r.ok()) scale->reserve(points);
    for (std::uint32_t i = 0; i < points && r.ok(); ++i) {
      ScalePoint p;
      p.lo = r.U32();
      p.hi = r.U32();
      p.runs = r.U64();
      p.system_failures = r.U64();
      scale->push_back(p);
    }
  }

  monthly_.clear();
  const std::uint32_t months = r.U32();
  for (std::uint32_t i = 0; i < months && r.ok(); ++i) {
    const int key_year = r.I32();
    const int key_month = r.I32();
    MonthlyTally p;
    p.runs = r.U64();
    p.system_failures = r.U64();
    p.node_seconds = r.I64();
    p.lost_node_seconds = r.I64();
    monthly_.emplace(std::make_pair(key_year, key_month), p);
  }

  for (DetectionGapRow* gap : {&xe_gap_, &xk_gap_}) {
    gap->type = static_cast<NodeType>(r.U8());
    gap->system_failures = r.U64();
    gap->attributed = r.U64();
    gap->unattributed = r.U64();
  }

  incidents_ = r.U64();
  downtime_ = IntervalSet();
  const std::uint32_t intervals = r.U32();
  for (std::uint32_t i = 0; i < intervals && r.ok(); ++i) {
    Interval iv;
    iv.start = r.Time();
    iv.end = r.Time();
    downtime_.Add(iv);
  }

  for (std::unordered_set<JobId>* jobs : {&seen_jobs_, &failed_jobs_}) {
    jobs->clear();
    const std::uint64_t count = r.U64();
    if (r.ok()) jobs->reserve(count);
    for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
      jobs->insert(r.U64());
    }
  }

  waits_.clear();
  const std::uint32_t jobs = r.U32();
  for (std::uint32_t i = 0; i < jobs && r.ok(); ++i) {
    const JobId jobid = r.U64();
    WaitSample sample;
    sample.apid = r.U64();
    sample.band = r.U32();
    sample.wait = Duration(r.I64());
    if (sample.band >= kWaitBands.size()) {
      r.Fail("queue-wait band out of range");
      return;
    }
    waits_.emplace(jobid, sample);
  }
}

MetricsReport ComputeMetrics(const std::vector<AppRun>& runs,
                             const std::vector<ClassifiedRun>& classified,
                             const std::vector<ErrorTuple>& tuples,
                             const MetricsConfig& config) {
  MetricsAccumulator acc(config);
  for (const ClassifiedRun& cls : classified) {
    acc.AddRun(runs[cls.run_index], cls);
  }
  for (const ErrorTuple& tuple : tuples) acc.AddTuple(tuple);
  return acc.Report();
}

}  // namespace ld
