#include "logdiver/metrics.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace ld {
namespace {

constexpr AppOutcome kOutcomeOrder[] = {
    AppOutcome::kSuccess, AppOutcome::kUserFailure, AppOutcome::kSystemFailure,
    AppOutcome::kWalltime, AppOutcome::kUnknown};

const std::vector<std::pair<std::uint32_t, std::uint32_t>> kWaitBands = {
    {1, 1}, {2, 8}, {9, 64}, {65, 512}, {513, 4096}, {4097, 1u << 30}};

}  // namespace

std::vector<std::pair<std::uint32_t, std::uint32_t>> DefaultXeScaleBuckets() {
  return {{1, 1},        {2, 8},        {9, 64},        {65, 512},
          {513, 2048},   {2049, 8192},  {8193, 16384},  {16385, 22640}};
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> DefaultXkScaleBuckets() {
  return {{1, 1},       {2, 8},       {9, 64},      {65, 256},
          {257, 1024},  {1025, 2048}, {2049, 3500}, {3501, 4224}};
}

MetricsAccumulator::MetricsAccumulator(MetricsConfig config)
    : config_(std::move(config)) {
  auto init_scale = [](std::vector<ScalePoint>& points,
                       const std::vector<std::pair<std::uint32_t,
                                                   std::uint32_t>>& buckets) {
    points.clear();
    for (const auto& [lo, hi] : buckets) {
      ScalePoint p;
      p.lo = lo;
      p.hi = hi;
      points.push_back(p);
    }
  };
  init_scale(xe_scale_, config_.xe_scale_buckets.empty()
                            ? DefaultXeScaleBuckets()
                            : config_.xe_scale_buckets);
  init_scale(xk_scale_, config_.xk_scale_buckets.empty()
                            ? DefaultXkScaleBuckets()
                            : config_.xk_scale_buckets);
}

void MetricsAccumulator::AddRun(const AppRun& run, const ClassifiedRun& cls) {
  ++total_runs_;
  if (!have_span_) {
    span_lo_ = run.start;
    span_hi_ = run.end;
    have_span_ = true;
  } else {
    span_lo_ = std::min(span_lo_, run.start);
    span_hi_ = std::max(span_hi_, run.end);
  }

  // Outcomes + headline.
  OutcomeRow& orow = outcome_rows_[cls.outcome];
  orow.outcome = cls.outcome;
  ++orow.runs;
  const double nh = run.NodeHours();
  orow.node_hours += nh;
  total_node_hours_ += nh;
  if (cls.outcome == AppOutcome::kSystemFailure) {
    ++system_failures_;
    lost_node_hours_ += nh;
  }

  // Scale curves (unknown outcomes excluded).
  if (cls.outcome != AppOutcome::kUnknown) {
    auto& points = run.node_type == NodeType::kXK ? xk_scale_ : xe_scale_;
    for (ScalePoint& p : points) {
      if (run.nodect >= p.lo && run.nodect <= p.hi) {
        ++p.runs;
        if (cls.outcome == AppOutcome::kSystemFailure) ++p.system_failures;
        break;
      }
    }
  }

  // Attribution by partition.
  if (cls.outcome == AppOutcome::kSystemFailure) {
    AttributionRow& arow = attr_rows_[cls.cause];
    arow.cause = cls.cause;
    if (run.node_type == NodeType::kXK) {
      ++arow.xk_failures;
    } else {
      ++arow.xe_failures;
    }
    DetectionGapRow& gap =
        run.node_type == NodeType::kXK ? xk_gap_ : xe_gap_;
    ++gap.system_failures;
    if (cls.cause == ErrorCategory::kUnknown) {
      ++gap.unattributed;
    } else {
      ++gap.attributed;
    }
  }

  // Monthly series.
  const CalendarTime c = ToCalendar(run.end);
  MonthlyPoint& mp = monthly_[{c.year, c.month}];
  mp.year = c.year;
  mp.month = c.month;
  ++mp.runs;
  mp.node_hours += nh;
  if (cls.outcome == AppOutcome::kSystemFailure) {
    ++mp.system_failures;
    mp.lost_node_hours += nh;
  }

  if (cls.outcome == AppOutcome::kSystemFailure) {
    failed_jobs_.insert(run.jobid);
  }

  // Queue waits, once per job.
  if (run.job_start >= run.job_submit && seen_jobs_.insert(run.jobid).second) {
    const double wait = run.queue_wait().hours();
    for (std::size_t b = 0; b < kWaitBands.size(); ++b) {
      if (run.nodect >= kWaitBands[b].first &&
          run.nodect <= kWaitBands[b].second) {
        waits_[b].push_back(wait);
        break;
      }
    }
  }
}

void MetricsAccumulator::AddTuple(const ErrorTuple& tuple) {
  CategoryRow& row = cat_rows_[tuple.category];
  row.category = tuple.category;
  ++row.tuples;
  row.raw_events += tuple.count;
  if (tuple.severity == Severity::kFatal) ++row.fatal_tuples;

  if (tuple.scope == LocScope::kSystem && tuple.severity == Severity::kFatal) {
    ++incidents_;
    downtime_.Add(tuple.ImpactWindow());
  }
}

MetricsReport MetricsAccumulator::Report() const {
  MetricsReport report;
  report.total_runs = total_runs_;
  report.total_node_hours = total_node_hours_;
  const double span_hours = have_span_ ? (span_hi_ - span_lo_).hours() : 0.0;

  for (AppOutcome o : kOutcomeOrder) {
    const auto it = outcome_rows_.find(o);
    if (it == outcome_rows_.end()) continue;
    OutcomeRow row = it->second;
    row.runs_share = total_runs_ ? static_cast<double>(row.runs) /
                                       static_cast<double>(total_runs_)
                                 : 0.0;
    row.node_hours_share =
        total_node_hours_ > 0.0 ? row.node_hours / total_node_hours_ : 0.0;
    report.outcomes.push_back(row);
  }
  report.system_failure_fraction =
      total_runs_ ? static_cast<double>(system_failures_) /
                        static_cast<double>(total_runs_)
                  : 0.0;
  report.lost_node_hours_fraction =
      total_node_hours_ > 0.0 ? lost_node_hours_ / total_node_hours_ : 0.0;
  report.overall_mtti_hours =
      system_failures_ > 0
          ? span_hours / static_cast<double>(system_failures_)
          : 0.0;

  for (const auto& [cat, row] : cat_rows_) {
    CategoryRow out = row;
    out.fatal_mtbe_hours =
        out.fatal_tuples > 0
            ? span_hours / static_cast<double>(out.fatal_tuples)
            : 0.0;
    report.categories.push_back(out);
  }

  report.availability.incidents = incidents_;
  report.availability.downtime_hours = downtime_.TotalLength().hours();
  if (span_hours > 0.0) {
    report.availability.availability = std::max(
        0.0, 1.0 - report.availability.downtime_hours / span_hours);
  }

  for (const auto& [cat, row] : attr_rows_) report.attribution.push_back(row);
  std::sort(report.attribution.begin(), report.attribution.end(),
            [](const AttributionRow& a, const AttributionRow& b) {
              return a.xe_failures + a.xk_failures >
                     b.xe_failures + b.xk_failures;
            });

  report.xe_scale = xe_scale_;
  report.xk_scale = xk_scale_;
  for (auto* points : {&report.xe_scale, &report.xk_scale}) {
    for (ScalePoint& p : *points) {
      p.failure_probability = WilsonInterval(p.system_failures, p.runs);
    }
  }

  for (const auto& [ym, p] : monthly_) {
    MonthlyPoint out = p;
    const TimePoint month_start = TimePoint::FromCalendar(p.year, p.month, 1);
    const TimePoint next =
        p.month == 12 ? TimePoint::FromCalendar(p.year + 1, 1, 1)
                      : TimePoint::FromCalendar(p.year, p.month + 1, 1);
    const double hours = (next - month_start).hours();
    out.mtti_hours = p.system_failures > 0
                         ? hours / static_cast<double>(p.system_failures)
                         : 0.0;
    report.monthly.push_back(out);
  }

  report.detection_gap = {xe_gap_, xk_gap_};
  for (DetectionGapRow& row : report.detection_gap) {
    row.unattributed_share =
        row.system_failures > 0
            ? static_cast<double>(row.unattributed) /
                  static_cast<double>(row.system_failures)
            : 0.0;
  }

  for (std::size_t b = 0; b < kWaitBands.size(); ++b) {
    const auto it = waits_.find(b);
    if (it == waits_.end() || it->second.empty()) continue;
    QueueWaitRow row;
    row.lo = kWaitBands[b].first;
    row.hi = kWaitBands[b].second;
    row.jobs = it->second.size();
    double sum = 0.0;
    for (double w : it->second) sum += w;
    row.mean_wait_hours = sum / static_cast<double>(it->second.size());
    row.p95_wait_hours = Quantile(it->second, 0.95);
    report.queue_waits.push_back(row);
  }
  report.job_impact.jobs = seen_jobs_.size();
  report.job_impact.jobs_with_system_failure = failed_jobs_.size();
  report.job_impact.fraction =
      report.job_impact.jobs
          ? static_cast<double>(report.job_impact.jobs_with_system_failure) /
                static_cast<double>(report.job_impact.jobs)
          : 0.0;
  return report;
}

MetricsReport ComputeMetrics(const std::vector<AppRun>& runs,
                             const std::vector<ClassifiedRun>& classified,
                             const std::vector<ErrorTuple>& tuples,
                             const MetricsConfig& config) {
  MetricsAccumulator acc(config);
  for (const ClassifiedRun& cls : classified) {
    acc.AddRun(runs[cls.run_index], cls);
  }
  for (const ErrorTuple& tuple : tuples) acc.AddTuple(tuple);
  return acc.Report();
}

}  // namespace ld
