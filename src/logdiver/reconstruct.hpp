// Workload reconstruction: joining ALPS application records with Torque
// job records into complete application runs.
//
// This is LogDiver's first join: apid -> (placement, termination) from
// ALPS, then jobid -> (user, queue, walltime limit, job exit status)
// from Torque.  The join is defensive — production logs lose lines —
// and every unmatched record is counted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "logdiver/records.hpp"
#include "topology/machine.hpp"

namespace ld {

/// A fully reconstructed application run.
struct AppRun {
  ApId apid = 0;
  JobId jobid = 0;
  Symbol user;
  Symbol queue;
  NodeType node_type = NodeType::kXE;
  std::vector<NodeIndex> nodes;
  std::uint32_t nodect = 0;
  TimePoint start;
  TimePoint end;
  bool has_termination = false;  // exit or kill record was found
  int exit_code = 0;
  int exit_signal = 0;
  bool killed_node_failure = false;
  NodeIndex failed_nid = kInvalidNode;
  // Job-level context:
  TimePoint job_submit;
  TimePoint job_start;
  Duration walltime_limit{0};
  int job_exit_status = 0;

  Duration duration() const { return end - start; }
  /// Queue wait of the owning job (start - submit); 0 without a record.
  Duration queue_wait() const { return job_start - job_submit; }
  /// Exact node-seconds consumed (logs are second-granular, so this is
  /// lossless).  Integer so accumulator sums are associative — shard
  /// partials merge to the serial analyzer's exact tallies regardless of
  /// how runs were split across workers.
  std::int64_t NodeSeconds() const {
    return duration().seconds() * static_cast<std::int64_t>(nodect);
  }
  double NodeHours() const {
    return static_cast<double>(NodeSeconds()) / 3600.0;
  }
};

struct ReconstructStats {
  std::uint64_t placements = 0;
  std::uint64_t terminations = 0;
  std::uint64_t runs = 0;
  std::uint64_t missing_termination = 0;  // placement without exit/kill
  std::uint64_t orphan_terminations = 0;  // exit/kill without placement
  std::uint64_t missing_job = 0;          // no Torque record for jobid
  std::uint64_t mixed_node_types = 0;     // placement spans partitions
  /// Replayed records (duplicated log lines): the first placement and
  /// the first termination per apid win; replays are counted, not applied.
  std::uint64_t duplicate_placements = 0;
  std::uint64_t duplicate_terminations = 0;
};

/// Joins parsed records into runs, ordered by start time.  Node type is
/// derived from the placement's nids via the machine model; a run whose
/// job record is missing keeps ALPS-only fields (walltime checks then
/// degrade gracefully).
std::vector<AppRun> ReconstructRuns(const Machine& machine,
                                    const std::vector<AlpsRecord>& alps,
                                    const std::vector<TorqueRecord>& torque,
                                    ReconstructStats* stats = nullptr);

/// Overload for callers done with the ALPS records: each placement's
/// nid list is moved into its run instead of copied.  Same output as
/// the const overload; `alps` is left in a valid but unspecified state.
std::vector<AppRun> ReconstructRuns(const Machine& machine,
                                    std::vector<AlpsRecord>&& alps,
                                    const std::vector<TorqueRecord>& torque,
                                    ReconstructStats* stats = nullptr);

}  // namespace ld
