#include "logdiver/report.hpp"

#include <algorithm>
#include <ostream>

#include "common/strings.hpp"

namespace ld {

std::string RenderTable(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return "";
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t i = 0; i < rows[r].size(); ++i) {
      if (i) out += "  ";
      out += rows[r][i];
      out.append(widths[i] - rows[r][i].size(), ' ');
    }
    out += '\n';
    if (r == 0) {
      for (std::size_t i = 0; i < widths.size(); ++i) {
        if (i) out += "  ";
        out.append(widths[i], '-');
      }
      out += '\n';
    }
  }
  return out;
}

void PrintHeadline(std::ostream& out, const MetricsReport& report) {
  out << "runs analyzed:              " << WithThousands(report.total_runs)
      << "\n";
  out << "production node-hours:      "
      << FormatDouble(report.total_node_hours, 0) << "\n";
  out << "system-failure fraction:    "
      << FormatDouble(report.system_failure_fraction * 100.0, 3)
      << "%   (paper: 1.53%)\n";
  out << "lost node-hours fraction:   "
      << FormatDouble(report.lost_node_hours_fraction * 100.0, 2)
      << "%   (paper: ~9%)\n";
  out << "overall MTTI:               "
      << FormatDouble(report.overall_mtti_hours, 1) << " h\n";
  out << "jobs hit by system failure: "
      << WithThousands(report.job_impact.jobs_with_system_failure) << " of "
      << WithThousands(report.job_impact.jobs) << " ("
      << FormatDouble(report.job_impact.fraction * 100.0, 3) << "%)\n";
}

void PrintOutcomeBreakdown(std::ostream& out, const MetricsReport& report) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"outcome", "runs", "runs %", "node-hours", "node-hours %"});
  for (const OutcomeRow& row : report.outcomes) {
    rows.push_back({AppOutcomeName(row.outcome), WithThousands(row.runs),
                    FormatDouble(row.runs_share * 100.0, 3),
                    FormatDouble(row.node_hours, 0),
                    FormatDouble(row.node_hours_share * 100.0, 2)});
  }
  out << RenderTable(rows);
}

void PrintCategoryTable(std::ostream& out, const MetricsReport& report) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back(
      {"category", "raw events", "tuples", "fatal tuples", "fatal MTBE (h)"});
  for (const CategoryRow& row : report.categories) {
    rows.push_back({ErrorCategoryName(row.category),
                    WithThousands(row.raw_events), WithThousands(row.tuples),
                    WithThousands(row.fatal_tuples),
                    FormatDouble(row.fatal_mtbe_hours, 1)});
  }
  out << RenderTable(rows);
  out << "system-service incidents: "
      << WithThousands(report.availability.incidents) << ", downtime "
      << FormatDouble(report.availability.downtime_hours, 1)
      << " h, availability "
      << FormatDouble(report.availability.availability * 100.0, 3) << "%\n";
}

void PrintAttributionTable(std::ostream& out, const MetricsReport& report) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"root cause", "XE failures", "XK failures", "total"});
  for (const AttributionRow& row : report.attribution) {
    rows.push_back({ErrorCategoryName(row.cause),
                    WithThousands(row.xe_failures),
                    WithThousands(row.xk_failures),
                    WithThousands(row.xe_failures + row.xk_failures)});
  }
  out << RenderTable(rows);
}

void PrintScaleCurve(std::ostream& out, const std::vector<ScalePoint>& points,
                     const std::string& title) {
  out << title << "\n";
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"nodes", "runs", "system failures", "P(fail)", "95% CI"});
  for (const ScalePoint& p : points) {
    const std::string band = p.lo == p.hi
                                 ? std::to_string(p.lo)
                                 : std::to_string(p.lo) + "-" +
                                       std::to_string(p.hi);
    rows.push_back({band, WithThousands(p.runs),
                    WithThousands(p.system_failures),
                    FormatDouble(p.failure_probability.point, 4),
                    "[" + FormatDouble(p.failure_probability.lo, 4) + ", " +
                        FormatDouble(p.failure_probability.hi, 4) + "]"});
  }
  out << RenderTable(rows);
}

void PrintMonthlySeries(std::ostream& out, const MetricsReport& report) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"month", "runs", "system failures", "node-hours",
                  "lost node-hours", "lost %", "MTTI (h)"});
  for (const MonthlyPoint& p : report.monthly) {
    char label[16];
    std::snprintf(label, sizeof(label), "%04d-%02d", p.year, p.month);
    const double lost_share =
        p.node_hours > 0.0 ? p.lost_node_hours / p.node_hours * 100.0 : 0.0;
    rows.push_back({label, WithThousands(p.runs),
                    WithThousands(p.system_failures),
                    FormatDouble(p.node_hours, 0),
                    FormatDouble(p.lost_node_hours, 0),
                    FormatDouble(lost_share, 2),
                    FormatDouble(p.mtti_hours, 1)});
  }
  out << RenderTable(rows);
}

void PrintDetectionGap(std::ostream& out, const MetricsReport& report) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"partition", "system failures", "attributed",
                  "unattributed", "unattributed %"});
  for (const DetectionGapRow& row : report.detection_gap) {
    rows.push_back({NodeTypeName(row.type),
                    WithThousands(row.system_failures),
                    WithThousands(row.attributed),
                    WithThousands(row.unattributed),
                    FormatDouble(row.unattributed_share * 100.0, 1)});
  }
  out << RenderTable(rows);
}

void PrintQueueWaits(std::ostream& out, const MetricsReport& report) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"job size (nodes)", "jobs", "mean wait (h)", "p95 wait (h)"});
  for (const QueueWaitRow& row : report.queue_waits) {
    const std::string band = row.hi >= (1u << 30)
                                 ? std::to_string(row.lo) + "+"
                                 : row.lo == row.hi
                                       ? std::to_string(row.lo)
                                       : std::to_string(row.lo) + "-" +
                                             std::to_string(row.hi);
    rows.push_back({band, WithThousands(row.jobs),
                    FormatDouble(row.mean_wait_hours, 2),
                    FormatDouble(row.p95_wait_hours, 2)});
  }
  out << RenderTable(rows);
}

void PrintParseSummary(std::ostream& out, const AnalysisResult& analysis) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"source", "lines", "records", "skipped", "malformed"});
  const std::pair<const char*, const ParseStats*> sources[] = {
      {"torque", &analysis.torque_stats},
      {"alps", &analysis.alps_stats},
      {"syslog", &analysis.syslog_stats},
      {"hwerr", &analysis.hwerr_stats},
  };
  for (const auto& [name, stats] : sources) {
    rows.push_back({name, WithThousands(stats->lines),
                    WithThousands(stats->records),
                    WithThousands(stats->skipped),
                    WithThousands(stats->malformed)});
  }
  out << RenderTable(rows);
  out << "runs reconstructed: "
      << WithThousands(analysis.reconstruct_stats.runs)
      << "  (missing termination: "
      << WithThousands(analysis.reconstruct_stats.missing_termination)
      << ", orphan terminations: "
      << WithThousands(analysis.reconstruct_stats.orphan_terminations)
      << ", missing job: "
      << WithThousands(analysis.reconstruct_stats.missing_job) << ")\n";
  out << "error tuples: " << WithThousands(analysis.coalesce_stats.tuples)
      << " from " << WithThousands(analysis.coalesce_stats.input_events)
      << " events (unresolved locations: "
      << WithThousands(analysis.coalesce_stats.unresolved_locations) << ")\n";
}

}  // namespace ld
