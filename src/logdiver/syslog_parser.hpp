// Parser for RFC3164-style syslog RAS streams.
//
// Two field-study realities are handled here:
//  1. Classic syslog timestamps carry no year ("Apr  1 02:10:02").  The
//     parser reconstructs the year from a configured campaign start year
//     and month-rollover detection (timestamps are monotone per stream;
//     when the month moves backwards across a December/January boundary
//     the year is advanced).
//  2. Lustre incidents are reported as an error line when the service
//     degrades and a recovery line when it returns.  The parser pairs
//     them into a single system-scope record carrying the outage window;
//     overlapping incident windows are merged into the open incident.
//
// Both are cross-line state, so the chunk-parallel path is split in two:
// ParseChunk (any thread) emits *year-relative* pre-records — calendar
// fields plus the rollover count within the chunk — and ReduceChunks
// (owning thread, chunks in order) resolves absolute years across chunk
// boundaries and runs the incident-pairing state machine serially.  The
// result is bit-identical to the line-at-a-time path at any thread count
// or chunk size (see DESIGN.md "Parallel ingestion").
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "logdiver/chunked_parse.hpp"
#include "logdiver/records.hpp"

namespace ld {

class SyslogParser {
 public:
  /// `base_year` is the calendar year of the first line in the stream.
  explicit SyslogParser(int base_year);

  /// Parses one line.  Recovery lines return nullopt (they close the
  /// pending incident, visible via `Finish()` / mutated prior records).
  Result<std::optional<ErrorRecord>> ParseLine(std::string_view line);

  /// One record parsed inside a chunk, before the absolute year is
  /// known: `year_delta` counts December rollovers observed within the
  /// chunk up to and including this line.
  struct PreRecord {
    ErrorRecord rec;  // time unset; recovered unset (see is_recovery)
    int year_delta = 0;
    int month = 0, day = 0, hour = 0, minute = 0, second = 0;
    bool is_recovery = false;  // Lustre recovery line (closes an incident)
  };

  /// A chunk's private output plus the year-rollover summary the ordered
  /// reduction needs to stitch absolute years across chunk boundaries.
  struct Chunk {
    std::vector<PreRecord> items;
    ParseStats stats;
    QuarantineSink sink;
    int first_month = 0;      // first month-valid line's month, 0 if none
    int last_month = 0;       // last month-valid line's month, 0 if none
    int year_delta_total = 0; // rollovers observed within the chunk
  };

  /// Parses a slice of lines into a private chunk; safe to call from any
  /// thread (touches no parser state).  `first_line_no` is the 1-based
  /// global number of lines[0]; `capture` null disables quarantine.
  static Chunk ParseChunk(std::span<const std::string_view> lines,
                          std::uint64_t first_line_no,
                          const QuarantineConfig* capture);

  /// Folds chunks — in order — through the year-reconstruction and
  /// incident-pairing state machines, updating this parser's stream
  /// state, stats, and `sink`.  Any incident still open at end-of-input
  /// is closed with the default window.
  std::vector<ErrorRecord> ReduceChunks(std::vector<Chunk>&& chunks,
                                        QuarantineSink* sink = nullptr);

  /// Parses a whole stream, chunked across `pool` (inline when null),
  /// and returns the completed records, including paired system
  /// incidents.  Rejected lines are captured in `sink` when provided.
  std::vector<ErrorRecord> ParseLines(
      std::span<const std::string_view> lines, QuarantineSink* sink = nullptr,
      ThreadPool* pool = nullptr,
      std::size_t chunk_lines = kDefaultParseChunkLines);

  /// Legacy overload for owning line vectors; single-threaded.
  std::vector<ErrorRecord> ParseLines(const std::vector<std::string>& lines,
                                      QuarantineSink* sink = nullptr);

  const ParseStats& stats() const { return stats_; }

  /// Checkpoint-restore hooks: beyond the counters, the parser carries
  /// the year-rollover reconstruction state (current year + last month
  /// seen), which must survive a restore or timestamps after a December
  /// boundary would land in the wrong year.
  struct StreamState {
    ParseStats stats;
    int current_year = 0;
    int last_month = 0;
  };
  StreamState stream_state() const {
    return {stats_, current_year_, last_month_};
  }
  void RestoreStreamState(const StreamState& state) {
    stats_ = state.stats;
    current_year_ = state.current_year;
    last_month_ = state.last_month;
  }

  /// Parses "Apr  1 02:10:02" within the given year.
  static Result<TimePoint> ParseSyslogTime(std::string_view text, int year);

 private:
  Result<std::optional<ErrorRecord>> ParseLineImpl(std::string_view line);

  ParseStats stats_;
  int current_year_;
  int last_month_ = 0;
};

}  // namespace ld
