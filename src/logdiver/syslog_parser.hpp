// Parser for RFC3164-style syslog RAS streams.
//
// Two field-study realities are handled here:
//  1. Classic syslog timestamps carry no year ("Apr  1 02:10:02").  The
//     parser reconstructs the year from a configured campaign start year
//     and month-rollover detection (timestamps are monotone per stream;
//     when the month moves backwards across a December/January boundary
//     the year is advanced).
//  2. Lustre incidents are reported as an error line when the service
//     degrades and a recovery line when it returns.  The parser pairs
//     them into a single system-scope record carrying the outage window;
//     overlapping incident windows are merged into the open incident.
#pragma once

#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "logdiver/records.hpp"

namespace ld {

class QuarantineSink;

class SyslogParser {
 public:
  /// `base_year` is the calendar year of the first line in the stream.
  explicit SyslogParser(int base_year);

  /// Parses one line.  Recovery lines return nullopt (they close the
  /// pending incident, visible via `Finish()` / mutated prior records).
  Result<std::optional<ErrorRecord>> ParseLine(std::string_view line);

  /// Parses a whole stream and returns the completed records, including
  /// paired system incidents.  Any incident still open at end-of-stream
  /// is closed with a default window.  Rejected lines are captured in
  /// `sink` when one is provided.
  std::vector<ErrorRecord> ParseLines(const std::vector<std::string>& lines,
                                      QuarantineSink* sink = nullptr);

  const ParseStats& stats() const { return stats_; }

  /// Checkpoint-restore hooks: beyond the counters, the parser carries
  /// the year-rollover reconstruction state (current year + last month
  /// seen), which must survive a restore or timestamps after a December
  /// boundary would land in the wrong year.
  struct StreamState {
    ParseStats stats;
    int current_year = 0;
    int last_month = 0;
  };
  StreamState stream_state() const {
    return {stats_, current_year_, last_month_};
  }
  void RestoreStreamState(const StreamState& state) {
    stats_ = state.stats;
    current_year_ = state.current_year;
    last_month_ = state.last_month;
  }

  /// Parses "Apr  1 02:10:02" within the given year.
  static Result<TimePoint> ParseSyslogTime(std::string_view text, int year);

 private:
  Result<std::optional<ErrorRecord>> ParseLineImpl(std::string_view line);

  ParseStats stats_;
  int current_year_;
  int last_month_ = 0;
};

}  // namespace ld
