#include "logdiver/quarantine.hpp"

#include <fstream>

#include "common/obs/obs.hpp"
#include "logdiver/snapshot.hpp"

namespace ld {

const char* DegradationPolicyName(DegradationPolicy policy) {
  switch (policy) {
    case DegradationPolicy::kFailFast: return "fail_fast";
    case DegradationPolicy::kQuarantineAndContinue: return "quarantine";
  }
  return "unknown";
}

QuarantineSink::QuarantineSink(QuarantineConfig config)
    : config_(config) {}

void QuarantineSink::Add(LogSource source, std::uint64_t line_number,
                         std::string_view line, const Status& why) {
  // Add() is the exactly-once rejection point (MergeFrom moves entries
  // without re-Adding), so this count can never double.
  LD_OBS_COUNTER_ADD(obs::names::kQuarantineAddedTotal, 1);
  ++total_;
  ++by_source_[static_cast<std::size_t>(source)];
  if (entries_.size() >= config_.max_entries) {
    ++overflow_;
    return;
  }
  QuarantineEntry entry;
  entry.source = source;
  entry.line_number = line_number;
  entry.reason = why.ToString();
  entry.line = std::string(line.substr(0, config_.max_line_bytes));
  entries_.push_back(std::move(entry));
}

void QuarantineSink::MergeFrom(QuarantineSink&& other) {
  total_ += other.total_;
  for (std::size_t i = 0; i < by_source_.size(); ++i) {
    by_source_[i] += other.by_source_[i];
  }
  for (QuarantineEntry& entry : other.entries_) {
    if (entries_.size() >= config_.max_entries) break;
    entries_.push_back(std::move(entry));
  }
  // Invariant (same as Add): everything beyond the stored entries is
  // overflow, including entries the chunk-local sink itself dropped.
  overflow_ = total_ - entries_.size();
}

std::uint64_t QuarantineSink::count(LogSource source) const {
  return by_source_[static_cast<std::size_t>(source)];
}

std::vector<std::string> QuarantineSink::Render() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const QuarantineEntry& entry : entries_) {
    std::string row = LogSourceName(entry.source);
    row += '|';
    row += std::to_string(entry.line_number);
    row += '|';
    row += entry.reason;
    row += '|';
    // Control bytes in garbled lines would corrupt the quarantine file's
    // own line framing; escape them.
    for (char c : entry.line) {
      const auto u = static_cast<unsigned char>(c);
      if (u < 0x20 || u == 0x7f) {
        constexpr char kHex[] = "0123456789abcdef";
        row += "\\x";
        row += kHex[u >> 4];
        row += kHex[u & 0xf];
      } else {
        row += c;
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

Status QuarantineSink::WriteTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return InternalError("cannot write '" + path + "'");
  for (const std::string& row : Render()) out << row << '\n';
  return Status::Ok();
}

void QuarantineSink::SaveState(SnapshotWriter& w) const {
  w.U32(static_cast<std::uint32_t>(entries_.size()));
  for (const QuarantineEntry& entry : entries_) {
    SaveQuarantineEntry(w, entry);
  }
  w.U64(total_);
  w.U64(overflow_);
  for (std::uint64_t n : by_source_) w.U64(n);
}

void QuarantineSink::LoadState(SnapshotReader& r) {
  const std::uint32_t entries = r.U32();
  entries_.clear();
  if (r.ok()) entries_.reserve(entries);
  for (std::uint32_t i = 0; i < entries && r.ok(); ++i) {
    QuarantineEntry entry;
    LoadQuarantineEntry(r, entry);
    entries_.push_back(std::move(entry));
  }
  total_ = r.U64();
  overflow_ = r.U64();
  for (std::uint64_t& n : by_source_) n = r.U64();
}

}  // namespace ld
