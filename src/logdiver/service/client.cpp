#include "logdiver/service/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "logdiver/service/protocol.hpp"

namespace ld::service {

Result<std::unique_ptr<ServiceClient>> ServiceClient::Connect(
    const std::string& address, std::uint64_t recv_timeout_ms) {
  LD_ASSIGN_OR_RETURN(const int fd, ConnectTo(address));
  if (recv_timeout_ms != 0) {
    const Status set = SetRecvTimeoutMs(fd, recv_timeout_ms);
    if (!set.ok()) {
      ::close(fd);
      return set;
    }
  }
  return std::unique_ptr<ServiceClient>(new ServiceClient(fd));
}

Result<std::string> ServiceClient::Send(const std::string& request) {
  LD_TRY(channel_.WriteLine(request));
  LD_ASSIGN_OR_RETURN(const auto reply, channel_.ReadLine());
  if (!reply.has_value()) {
    return InternalError("client: daemon closed the connection");
  }
  return *reply;
}

Result<std::string> ServiceClient::IngestWithRetry(const std::string& tenant,
                                                   LogSource source,
                                                   std::string_view line,
                                                   int max_attempts) {
  const std::string request = "INGEST " + tenant + " " +
                              LogSourceName(source) + " " + std::string(line);
  std::string reply;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    LD_ASSIGN_OR_RETURN(reply, Send(request));
    if (ReplyVerdict(reply) != "BUSY") return reply;
    // "BUSY <retry_ms> <why>": honour the hint, capped so a confused
    // daemon cannot park the client for minutes.
    std::uint64_t retry_ms = 20;
    (void)std::sscanf(reply.c_str(), "BUSY %" SCNu64, &retry_ms);
    ::usleep(static_cast<useconds_t>(std::min<std::uint64_t>(retry_ms, 200) *
                                     1000));
  }
  return reply;
}

Result<std::uint64_t> ServiceClient::AcceptedCount(const std::string& tenant) {
  LD_ASSIGN_OR_RETURN(const std::string reply,
                      Send("QUERY " + tenant + " ingest"));
  if (ReplyVerdict(reply) == "ERR") return std::uint64_t{0};  // unknown tenant
  std::uint64_t accepted = 0;
  if (std::sscanf(reply.c_str(), "OK accepted=%" SCNu64, &accepted) != 1) {
    return InternalError("client: unparseable ingest reply '" + reply + "'");
  }
  return accepted;
}

}  // namespace ld::service
