// Per-tenant write-ahead ingest journal: the durability half of the
// service's exactly-once contract.
//
// Every accepted INGEST is appended here — source tag, the claimed
// timestamp the watermark schedule will use, and the raw line — with an
// unbuffered write(2) *before* the OK reply goes out.  An acknowledged
// line therefore survives kill -9 of the daemon: recovery restores the
// tenant's latest snapshot and replays the journal suffix past the
// snapshot's recorded byte offset, reproducing the analyzer state
// bit-identically (the claimed time travels with the record, so the
// watermark schedule replays exactly even though the recovery path
// never re-runs the timestamp parsers).
//
// Record format (text, one record per line — see docs/FORMATS.md):
//
//   <s> <claimed_unix> <raw line>\n      s in {t,a,s,h}
//
// A crash can tear at most the final record (single appender, O_APPEND
// writes).  Recovery validates records as it replays and truncates the
// journal at the first torn/malformed byte — everything before it was
// acknowledged and is kept; the torn tail was never acknowledged.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "common/time.hpp"
#include "logdiver/records.hpp"

namespace ld::service {

/// One replayed journal record.
struct JournalRecord {
  LogSource source = LogSource::kTorque;
  TimePoint claimed;
  std::string line;
  /// Journal byte offset just past this record — what a snapshot taken
  /// after applying it must store as its resume offset.
  std::uint64_t end_offset = 0;
};

/// Single-appender journal file.  Thread-compatible, not thread-safe:
/// the owning shard serializes Append calls under its ingest lock.
class TenantJournal {
 public:
  TenantJournal() = default;
  ~TenantJournal();
  TenantJournal(const TenantJournal&) = delete;
  TenantJournal& operator=(const TenantJournal&) = delete;

  /// Opens (creates) `path` for appending; `size()` reflects the
  /// existing contents.  Call Replay + TruncateTo first on recovery so
  /// a torn tail is cut before new records land after it.
  Status Open(const std::string& path);
  void Close();
  bool is_open() const { return fd_ >= 0; }

  /// Appends one record with a single unbuffered write(2) and returns
  /// the byte offset just past it.  On any error the journal is closed
  /// and the shard must stop acknowledging — a lost append may not be
  /// acked.
  Result<std::uint64_t> Append(LogSource source, TimePoint claimed,
                               std::string_view line);

  /// Flushes file data to disk (fdatasync).  The shard calls this
  /// before every snapshot: the snapshot's resume offset must never
  /// point past what the disk holds.
  Status Sync();

  /// Bytes appended so far (== file size while open).
  std::uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Replays `path` from `from_offset`, invoking `fn` per valid record
  /// in order.  Stops at the first torn/malformed record and returns
  /// the byte offset where valid data ends; a missing file replays
  /// nothing and returns `from_offset`.
  static Result<std::uint64_t> Replay(
      const std::string& path, std::uint64_t from_offset,
      const std::function<void(const JournalRecord&)>& fn);

  /// Truncates `path` to `size` bytes (recovery cutting a torn tail).
  static Status TruncateTo(const std::string& path, std::uint64_t size);

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string path_;
};

}  // namespace ld::service
