// Blocking client of the logdiverd line protocol — what the campaign
// traffic generators, the CI smoke test and downstream shippers use.
//
// The client implements the exactly-once resume protocol on top of the
// OK/BUSY/SHED verdicts: Send() is one round trip; IngestWithRetry()
// honours BUSY retry hints with a bounded number of attempts; and
// AcceptedCount() asks the daemon how many of this tenant's lines were
// durably acknowledged, so a client restarted after a daemon crash
// resends exactly the unacknowledged suffix.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/sockio.hpp"
#include "logdiver/records.hpp"

namespace ld::service {

class ServiceClient {
 public:
  /// Connects to `address` (sockio spellings).  `recv_timeout_ms`
  /// bounds every reply wait (0 = wait forever).
  static Result<std::unique_ptr<ServiceClient>> Connect(
      const std::string& address, std::uint64_t recv_timeout_ms = 10000);

  /// One request/reply round trip; returns the raw reply line.
  Result<std::string> Send(const std::string& request);

  /// INGEST with BUSY-retry: sleeps each BUSY's retry hint (capped at
  /// 200 ms) up to `max_attempts` total sends.  Returns the final
  /// reply (OK, SHED, ERR — or the last BUSY when attempts run out).
  Result<std::string> IngestWithRetry(const std::string& tenant,
                                      LogSource source,
                                      std::string_view line,
                                      int max_attempts = 50);

  /// The daemon's accepted-line count for `tenant` (its `QUERY ingest`
  /// accepted field); 0 for an unknown tenant.  The resume cursor.
  Result<std::uint64_t> AcceptedCount(const std::string& tenant);

 private:
  explicit ServiceClient(int fd) : channel_(fd) {}
  LineChannel channel_;
};

}  // namespace ld::service
