#include "logdiver/service/daemon.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/crashpoint.hpp"
#include "common/obs/obs.hpp"
#include "common/sockio.hpp"
#include "logdiver/service/protocol.hpp"

namespace ld::service {
namespace {

namespace fs = std::filesystem;

}  // namespace

LogDiverDaemon::LogDiverDaemon(const Machine& machine, ServiceOptions options)
    : machine_(machine), options_(std::move(options)) {}

LogDiverDaemon::~LogDiverDaemon() { Stop(); }

Status LogDiverDaemon::RecoverExistingTenants() {
  std::error_code ec;
  fs::create_directories(options_.data_dir, ec);
  if (ec) {
    return InternalError("daemon: cannot create " + options_.data_dir + ": " +
                         ec.message());
  }
  // Sorted adoption order: deterministic recovery logs and tests.
  std::vector<std::string> ids;
  for (const auto& entry : fs::directory_iterator(options_.data_dir, ec)) {
    if (!entry.is_directory()) continue;
    const std::string id = entry.path().filename().string();
    if (ValidTenantId(id)) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const std::string& id : ids) {
    auto shard = std::make_shared<TenantShard>(
        id, options_.data_dir + "/" + id, machine_, options_.analyzer,
        options_.tenant);
    std::uint64_t replayed = 0;
    LD_TRY(shard->Start(&replayed));
    std::lock_guard<std::mutex> lock(tenants_mu_);
    tenants_.emplace(id, std::move(shard));
    ++tenants_recovered_;
    LD_OBS_COUNTER_ADD(obs::names::kSvcTenantsRecoveredTotal, 1);
    std::fprintf(stderr, "[svc] re-adopted tenant %s (%llu journal lines)\n",
                 id.c_str(), static_cast<unsigned long long>(replayed));
  }
  return Status::Ok();
}

Status LogDiverDaemon::Start() {
  if (started_) return FailedPreconditionError("daemon: already started");
  if (options_.data_dir.empty()) {
    return InvalidArgumentError("daemon: data_dir is required");
  }
  LD_TRY(RecoverExistingTenants());
  LD_ASSIGN_OR_RETURN(listen_fd_, ListenOn(options_.listen));
  LD_ASSIGN_OR_RETURN(address_, ListeningAddress(listen_fd_));
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (options_.watchdog_period_ms != 0) {
    watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  }
  started_ = true;
  return Status::Ok();
}

void LogDiverDaemon::Stop() {
  if (!started_) return;
  stopping_.store(true);
  // Closing the listener unblocks the accept thread.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  std::map<std::string, std::shared_ptr<TenantShard>> tenants;
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    tenants = tenants_;
  }
  for (auto& [id, shard] : tenants) {
    const Status drained = shard->Drain();
    if (!drained.ok()) {
      std::fprintf(stderr, "[svc] stop: %s\n", drained.ToString().c_str());
    }
    shard->Stop();
  }
  started_ = false;
}

std::shared_ptr<TenantShard> LogDiverDaemon::FindTenant(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second;
}

std::size_t LogDiverDaemon::tenant_count() const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  return tenants_.size();
}

std::shared_ptr<TenantShard> LogDiverDaemon::FindOrAdmit(
    const std::string& tenant, std::string& refusal) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second;
  if (tenants_.size() >= options_.max_tenants) {
    refusal = BusyReply(options_.admission_retry_ms,
                        "daemon at max-tenants (" +
                            std::to_string(options_.max_tenants) + ")");
    return nullptr;
  }
  auto shard = std::make_shared<TenantShard>(
      tenant, options_.data_dir + "/" + tenant, machine_, options_.analyzer,
      options_.tenant);
  const Status started = shard->Start();
  if (!started.ok()) {
    refusal = ErrReply("cannot admit tenant " + tenant + ": " +
                       started.message());
    return nullptr;
  }
  tenants_.emplace(tenant, shard);
  LD_OBS_COUNTER_ADD(obs::names::kSvcTenantsAdmittedTotal, 1);
  return shard;
}

std::string LogDiverDaemon::HandleCommand(const std::string& line) {
  auto request = ParseRequest(line);
  if (!request.ok()) return ErrReply(request.status().message());
  const Request& req = *request;

  switch (req.kind) {
    case RequestKind::kPing:
      return OkReply("logdiverd tenants=" + std::to_string(tenant_count()) +
                     " recycles=" + std::to_string(watchdog_recycles()));

    case RequestKind::kIngest: {
      std::string refusal;
      const std::shared_ptr<TenantShard> shard =
          FindOrAdmit(req.tenant, refusal);
      if (shard == nullptr) return refusal;
      return shard->Ingest(req.source, req.line);
    }

    case RequestKind::kQuery: {
      const std::uint64_t start_ns = LD_OBS_NOW_NS();
      const std::shared_ptr<TenantShard> shard = FindTenant(req.tenant);
      if (shard == nullptr) {
        return ErrReply("unknown tenant '" + req.tenant + "'");
      }
      std::string reply;
      switch (req.query) {
        case QueryKind::kReport: reply = shard->QueryReport(); break;
        case QueryKind::kIngest: reply = shard->QueryIngest(); break;
        case QueryKind::kHealth: reply = shard->QueryHealth(); break;
      }
      LD_OBS_COUNTER_ADD(obs::names::kSvcQueriesTotal, 1);
      if (start_ns != 0) {
        LD_OBS_HIST_RECORD(obs::names::kSvcQueryMicros,
                           (LD_OBS_NOW_NS() - start_ns) / 1000);
      }
      return reply;
    }

    case RequestKind::kSnapshot: {
      std::map<std::string, std::shared_ptr<TenantShard>> tenants;
      {
        std::lock_guard<std::mutex> lock(tenants_mu_);
        tenants = tenants_;
      }
      std::size_t written = 0;
      for (auto& [id, shard] : tenants) {
        const Status snap = shard->SnapshotNow();
        if (snap.ok()) {
          ++written;
        } else {
          std::fprintf(stderr, "[svc] SNAPSHOT: %s\n",
                       snap.ToString().c_str());
        }
      }
      return OkReply("snapshotted " + std::to_string(written) + "/" +
                     std::to_string(tenants.size()));
    }

    case RequestKind::kDrain: {
      std::map<std::string, std::shared_ptr<TenantShard>> tenants;
      {
        std::lock_guard<std::mutex> lock(tenants_mu_);
        tenants = tenants_;
      }
      for (auto& [id, shard] : tenants) {
        const Status drained = shard->Drain();
        if (!drained.ok()) return ErrReply(drained.message());
      }
      return OkReply("drained " + std::to_string(tenants.size()) +
                     " tenants");
    }

    case RequestKind::kFault: {
      if (!options_.enable_fault_commands) {
        return ErrReply("fault injection disabled "
                        "(--enable-fault-injection)");
      }
      if (req.fault == FaultKind::kCrash) {
        // Daemon-wide: the countdown ticks at every shard's apply
        // boundary; whichever tenant's worker hits it kills the whole
        // process, std::_Exit style.
        ArmCrashPoint(req.fault_after);
        return OkReply("armed crash after " +
                       std::to_string(req.fault_after) + " applies");
      }
      // Admit-if-absent: campaigns arm the fault *before* the first
      // INGEST, or the fault could miss the lines it is meant to hit.
      std::string refusal;
      const std::shared_ptr<TenantShard> shard =
          FindOrAdmit(req.tenant, refusal);
      if (shard == nullptr) return refusal;
      switch (req.fault) {
        case FaultKind::kNone:
          shard->ArmFault(ShardFault::kNone, 0, 0, 0);
          return OkReply("fault cleared");
        case FaultKind::kHang:
          shard->ArmFault(ShardFault::kHang, req.fault_after, 0, 0);
          return OkReply("armed hang");
        case FaultKind::kSlow:
          shard->ArmFault(ShardFault::kSlow, req.fault_after,
                          req.fault_mean_ms, req.fault_seed);
          return OkReply("armed slow");
        case FaultKind::kCrash: break;  // handled above
      }
      return ErrReply("unreachable fault kind");
    }
  }
  return ErrReply("unreachable request kind");
}

void LogDiverDaemon::ServeConnection(int fd) {
  // Reads time out periodically so an idle connection notices daemon
  // shutdown instead of pinning Stop() in a join forever.
  (void)SetRecvTimeoutMs(fd, 250);
  LineChannel channel(fd);
  while (!stopping_.load()) {
    auto line = channel.ReadLine();
    if (!line.ok()) {
      if (channel.timed_out()) continue;
      return;  // real socket error
    }
    if (!line->has_value()) return;  // clean EOF
    const Status sent = channel.WriteLine(HandleCommand(**line));
    if (!sent.ok()) return;
  }
}

void LogDiverDaemon::AcceptLoop() {
  while (!stopping_.load()) {
    auto fd = AcceptOn(listen_fd_);
    if (!fd.ok()) {
      if (stopping_.load()) return;
      std::fprintf(stderr, "[svc] accept: %s\n",
                   fd.status().ToString().c_str());
      return;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back(
        [this, conn = *fd] { ServeConnection(conn); });
  }
}

void LogDiverDaemon::WatchdogLoop() {
  while (!stopping_.load()) {
    ::usleep(static_cast<useconds_t>(options_.watchdog_period_ms * 1000));
    if (stopping_.load()) return;
    const auto now = std::chrono::steady_clock::now();

    // Collect the stalled set under the lock, recycle outside it:
    // Start() on the replacement replays the journal, which can take a
    // while, and ingest/query handlers must not block behind it.
    std::vector<std::shared_ptr<TenantShard>> stalled;
    {
      std::lock_guard<std::mutex> lock(tenants_mu_);
      for (auto& [id, shard] : tenants_) {
        Progress& p = progress_[id];
        const std::uint64_t applied = shard->applied();
        if (applied != p.applied || p.last_change.time_since_epoch() ==
                                        std::chrono::steady_clock::duration::
                                            zero()) {
          p.applied = applied;
          p.last_change = now;
          continue;
        }
        // No progress since the last tick.  Only work left undone
        // marks a stall: an idle tenant has nothing to apply.  A slow
        // shard keeps bumping `applied` and never lands here — that is
        // the whole point of the delay fault distinguishing the two.
        if (shard->queue_depth() == 0) {
          p.last_change = now;
          continue;
        }
        if (now - p.last_change >=
            std::chrono::milliseconds(options_.stall_timeout_ms)) {
          stalled.push_back(shard);
        }
      }
    }

    for (const std::shared_ptr<TenantShard>& shard : stalled) {
      const std::string id = shard->tenant_id();
      std::fprintf(stderr, "[svc] watchdog: tenant %s stalled, recycling\n",
                   id.c_str());
      shard->Abandon();
      auto fresh = std::make_shared<TenantShard>(
          id, options_.data_dir + "/" + id, machine_, options_.analyzer,
          options_.tenant);
      std::uint64_t replayed = 0;
      const Status restarted = fresh->Start(&replayed);
      std::lock_guard<std::mutex> lock(tenants_mu_);
      graveyard_.push_back(shard);
      if (restarted.ok()) {
        tenants_[id] = std::move(fresh);
        progress_[id] = Progress{tenants_[id]->applied(), now};
        watchdog_recycles_.fetch_add(1, std::memory_order_relaxed);
        LD_OBS_COUNTER_ADD(obs::names::kSvcWatchdogKillsTotal, 1);
        LD_OBS_COUNTER_ADD(obs::names::kSvcTenantsRecoveredTotal, 1);
        std::fprintf(stderr,
                     "[svc] watchdog: tenant %s recycled (%llu journal "
                     "lines replayed)\n",
                     id.c_str(), static_cast<unsigned long long>(replayed));
      } else {
        // The tenant stays routed to the abandoned shard (which answers
        // ERR) rather than vanishing; the next tick retries.
        std::fprintf(stderr, "[svc] watchdog: tenant %s recycle failed: %s\n",
                     id.c_str(), restarted.ToString().c_str());
      }
    }
  }
}

}  // namespace ld::service
