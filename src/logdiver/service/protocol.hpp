// Wire protocol of the always-on LogDiver service (docs/SERVICE.md).
//
// One request per line, one reply per line, over a LineChannel.  The
// grammar is deliberately tiny — a log shipper is a shell loop away:
//
//   INGEST <tenant> <source> <raw log line>
//   QUERY  <tenant> report|ingest|health
//   SNAPSHOT
//   DRAIN
//   FAULT  <tenant> crash|hang|slow|none [<after> [<mean_ms> <seed>]]
//   PING
//
// Replies start with one of four verdict words, so a client can route
// on the first token without parsing the rest:
//
//   OK <details>            — accepted / answered
//   BUSY <retry_ms> <why>   — transient overload (full queue, admission
//                             cap); retry after the hint
//   SHED <retry_ms> <why>   — policy rejection (tenant over its error
//                             budget under the shed policy); the tenant
//                             is being refused, not just delayed
//   ERR <why>               — malformed request, unknown tenant on a
//                             query, or a stalled shard
//
// BUSY/SHED carry an explicit retry hint because the service never
// silently drops: a refused INGEST is always a refusal the client can
// see and act on (the exactly-once resume protocol depends on it —
// clients re-sync from `QUERY <t> ingest`'s accepted count).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "logdiver/records.hpp"

namespace ld::service {

enum class RequestKind : std::uint8_t {
  kIngest,
  kQuery,
  kSnapshot,
  kDrain,
  kFault,
  kPing,
};

enum class QueryKind : std::uint8_t { kReport, kIngest, kHealth };

/// The fault spellings the FAULT admin command accepts (campaign /
/// test surface; refused unless the daemon enables fault commands).
enum class FaultKind : std::uint8_t { kNone, kCrash, kHang, kSlow };

struct Request {
  RequestKind kind = RequestKind::kPing;
  std::string tenant;        // INGEST / QUERY / FAULT
  LogSource source = LogSource::kTorque;  // INGEST
  std::string line;          // INGEST: the raw log line, verbatim
  QueryKind query = QueryKind::kReport;   // QUERY
  FaultKind fault = FaultKind::kNone;     // FAULT
  std::uint64_t fault_after = 1;          // FAULT crash|hang|slow
  std::uint64_t fault_mean_ms = 5;        // FAULT slow
  std::uint64_t fault_seed = 1;           // FAULT slow
};

/// Parses one request line.  Tenant ids are [A-Za-z0-9._-]{1,64} —
/// they name filesystem directories, so the charset is the validation.
Result<Request> ParseRequest(std::string_view line);

/// True iff `tenant` is a well-formed tenant id.
bool ValidTenantId(std::string_view tenant);

/// Reply constructors — the only way reply lines are spelled, so the
/// verdict grammar cannot drift between daemon and tests.
std::string OkReply(std::string_view details);
std::string BusyReply(std::uint64_t retry_ms, std::string_view why);
std::string ShedReply(std::uint64_t retry_ms, std::string_view why);
std::string ErrReply(std::string_view why);

/// Leading verdict word of a reply ("OK", "BUSY", "SHED", "ERR").
std::string_view ReplyVerdict(std::string_view reply);

}  // namespace ld::service
