// The always-on multi-tenant LogDiver daemon (logdiverd).
//
// One process multiplexes up to max_tenants TenantShards over the line
// protocol (service/protocol.hpp): an accept thread hands each
// connection to its own handler thread (blocking I/O, no event loop),
// a watchdog thread recycles stalled shards from their latest snapshot
// + journal suffix, and the whole daemon recovers after kill -9 by
// re-adopting every tenant directory found under data_dir on Start().
//
// Robustness layering (docs/SERVICE.md):
//   admission    — max_tenants caps the shard population; an INGEST
//                  for a new tenant past the cap answers BUSY (the
//                  daemon is full, not the tenant misbehaving);
//   backpressure — per-tenant bounded queues answer BUSY queue-full;
//   degradation  — per-tenant error budgets answer SHED or mark the
//                  tenant degraded (TenantBudgetConfig::policy);
//   detection    — the watchdog compares each shard's applied counter
//                  across ticks; no progress with work queued past
//                  stall_timeout_ms means a wedged worker;
//   recovery     — a recycled or restarted shard restores its latest
//                  v2 snapshot (tenant-fingerprint-gated) and replays
//                  its journal suffix, bit-identical to never having
//                  stopped.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "logdiver/service/tenant.hpp"

namespace ld::service {

struct ServiceOptions {
  /// Listen address (sockio.hpp spellings; "unix:<path>" or
  /// "<ipv4>:<port>", port 0 = kernel-assigned).
  std::string listen = "127.0.0.1:0";
  /// Root directory; tenant <t> lives in <data_dir>/<t>/ (journal.ldj
  /// + snapshots/).  Start() re-adopts every subdirectory found here.
  std::string data_dir;
  /// Admission cap on concurrent tenants.
  std::size_t max_tenants = 128;
  /// Retry hint (ms) when the admission cap refuses a new tenant.
  std::uint64_t admission_retry_ms = 100;
  /// Watchdog cadence and the no-progress window that counts as a
  /// stall.  0 watchdog_period_ms disables the watchdog.
  std::uint64_t watchdog_period_ms = 100;
  std::uint64_t stall_timeout_ms = 1500;
  /// Accepts FAULT commands (campaign / test surface).  Off in
  /// production: an injected fault is an outage anyone can order.
  bool enable_fault_commands = false;
  /// Per-tenant sizing, cadence and budget (shared by all tenants).
  TenantLimits tenant;
  /// Analyzer configuration each tenant's StreamingAnalyzer gets.
  LogDiverConfig analyzer;
};

class LogDiverDaemon {
 public:
  LogDiverDaemon(const Machine& machine, ServiceOptions options);
  ~LogDiverDaemon();

  /// Recovers every tenant under data_dir, binds the listen address,
  /// and starts the accept + watchdog threads.
  Status Start();

  /// The bound address (port 0 resolved) — what clients connect to.
  const std::string& address() const { return address_; }

  /// Executes one protocol request and returns the reply line — the
  /// exact handler connection threads run, exposed so tests (and the
  /// in-process campaign cells) can drive the daemon without sockets.
  std::string HandleCommand(const std::string& line);

  /// Drains every tenant (flush + snapshot) and stops all threads.
  /// Idempotent; the destructor calls it.
  void Stop();

  // --- observability surface (tests, campaign) -----------------------
  std::size_t tenant_count() const;
  std::uint64_t tenants_recovered() const { return tenants_recovered_; }
  std::uint64_t watchdog_recycles() const {
    return watchdog_recycles_.load(std::memory_order_relaxed);
  }
  /// Snapshot of one tenant's shard (nullptr when absent).  The shared
  /// pointer keeps the shard alive across a concurrent recycle.
  std::shared_ptr<TenantShard> FindTenant(const std::string& tenant) const;

 private:
  std::shared_ptr<TenantShard> FindOrAdmit(const std::string& tenant,
                                           std::string& refusal);
  Status RecoverExistingTenants();
  void AcceptLoop();
  void WatchdogLoop();
  void ServeConnection(int fd);

  const Machine& machine_;
  const ServiceOptions options_;
  std::string address_;

  mutable std::mutex tenants_mu_;
  std::map<std::string, std::shared_ptr<TenantShard>> tenants_;
  /// Abandoned shards: their detached workers may still be waking up,
  /// so the objects outlive the recycle that replaced them.
  std::vector<std::shared_ptr<TenantShard>> graveyard_;
  /// Apply counters at the last watchdog tick, with the time each
  /// shard last made progress.
  struct Progress {
    std::uint64_t applied = 0;
    std::chrono::steady_clock::time_point last_change{};
  };
  std::map<std::string, Progress> progress_;

  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::thread watchdog_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  std::uint64_t tenants_recovered_ = 0;
  std::atomic<std::uint64_t> watchdog_recycles_{0};
  bool started_ = false;
};

}  // namespace ld::service
