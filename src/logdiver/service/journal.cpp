#include "logdiver/service/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

namespace ld::service {
namespace {

char SourceTag(LogSource source) {
  switch (source) {
    case LogSource::kTorque: return 't';
    case LogSource::kAlps: return 'a';
    case LogSource::kSyslog: return 's';
    case LogSource::kHwerr: return 'h';
  }
  return '?';
}

bool TagToSource(char tag, LogSource& out) {
  switch (tag) {
    case 't': out = LogSource::kTorque; return true;
    case 'a': out = LogSource::kAlps; return true;
    case 's': out = LogSource::kSyslog; return true;
    case 'h': out = LogSource::kHwerr; return true;
    default: return false;
  }
}

/// Parses "<s> <claimed_unix> <raw line>" (no trailing newline).  The
/// claimed time is a possibly-negative decimal (TimePoint is unix
/// seconds, and a pre-epoch claim is representable even if unlikely).
bool ParseRecordLine(std::string_view text, JournalRecord& rec) {
  if (text.size() < 3 || text[1] != ' ') return false;
  if (!TagToSource(text[0], rec.source)) return false;
  std::size_t pos = 2;
  bool negative = false;
  if (pos < text.size() && text[pos] == '-') {
    negative = true;
    ++pos;
  }
  const std::size_t digits_start = pos;
  std::int64_t unix_seconds = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    unix_seconds = unix_seconds * 10 + (text[pos] - '0');
    ++pos;
  }
  if (pos == digits_start) return false;
  if (pos >= text.size() || text[pos] != ' ') return false;
  rec.claimed = TimePoint(negative ? -unix_seconds : unix_seconds);
  rec.line = std::string(text.substr(pos + 1));
  return true;
}

}  // namespace

TenantJournal::~TenantJournal() { Close(); }

void TenantJournal::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TenantJournal::Open(const std::string& path) {
  Close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return InternalError("journal: cannot open " + path + ": " +
                         std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    const Status err = InternalError("journal: fstat " + path + ": " +
                                     std::strerror(errno));
    Close();
    return err;
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  path_ = path;
  return Status::Ok();
}

Result<std::uint64_t> TenantJournal::Append(LogSource source,
                                            TimePoint claimed,
                                            std::string_view line) {
  if (fd_ < 0) return FailedPreconditionError("journal: not open");
  std::string record;
  record.reserve(line.size() + 24);
  record.push_back(SourceTag(source));
  record.push_back(' ');
  record.append(std::to_string(claimed.unix_seconds()));
  record.push_back(' ');
  record.append(line);
  record.push_back('\n');
  // One write(2) for the whole record: with O_APPEND a crash tears at
  // most this record, never an earlier one.
  std::size_t written = 0;
  while (written < record.size()) {
    const ssize_t n = ::write(fd_, record.data() + written,
                              record.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status err = InternalError("journal: write " + path_ + ": " +
                                       std::strerror(errno));
      Close();  // a possibly-partial append must never be acked over
      return err;
    }
    written += static_cast<std::size_t>(n);
  }
  size_ += record.size();
  return size_;
}

Status TenantJournal::Sync() {
  if (fd_ < 0) return FailedPreconditionError("journal: not open");
  if (::fdatasync(fd_) != 0) {
    return InternalError("journal: fdatasync " + path_ + ": " +
                         std::strerror(errno));
  }
  return Status::Ok();
}

Result<std::uint64_t> TenantJournal::Replay(
    const std::string& path, std::uint64_t from_offset,
    const std::function<void(const JournalRecord&)>& fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return from_offset;  // no journal yet: nothing to replay
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  if (from_offset > file_size) {
    return FailedPreconditionError(
        "journal: snapshot offset " + std::to_string(from_offset) +
        " past the end of " + path + " (" + std::to_string(file_size) +
        " bytes) — snapshot and journal disagree");
  }
  in.seekg(static_cast<std::streamoff>(from_offset));
  std::uint64_t valid_end = from_offset;
  std::string text;
  while (std::getline(in, text)) {
    const std::uint64_t line_end =
        valid_end + static_cast<std::uint64_t>(text.size()) + 1;
    if (line_end > file_size) break;  // final line had no newline: torn
    JournalRecord rec;
    if (!ParseRecordLine(text, rec)) break;  // torn mid-record
    rec.end_offset = line_end;
    fn(rec);
    valid_end = line_end;
  }
  return valid_end;
}

Status TenantJournal::TruncateTo(const std::string& path,
                                 std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    if (errno == ENOENT && size == 0) return Status::Ok();
    return InternalError("journal: truncate " + path + ": " +
                         std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace ld::service
