#include "logdiver/service/protocol.hpp"

#include <cctype>

#include "common/status.hpp"

namespace ld::service {
namespace {

/// Splits the next space-delimited token off `rest` (no escaping: log
/// lines are the final operand and are taken verbatim to end of line).
std::string_view NextToken(std::string_view& rest) {
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  const std::size_t end = rest.find(' ');
  std::string_view token = rest.substr(0, end);
  rest.remove_prefix(end == std::string_view::npos ? rest.size() : end);
  return token;
}

std::string_view Remainder(std::string_view rest) {
  if (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  return rest;
}

Result<std::uint64_t> ParseU64Token(std::string_view token,
                                    std::string_view what) {
  if (token.empty()) {
    return InvalidArgumentError("protocol: missing " + std::string(what));
  }
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      return InvalidArgumentError("protocol: bad " + std::string(what) +
                                  " '" + std::string(token) + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

bool ValidTenantId(std::string_view tenant) {
  if (tenant.empty() || tenant.size() > 64) return false;
  for (const char c : tenant) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  // "." / ".." would escape the per-tenant directory layout.
  return tenant != "." && tenant != "..";
}

Result<Request> ParseRequest(std::string_view line) {
  std::string_view rest = line;
  const std::string_view verb = NextToken(rest);
  Request req;

  auto parse_tenant = [&]() -> Status {
    const std::string_view tenant = NextToken(rest);
    if (!ValidTenantId(tenant)) {
      return InvalidArgumentError("protocol: bad tenant id '" +
                                  std::string(tenant) + "'");
    }
    req.tenant = std::string(tenant);
    return Status::Ok();
  };

  if (verb == "INGEST") {
    req.kind = RequestKind::kIngest;
    LD_TRY(parse_tenant());
    const std::string_view source = NextToken(rest);
    if (source == "torque") {
      req.source = LogSource::kTorque;
    } else if (source == "alps") {
      req.source = LogSource::kAlps;
    } else if (source == "syslog") {
      req.source = LogSource::kSyslog;
    } else if (source == "hwerr") {
      req.source = LogSource::kHwerr;
    } else {
      return InvalidArgumentError("protocol: bad source '" +
                                  std::string(source) +
                                  "' (torque|alps|syslog|hwerr)");
    }
    req.line = std::string(Remainder(rest));
    return req;
  }
  if (verb == "QUERY") {
    req.kind = RequestKind::kQuery;
    LD_TRY(parse_tenant());
    const std::string_view what = NextToken(rest);
    if (what == "report") {
      req.query = QueryKind::kReport;
    } else if (what == "ingest") {
      req.query = QueryKind::kIngest;
    } else if (what == "health") {
      req.query = QueryKind::kHealth;
    } else {
      return InvalidArgumentError("protocol: bad query '" +
                                  std::string(what) +
                                  "' (report|ingest|health)");
    }
    return req;
  }
  if (verb == "SNAPSHOT") {
    req.kind = RequestKind::kSnapshot;
    return req;
  }
  if (verb == "DRAIN") {
    req.kind = RequestKind::kDrain;
    return req;
  }
  if (verb == "PING") {
    req.kind = RequestKind::kPing;
    return req;
  }
  if (verb == "FAULT") {
    req.kind = RequestKind::kFault;
    LD_TRY(parse_tenant());
    const std::string_view kind = NextToken(rest);
    if (kind == "none") {
      req.fault = FaultKind::kNone;
      return req;
    }
    if (kind == "crash") {
      req.fault = FaultKind::kCrash;
    } else if (kind == "hang") {
      req.fault = FaultKind::kHang;
    } else if (kind == "slow") {
      req.fault = FaultKind::kSlow;
    } else {
      return InvalidArgumentError("protocol: bad fault '" +
                                  std::string(kind) +
                                  "' (crash|hang|slow|none)");
    }
    const std::string_view after = NextToken(rest);
    if (!after.empty()) {
      LD_ASSIGN_OR_RETURN(req.fault_after, ParseU64Token(after, "after"));
    }
    if (req.fault == FaultKind::kSlow) {
      const std::string_view mean = NextToken(rest);
      if (!mean.empty()) {
        LD_ASSIGN_OR_RETURN(req.fault_mean_ms,
                            ParseU64Token(mean, "mean_ms"));
        LD_ASSIGN_OR_RETURN(req.fault_seed,
                            ParseU64Token(NextToken(rest), "seed"));
      }
    }
    return req;
  }
  return InvalidArgumentError("protocol: unknown verb '" + std::string(verb) +
                              "'");
}

std::string OkReply(std::string_view details) {
  std::string reply = "OK";
  if (!details.empty()) {
    reply.push_back(' ');
    reply.append(details);
  }
  return reply;
}

std::string BusyReply(std::uint64_t retry_ms, std::string_view why) {
  return "BUSY " + std::to_string(retry_ms) + " " + std::string(why);
}

std::string ShedReply(std::uint64_t retry_ms, std::string_view why) {
  return "SHED " + std::to_string(retry_ms) + " " + std::string(why);
}

std::string ErrReply(std::string_view why) {
  return "ERR " + std::string(why);
}

std::string_view ReplyVerdict(std::string_view reply) {
  const std::size_t space = reply.find(' ');
  return reply.substr(0, space);
}

}  // namespace ld::service
