#include "logdiver/service/tenant.hpp"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "common/crashpoint.hpp"
#include "common/obs/obs.hpp"
#include "logdiver/service/protocol.hpp"

namespace ld::service {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kTenantSnapshotVersion = 1;
/// Worker batch size: items applied per state-lock acquisition, so
/// queries interleave with a busy apply loop instead of starving.
constexpr std::size_t kApplyBatch = 256;

std::string HexFingerprint(std::uint32_t fp) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", fp);
  return buf;
}

}  // namespace

const char* TenantStateName(TenantState s) {
  switch (s) {
    case TenantState::kActive: return "active";
    case TenantState::kDegraded: return "degraded";
    case TenantState::kShedding: return "shedding";
    case TenantState::kStalled: return "stalled";
    case TenantState::kDraining: return "draining";
  }
  return "invalid";
}

TimePoint ClaimedTracker::Claim(LogSource source, std::string_view line) {
  TimePoint& carry = carry_[static_cast<std::size_t>(source)];
  switch (source) {
    case LogSource::kTorque: {
      auto rec = torque_.ParseLine(line);
      if (rec.ok() && rec->has_value()) carry = (*rec)->time;
      break;
    }
    case LogSource::kAlps: {
      auto rec = alps_.ParseLine(line);
      if (rec.ok() && rec->has_value()) carry = (*rec)->time;
      break;
    }
    case LogSource::kSyslog: {
      if (line.size() >= 15) {
        auto t = SyslogParser::ParseSyslogTime(line.substr(0, 15),
                                               syslog_base_year_);
        if (t.ok()) carry = *t;
      }
      break;
    }
    case LogSource::kHwerr: {
      auto rec = hwerr_.ParseLine(line);
      if (rec.ok() && rec->has_value()) carry = (*rec)->time;
      break;
    }
  }
  return carry;
}

void ClaimedTracker::SetCarry(LogSource source, TimePoint claimed) {
  carry_[static_cast<std::size_t>(source)] = claimed;
}

std::uint64_t TenantShard::TenantFingerprint(std::string_view tenant_id) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::string_view text) {
    for (const char c : text) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  };
  mix("tenant:");
  mix(tenant_id);
  return h == 0 ? 1 : h;  // 0 means "unspecified" in snapshot headers
}

TenantShard::TenantShard(std::string tenant_id, std::string dir,
                         const Machine& machine,
                         const LogDiverConfig& config,
                         const TenantLimits& limits)
    : tenant_id_(std::move(tenant_id)),
      dir_(std::move(dir)),
      machine_(machine),
      config_(config),
      limits_(limits),
      claimed_(config.syslog_base_year),
      store_(dir_ + "/snapshots", limits.keep_generations) {}

TenantShard::~TenantShard() {
  if (!abandoned_.load()) Stop();
}

Status TenantShard::Start(std::uint64_t* recovered_lines) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return InternalError("tenant " + tenant_id_ + ": cannot create " + dir_ +
                         ": " + ec.message());
  }
  analyzer_ = std::make_unique<StreamingAnalyzer>(machine_, config_);

  const std::uint64_t fingerprint = TenantFingerprint(tenant_id_);
  std::uint64_t replay_from = 0;
  auto loaded = store_.LoadLatest(fingerprint);
  if (loaded.ok()) {
    SnapshotReader r(loaded->payload);
    const std::uint32_t version = r.U32();
    if (!r.ok()) return r.status();
    if (version != kTenantSnapshotVersion) {
      return FailedPreconditionError(
          "tenant " + tenant_id_ + ": snapshot version " +
          std::to_string(version) + ", this build speaks " +
          std::to_string(kTenantSnapshotVersion));
    }
    const std::string snap_tenant = r.Str();
    if (snap_tenant != tenant_id_) {
      return FailedPreconditionError("tenant " + tenant_id_ +
                                     ": snapshot belongs to tenant '" +
                                     snap_tenant + "'");
    }
    const std::uint64_t applied = r.U64();
    replay_from = r.U64();
    for (TimePoint& carry : applied_carry_) carry = r.Time();
    LD_TRY(analyzer_->Restore(r));
    applied_.store(applied);
    applied_offset_ = replay_from;
    last_snapshot_applied_ = applied;
    last_snapshot_offset_ = replay_from;
    for (std::size_t s = 0; s < kNumLogSources; ++s) {
      claimed_.SetCarry(static_cast<LogSource>(s), applied_carry_[s]);
    }
  } else if (loaded.status().code() != StatusCode::kNotFound) {
    return loaded.status();
  }

  // Replay acknowledged lines past the snapshot through the same apply
  // path the worker uses, then cut any torn (never-acknowledged) tail
  // before reopening for append.
  const std::string journal_path = dir_ + "/journal.ldj";
  std::uint64_t replayed = 0;
  LD_ASSIGN_OR_RETURN(
      const std::uint64_t valid_end,
      TenantJournal::Replay(journal_path, replay_from,
                            [&](const JournalRecord& rec) {
                              QueueItem item{rec.source, rec.claimed,
                                             rec.line, rec.end_offset};
                              ApplyLocked(item);
                              claimed_.SetCarry(rec.source, rec.claimed);
                              ++replayed;
                            }));
  LD_TRY(TenantJournal::TruncateTo(journal_path, valid_end));
  LD_TRY(journal_.Open(journal_path));
  if (journal_.size() != valid_end) {
    return InternalError("tenant " + tenant_id_ +
                         ": journal size changed during recovery");
  }
  accepted_.store(applied_.load());
  window_started_lines_ = accepted_.load();
  window_started_malformed_ = analyzer_->quarantine().total();
  malformed_seen_.store(window_started_malformed_);
  if (recovered_lines != nullptr) *recovered_lines = replayed;

  worker_ = std::thread([this] {
    WorkerLoop();
    worker_done_.store(true, std::memory_order_release);
  });
  return Status::Ok();
}

std::string TenantShard::CheckBudgetLocked() {
  const auto now = std::chrono::steady_clock::now();
  if (shedding_.load(std::memory_order_relaxed)) {
    if (now < shed_until_) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            shed_until_ - now)
                            .count();
      return ShedReply(static_cast<std::uint64_t>(left > 0 ? left : 1),
                       "tenant over error budget");
    }
    // Cooloff over: probe again with a fresh window.
    shedding_.store(false, std::memory_order_relaxed);
    window_started_lines_ = accepted_.load(std::memory_order_relaxed);
    window_started_malformed_ = malformed_seen_.load(std::memory_order_relaxed);
    return std::string();
  }
  const std::uint64_t lines =
      accepted_.load(std::memory_order_relaxed) - window_started_lines_;
  if (limits_.budget.window_lines == 0 ||
      lines < limits_.budget.window_lines) {
    return std::string();
  }
  // The malformed mirror trails the accept counter by the queue depth;
  // a whole window is hundreds of lines, so the window verdict is
  // stable against that lag (and re-evaluated every window anyway).
  const std::uint64_t malformed =
      malformed_seen_.load(std::memory_order_relaxed) -
      window_started_malformed_;
  const bool exceeded =
      malformed > limits_.budget.min_malformed &&
      static_cast<double>(malformed) >
          limits_.budget.max_malformed_fraction * static_cast<double>(lines);
  window_started_lines_ = accepted_.load(std::memory_order_relaxed);
  window_started_malformed_ = malformed_seen_.load(std::memory_order_relaxed);
  if (!exceeded) {
    degraded_.store(false, std::memory_order_relaxed);
    return std::string();
  }
  if (limits_.budget.policy == DegradationPolicy::kQuarantineAndContinue) {
    degraded_.store(true, std::memory_order_relaxed);
    return std::string();
  }
  shedding_.store(true, std::memory_order_relaxed);
  shed_until_ = now + std::chrono::milliseconds(limits_.budget.cooloff_ms);
  return ShedReply(limits_.budget.cooloff_ms, "tenant over error budget");
}

std::string TenantShard::Ingest(LogSource source, std::string_view line) {
  if (abandoned_.load(std::memory_order_relaxed)) {
    return ErrReply("tenant " + tenant_id_ + " is being recycled");
  }
  if (draining_.load(std::memory_order_relaxed)) {
    return BusyReply(limits_.busy_retry_ms, "tenant draining");
  }
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (journal_broken_) {
    return ErrReply("tenant " + tenant_id_ + ": journal unavailable");
  }
  const std::string shed = CheckBudgetLocked();
  if (!shed.empty()) {
    LD_OBS_COUNTER_ADD(obs::names::kSvcIngestShedTotal, 1);
    return shed;
  }
  {
    std::lock_guard<std::mutex> qlock(queue_mu_);
    if (queue_.size() >= limits_.queue_capacity) {
      LD_OBS_COUNTER_ADD(obs::names::kSvcIngestBackpressuredTotal, 1);
      return BusyReply(limits_.busy_retry_ms, "ingest queue full");
    }
  }
  const TimePoint claimed = claimed_.Claim(source, line);
  auto offset = journal_.Append(source, claimed, line);
  if (!offset.ok()) {
    journal_broken_ = true;
    return ErrReply("tenant " + tenant_id_ +
                    ": journal append failed: " + offset.status().message());
  }
  const std::uint64_t seq =
      accepted_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> qlock(queue_mu_);
    queue_.push_back(QueueItem{source, claimed, std::string(line), *offset});
  }
  queue_cv_.notify_one();
  LD_OBS_COUNTER_ADD(obs::names::kSvcIngestAcceptedTotal, 1);
  return OkReply(std::to_string(seq));
}

void TenantShard::ApplyLocked(const QueueItem& item) {
  switch (item.source) {
    case LogSource::kTorque: analyzer_->AddTorqueLine(item.line); break;
    case LogSource::kAlps: analyzer_->AddAlpsLine(item.line); break;
    case LogSource::kSyslog: analyzer_->AddSyslogLine(item.line); break;
    case LogSource::kHwerr: analyzer_->AddHwerrLine(item.line); break;
  }
  const std::uint64_t n = applied_.fetch_add(1, std::memory_order_relaxed) + 1;
  applied_offset_ = item.end_offset;
  applied_carry_[static_cast<std::size_t>(item.source)] = item.claimed;
  if (limits_.advance_every != 0 && n % limits_.advance_every == 0) {
    analyzer_->Advance(item.claimed - limits_.reorder_slack);
  }
}

std::vector<std::uint8_t> TenantShard::BuildSnapshotLocked() {
  SnapshotWriter w;
  w.U32(kTenantSnapshotVersion);
  w.Str(tenant_id_);
  w.U64(applied_.load(std::memory_order_relaxed));
  w.U64(applied_offset_);
  for (const TimePoint carry : applied_carry_) w.Time(carry);
  analyzer_->Snapshot(w);
  return w.TakeBytes();
}

Status TenantShard::WriteSnapshotLocked() {
  // The snapshot's resume offset must never outrun the disk: sync the
  // journal first, so a crash right after the snapshot rename cannot
  // strand the offset past the journal's durable bytes.
  LD_TRY(journal_.Sync());
  LD_TRY(store_.Write(BuildSnapshotLocked(), TenantFingerprint(tenant_id_)));
  last_snapshot_applied_ = applied_.load(std::memory_order_relaxed);
  last_snapshot_offset_ = applied_offset_;
  snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  LD_OBS_COUNTER_ADD(obs::names::kSvcSnapshotsTotal, 1);
  CrashPoint("svc-snapshot");
  return Status::Ok();
}

void TenantShard::WorkerLoop() {
  std::vector<QueueItem> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> qlock(queue_mu_);
      queue_cv_.wait(qlock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty() && stopping_) return;
      while (!queue_.empty() && batch.size() < kApplyBatch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      LD_OBS_GAUGE_SET(obs::names::kSvcQueueDepth,
                       static_cast<std::int64_t>(queue_.size()));
    }

    std::unique_lock<std::timed_mutex> state(state_mu_);
    for (const QueueItem& item : batch) {
      const std::uint64_t n = applied_.load(std::memory_order_relaxed) + 1;
      const auto fault = static_cast<ShardFault>(
          fault_.load(std::memory_order_relaxed));
      if (fault != ShardFault::kNone &&
          n >= fault_after_.load(std::memory_order_relaxed)) {
        if (fault == ShardFault::kHang) {
          // Stall exactly like a wedged shard: the state lock stays
          // held, queries time out with "stalled", the queue backs up,
          // and only the watchdog's recycle recovers the tenant.
          std::fprintf(stderr, "[svc] tenant %s: injected hang at line %" PRIu64
                               "\n", tenant_id_.c_str(), n);
          while (!abandoned_.load(std::memory_order_relaxed)) ::usleep(1000);
          return;  // recycled; the replacement shard owns the tenant now
        }
        const std::uint64_t index =
            n - fault_after_.load(std::memory_order_relaxed) + 1;
        ::usleep(static_cast<useconds_t>(
            DelayForBoundary(index,
                             fault_mean_ms_.load(std::memory_order_relaxed),
                             fault_seed_.load(std::memory_order_relaxed)) *
            1000));
      }
      ApplyLocked(item);
      // Daemon-wide fault boundary (LD_CRASH_AFTER / FAULT crash).
      CrashPoint("svc-apply");
    }
    malformed_seen_.store(analyzer_->quarantine().total(),
                          std::memory_order_relaxed);

    const std::uint64_t applied = applied_.load(std::memory_order_relaxed);
    const bool snapshot_due =
        (limits_.snapshot_interval_lines != 0 &&
         applied - last_snapshot_applied_ >= limits_.snapshot_interval_lines) ||
        (limits_.snapshot_interval_bytes != 0 &&
         applied_offset_ - last_snapshot_offset_ >=
             limits_.snapshot_interval_bytes);
    if (snapshot_due) {
      const Status written = WriteSnapshotLocked();
      if (!written.ok()) {
        std::fprintf(stderr, "[svc] tenant %s: snapshot failed: %s\n",
                     tenant_id_.c_str(), written.ToString().c_str());
      }
    }
  }
}

std::string TenantShard::QueryReport() {
  std::unique_lock<std::timed_mutex> state(state_mu_, std::defer_lock);
  if (!state.try_lock_for(
          std::chrono::milliseconds(limits_.query_lock_timeout_ms))) {
    return ErrReply("tenant " + tenant_id_ + " stalled (apply lock busy)");
  }
  const MetricsReport report = analyzer_->metrics_accumulator().Report();
  const std::uint32_t fp = FingerprintReport(report);
  return OkReply("fp=" + HexFingerprint(fp) +
                 " runs=" + std::to_string(analyzer_->runs_finalized()) +
                 " applied=" + std::to_string(applied()) +
                 " accepted=" + std::to_string(accepted()));
}

std::string TenantShard::QueryIngest() {
  std::unique_lock<std::timed_mutex> state(state_mu_, std::defer_lock);
  if (!state.try_lock_for(
          std::chrono::milliseconds(limits_.query_lock_timeout_ms))) {
    return ErrReply("tenant " + tenant_id_ + " stalled (apply lock busy)");
  }
  const std::uint32_t fp = FingerprintIngest(analyzer_->ingest_stats());
  return OkReply("accepted=" + std::to_string(accepted()) +
                 " applied=" + std::to_string(applied()) +
                 " quarantined=" + std::to_string(
                     analyzer_->quarantine().total()) +
                 " fp=" + HexFingerprint(fp));
}

std::string TenantShard::QueryHealth() {
  return OkReply(std::string("state=") + TenantStateName(state()) +
                 " queue=" + std::to_string(queue_depth()) +
                 " accepted=" + std::to_string(accepted()) +
                 " applied=" + std::to_string(applied()) +
                 " snapshots=" + std::to_string(snapshots_written()));
}

std::size_t TenantShard::queue_depth() const {
  std::lock_guard<std::mutex> qlock(queue_mu_);
  return queue_.size();
}

TenantState TenantShard::state() const {
  if (abandoned_.load(std::memory_order_relaxed)) {
    return TenantState::kStalled;
  }
  if (draining_.load(std::memory_order_relaxed)) {
    return TenantState::kDraining;
  }
  if (shedding_.load(std::memory_order_relaxed)) {
    return TenantState::kShedding;
  }
  if (degraded_.load(std::memory_order_relaxed)) {
    return TenantState::kDegraded;
  }
  return TenantState::kActive;
}

Status TenantShard::Drain() {
  draining_.store(true, std::memory_order_relaxed);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (applied_.load(std::memory_order_relaxed) <
         accepted_.load(std::memory_order_relaxed)) {
    if (std::chrono::steady_clock::now() >= deadline) {
      draining_.store(false, std::memory_order_relaxed);
      return InternalError("tenant " + tenant_id_ +
                           ": drain timed out (shard stalled?)");
    }
    ::usleep(1000);
  }
  const Status snap = SnapshotNow();
  draining_.store(false, std::memory_order_relaxed);
  return snap;
}

Status TenantShard::SnapshotNow() {
  std::unique_lock<std::timed_mutex> state(state_mu_, std::defer_lock);
  if (!state.try_lock_for(std::chrono::seconds(5))) {
    return InternalError("tenant " + tenant_id_ +
                         ": snapshot timed out (shard stalled?)");
  }
  return WriteSnapshotLocked();
}

void TenantShard::ArmFault(ShardFault fault, std::uint64_t after,
                           std::uint64_t mean_ms, std::uint64_t seed) {
  fault_after_.store(applied_.load(std::memory_order_relaxed) + after,
                     std::memory_order_relaxed);
  fault_mean_ms_.store(mean_ms == 0 ? 1 : mean_ms, std::memory_order_relaxed);
  fault_seed_.store(seed, std::memory_order_relaxed);
  fault_.store(static_cast<std::uint8_t>(fault), std::memory_order_relaxed);
}

void TenantShard::Stop() {
  {
    std::lock_guard<std::mutex> qlock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (!worker_.joinable()) return;
  // A wedged worker must not pin shutdown forever.  Give it a generous
  // grace period to finish the queued work, then abandon it the way the
  // watchdog would (which also releases an injected hang) and, if it
  // still will not exit, leave the thread to process teardown — the
  // graveyard philosophy applied to shutdown.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(limits_.stop_grace_ms);
  while (!worker_done_.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    ::usleep(1000);
  }
  if (!worker_done_.load(std::memory_order_acquire)) {
    abandoned_.store(true, std::memory_order_relaxed);
    const auto grace =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(std::max<std::uint64_t>(
            limits_.stop_grace_ms / 5, 100));
    while (!worker_done_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < grace) {
      ::usleep(1000);
    }
  }
  if (worker_done_.load(std::memory_order_acquire)) {
    worker_.join();
  } else {
    std::fprintf(stderr, "[svc] tenant %s: worker wedged at shutdown\n",
                 tenant_id_.c_str());
    worker_.detach();
  }
}

void TenantShard::Abandon() {
  abandoned_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> qlock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  {
    // Waits out any in-flight Append, then closes the fd so the
    // replacement shard is the journal's only appender.
    std::lock_guard<std::mutex> lock(ingest_mu_);
    journal_broken_ = true;
    journal_.Close();
  }
  if (worker_.joinable()) worker_.detach();
}

}  // namespace ld::service
