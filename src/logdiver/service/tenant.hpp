// One tenant of the always-on service: a StreamingAnalyzer shard with
// its own worker thread, bounded ingest queue, write-ahead journal,
// rolling snapshots, and error budget.
//
// The shard is the containment boundary of the whole design (the
// resilience-patterns layering docs/SERVICE.md walks through):
//
//   accept path (connection threads)      apply path (worker thread)
//   ------------------------------        --------------------------
//   budget check -> SHED/degrade          pop batch from queue
//   queue-full check -> BUSY              lock analyzer state
//   claim timestamp (ingest_mu_)          AddXxxLine per record
//   journal append (durability)           Advance on the line schedule
//   reply OK <seq>                        bump applied progress
//                                         snapshot on the interval
//
// Acknowledge-after-journal plus replay-from-snapshot-offset is what
// makes recovery exactly-once: an acked line is on disk, an unacked
// line is the client's to resend (it re-syncs from QUERY ingest's
// accepted count).  The watermark schedule is a function of the
// *applied line count* and the *journaled claimed times*, both of
// which recovery reproduces exactly — so a recovered shard's report
// bytes equal an uninterrupted run's (bench/service_campaign asserts
// this per tenant, per cell).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "logdiver/quarantine.hpp"
#include "logdiver/service/journal.hpp"
#include "logdiver/snapshot.hpp"
#include "logdiver/streaming.hpp"
#include "topology/machine.hpp"

namespace ld::service {

/// Per-line claimed times, mirroring the resume path's rule: a line's
/// claimed time is the last parseable timestamp of its source (carried
/// over unparseable lines), syslog via the year-anchored static parse.
/// The claim is computed once on the accept path and journaled with
/// the line, so recovery replays the same watermark schedule without
/// re-running the parsers.
class ClaimedTracker {
 public:
  explicit ClaimedTracker(int syslog_base_year)
      : syslog_base_year_(syslog_base_year) {}

  /// Claimed time for `line`, updating the per-source carry.
  TimePoint Claim(LogSource source, std::string_view line);

  /// Re-seeds one source's carry (recovery: the snapshot and the
  /// replayed journal records carry the claims, so the parsers never
  /// re-run over history).
  void SetCarry(LogSource source, TimePoint claimed);

 private:
  int syslog_base_year_;
  TorqueParser torque_;
  AlpsParser alps_;
  HwerrParser hwerr_;
  TimePoint carry_[kNumLogSources] = {};
};

/// Per-tenant admission policy: the PR 1 error budget, evaluated over
/// rolling windows of accepted lines so a tenant that was dirty an
/// hour ago is judged on what it sends now.
struct TenantBudgetConfig {
  /// What happens to an over-budget tenant:
  ///   kFailFast             -> shed: INGEST answers SHED <cooloff_ms>
  ///                            until the cooloff passes, then the
  ///                            next window probes again;
  ///   kQuarantineAndContinue-> degrade: keep ingesting, surface
  ///                            state=degraded in QUERY health.
  DegradationPolicy policy = DegradationPolicy::kQuarantineAndContinue;
  /// Window length (accepted lines) per budget evaluation.
  std::uint64_t window_lines = 512;
  /// The budget within a window (ErrorBudget semantics: malformed must
  /// exceed BOTH the floor and the fraction).
  std::uint64_t min_malformed = 32;
  double max_malformed_fraction = 0.25;
  /// Shed duration; also the retry-after hint SHED replies carry.
  std::uint64_t cooloff_ms = 250;
};

/// Sizing and cadence knobs of one shard (shared by every tenant of a
/// daemon; ServiceOptions carries the daemon-level copies).
struct TenantLimits {
  std::size_t queue_capacity = 1024;
  /// Retry-after hint on a BUSY (full-queue) reply.
  std::uint64_t busy_retry_ms = 20;
  /// Snapshot after this many applied lines (0 = never by count) ...
  std::uint64_t snapshot_interval_lines = 4096;
  /// ... or once this many journal bytes accumulate past the last
  /// snapshot (0 = never by bytes).  Whichever trips first.
  std::uint64_t snapshot_interval_bytes = 1 << 20;
  /// Watermark cadence: Advance(claimed - reorder_slack) every
  /// `advance_every` applied lines (the resume-path schedule).
  std::uint64_t advance_every = 64;
  Duration reorder_slack = Duration::Minutes(5);
  /// Snapshot generations retained per tenant.
  std::size_t keep_generations = 2;
  /// How long a query waits for the state lock before declaring the
  /// shard stalled.
  std::uint64_t query_lock_timeout_ms = 500;
  /// How long Stop() waits for the worker to finish its queue before
  /// abandoning it (a wedged worker must not pin shutdown forever).
  std::uint64_t stop_grace_ms = 10000;
  TenantBudgetConfig budget;
};

/// Injected per-shard faults (armed via the FAULT admin command when
/// the daemon enables it; see docs/SERVICE.md "Fault injection").
enum class ShardFault : std::uint8_t {
  kNone = 0,
  kHang,  // worker stops mid-apply (pause loop) -> watchdog recycles
  kSlow,  // worker sleeps a seeded delay per applied line -> must NOT
          // be recycled; backpressure absorbs the slowdown
};

/// Externally visible lifecycle state (QUERY health).
enum class TenantState : std::uint8_t {
  kActive,
  kDegraded,  // over budget under kQuarantineAndContinue
  kShedding,  // over budget under kFailFast, inside the cooloff
  kStalled,   // watchdog saw no apply progress with work queued
  kDraining,
};

const char* TenantStateName(TenantState s);

class TenantShard {
 public:
  /// Creates a fresh shard rooted at `dir` (created if needed; holds
  /// the journal and the snapshot store).  `Start()` begins applying.
  TenantShard(std::string tenant_id, std::string dir,
              const Machine& machine, const LogDiverConfig& config,
              const TenantLimits& limits);
  ~TenantShard();

  /// Opens the journal (cutting any torn tail), restores the latest
  /// snapshot if one exists, replays the journal suffix, and starts
  /// the worker.  `recovered_lines` (optional) reports replayed lines.
  Status Start(std::uint64_t* recovered_lines = nullptr);

  /// The accept path.  Returns the protocol reply line (OK with the
  /// accepted sequence number, BUSY on a full queue, SHED over budget,
  /// ERR if the journal is broken).
  std::string Ingest(LogSource source, std::string_view line);

  /// Query handlers; each returns a full protocol reply line.
  std::string QueryReport();
  std::string QueryIngest();
  std::string QueryHealth();

  /// Blocks until every accepted line has been applied, then snapshots.
  Status Drain();

  /// Takes a snapshot now (SNAPSHOT command); blocks on the state lock.
  Status SnapshotNow();

  /// Arms/disarms an injected fault on the apply path.
  void ArmFault(ShardFault fault, std::uint64_t after, std::uint64_t mean_ms,
                std::uint64_t seed);

  /// Stops the worker after the queue empties.  Safe to call twice.
  void Stop();

  /// Abandons a hung worker: marks the shard dead so the accept path
  /// refuses new work, detaches the worker thread, and leaves `this`
  /// to the caller's graveyard (the thread still references it).  The
  /// journal fd is closed so the replacement shard owns the file.
  void Abandon();

  // --- watchdog / observability surface ------------------------------
  const std::string& tenant_id() const { return tenant_id_; }
  const std::string& dir() const { return dir_; }
  /// Lines applied to the analyzer — the watchdog's progress counter.
  std::uint64_t applied() const {
    return applied_.load(std::memory_order_relaxed);
  }
  /// Lines accepted (journaled + acked).
  std::uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::size_t queue_depth() const;
  TenantState state() const;
  std::uint64_t snapshots_written() const {
    return snapshots_written_.load(std::memory_order_relaxed);
  }

  /// Stable per-tenant snapshot fingerprint (FNV-1a-64 of the id);
  /// rejects another tenant's snapshot landing in this directory.
  static std::uint64_t TenantFingerprint(std::string_view tenant_id);

 private:
  struct QueueItem {
    LogSource source;
    TimePoint claimed;
    std::string line;
    std::uint64_t end_offset = 0;  // journal offset past this record
  };

  void WorkerLoop();
  /// Applies one record to the analyzer (state lock held by caller).
  void ApplyLocked(const QueueItem& item);
  /// Serializes shard state (state lock held by caller).
  std::vector<std::uint8_t> BuildSnapshotLocked();
  Status WriteSnapshotLocked();
  /// Budget bookkeeping on the accept path (ingest_mu_ held).
  /// Returns a non-empty SHED reply when the line must be refused.
  std::string CheckBudgetLocked();

  const std::string tenant_id_;
  const std::string dir_;
  const Machine& machine_;
  const LogDiverConfig config_;
  const TenantLimits limits_;

  // Accept-path state: claim carry, journal, budget windows.
  std::mutex ingest_mu_;
  ClaimedTracker claimed_;
  TenantJournal journal_;
  std::uint64_t window_started_lines_ = 0;
  std::uint64_t window_started_malformed_ = 0;
  std::chrono::steady_clock::time_point shed_until_{};
  bool journal_broken_ = false;

  // Queue between accept and apply.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueueItem> queue_;
  bool stopping_ = false;

  // Analyzer state; timed so queries can detect a stalled shard
  // instead of blocking behind a hung worker forever.
  std::timed_mutex state_mu_;
  std::unique_ptr<StreamingAnalyzer> analyzer_;
  SnapshotStore store_;
  std::uint64_t last_snapshot_applied_ = 0;
  std::uint64_t last_snapshot_offset_ = 0;
  std::uint64_t applied_offset_ = 0;  // journal offset of last applied
  /// Claimed time of the last *applied* record per source — what the
  /// snapshot must store so a recovered tracker's carry matches the
  /// uninterrupted run exactly (the live tracker runs ahead at the
  /// accepted position).
  TimePoint applied_carry_[kNumLogSources] = {};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> snapshots_written_{0};
  std::atomic<std::uint64_t> malformed_seen_{0};  // quarantine total mirror
  std::atomic<bool> degraded_{false};
  std::atomic<bool> shedding_{false};
  std::atomic<bool> abandoned_{false};
  /// Set by the worker thread as its very last act; lets Stop() bound
  /// its join instead of blocking forever on a wedged worker.
  std::atomic<bool> worker_done_{false};
  std::atomic<bool> draining_{false};

  // Injected fault plan (relaxed atomics: the worker polls them).
  std::atomic<std::uint8_t> fault_{0};
  std::atomic<std::uint64_t> fault_after_{0};
  std::atomic<std::uint64_t> fault_mean_ms_{5};
  std::atomic<std::uint64_t> fault_seed_{1};

  std::thread worker_;
};

}  // namespace ld::service
