// Parser for ALPS (Application Level Placement Scheduler) logs.
//
// Three record kinds:
//   <iso-ts> apsched[pid]: placeApp apid=A jobid=J user=U cmd=C nodect=N nids=R
//   <iso-ts> apsys[pid]:   apid=A exited, status=S signal=G
//   <iso-ts> apsys[pid]:   apid=A killed, reason=node_failure nid=N
//
// The per-line parse is pure, so batch parsing is chunk-parallel (see
// chunked_parse.hpp): chunks parse on any thread, the ordered reduction
// makes the output bit-identical to a sequential pass.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "logdiver/chunked_parse.hpp"
#include "logdiver/records.hpp"

namespace ld {

class AlpsParser {
 public:
  using Chunk = ParsedChunk<AlpsRecord>;

  Result<std::optional<AlpsRecord>> ParseLine(std::string_view line);

  /// Parses a slice of lines into a private chunk; safe to call from any
  /// thread.  `first_line_no` is the 1-based global number of lines[0].
  static Chunk ParseChunk(std::span<const std::string_view> lines,
                          std::uint64_t first_line_no,
                          const QuarantineConfig* capture);

  /// Folds chunks — in order — into this parser's stats and `sink`.
  std::vector<AlpsRecord> ReduceChunks(std::vector<Chunk>&& chunks,
                                       QuarantineSink* sink = nullptr);

  /// Parses many lines, chunked across `pool` (inline when null).
  /// Rejected lines are captured in `sink` when one is provided.
  std::vector<AlpsRecord> ParseLines(
      std::span<const std::string_view> lines, QuarantineSink* sink = nullptr,
      ThreadPool* pool = nullptr,
      std::size_t chunk_lines = kDefaultParseChunkLines);

  /// Legacy overload for owning line vectors; single-threaded.
  std::vector<AlpsRecord> ParseLines(const std::vector<std::string>& lines,
                                     QuarantineSink* sink = nullptr);

  const ParseStats& stats() const { return stats_; }
  /// Checkpoint-restore hook: the parser's only cross-line state is its
  /// counters.
  void RestoreStats(const ParseStats& stats) { stats_ = stats; }

 private:
  ParseStats stats_;
};

}  // namespace ld
