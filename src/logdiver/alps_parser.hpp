// Parser for ALPS (Application Level Placement Scheduler) logs.
//
// Three record kinds:
//   <iso-ts> apsched[pid]: placeApp apid=A jobid=J user=U cmd=C nodect=N nids=R
//   <iso-ts> apsys[pid]:   apid=A exited, status=S signal=G
//   <iso-ts> apsys[pid]:   apid=A killed, reason=node_failure nid=N
#pragma once

#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "logdiver/records.hpp"

namespace ld {

class QuarantineSink;

class AlpsParser {
 public:
  Result<std::optional<AlpsRecord>> ParseLine(std::string_view line);
  /// Rejected lines are captured in `sink` when one is provided.
  std::vector<AlpsRecord> ParseLines(const std::vector<std::string>& lines,
                                     QuarantineSink* sink = nullptr);
  const ParseStats& stats() const { return stats_; }
  /// Checkpoint-restore hook: the parser's only cross-line state is its
  /// counters.
  void RestoreStats(const ParseStats& stats) { stats_ = stats; }

 private:
  ParseStats stats_;
};

}  // namespace ld
