// Parsed-record model: the normalized output of the four log parsers.
//
// Parsers never throw on malformed input: every line either yields a
// record, is recognized-but-irrelevant (skipped), or is counted as
// malformed.  Multi-gigabyte production logs always contain garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/intern.hpp"
#include "common/time.hpp"
#include "faults/taxonomy.hpp"
#include "topology/machine.hpp"
#include "workload/types.hpp"

namespace ld {

/// Where a parsed error event sits spatially.  Unlike the injector's
/// Scope, parsed locations include Gemini routers (netwatch reports
/// them) — the correlator resolves routers to their attached nodes.
enum class LocScope : std::uint8_t { kNode, kBlade, kGemini, kSystem };

const char* LocScopeName(LocScope s);

/// Which log file a record came from.
enum class LogSource : std::uint8_t { kTorque, kAlps, kSyslog, kHwerr };

/// Number of LogSource enumerators.  Per-source arrays must be sized
/// with this so adding a fifth source cannot silently under-index.
inline constexpr std::size_t kNumLogSources = 4;

const char* LogSourceName(LogSource s);

/// A Torque accounting record ("S" or "E").  The repeated identity
/// fields (user, queue, job name) are interned Symbols: a production
/// log repeats a few hundred distinct values across millions of
/// records, so per-record std::strings were pure allocation churn.
struct TorqueRecord {
  enum class Kind : std::uint8_t { kStart, kEnd };
  Kind kind = Kind::kStart;
  TimePoint time;
  JobId jobid = 0;
  Symbol user;
  Symbol queue;
  Symbol job_name;
  TimePoint submit;
  TimePoint start;
  TimePoint end;                  // E records only
  int exit_status = 0;            // E records only
  std::uint32_t nodect = 0;
  Duration walltime_limit{0};
  Duration walltime_used{0};      // E records only
};

/// An ALPS record: placement, exit, or kill.
struct AlpsRecord {
  enum class Kind : std::uint8_t { kPlace, kExit, kKill };
  Kind kind = Kind::kPlace;
  TimePoint time;
  ApId apid = 0;
  // kPlace:
  JobId jobid = 0;
  Symbol user;
  Symbol command;
  std::uint32_t nodect = 0;
  std::vector<NodeIndex> nids;
  // kExit:
  int exit_code = 0;
  int exit_signal = 0;
  // kKill:
  std::string kill_reason;
  NodeIndex failed_nid = kInvalidNode;
};

/// A normalized error event from syslog or hwerr.
struct ErrorRecord {
  TimePoint time;
  ErrorCategory category = ErrorCategory::kUnknown;
  Severity severity = Severity::kCorrected;
  LocScope scope = LocScope::kNode;
  /// Node-level cname ("c1-2c0s3n1"), blade prefix ("c1-2c0s3"), or
  /// gemini name ("c1-2c0s3g0"); empty for system scope.  Interned: the
  /// same few thousand component names recur across the whole log.
  Symbol location;
  LogSource source = LogSource::kSyslog;
  /// For system-scope incidents: the service-restored time if the parser
  /// paired a recovery line (nullopt while the incident is open).
  std::optional<TimePoint> recovered;
};

/// Per-parser counters, reported so silent data loss is impossible.
struct ParseStats {
  std::uint64_t lines = 0;
  std::uint64_t records = 0;
  std::uint64_t skipped = 0;    // recognized but irrelevant
  std::uint64_t malformed = 0;  // unparseable

  void MergeFrom(const ParseStats& other) {
    lines += other.lines;
    records += other.records;
    skipped += other.skipped;
    malformed += other.malformed;
  }
};

/// Parses ALPS nid range syntax: "3-5,9" -> {3,4,5,9}.
Result<std::vector<NodeIndex>> ParseNidRanges(std::string_view text);

/// Lines per work unit in the chunk-parallel ParseLines paths: big
/// enough to amortize task dispatch, small enough that a 4-thread pool
/// load-balances a mid-size source.  Tests shrink it to force chunk
/// boundaries on tiny streams.
inline constexpr std::size_t kDefaultParseChunkLines = 8192;

}  // namespace ld
