// Event filtering and coalescing ("tupling").
//
// Raw RAS streams are bursty: one physical fault produces repeated
// reports (kernel retry loops) and duplicate records across sources
// (syslog + hwerrlog).  Following the LogDiver preprocessing design, we
// collapse events with the same (category, location) whose inter-arrival
// gap is below a tupling window into a single tuple carrying the count,
// the time span, the maximum severity, and the contributing sources.
// Locations are resolved to machine node sets here so the correlator
// can do purely positional matching.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/interval.hpp"
#include "common/time.hpp"
#include "logdiver/records.hpp"
#include "topology/machine.hpp"

namespace ld {

class SnapshotWriter;
class SnapshotReader;

struct ErrorTuple {
  std::uint64_t id = 0;
  ErrorCategory category = ErrorCategory::kUnknown;
  Severity severity = Severity::kCorrected;  // max over members
  LocScope scope = LocScope::kNode;
  Symbol location;                 // canonical component name; empty = system
  std::vector<NodeIndex> nodes;    // resolved affected nodes (empty = all)
  TimePoint first;                 // earliest member event
  TimePoint last;                  // latest member event
  std::optional<TimePoint> recovered;  // end of system incident window
  std::uint32_t count = 0;         // member events collapsed
  bool from_syslog = false;
  bool from_hwerr = false;

  /// The window during which the fault could have killed something:
  /// [first, recovered] for incidents, [first, last] otherwise.
  Interval ImpactWindow() const;
};

struct CoalesceConfig {
  /// Events of the same (category, location) closer than this merge.
  Duration tupling_window = Duration::Seconds(60);
};

struct CoalesceStats {
  std::uint64_t input_events = 0;
  std::uint64_t tuples = 0;
  std::uint64_t unresolved_locations = 0;  // cname not on this machine
};

/// Incremental coalescer: feed records in roughly chronological order,
/// flush tuples whose window has provably closed.  This is the streaming
/// analyzer's building block; retained state is one open tuple per
/// actively-erroring (category, location).
class StreamingCoalescer {
 public:
  StreamingCoalescer(const Machine& machine, CoalesceConfig config);

  /// Adds one record.  Records within the tupling window of their
  /// tuple's span merge even if slightly out of order.
  void Add(const ErrorRecord& record);

  /// Closes and returns tuples that can no longer grow: node-scoped
  /// tuples with last-event + window < watermark; system incidents
  /// additionally need their recovery line (or the final FlushAll).
  /// Output is sorted by first-event time.
  std::vector<ErrorTuple> Flush(TimePoint watermark);

  /// Closes everything, applying the default window to still-open
  /// system incidents.
  std::vector<ErrorTuple> FlushAll();

  /// Start time of the earliest still-open system incident, if any —
  /// runs dying during it cannot be finalized yet.
  std::optional<TimePoint> EarliestOpenIncident() const;

  std::size_t open_tuples() const { return open_.size(); }
  const CoalesceStats& stats() const { return stats_; }

  /// Folds another coalescer's state into this one (stats sum, closed
  /// tuples concatenate in merge order, open tuples union).  The
  /// other side's tuple ids are shifted past this side's id space, so
  /// merged ids stay unique and the operation is associative; the
  /// canonical fleet order is ascending shard index.  Intended for
  /// *key-disjoint* partitions — every (category, location) key fed
  /// wholly to one side — where the merged tuple set is exactly the
  /// serial coalescer's (up to id numbering).  A key collision (inputs
  /// were not disjoint) merges the two open tuples conservatively:
  /// span-union, max severity, summed counts.
  void MergeFrom(const StreamingCoalescer& other);

  /// Snapshot serialization hooks: open/displaced tuples, the id
  /// counter and the stats round-trip (machine + config stay
  /// construction-time).
  void SaveState(SnapshotWriter& w) const;
  void LoadState(SnapshotReader& r);

 private:
  const Machine& machine_;
  CoalesceConfig config_;
  CoalesceStats stats_;
  std::uint64_t next_id_ = 1;
  /// Open tuples keyed by (category << 32) | location-symbol id.  An
  /// unordered map because this is the per-record hot lookup; snapshot
  /// serialization sorts by (category, location string) so the written
  /// bytes stay deterministic (symbol ids are not — see intern.hpp).
  std::unordered_map<std::uint64_t, ErrorTuple> open_;
  /// Tuples displaced by a new burst on the same key; handed out on the
  /// next Flush.
  std::vector<ErrorTuple> closed_;
  /// Memoized (scope, location-symbol) -> affected node set.  Every new
  /// tuple resolves its location, but the vocabulary is a few thousand
  /// recurring component names — caching turns the repeated cname map
  /// lookups (string building included) into one small-vector copy.
  struct ResolvedNodes {
    bool ok = false;
    std::vector<NodeIndex> nodes;
  };
  std::unordered_map<std::uint64_t, ResolvedNodes> resolve_cache_;
};

struct ErrorColumns;  // columns.hpp

/// Coalesces parsed error records into tuples.  Input order is free; the
/// output is sorted by first-event time.  The columnar overload is the
/// primary implementation (an index sort over the dense time column,
/// deterministic on ties by input order); the AoS overload converts and
/// delegates, so both produce identical tuples for identical inputs.
std::vector<ErrorTuple> CoalesceEvents(const Machine& machine,
                                       const ErrorColumns& records,
                                       const CoalesceConfig& config,
                                       CoalesceStats* stats = nullptr);
std::vector<ErrorTuple> CoalesceEvents(const Machine& machine,
                                       std::vector<ErrorRecord> records,
                                       const CoalesceConfig& config,
                                       CoalesceStats* stats = nullptr);

}  // namespace ld
