#include "logdiver/syslog_parser.hpp"

#include <array>
#include <cstdio>

#include "common/strings.hpp"
#include "logdiver/quarantine.hpp"

namespace ld {
namespace {

constexpr std::array<const char*, 12> kMonths = {"Jan", "Feb", "Mar", "Apr",
                                                 "May", "Jun", "Jul", "Aug",
                                                 "Sep", "Oct", "Nov", "Dec"};

int MonthFromAbbrev(std::string_view m) {
  for (std::size_t i = 0; i < kMonths.size(); ++i) {
    if (m == kMonths[i]) return static_cast<int>(i) + 1;
  }
  return 0;
}

/// Extracts the cname following a marker word, e.g. "node c1-0c2s3n2".
std::string CnameAfter(std::string_view text, std::string_view marker) {
  const std::size_t pos = text.find(marker);
  if (pos == std::string_view::npos) return "";
  std::string_view rest = text.substr(pos + marker.size());
  rest = Trim(rest);
  std::size_t end = 0;
  while (end < rest.size() && !std::isspace(static_cast<unsigned char>(rest[end]))) {
    ++end;
  }
  return std::string(rest.substr(0, end));
}

/// "c3-4c1s2g0l33" -> gemini name "c3-4c1s2g0" (strips the lane suffix).
std::string StripLaneSuffix(std::string cname) {
  const std::size_t l = cname.rfind('l');
  const std::size_t g = cname.rfind('g');
  if (l != std::string::npos && g != std::string::npos && l > g) {
    cname.erase(l);
  }
  return cname;
}

/// Default window applied to an incident whose recovery line is missing
/// (stream truncated); matches the study's conservative handling.
constexpr std::int64_t kDefaultOpenIncidentSeconds = 1800;

}  // namespace

SyslogParser::SyslogParser(int base_year) : current_year_(base_year) {}

Result<TimePoint> SyslogParser::ParseSyslogTime(std::string_view text,
                                                int year) {
  // "Apr  1 02:10:02" (day may be space-padded).
  const auto fields = SplitWhitespace(text);
  if (fields.size() < 3) return ParseError("syslog: bad timestamp");
  const int month = MonthFromAbbrev(fields[0]);
  if (month == 0) {
    return ParseError("syslog: bad month '" + std::string(fields[0]) + "'");
  }
  auto day = ParseInt(fields[1]);
  if (!day.ok()) return day.status();
  int h = 0, m = 0, s = 0;
  if (std::sscanf(std::string(fields[2]).c_str(), "%d:%d:%d", &h, &m, &s) != 3) {
    return ParseError("syslog: bad clock field");
  }
  return TimePoint::FromCalendar(year, month, static_cast<int>(*day), h, m, s);
}

Result<std::optional<ErrorRecord>> SyslogParser::ParseLine(
    std::string_view line) {
  ++stats_.lines;
  auto rec = ParseLineImpl(line);
  if (!rec.ok()) {
    ++stats_.malformed;
  } else if (rec->has_value()) {
    ++stats_.records;
  } else {
    ++stats_.skipped;
  }
  return rec;
}

Result<std::optional<ErrorRecord>> SyslogParser::ParseLineImpl(
    std::string_view line) {
  // Timestamp = first 3 whitespace-separated tokens; then hostname; then
  // the message.
  const auto fields = SplitWhitespace(line);
  if (fields.size() < 5) {
    return ParseError("syslog: too few fields");
  }
  const int month = MonthFromAbbrev(fields[0]);
  if (month == 0) {
    return ParseError("syslog: bad month");
  }
  // Year-rollover reconstruction: month moving backwards by more than a
  // buffering slop means we crossed Dec 31.
  if (last_month_ != 0 && month < last_month_ && last_month_ - month > 6) {
    ++current_year_;
  }
  last_month_ = month;

  const std::string stamp = std::string(fields[0]) + " " +
                            std::string(fields[1]) + " " +
                            std::string(fields[2]);
  LD_ASSIGN_OR_RETURN(const auto when, ParseSyslogTime(stamp, current_year_));

  const std::string_view host = fields[3];
  // Message = remainder of the raw line after the hostname token.
  const std::size_t host_pos = line.find(host, stamp.size());
  const std::string_view message =
      Trim(line.substr(host_pos + host.size()));

  ErrorRecord rec;
  rec.time = when;
  rec.source = LogSource::kSyslog;

  // --- Lustre (system scope) ---
  if (host == "sonexion" || StartsWith(message, "LustreError") ||
      Contains(message, "Lustre:")) {
    if (Contains(message, "recovered")) {
      // Recovery line: closes the pending incident; signalled to the
      // stream-level ParseLines via a special record.
      rec.category = ErrorCategory::kLustre;
      rec.scope = LocScope::kSystem;
      rec.severity = Severity::kCorrected;
      rec.recovered = when;
      return std::optional<ErrorRecord>{rec};
    }
    rec.category = ErrorCategory::kLustre;
    rec.scope = LocScope::kSystem;
    rec.severity = Severity::kFatal;
    return std::optional<ErrorRecord>{rec};
  }

  // --- SMW-reported events (hostname is the SMW, location in message) ---
  if (host == "smw") {
    if (Contains(message, "heartbeat fault")) {
      rec.category = ErrorCategory::kNodeHeartbeat;
      rec.severity = Severity::kFatal;
      rec.scope = LocScope::kNode;
      rec.location = CnameAfter(message, "node ");
    } else if (Contains(message, "voltage fault")) {
      rec.category = ErrorCategory::kBladeFault;
      rec.severity = Severity::kFatal;
      rec.scope = LocScope::kBlade;
      rec.location = CnameAfter(message, "blade ");
    } else if (Contains(message, "Gemini LCB")) {
      rec.category = ErrorCategory::kGeminiLink;
      rec.scope = LocScope::kGemini;
      rec.location = StripLaneSuffix(CnameAfter(message, "Gemini LCB "));
      rec.severity = Contains(message, "failover unsuccessful")
                         ? Severity::kFatal
                         : Severity::kDegraded;
    } else if (Contains(message, "lane degrade")) {
      rec.category = ErrorCategory::kGeminiLink;
      rec.scope = LocScope::kGemini;
      rec.location = StripLaneSuffix(CnameAfter(message, "lane degrade on "));
      rec.severity = Severity::kCorrected;
    } else {
      return std::optional<ErrorRecord>{};
    }
    if (rec.location.empty()) {
      return ParseError("syslog: smw event without component name");
    }
    return std::optional<ErrorRecord>{rec};
  }

  // --- node-local kernel messages: hostname is the cname ---
  rec.location = std::string(host);
  rec.scope = LocScope::kNode;
  if (Contains(message, "Machine check")) {
    rec.category = ErrorCategory::kMachineCheck;
    rec.severity = Contains(message, "corrected") ? Severity::kCorrected
                                                  : Severity::kFatal;
  } else if (Contains(message, "uncorrectable memory error") ||
             Contains(message, "EDAC")) {
    rec.category = ErrorCategory::kMemoryUE;
    rec.severity = Severity::kFatal;
  } else if (Contains(message, "Double Bit ECC")) {
    rec.category = ErrorCategory::kGpuDbe;
    rec.severity = Severity::kFatal;
  } else if (Contains(message, "NVRM: Xid")) {
    rec.category = ErrorCategory::kGpuXid;
    rec.severity = Contains(message, "page retirement") ? Severity::kCorrected
                                                        : Severity::kFatal;
  } else if (Contains(message, "Kernel panic")) {
    rec.category = ErrorCategory::kKernelSoftware;
    rec.severity = Severity::kFatal;
  } else {
    return std::optional<ErrorRecord>{};
  }
  return std::optional<ErrorRecord>{rec};
}

std::vector<ErrorRecord> SyslogParser::ParseLines(
    const std::vector<std::string>& lines, QuarantineSink* sink) {
  std::vector<ErrorRecord> out;
  out.reserve(lines.size());
  // Index of the currently open system incident in `out`, or npos.
  std::size_t open_incident = static_cast<std::size_t>(-1);
  std::uint64_t line_no = 0;
  for (const std::string& line : lines) {
    ++line_no;
    auto rec = ParseLine(line);
    if (!rec.ok()) {
      if (sink != nullptr) {
        sink->Add(LogSource::kSyslog, line_no, line, rec.status());
      }
      continue;
    }
    if (!rec->has_value()) continue;
    ErrorRecord& r = **rec;
    if (r.scope == LocScope::kSystem) {
      if (r.recovered.has_value()) {
        // Recovery: close the open incident.
        if (open_incident != static_cast<std::size_t>(-1)) {
          out[open_incident].recovered = r.recovered;
          open_incident = static_cast<std::size_t>(-1);
        }
        continue;  // recovery lines do not become records themselves
      }
      if (open_incident != static_cast<std::size_t>(-1)) {
        // Overlapping incident reports merge into the open one.
        continue;
      }
      open_incident = out.size();
      out.push_back(std::move(r));
      continue;
    }
    out.push_back(std::move(r));
  }
  if (open_incident != static_cast<std::size_t>(-1)) {
    out[open_incident].recovered =
        out[open_incident].time + Duration(kDefaultOpenIncidentSeconds);
  }
  return out;
}

}  // namespace ld
