#include "logdiver/syslog_parser.hpp"

#include <array>
#include <cctype>

#include "common/simd.hpp"
#include "common/strings.hpp"
#include "logdiver/quarantine.hpp"

namespace ld {
namespace {

constexpr std::array<const char*, 12> kMonths = {"Jan", "Feb", "Mar", "Apr",
                                                 "May", "Jun", "Jul", "Aug",
                                                 "Sep", "Oct", "Nov", "Dec"};

int MonthFromAbbrev(std::string_view m) {
  for (std::size_t i = 0; i < kMonths.size(); ++i) {
    if (m == kMonths[i]) return static_cast<int>(i) + 1;
  }
  return 0;
}

/// Strict "HH:MM:SS" (any digit widths, nothing trailing).  Replaces the
/// old sscanf call: no format-string machinery, no allocation, and no
/// accidental acceptance of signs or trailing garbage.
bool ParseClock(std::string_view text, int& h, int& m, int& s) {
  // Fast path: the fixed-width "HH:MM:SS" every real syslog line uses is
  // recognized with one 8-byte vector classification.
  if (text.size() == 8 && simd::IsClockHHMMSS(text.data())) {
    h = (text[0] - '0') * 10 + (text[1] - '0');
    m = (text[3] - '0') * 10 + (text[4] - '0');
    s = (text[6] - '0') * 10 + (text[7] - '0');
    return true;
  }
  const auto eat = [&text](int& out) {
    std::size_t used = 0;
    long v = 0;
    while (used < text.size() && text[used] >= '0' && text[used] <= '9') {
      v = v * 10 + (text[used] - '0');
      if (v > 1000000) return false;
      ++used;
    }
    if (used == 0) return false;
    out = static_cast<int>(v);
    text.remove_prefix(used);
    return true;
  };
  const auto colon = [&text] {
    if (text.empty() || text.front() != ':') return false;
    text.remove_prefix(1);
    return true;
  };
  return eat(h) && colon() && eat(m) && colon() && eat(s) && text.empty();
}

/// Extracts the cname following a marker word, e.g. "node c1-0c2s3n2".
std::string CnameAfter(std::string_view text, std::string_view marker) {
  const std::size_t pos = text.find(marker);
  if (pos == std::string_view::npos) return "";
  std::string_view rest = text.substr(pos + marker.size());
  rest = Trim(rest);
  const std::size_t end = simd::FindWhitespace(rest, 0);
  return std::string(rest.substr(0, end));
}

/// "c3-4c1s2g0l33" -> gemini name "c3-4c1s2g0" (strips the lane suffix).
std::string StripLaneSuffix(std::string cname) {
  const std::size_t l = cname.rfind('l');
  const std::size_t g = cname.rfind('g');
  if (l != std::string::npos && g != std::string::npos && l > g) {
    cname.erase(l);
  }
  return cname;
}

/// Default window applied to an incident whose recovery line is missing
/// (stream truncated); matches the study's conservative handling.
constexpr std::int64_t kDefaultOpenIncidentSeconds = 1800;

constexpr std::size_t kNoOpenIncident = static_cast<std::size_t>(-1);

/// The year-independent part of the per-line parse: everything except
/// resolving the absolute year.  Pure — safe on any thread.
///
/// `month_seen` is set to the line's month as soon as the month token
/// validates, even when the line later fails (bad day/clock, smw event
/// without a component name) or is skipped: the sequential parser
/// advances its rollover state on exactly those lines, so the chunked
/// path must count them identically.
Result<std::optional<SyslogParser::PreRecord>> ParsePreImpl(
    std::string_view line, int* month_seen) {
  // Timestamp = first 3 whitespace-separated tokens; then hostname; then
  // the message.  Only those four tokens are ever indexed, so the line
  // is NOT fully tokenized (the message would dominate the split);
  // "at least five fields" is checked by probing for one more
  // non-whitespace byte.
  std::string_view fields[4];
  std::size_t pos = 0;
  for (std::string_view& field : fields) {
    pos = simd::SkipWhitespace(line, pos);
    if (pos == line.size()) {
      return ParseError("syslog: too few fields");
    }
    const std::size_t end = simd::FindWhitespace(line, pos);
    field = line.substr(pos, end - pos);
    pos = end;
  }
  if (simd::SkipWhitespace(line, pos) == line.size()) {
    return ParseError("syslog: too few fields");
  }
  const int month = MonthFromAbbrev(fields[0]);
  if (month == 0) {
    return ParseError("syslog: bad month");
  }
  *month_seen = month;

  const auto day = ParseInt(fields[1]);
  if (!day.ok()) return day.status();
  int h = 0, m = 0, s = 0;
  if (!ParseClock(fields[2], h, m, s)) {
    return ParseError("syslog: bad clock field");
  }

  SyslogParser::PreRecord pre;
  pre.month = month;
  pre.day = static_cast<int>(*day);
  pre.hour = h;
  pre.minute = m;
  pre.second = s;

  // The single-space-joined stamp the old code built spanned exactly
  // this many bytes; the hostname search must start from the same offset
  // to locate the same occurrence.
  const std::size_t stamp_len =
      fields[0].size() + fields[1].size() + fields[2].size() + 2;
  const std::string_view host = fields[3];
  const std::size_t host_pos = line.find(host, stamp_len);
  const std::string_view message = Trim(line.substr(host_pos + host.size()));

  ErrorRecord& rec = pre.rec;
  rec.source = LogSource::kSyslog;

  // --- Lustre (system scope) ---
  if (host == "sonexion" || StartsWith(message, "LustreError") ||
      Contains(message, "Lustre:")) {
    rec.category = ErrorCategory::kLustre;
    rec.scope = LocScope::kSystem;
    if (Contains(message, "recovered")) {
      // Recovery line: closes the pending incident during reduction.
      rec.severity = Severity::kCorrected;
      pre.is_recovery = true;
      return std::optional<SyslogParser::PreRecord>{std::move(pre)};
    }
    rec.severity = Severity::kFatal;
    return std::optional<SyslogParser::PreRecord>{std::move(pre)};
  }

  // --- SMW-reported events (hostname is the SMW, location in message) ---
  if (host == "smw") {
    if (Contains(message, "heartbeat fault")) {
      rec.category = ErrorCategory::kNodeHeartbeat;
      rec.severity = Severity::kFatal;
      rec.scope = LocScope::kNode;
      rec.location = Intern(CnameAfter(message, "node "));
    } else if (Contains(message, "voltage fault")) {
      rec.category = ErrorCategory::kBladeFault;
      rec.severity = Severity::kFatal;
      rec.scope = LocScope::kBlade;
      rec.location = Intern(CnameAfter(message, "blade "));
    } else if (Contains(message, "Gemini LCB")) {
      rec.category = ErrorCategory::kGeminiLink;
      rec.scope = LocScope::kGemini;
      rec.location = Intern(StripLaneSuffix(CnameAfter(message, "Gemini LCB ")));
      rec.severity = Contains(message, "failover unsuccessful")
                         ? Severity::kFatal
                         : Severity::kDegraded;
    } else if (Contains(message, "lane degrade")) {
      rec.category = ErrorCategory::kGeminiLink;
      rec.scope = LocScope::kGemini;
      rec.location =
          Intern(StripLaneSuffix(CnameAfter(message, "lane degrade on ")));
      rec.severity = Severity::kCorrected;
    } else {
      return std::optional<SyslogParser::PreRecord>{};
    }
    if (rec.location.empty()) {
      return ParseError("syslog: smw event without component name");
    }
    return std::optional<SyslogParser::PreRecord>{std::move(pre)};
  }

  // --- node-local kernel messages: hostname is the cname ---
  rec.location = Intern(host);
  rec.scope = LocScope::kNode;
  if (Contains(message, "Machine check")) {
    rec.category = ErrorCategory::kMachineCheck;
    rec.severity = Contains(message, "corrected") ? Severity::kCorrected
                                                  : Severity::kFatal;
  } else if (Contains(message, "uncorrectable memory error") ||
             Contains(message, "EDAC")) {
    rec.category = ErrorCategory::kMemoryUE;
    rec.severity = Severity::kFatal;
  } else if (Contains(message, "Double Bit ECC")) {
    rec.category = ErrorCategory::kGpuDbe;
    rec.severity = Severity::kFatal;
  } else if (Contains(message, "NVRM: Xid")) {
    rec.category = ErrorCategory::kGpuXid;
    rec.severity = Contains(message, "page retirement") ? Severity::kCorrected
                                                        : Severity::kFatal;
  } else if (Contains(message, "Kernel panic")) {
    rec.category = ErrorCategory::kKernelSoftware;
    rec.severity = Severity::kFatal;
  } else {
    return std::optional<SyslogParser::PreRecord>{};
  }
  return std::optional<SyslogParser::PreRecord>{std::move(pre)};
}

/// The December-rollover test shared by the sequential path, the chunk
/// worker, and the chunk-boundary stitch.
bool RolloverBetween(int last_month, int month) {
  return last_month != 0 && month < last_month && last_month - month > 6;
}

/// A backward month jump (Jan -> Dec) right after a rollover is a node
/// with a lagging clock still stamping the old year, not time travel:
/// render the line one year back and do NOT advance the carried month,
/// otherwise the next in-year line would re-trigger RolloverBetween and
/// double-advance the year.  Mutually exclusive with RolloverBetween
/// (one needs month < last, the other month > last).
bool BackwardJump(int last_month, int month) {
  return last_month != 0 && month > last_month && month - last_month > 6;
}

}  // namespace

SyslogParser::SyslogParser(int base_year) : current_year_(base_year) {}

Result<TimePoint> SyslogParser::ParseSyslogTime(std::string_view text,
                                                int year) {
  // "Apr  1 02:10:02" (day may be space-padded).
  const auto fields = SplitWhitespace(text);
  if (fields.size() < 3) return ParseError("syslog: bad timestamp");
  const int month = MonthFromAbbrev(fields[0]);
  if (month == 0) {
    return ParseError("syslog: bad month '" + std::string(fields[0]) + "'");
  }
  auto day = ParseInt(fields[1]);
  if (!day.ok()) return day.status();
  int h = 0, m = 0, s = 0;
  if (!ParseClock(fields[2], h, m, s)) {
    return ParseError("syslog: bad clock field");
  }
  return TimePoint::FromCalendar(year, month, static_cast<int>(*day), h, m, s);
}

Result<std::optional<ErrorRecord>> SyslogParser::ParseLine(
    std::string_view line) {
  ++stats_.lines;
  auto rec = ParseLineImpl(line);
  if (!rec.ok()) {
    ++stats_.malformed;
  } else if (rec->has_value()) {
    ++stats_.records;
  } else {
    ++stats_.skipped;
  }
  return rec;
}

Result<std::optional<ErrorRecord>> SyslogParser::ParseLineImpl(
    std::string_view line) {
  int month_seen = 0;
  auto pre = ParsePreImpl(line, &month_seen);
  // Year-rollover reconstruction advances on every line whose month
  // token validated — including lines that fail later.
  int render_year = current_year_;
  if (month_seen != 0) {
    if (RolloverBetween(last_month_, month_seen)) ++current_year_;
    if (BackwardJump(last_month_, month_seen)) {
      render_year = current_year_ - 1;  // stale clock; carry state as-is
    } else {
      render_year = current_year_;
      last_month_ = month_seen;
    }
  }
  if (!pre.ok()) return pre.status();
  if (!pre->has_value()) return std::optional<ErrorRecord>{};
  PreRecord& item = **pre;
  ErrorRecord rec = std::move(item.rec);
  rec.time = TimePoint::FromCalendar(render_year, item.month, item.day,
                                     item.hour, item.minute, item.second);
  if (item.is_recovery) rec.recovered = rec.time;
  return std::optional<ErrorRecord>{std::move(rec)};
}

SyslogParser::Chunk SyslogParser::ParseChunk(
    std::span<const std::string_view> lines, std::uint64_t first_line_no,
    const QuarantineConfig* capture) {
  Chunk chunk;
  if (capture != nullptr) chunk.sink = QuarantineSink(*capture);
  chunk.items.reserve(lines.size());
  int local_last_month = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    ++chunk.stats.lines;
    int month_seen = 0;
    auto pre = ParsePreImpl(line, &month_seen);
    int item_delta = chunk.year_delta_total;
    if (month_seen != 0) {
      if (chunk.first_month == 0) chunk.first_month = month_seen;
      if (RolloverBetween(local_last_month, month_seen)) {
        ++chunk.year_delta_total;
      }
      if (BackwardJump(local_last_month, month_seen)) {
        // Skewed stale-clock line: one year behind the chunk's running
        // count; the carried month stays so the next in-year line does
        // not re-trigger the rollover.
        item_delta = chunk.year_delta_total - 1;
      } else {
        item_delta = chunk.year_delta_total;
        local_last_month = month_seen;
      }
    }
    if (!pre.ok()) {
      ++chunk.stats.malformed;
      if (capture != nullptr) {
        chunk.sink.Add(LogSource::kSyslog, first_line_no + i, line,
                       pre.status());
      }
      continue;
    }
    if (!pre->has_value()) {
      ++chunk.stats.skipped;
      continue;
    }
    ++chunk.stats.records;
    PreRecord& item = **pre;
    item.year_delta = item_delta;
    chunk.items.push_back(std::move(item));
  }
  chunk.last_month = local_last_month;
  return chunk;
}

std::vector<ErrorRecord> SyslogParser::ReduceChunks(std::vector<Chunk>&& chunks,
                                                    QuarantineSink* sink) {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks) total += chunk.items.size();
  std::vector<ErrorRecord> out;
  out.reserve(total);
  // Index of the currently open system incident in `out`, or none.
  std::size_t open_incident = kNoOpenIncident;
  for (Chunk& chunk : chunks) {
    // Chunk-boundary stitch: a rollover between the carried last month
    // and this chunk's first valid month shifts the whole chunk's base
    // year — the chunk itself started counting from zero.  A *backward*
    // jump at the boundary (carried Jan, chunk opens on a skewed Dec
    // line) means the chunk started counting in the previous year.
    int entry_year = current_year_;
    if (chunk.first_month != 0) {
      if (RolloverBetween(last_month_, chunk.first_month)) ++entry_year;
      if (BackwardJump(last_month_, chunk.first_month)) --entry_year;
    }
    for (PreRecord& item : chunk.items) {
      ErrorRecord rec = std::move(item.rec);
      rec.time = TimePoint::FromCalendar(entry_year + item.year_delta,
                                         item.month, item.day, item.hour,
                                         item.minute, item.second);
      if (item.is_recovery) rec.recovered = rec.time;
      if (rec.scope == LocScope::kSystem) {
        if (item.is_recovery) {
          // Recovery: close the open incident.
          if (open_incident != kNoOpenIncident) {
            out[open_incident].recovered = rec.recovered;
            open_incident = kNoOpenIncident;
          }
          continue;  // recovery lines do not become records themselves
        }
        if (open_incident != kNoOpenIncident) {
          // Overlapping incident reports merge into the open one.
          continue;
        }
        open_incident = out.size();
        out.push_back(std::move(rec));
        continue;
      }
      out.push_back(std::move(rec));
    }
    current_year_ = entry_year + chunk.year_delta_total;
    if (chunk.last_month != 0) last_month_ = chunk.last_month;
    stats_.MergeFrom(chunk.stats);
    if (sink != nullptr) sink->MergeFrom(std::move(chunk.sink));
  }
  if (open_incident != kNoOpenIncident) {
    out[open_incident].recovered =
        out[open_incident].time + Duration(kDefaultOpenIncidentSeconds);
  }
  return out;
}

std::vector<ErrorRecord> SyslogParser::ParseLines(
    std::span<const std::string_view> lines, QuarantineSink* sink,
    ThreadPool* pool, std::size_t chunk_lines) {
  auto chunks = MapLineChunks(
      lines, chunk_lines, pool,
      sink != nullptr ? &sink->config() : nullptr,
      [](std::span<const std::string_view> slice, std::uint64_t first,
         const QuarantineConfig* capture) {
        return ParseChunk(slice, first, capture);
      });
  return ReduceChunks(std::move(chunks), sink);
}

std::vector<ErrorRecord> SyslogParser::ParseLines(
    const std::vector<std::string>& lines, QuarantineSink* sink) {
  const std::vector<std::string_view> views = LineViews(lines);
  return ParseLines(std::span<const std::string_view>(views), sink);
}

}  // namespace ld
