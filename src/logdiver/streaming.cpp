#include "logdiver/streaming.hpp"

#include <algorithm>

namespace ld {

StreamingAnalyzer::StreamingAnalyzer(const Machine& machine,
                                     LogDiverConfig config)
    : machine_(machine),
      config_(std::move(config)),
      syslog_parser_(config_.syslog_base_year),
      coalescer_(machine, config_.coalesce),
      correlator_(machine, config_.correlator),
      metrics_(config_.metrics) {}

Duration StreamingAnalyzer::FinalizeGuard() const {
  // A tuple explaining a death at D starts no later than
  // D + attribution_after; it is flushed once the watermark passes its
  // last event + tupling window.  One extra minute absorbs emitter
  // timestamp jitter.
  return config_.correlator.attribution_after +
         config_.coalesce.tupling_window + Duration::Seconds(60);
}

void StreamingAnalyzer::AddTorqueLine(std::string_view line) {
  auto rec = torque_parser_.ParseLine(line);
  if (!rec.ok() || !rec->has_value()) return;
  TorqueRecord& record = **rec;
  auto [it, inserted] = jobs_.try_emplace(record.jobid, record);
  if (!inserted && record.kind == TorqueRecord::Kind::kEnd) {
    it->second = std::move(record);  // E record is authoritative
  }
}

void StreamingAnalyzer::AddAlpsLine(std::string_view line) {
  auto rec = alps_parser_.ParseLine(line);
  if (!rec.ok() || !rec->has_value()) return;
  AlpsRecord& record = **rec;
  if (record.kind == AlpsRecord::Kind::kPlace) {
    AppRun run;
    run.apid = record.apid;
    run.jobid = record.jobid;
    run.user = record.user;
    run.nodes = std::move(record.nids);
    run.nodect = record.nodect != 0
                     ? record.nodect
                     : static_cast<std::uint32_t>(run.nodes.size());
    run.start = record.time;
    run.end = record.time;
    // Node type from placement.
    std::uint32_t xe = 0, xk = 0;
    for (NodeIndex n : run.nodes) {
      if (n >= machine_.node_count()) continue;
      switch (machine_.node(n).type) {
        case NodeType::kXE: ++xe; break;
        case NodeType::kXK: ++xk; break;
        case NodeType::kService: break;
      }
    }
    run.node_type = xk > xe ? NodeType::kXK : NodeType::kXE;
    open_runs_.emplace(run.apid, std::move(run));
    return;
  }
  // Termination: close the open run and queue it for classification.
  const auto it = open_runs_.find(record.apid);
  if (it == open_runs_.end()) {
    ++orphan_terminations_;
    return;
  }
  AppRun run = std::move(it->second);
  open_runs_.erase(it);
  run.end = record.time;
  run.has_termination = true;
  if (record.kind == AlpsRecord::Kind::kExit) {
    run.exit_code = record.exit_code;
    run.exit_signal = record.exit_signal;
  } else {
    run.killed_node_failure = record.kill_reason == "node_failure";
    run.failed_nid = record.failed_nid;
    run.exit_code = 137;
    run.exit_signal = 9;
  }
  // Join the job context now (Torque E records flush at job end, i.e.
  // at-or-before the last run's termination reaches us in a well-ordered
  // stream; S records cover the rest).
  const auto job = jobs_.find(run.jobid);
  if (job != jobs_.end()) {
    run.queue = job->second.queue;
    run.job_submit = job->second.submit;
    run.job_start = job->second.start;
    run.walltime_limit = job->second.walltime_limit;
    run.job_exit_status = job->second.exit_status;
    if (run.user.empty()) run.user = job->second.user;
  }
  pending_.push_back(std::move(run));
}

void StreamingAnalyzer::AddSyslogLine(std::string_view line) {
  auto rec = syslog_parser_.ParseLine(line);
  if (!rec.ok() || !rec->has_value()) return;
  // Recovery lines (corrected severity, `recovered` set) merge into the
  // open incident inside the coalescer; a stray recovery with no open
  // incident becomes a harmless corrected-severity tuple.
  coalescer_.Add(**rec);
}

void StreamingAnalyzer::AddHwerrLine(std::string_view line) {
  auto rec = hwerr_parser_.ParseLine(line);
  if (!rec.ok() || !rec->has_value()) return;
  coalescer_.Add(**rec);
}

void StreamingAnalyzer::ClassifyBatch(std::vector<AppRun>&& batch) {
  if (batch.empty()) return;
  const std::vector<ErrorTuple> tuples(tuple_buffer_.begin(),
                                       tuple_buffer_.end());
  const std::vector<ClassifiedRun> classified =
      correlator_.Classify(batch, tuples);
  for (const ClassifiedRun& cls : classified) {
    metrics_.AddRun(batch[cls.run_index], cls);
  }
  runs_finalized_ += batch.size();
}

void StreamingAnalyzer::EvictOldState(TimePoint watermark) {
  // Tuples whose whole attribution reach lies behind every run we could
  // still finalize are dead weight.
  const Duration reach = config_.correlator.attribution_before +
                         FinalizeGuard() + FinalizeGuard();
  while (!tuple_buffer_.empty()) {
    const ErrorTuple& tuple = tuple_buffer_.front();
    const TimePoint influence_end =
        tuple.ImpactWindow().end + config_.correlator.incident_slack;
    if (std::max(tuple.first + config_.correlator.attribution_before,
                 influence_end) +
            reach <
        watermark) {
      tuple_buffer_.pop_front();
    } else {
      break;
    }
  }
  // Job records are only needed while a run of theirs can still arrive;
  // E-recorded jobs are safe to drop well after their end.
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.kind == TorqueRecord::Kind::kEnd &&
        it->second.end + Duration::Hours(2) < watermark) {
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t StreamingAnalyzer::Advance(TimePoint watermark) {
  // 1. Close coalescer windows and buffer the flushed tuples.
  for (ErrorTuple& tuple : coalescer_.Flush(watermark)) {
    metrics_.AddTuple(tuple);
    tuple_buffer_.push_back(std::move(tuple));
  }

  // 2. Finalize pending runs whose guard has passed and that no open
  //    incident could still explain.
  const auto open_incident = coalescer_.EarliestOpenIncident();
  std::vector<AppRun> batch;
  while (!pending_.empty()) {
    const AppRun& run = pending_.front();
    if (run.end + FinalizeGuard() >= watermark) break;
    if (open_incident.has_value() &&
        *open_incident <= run.end + config_.correlator.incident_slack) {
      break;  // an unresolved incident might cover this death
    }
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  const std::size_t finalized = batch.size();
  ClassifyBatch(std::move(batch));
  EvictOldState(watermark);
  return finalized;
}

StreamingAnalyzer::Summary StreamingAnalyzer::Finalize() {
  Summary summary;
  // Flush every tuple, then classify every remaining terminated run.
  for (ErrorTuple& tuple : coalescer_.FlushAll()) {
    metrics_.AddTuple(tuple);
    tuple_buffer_.push_back(std::move(tuple));
  }
  std::vector<AppRun> batch(std::make_move_iterator(pending_.begin()),
                            std::make_move_iterator(pending_.end()));
  pending_.clear();
  // Placements that never terminated surface as unknown-outcome runs,
  // exactly as in the batch pipeline.
  summary.unterminated_runs = open_runs_.size();
  for (auto& [apid, run] : open_runs_) {
    batch.push_back(std::move(run));
  }
  open_runs_.clear();
  ClassifyBatch(std::move(batch));

  summary.metrics = metrics_.Report();
  summary.runs_finalized = runs_finalized_;
  summary.torque_stats = torque_parser_.stats();
  summary.alps_stats = alps_parser_.stats();
  summary.syslog_stats = syslog_parser_.stats();
  summary.hwerr_stats = hwerr_parser_.stats();
  summary.coalesce_stats = coalescer_.stats();
  summary.orphan_terminations = orphan_terminations_;
  return summary;
}

StreamingAnalyzer::StateSize StreamingAnalyzer::state_size() const {
  StateSize size;
  size.open_jobs = jobs_.size();
  size.open_runs = open_runs_.size();
  size.pending_runs = pending_.size();
  size.buffered_tuples = tuple_buffer_.size();
  size.open_tuples = coalescer_.open_tuples();
  return size;
}

}  // namespace ld
