#include "logdiver/streaming.hpp"

#include <algorithm>

#include "common/obs/obs.hpp"
#include "logdiver/snapshot.hpp"

namespace ld {
namespace {

/// Analyzer payload layout version; bump on any member-order or
/// encoding change (docs/FORMATS.md documents the current layout).
// Version 2: MetricsAccumulator state moved to integer node-second
// tallies and per-job queue-wait winners (the mergeable-aggregate
// refactor); version-1 snapshots are rejected and analysis restarts
// from the raw logs.
constexpr std::uint32_t kStreamStateVersion = 2;

}  // namespace

StreamingAnalyzer::StreamingAnalyzer(const Machine& machine,
                                     LogDiverConfig config)
    : machine_(machine),
      config_(std::move(config)),
      syslog_parser_(config_.syslog_base_year),
      coalescer_(machine, config_.coalesce),
      correlator_(machine, config_.correlator),
      metrics_(config_.metrics),
      quarantine_(config_.ingest.quarantine) {}

Duration StreamingAnalyzer::FinalizeGuard() const {
  // A tuple explaining a death at D starts no later than
  // D + attribution_after; it is flushed once the watermark passes its
  // last event + tupling window.  One extra minute absorbs emitter
  // timestamp jitter.
  return config_.correlator.attribution_after +
         config_.coalesce.tupling_window + Duration::Seconds(60);
}

bool StreamingAnalyzer::SourceOpen(LogSource source) {
  if (!source_closed_[static_cast<std::size_t>(source)]) return true;
  ++ingest_.lines_dropped_after_budget;
  return false;
}

void StreamingAnalyzer::Reject(LogSource source, std::uint64_t line_number,
                               std::string_view line, const Status& why) {
  quarantine_.Add(source, line_number, line, why);
  ingest_.quarantined = quarantine_.total();
  ingest_.quarantine_overflow = quarantine_.overflow();
}

void StreamingAnalyzer::CheckBudget(LogSource source, const ParseStats& stats) {
  const auto idx = static_cast<std::size_t>(source);
  if (budget_counted_[idx] || !config_.ingest.budget.Exceeded(stats)) return;
  budget_counted_[idx] = true;
  ++ingest_.budget_exhausted_sources;
  if (config_.ingest.policy != DegradationPolicy::kFailFast) return;
  source_closed_[idx] = true;
  if (ingest_status_.ok()) {
    ingest_status_ =
        ParseError(std::string(LogSourceName(source)) + ": " +
                   std::to_string(stats.malformed) + " of " +
                   std::to_string(stats.lines) +
                   " lines malformed, over the error budget");
  }
}

void StreamingAnalyzer::AddTorqueLine(std::string_view line) {
  LD_CHECK(!finalized_, "AddTorqueLine on a finalized analyzer");
  if (!SourceOpen(LogSource::kTorque)) return;
  auto rec = torque_parser_.ParseLine(line);
  if (!rec.ok()) {
    Reject(LogSource::kTorque, torque_parser_.stats().lines, line,
           rec.status());
    CheckBudget(LogSource::kTorque, torque_parser_.stats());
    return;
  }
  if (!rec->has_value()) return;
  TorqueRecord& record = **rec;
  auto [it, inserted] = jobs_.try_emplace(record.jobid, record);
  if (inserted) return;
  const bool have_end = it->second.kind == TorqueRecord::Kind::kEnd;
  if (record.kind == TorqueRecord::Kind::kEnd && !have_end) {
    it->second = std::move(record);  // E record is authoritative
    return;
  }
  // Replayed S over anything, or E over an E already held: the stored
  // record wins and the replay is disclosed, not applied.
  ++ingest_.duplicate_job_records;
}

void StreamingAnalyzer::AddAlpsLine(std::string_view line) {
  LD_CHECK(!finalized_, "AddAlpsLine on a finalized analyzer");
  if (!SourceOpen(LogSource::kAlps)) return;
  auto rec = alps_parser_.ParseLine(line);
  if (!rec.ok()) {
    Reject(LogSource::kAlps, alps_parser_.stats().lines, line, rec.status());
    CheckBudget(LogSource::kAlps, alps_parser_.stats());
    return;
  }
  if (!rec->has_value()) return;
  AlpsRecord& record = **rec;
  if (record.kind == AlpsRecord::Kind::kPlace) {
    // A placement for an apid we are already tracking (or just finished)
    // is a replayed record; the first placement wins.
    if (open_runs_.count(record.apid) != 0 ||
        recent_terminated_.count(record.apid) != 0) {
      ++ingest_.duplicate_placements;
      return;
    }
    AppRun run;
    run.apid = record.apid;
    run.jobid = record.jobid;
    run.user = record.user;
    run.nodes = std::move(record.nids);
    run.nodect = record.nodect != 0
                     ? record.nodect
                     : static_cast<std::uint32_t>(run.nodes.size());
    run.start = record.time;
    run.end = record.time;
    // Node type from placement.
    std::uint32_t xe = 0, xk = 0;
    for (NodeIndex n : run.nodes) {
      if (n >= machine_.node_count()) continue;
      switch (machine_.node(n).type) {
        case NodeType::kXE: ++xe; break;
        case NodeType::kXK: ++xk; break;
        case NodeType::kService: break;
      }
    }
    run.node_type = xk > xe ? NodeType::kXK : NodeType::kXE;
    open_runs_.emplace(run.apid, std::move(run));
    return;
  }
  // Termination: close the open run and queue it for classification.
  const auto it = open_runs_.find(record.apid);
  if (it == open_runs_.end()) {
    if (recent_terminated_.count(record.apid) != 0) {
      ++ingest_.duplicate_terminations;  // replayed exit/kill; first won
    } else {
      ++orphan_terminations_;
    }
    return;
  }
  AppRun run = std::move(it->second);
  open_runs_.erase(it);
  run.end = record.time;
  run.has_termination = true;
  if (record.kind == AlpsRecord::Kind::kExit) {
    run.exit_code = record.exit_code;
    run.exit_signal = record.exit_signal;
  } else {
    run.killed_node_failure = record.kill_reason == "node_failure";
    run.failed_nid = record.failed_nid;
    run.exit_code = 137;
    run.exit_signal = 9;
  }
  // Join the job context now (Torque E records flush at job end, i.e.
  // at-or-before the last run's termination reaches us in a well-ordered
  // stream; S records cover the rest).
  const auto job = jobs_.find(run.jobid);
  if (job != jobs_.end()) {
    run.queue = job->second.queue;
    run.job_submit = job->second.submit;
    run.job_start = job->second.start;
    run.walltime_limit = job->second.walltime_limit;
    run.job_exit_status = job->second.exit_status;
    if (run.user.empty()) run.user = job->second.user;
  }
  recent_terminated_.emplace(run.apid, run.end);
  pending_.push_back(std::move(run));
  EnforceBounds();
}

void StreamingAnalyzer::AddSyslogLine(std::string_view line) {
  LD_CHECK(!finalized_, "AddSyslogLine on a finalized analyzer");
  if (!SourceOpen(LogSource::kSyslog)) return;
  auto rec = syslog_parser_.ParseLine(line);
  if (!rec.ok()) {
    Reject(LogSource::kSyslog, syslog_parser_.stats().lines, line,
           rec.status());
    CheckBudget(LogSource::kSyslog, syslog_parser_.stats());
    return;
  }
  if (!rec->has_value()) return;
  // Recovery lines (corrected severity, `recovered` set) merge into the
  // open incident inside the coalescer; a stray recovery with no open
  // incident becomes a harmless corrected-severity tuple.
  coalescer_.Add(**rec);
}

void StreamingAnalyzer::AddHwerrLine(std::string_view line) {
  LD_CHECK(!finalized_, "AddHwerrLine on a finalized analyzer");
  if (!SourceOpen(LogSource::kHwerr)) return;
  auto rec = hwerr_parser_.ParseLine(line);
  if (!rec.ok()) {
    Reject(LogSource::kHwerr, hwerr_parser_.stats().lines, line, rec.status());
    CheckBudget(LogSource::kHwerr, hwerr_parser_.stats());
    return;
  }
  if (!rec->has_value()) return;
  coalescer_.Add(**rec);
}

void StreamingAnalyzer::ClassifyBatch(std::vector<AppRun>&& batch) {
  if (batch.empty()) return;
  const std::vector<ErrorTuple> tuples(tuple_buffer_.begin(),
                                       tuple_buffer_.end());
  const std::vector<ClassifiedRun> classified =
      correlator_.Classify(batch, tuples);
  // Classification context (tuple buffer, batch composition) is the
  // same on every fleet worker; only the fold into the accumulator is
  // ownership-filtered, so shard partials merge without double counting.
  for (const ClassifiedRun& cls : classified) {
    if (config_.shard.OwnsRun(batch[cls.run_index].apid)) {
      metrics_.AddRun(batch[cls.run_index], cls);
    }
  }
  LD_OBS_COUNTER_ADD(obs::names::kStreamRunsFinalizedTotal, batch.size());
  runs_finalized_ += batch.size();
}

void StreamingAnalyzer::EnforceBounds() {
  // pending_ is capped by force-classifying the oldest runs before their
  // guard elapses.  Nothing is lost outright — the run is classified with
  // whatever tuples are buffered now — but a tuple still in flight can no
  // longer explain it, so the eviction is disclosed.
  const std::size_t max_pending = config_.ingest.max_pending_runs;
  if (max_pending != 0 && pending_.size() > max_pending) {
    std::vector<AppRun> batch;
    while (pending_.size() > max_pending) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
      ++ingest_.evicted_pending_runs;
      LD_OBS_COUNTER_ADD(obs::names::kStreamEvictedRunsTotal, 1);
    }
    ClassifyBatch(std::move(batch));
  }
  // Evicted tuples were already counted into the metrics at flush time;
  // only their attribution reach is lost.
  const std::size_t max_tuples = config_.ingest.max_buffered_tuples;
  if (max_tuples != 0) {
    while (tuple_buffer_.size() > max_tuples) {
      tuple_buffer_.pop_front();
      ++ingest_.evicted_tuples;
      LD_OBS_COUNTER_ADD(obs::names::kStreamEvictedTuplesTotal, 1);
    }
  }
}

void StreamingAnalyzer::EvictOldState(TimePoint watermark) {
  // Tuples whose whole attribution reach lies behind every run we could
  // still finalize are dead weight.
  const Duration reach = config_.correlator.attribution_before +
                         FinalizeGuard() + FinalizeGuard();
  while (!tuple_buffer_.empty()) {
    const ErrorTuple& tuple = tuple_buffer_.front();
    const TimePoint influence_end =
        tuple.ImpactWindow().end + config_.correlator.incident_slack;
    if (std::max(tuple.first + config_.correlator.attribution_before,
                 influence_end) +
            reach <
        watermark) {
      tuple_buffer_.pop_front();
    } else {
      break;
    }
  }
  // Job records are only needed while a run of theirs can still arrive;
  // E-recorded jobs are safe to drop well after their end.
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.kind == TorqueRecord::Kind::kEnd &&
        it->second.end + Duration::Hours(2) < watermark) {
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  // Terminated-apid memory (replay detection) ages out once a replay
  // could no longer be confused with live data.
  for (auto it = recent_terminated_.begin(); it != recent_terminated_.end();) {
    if (it->second + FinalizeGuard() + FinalizeGuard() < watermark) {
      it = recent_terminated_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t StreamingAnalyzer::Advance(TimePoint watermark) {
  LD_CHECK(!finalized_, "Advance on a finalized analyzer");
  LD_OBS_COUNTER_ADD(obs::names::kStreamAdvancesTotal, 1);
  // 0. A watermark behind the furthest promise already made would re-open
  //    finalized state; clamp it and count the broken promise.
  if (have_watermark_ && watermark < last_watermark_) {
    ++ingest_.watermark_regressions;
    watermark = last_watermark_;
  } else {
    last_watermark_ = watermark;
    have_watermark_ = true;
  }

  // 1. Close coalescer windows and buffer the flushed tuples.  Tuple
  //    ids are assigned deterministically by the coalescer (identical
  //    on every fleet worker), so `id % shard_count` is a consistent
  //    disjoint ownership partition.
  for (ErrorTuple& tuple : coalescer_.Flush(watermark)) {
    if (config_.shard.OwnsTuple(tuple.id)) metrics_.AddTuple(tuple);
    tuple_buffer_.push_back(std::move(tuple));
  }
  EnforceBounds();

  // 2. Finalize pending runs whose guard has passed and that no open
  //    incident could still explain.
  const auto open_incident = coalescer_.EarliestOpenIncident();
  std::vector<AppRun> batch;
  while (!pending_.empty()) {
    const AppRun& run = pending_.front();
    if (run.end + FinalizeGuard() >= watermark) break;
    if (open_incident.has_value() &&
        *open_incident <= run.end + config_.correlator.incident_slack) {
      break;  // an unresolved incident might cover this death
    }
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  const std::size_t finalized = batch.size();
  ClassifyBatch(std::move(batch));
  EvictOldState(watermark);
  return finalized;
}

StreamingAnalyzer::Summary StreamingAnalyzer::Finalize() {
  LD_CHECK(!finalized_, "Finalize called twice — the analyzer is spent");
  finalized_ = true;
  Summary summary;
  // Flush every tuple, then classify every remaining terminated run.
  for (ErrorTuple& tuple : coalescer_.FlushAll()) {
    if (config_.shard.OwnsTuple(tuple.id)) metrics_.AddTuple(tuple);
    tuple_buffer_.push_back(std::move(tuple));
  }
  std::vector<AppRun> batch(std::make_move_iterator(pending_.begin()),
                            std::make_move_iterator(pending_.end()));
  pending_.clear();
  LD_OBS_SPAN("stream/finalize");
  // Placements that never terminated surface as unknown-outcome runs,
  // exactly as in the batch pipeline.
  summary.unterminated_runs = open_runs_.size();
  for (auto& [apid, run] : open_runs_) {
    batch.push_back(std::move(run));
  }
  open_runs_.clear();
  ClassifyBatch(std::move(batch));

  summary.metrics = metrics_.Report();
  summary.runs_finalized = runs_finalized_;
  summary.torque_stats = torque_parser_.stats();
  summary.alps_stats = alps_parser_.stats();
  summary.syslog_stats = syslog_parser_.stats();
  summary.hwerr_stats = hwerr_parser_.stats();
  summary.coalesce_stats = coalescer_.stats();
  summary.orphan_terminations = orphan_terminations_;
  summary.ingest = ingest_;
  summary.ingest_status = ingest_status_;
  summary.metrics.ingest = summary.ingest;
  return summary;
}

void StreamingAnalyzer::Snapshot(SnapshotWriter& w) const {
  LD_CHECK(!finalized_, "Snapshot on a finalized analyzer");
  w.U32(kStreamStateVersion);
  // Geometry sanity: restoring against a different machine would
  // silently misclassify node types.
  w.U64(machine_.node_count());

  SaveParseStats(w, torque_parser_.stats());
  SaveParseStats(w, alps_parser_.stats());
  const SyslogParser::StreamState syslog = syslog_parser_.stream_state();
  SaveParseStats(w, syslog.stats);
  w.I32(syslog.current_year);
  w.I32(syslog.last_month);
  SaveParseStats(w, hwerr_parser_.stats());

  coalescer_.SaveState(w);
  quarantine_.SaveState(w);
  metrics_.SaveState(w);

  w.U64(jobs_.size());
  for (const auto& [jobid, record] : jobs_) {
    w.U64(jobid);
    SaveTorqueRecord(w, record);
  }
  w.U64(open_runs_.size());
  for (const auto& [apid, run] : open_runs_) {
    w.U64(apid);
    SaveAppRun(w, run);
  }
  w.U64(pending_.size());
  for (const AppRun& run : pending_) SaveAppRun(w, run);
  w.U64(tuple_buffer_.size());
  for (const ErrorTuple& tuple : tuple_buffer_) SaveErrorTuple(w, tuple);
  w.U64(recent_terminated_.size());
  for (const auto& [apid, end] : recent_terminated_) {
    w.U64(apid);
    w.Time(end);
  }

  w.U64(runs_finalized_);
  w.U64(orphan_terminations_);
  SaveIngestStats(w, ingest_);
  SaveStatus(w, ingest_status_);
  w.Time(last_watermark_);
  w.Bool(have_watermark_);
  for (bool closed : source_closed_) w.Bool(closed);
  for (bool counted : budget_counted_) w.Bool(counted);
}

Status StreamingAnalyzer::Restore(SnapshotReader& r) {
  LD_CHECK(!finalized_, "Restore on a finalized analyzer");
  const std::uint32_t version = r.U32();
  if (!r.ok()) return r.status();
  if (version != kStreamStateVersion) {
    return FailedPreconditionError("snapshot stream-state version " +
                            std::to_string(version) + ", this build speaks " +
                            std::to_string(kStreamStateVersion));
  }
  const std::uint64_t node_count = r.U64();
  if (r.ok() && node_count != machine_.node_count()) {
    return InvalidArgumentError(
        "snapshot was taken on a machine with " + std::to_string(node_count) +
        " nodes, this machine has " + std::to_string(machine_.node_count()));
  }

  ParseStats torque_stats;
  LoadParseStats(r, torque_stats);
  torque_parser_.RestoreStats(torque_stats);
  ParseStats alps_stats;
  LoadParseStats(r, alps_stats);
  alps_parser_.RestoreStats(alps_stats);
  SyslogParser::StreamState syslog;
  LoadParseStats(r, syslog.stats);
  syslog.current_year = r.I32();
  syslog.last_month = r.I32();
  syslog_parser_.RestoreStreamState(syslog);
  ParseStats hwerr_stats;
  LoadParseStats(r, hwerr_stats);
  hwerr_parser_.RestoreStats(hwerr_stats);

  coalescer_.LoadState(r);
  quarantine_.LoadState(r);
  metrics_.LoadState(r);

  jobs_.clear();
  for (std::uint64_t i = 0, n = r.U64(); i < n && r.ok(); ++i) {
    const JobId jobid = r.U64();
    TorqueRecord record;
    LoadTorqueRecord(r, record);
    jobs_.emplace_hint(jobs_.end(), jobid, std::move(record));
  }
  open_runs_.clear();
  for (std::uint64_t i = 0, n = r.U64(); i < n && r.ok(); ++i) {
    const ApId apid = r.U64();
    AppRun run;
    LoadAppRun(r, run);
    open_runs_.emplace_hint(open_runs_.end(), apid, std::move(run));
  }
  pending_.clear();
  for (std::uint64_t i = 0, n = r.U64(); i < n && r.ok(); ++i) {
    AppRun run;
    LoadAppRun(r, run);
    pending_.push_back(std::move(run));
  }
  tuple_buffer_.clear();
  for (std::uint64_t i = 0, n = r.U64(); i < n && r.ok(); ++i) {
    ErrorTuple tuple;
    LoadErrorTuple(r, tuple);
    tuple_buffer_.push_back(std::move(tuple));
  }
  recent_terminated_.clear();
  for (std::uint64_t i = 0, n = r.U64(); i < n && r.ok(); ++i) {
    const ApId apid = r.U64();
    recent_terminated_.emplace_hint(recent_terminated_.end(), apid, r.Time());
  }

  runs_finalized_ = r.U64();
  orphan_terminations_ = r.U64();
  LoadIngestStats(r, ingest_);
  ingest_status_ = LoadStatus(r);
  last_watermark_ = r.Time();
  have_watermark_ = r.Bool();
  for (bool& closed : source_closed_) closed = r.Bool();
  for (bool& counted : budget_counted_) counted = r.Bool();
  if (!r.ok()) return r.status();
  if (r.remaining() != 0) {
    return ParseError("snapshot payload has " +
                      std::to_string(r.remaining()) +
                      " trailing bytes — layout mismatch");
  }
  return Status::Ok();
}

StreamingAnalyzer::StateSize StreamingAnalyzer::state_size() const {
  StateSize size;
  size.open_jobs = jobs_.size();
  size.open_runs = open_runs_.size();
  size.pending_runs = pending_.size();
  size.buffered_tuples = tuple_buffer_.size();
  size.open_tuples = coalescer_.open_tuples();
  return size;
}

}  // namespace ld
