#include "logdiver/export.hpp"

#include <filesystem>
#include <fstream>

#include "common/csv.hpp"
#include "common/strings.hpp"

namespace ld {
namespace {

std::string F(double v) { return FormatDouble(v, 6); }
std::string U(std::uint64_t v) { return std::to_string(v); }

Status WriteCsv(const std::string& path,
                const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) return InternalError("cannot write '" + path + "'");
  CsvWriter writer(out);
  for (const auto& row : rows) writer.WriteRow(row);
  return Status::Ok();
}

}  // namespace

Result<int> ExportMetricsCsv(const MetricsReport& report,
                             const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return InternalError("cannot create '" + dir + "': " + ec.message());

  int files = 0;
  auto write = [&](const char* name,
                   const std::vector<std::vector<std::string>>& rows)
      -> Status {
    Status s = WriteCsv(dir + "/" + name, rows);
    if (s.ok()) ++files;
    return s;
  };

  {
    std::vector<std::vector<std::string>> rows = {
        {"metric", "value"},
        {"total_runs", U(report.total_runs)},
        {"total_node_hours", F(report.total_node_hours)},
        {"system_failure_fraction", F(report.system_failure_fraction)},
        {"lost_node_hours_fraction", F(report.lost_node_hours_fraction)},
        {"overall_mtti_hours", F(report.overall_mtti_hours)},
        {"availability", F(report.availability.availability)},
        {"incidents", U(report.availability.incidents)},
        {"downtime_hours", F(report.availability.downtime_hours)},
    };
    if (Status s = write("headline.csv", rows); !s.ok()) return s;
  }
  {
    std::vector<std::vector<std::string>> rows = {
        {"outcome", "runs", "runs_share", "node_hours", "node_hours_share"}};
    for (const OutcomeRow& row : report.outcomes) {
      rows.push_back({AppOutcomeName(row.outcome), U(row.runs),
                      F(row.runs_share), F(row.node_hours),
                      F(row.node_hours_share)});
    }
    if (Status s = write("outcomes.csv", rows); !s.ok()) return s;
  }
  {
    std::vector<std::vector<std::string>> rows = {
        {"category", "raw_events", "tuples", "fatal_tuples",
         "fatal_mtbe_hours"}};
    for (const CategoryRow& row : report.categories) {
      rows.push_back({ErrorCategoryName(row.category), U(row.raw_events),
                      U(row.tuples), U(row.fatal_tuples),
                      F(row.fatal_mtbe_hours)});
    }
    if (Status s = write("categories.csv", rows); !s.ok()) return s;
  }
  {
    std::vector<std::vector<std::string>> rows = {
        {"cause", "xe_failures", "xk_failures"}};
    for (const AttributionRow& row : report.attribution) {
      rows.push_back({ErrorCategoryName(row.cause), U(row.xe_failures),
                      U(row.xk_failures)});
    }
    if (Status s = write("attribution.csv", rows); !s.ok()) return s;
  }
  for (const auto& [name, points] :
       {std::pair{"xe_scale.csv", &report.xe_scale},
        std::pair{"xk_scale.csv", &report.xk_scale}}) {
    std::vector<std::vector<std::string>> rows = {
        {"lo", "hi", "runs", "system_failures", "p_fail", "ci_lo", "ci_hi"}};
    for (const ScalePoint& p : *points) {
      rows.push_back({U(p.lo), U(p.hi), U(p.runs), U(p.system_failures),
                      F(p.failure_probability.point),
                      F(p.failure_probability.lo),
                      F(p.failure_probability.hi)});
    }
    if (Status s = write(name, rows); !s.ok()) return s;
  }
  {
    std::vector<std::vector<std::string>> rows = {
        {"year", "month", "runs", "system_failures", "node_hours",
         "lost_node_hours", "mtti_hours"}};
    for (const MonthlyPoint& p : report.monthly) {
      rows.push_back({std::to_string(p.year), std::to_string(p.month),
                      U(p.runs), U(p.system_failures), F(p.node_hours),
                      F(p.lost_node_hours), F(p.mtti_hours)});
    }
    if (Status s = write("monthly.csv", rows); !s.ok()) return s;
  }
  {
    std::vector<std::vector<std::string>> rows = {
        {"partition", "system_failures", "attributed", "unattributed",
         "unattributed_share"}};
    for (const DetectionGapRow& row : report.detection_gap) {
      rows.push_back({NodeTypeName(row.type), U(row.system_failures),
                      U(row.attributed), U(row.unattributed),
                      F(row.unattributed_share)});
    }
    if (Status s = write("detection_gap.csv", rows); !s.ok()) return s;
  }
  {
    std::vector<std::vector<std::string>> rows = {
        {"lo", "hi", "jobs", "mean_wait_hours", "p95_wait_hours"}};
    for (const QueueWaitRow& row : report.queue_waits) {
      rows.push_back({U(row.lo), U(row.hi), U(row.jobs),
                      F(row.mean_wait_hours), F(row.p95_wait_hours)});
    }
    if (Status s = write("queue_waits.csv", rows); !s.ok()) return s;
  }
  {
    const IngestStats& ingest = report.ingest;
    std::vector<std::vector<std::string>> rows = {
        {"counter", "value"},
        {"quarantined", U(ingest.quarantined)},
        {"quarantine_overflow", U(ingest.quarantine_overflow)},
        {"duplicate_placements", U(ingest.duplicate_placements)},
        {"duplicate_terminations", U(ingest.duplicate_terminations)},
        {"duplicate_job_records", U(ingest.duplicate_job_records)},
        {"watermark_regressions", U(ingest.watermark_regressions)},
        {"evicted_pending_runs", U(ingest.evicted_pending_runs)},
        {"evicted_tuples", U(ingest.evicted_tuples)},
        {"budget_exhausted_sources", U(ingest.budget_exhausted_sources)},
        {"lines_dropped_after_budget", U(ingest.lines_dropped_after_budget)},
    };
    if (Status s = write("ingest.csv", rows); !s.ok()) return s;
  }
  return files;
}

}  // namespace ld
