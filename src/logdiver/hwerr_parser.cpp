#include "logdiver/hwerr_parser.hpp"

#include "common/strings.hpp"

namespace ld {

Result<std::optional<ErrorRecord>> HwerrParser::ParseLine(
    std::string_view line) {
  ++stats_.lines;
  const auto fields = Split(line, '|');
  if (fields.size() < 5) {
    ++stats_.malformed;
    return ParseError("hwerr: expected 5 '|' fields");
  }
  auto epoch = ParseInt(fields[0]);
  if (!epoch.ok()) {
    ++stats_.malformed;
    return epoch.status();
  }
  auto category = ParseErrorCategory(std::string(fields[1]));
  if (!category.ok()) {
    ++stats_.skipped;  // categories from newer firmware we don't know
    return std::optional<ErrorRecord>{};
  }
  auto severity = ParseSeverity(std::string(fields[3]));
  if (!severity.ok()) {
    ++stats_.malformed;
    return severity.status();
  }

  ErrorRecord rec;
  rec.time = TimePoint(*epoch);
  rec.category = *category;
  rec.severity = *severity;
  rec.source = LogSource::kHwerr;
  rec.location = std::string(fields[2]);
  rec.scope = *category == ErrorCategory::kBladeFault ? LocScope::kBlade
                                                      : LocScope::kNode;
  // Blade faults are recorded against a node on the blade; normalize the
  // location to the blade prefix.
  if (rec.scope == LocScope::kBlade) {
    if (auto cname = ParseCname(rec.location); cname.ok()) {
      rec.location = cname->BladePrefix();
    }
  }
  ++stats_.records;
  return std::optional<ErrorRecord>{rec};
}

std::vector<ErrorRecord> HwerrParser::ParseLines(
    const std::vector<std::string>& lines) {
  std::vector<ErrorRecord> out;
  out.reserve(lines.size());
  for (const std::string& line : lines) {
    auto rec = ParseLine(line);
    if (rec.ok() && rec->has_value()) out.push_back(std::move(**rec));
  }
  return out;
}

}  // namespace ld
