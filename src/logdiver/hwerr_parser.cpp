#include "logdiver/hwerr_parser.hpp"

#include "common/strings.hpp"
#include "logdiver/quarantine.hpp"

namespace ld {
namespace {

Result<std::optional<ErrorRecord>> ParseLineImpl(std::string_view line) {
  // Four separators bound the five fields in use; the scan stops there
  // instead of materializing a vector of every '|' piece.
  std::string_view fields[4];
  std::size_t pos = 0;
  for (std::string_view& field : fields) {
    const std::size_t sep = line.find('|', pos);
    if (sep == std::string_view::npos) {
      return ParseError("hwerr: expected 5 '|' fields");
    }
    field = line.substr(pos, sep - pos);
    pos = sep + 1;
  }
  LD_ASSIGN_OR_RETURN(const auto epoch, ParseInt(fields[0]));
  auto category = ParseErrorCategory(std::string(fields[1]));
  if (!category.ok()) {
    // Categories from newer firmware we don't know: skipped, not malformed.
    return std::optional<ErrorRecord>{};
  }
  LD_ASSIGN_OR_RETURN(const auto severity,
                      ParseSeverity(std::string(fields[3])));

  ErrorRecord rec;
  rec.time = TimePoint(epoch);
  rec.category = *category;
  rec.severity = severity;
  rec.source = LogSource::kHwerr;
  rec.scope = *category == ErrorCategory::kBladeFault ? LocScope::kBlade
                                                      : LocScope::kNode;
  // Blade faults are recorded against a node on the blade; normalize the
  // location to the blade prefix before interning.
  if (rec.scope == LocScope::kBlade) {
    if (auto cname = ParseCname(std::string(fields[2])); cname.ok()) {
      rec.location = Intern(cname->BladePrefix());
    } else {
      rec.location = Intern(fields[2]);
    }
  } else {
    rec.location = Intern(fields[2]);
  }
  return std::optional<ErrorRecord>{rec};
}

}  // namespace

Result<std::optional<ErrorRecord>> HwerrParser::ParseLine(
    std::string_view line) {
  ++stats_.lines;
  auto rec = ParseLineImpl(line);
  if (!rec.ok()) {
    ++stats_.malformed;
  } else if (rec->has_value()) {
    ++stats_.records;
  } else {
    ++stats_.skipped;
  }
  return rec;
}

HwerrParser::Chunk HwerrParser::ParseChunk(
    std::span<const std::string_view> lines, std::uint64_t first_line_no,
    const QuarantineConfig* capture) {
  return ParseChunkWith<ErrorRecord>(
      lines, first_line_no, capture, LogSource::kHwerr,
      [](std::string_view line) { return ParseLineImpl(line); });
}

std::vector<ErrorRecord> HwerrParser::ReduceChunks(std::vector<Chunk>&& chunks,
                                                   QuarantineSink* sink) {
  return ReduceParsedChunks(std::move(chunks), &stats_, sink);
}

std::vector<ErrorRecord> HwerrParser::ParseLines(
    std::span<const std::string_view> lines, QuarantineSink* sink,
    ThreadPool* pool, std::size_t chunk_lines) {
  auto chunks = MapLineChunks(
      lines, chunk_lines, pool,
      sink != nullptr ? &sink->config() : nullptr,
      [](std::span<const std::string_view> slice, std::uint64_t first,
         const QuarantineConfig* capture) {
        return ParseChunk(slice, first, capture);
      });
  return ReduceChunks(std::move(chunks), sink);
}

std::vector<ErrorRecord> HwerrParser::ParseLines(
    const std::vector<std::string>& lines, QuarantineSink* sink) {
  const std::vector<std::string_view> views = LineViews(lines);
  return ParseLines(std::span<const std::string_view>(views), sink);
}

}  // namespace ld
