#include "logdiver/hwerr_parser.hpp"

#include "common/strings.hpp"
#include "logdiver/quarantine.hpp"

namespace ld {
namespace {

Result<std::optional<ErrorRecord>> ParseLineImpl(std::string_view line) {
  const auto fields = Split(line, '|');
  if (fields.size() < 5) {
    return ParseError("hwerr: expected 5 '|' fields");
  }
  LD_ASSIGN_OR_RETURN(const auto epoch, ParseInt(fields[0]));
  auto category = ParseErrorCategory(std::string(fields[1]));
  if (!category.ok()) {
    // Categories from newer firmware we don't know: skipped, not malformed.
    return std::optional<ErrorRecord>{};
  }
  LD_ASSIGN_OR_RETURN(const auto severity,
                      ParseSeverity(std::string(fields[3])));

  ErrorRecord rec;
  rec.time = TimePoint(epoch);
  rec.category = *category;
  rec.severity = severity;
  rec.source = LogSource::kHwerr;
  rec.location = std::string(fields[2]);
  rec.scope = *category == ErrorCategory::kBladeFault ? LocScope::kBlade
                                                      : LocScope::kNode;
  // Blade faults are recorded against a node on the blade; normalize the
  // location to the blade prefix.
  if (rec.scope == LocScope::kBlade) {
    if (auto cname = ParseCname(rec.location); cname.ok()) {
      rec.location = cname->BladePrefix();
    }
  }
  return std::optional<ErrorRecord>{rec};
}

}  // namespace

Result<std::optional<ErrorRecord>> HwerrParser::ParseLine(
    std::string_view line) {
  ++stats_.lines;
  auto rec = ParseLineImpl(line);
  if (!rec.ok()) {
    ++stats_.malformed;
  } else if (rec->has_value()) {
    ++stats_.records;
  } else {
    ++stats_.skipped;
  }
  return rec;
}

std::vector<ErrorRecord> HwerrParser::ParseLines(
    const std::vector<std::string>& lines, QuarantineSink* sink) {
  std::vector<ErrorRecord> out;
  out.reserve(lines.size());
  std::uint64_t line_no = 0;
  for (const std::string& line : lines) {
    ++line_no;
    auto rec = ParseLine(line);
    if (!rec.ok()) {
      if (sink != nullptr) {
        sink->Add(LogSource::kHwerr, line_no, line, rec.status());
      }
      continue;
    }
    if (rec->has_value()) out.push_back(std::move(**rec));
  }
  return out;
}

}  // namespace ld
