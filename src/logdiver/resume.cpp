#include "logdiver/resume.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/crashpoint.hpp"
#include "common/obs/obs.hpp"
#include "logdiver/cache/bundle_cache.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/snapshot.hpp"

namespace ld {
namespace {

/// Resume payload layout: the per-source replay offsets wrap the
/// analyzer state (docs/FORMATS.md "snapshot — analyzer checkpoint
/// files").
constexpr std::uint32_t kResumeStateVersion = 1;

/// Per-line claimed times of one source, in file order.  Lines that do
/// not parse carry the last claimed time of their source — a real
/// shipper cannot drop what it cannot read.  Recomputed from line zero
/// on every (re)start with throwaway parsers, so the merge order never
/// depends on restored state.
std::vector<TimePoint> ClaimedTimes(const std::vector<std::string>& lines,
                                    LogSource source, int base_year) {
  std::vector<TimePoint> times;
  times.reserve(lines.size());
  TorqueParser torque;
  AlpsParser alps;
  HwerrParser hwerr;
  TimePoint last;
  for (const std::string& line : lines) {
    switch (source) {
      case LogSource::kTorque: {
        auto rec = torque.ParseLine(line);
        if (rec.ok() && rec->has_value()) last = (*rec)->time;
        break;
      }
      case LogSource::kAlps: {
        auto rec = alps.ParseLine(line);
        if (rec.ok() && rec->has_value()) last = (*rec)->time;
        break;
      }
      case LogSource::kSyslog: {
        if (line.size() >= 15) {
          auto t = SyslogParser::ParseSyslogTime(line.substr(0, 15),
                                                 base_year);
          if (t.ok()) last = *t;
        }
        break;
      }
      case LogSource::kHwerr: {
        auto rec = hwerr.ParseLine(line);
        if (rec.ok() && rec->has_value()) last = (*rec)->time;
        break;
      }
    }
    times.push_back(last);
  }
  return times;
}

/// The four sources of a bundle, loaded into memory with their per-line
/// claimed times — everything the deterministic merge loop needs.
struct LoadedBundle {
  std::vector<std::string> lines[kNumLogSources];
  std::vector<TimePoint> claimed[kNumLogSources];
};

Result<LoadedBundle> LoadBundle(const StreamInputs& inputs,
                                const LogDiverConfig& config,
                                BundleLoadStats* stats = nullptr) {
  BundleLoadStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  LoadedBundle bundle;
  const std::string* paths[kNumLogSources] = {
      &inputs.torque_path, &inputs.alps_path, &inputs.syslog_path,
      &inputs.hwerr_path};
  for (std::size_t s = 0; s < kNumLogSources; ++s) {
    LD_ASSIGN_OR_RETURN(bundle.lines[s], ReadLines(*paths[s]));
  }
  const int base_year = config.syslog_base_year;
  if (config.bundle_cache_dir.empty()) {
    for (std::size_t s = 0; s < kNumLogSources; ++s) {
      bundle.claimed[s] = ClaimedTimes(bundle.lines[s],
                                       static_cast<LogSource>(s), base_year);
    }
    return bundle;
  }

  // Claimed-time cache: the throwaway re-parse above is pure overhead on
  // a bundle this process family has already seen.  Keyed by the same
  // lines fingerprint as the snapshot headers (shard_count 0: claims are
  // partition-independent), so every fleet worker shares one entry.
  const cache::BundleCache bundle_cache(config.bundle_cache_dir,
                                        config.bundle_cache_max_bytes);
  LogSetView views;
  std::vector<std::string_view>* view_cols[kNumLogSources] = {
      &views.torque, &views.alps, &views.syslog, &views.hwerr};
  std::array<std::size_t, kNumLogSources> line_counts{};
  for (std::size_t s = 0; s < kNumLogSources; ++s) {
    view_cols[s]->assign(bundle.lines[s].begin(), bundle.lines[s].end());
    line_counts[s] = bundle.lines[s].size();
  }
  const std::uint64_t fingerprint = cache::LinesFingerprint(views, 0);
  auto claims = bundle_cache.LoadClaims(fingerprint, base_year, line_counts);
  if (claims.ok()) {
    ++stats->cache_hits;
    for (std::size_t s = 0; s < kNumLogSources; ++s) {
      bundle.claimed[s] = std::move((*claims)[s]);
    }
    return bundle;
  }
  if (claims.status().code() != StatusCode::kNotFound) {
    // Rejected entry (torn/stale/foreign): fall back loudly, never
    // silently — the reparse below restores correctness either way.
    ++stats->cache_rejected;
    std::fprintf(stderr, "logdiver: %s\n",
                 claims.status().message().c_str());
  } else {
    ++stats->cache_misses;
  }
  cache::ClaimedColumns fresh;
  for (std::size_t s = 0; s < kNumLogSources; ++s) {
    bundle.claimed[s] = ClaimedTimes(bundle.lines[s],
                                     static_cast<LogSource>(s), base_year);
    fresh[s] = bundle.claimed[s];
  }
  const Status stored =
      bundle_cache.StoreClaims(fingerprint, base_year, fresh);
  if (!stored.ok()) {
    std::fprintf(stderr, "logdiver: %s\n", stored.message().c_str());
  } else {
    ++stats->cache_stores;
  }
  return bundle;
}

/// The deterministic merge-replay loop shared by the resumable path and
/// fleet workers: the head with the earliest claimed time wins (strict
/// `<` ties toward the lowest source index), watermarks advance on the
/// total-line schedule.  `heads`/`total` carry restored offsets in and
/// final positions out; `on_line` (optional) runs after every consumed
/// line — the resumable path hangs its snapshot schedule there.
void ReplayLoop(const LoadedBundle& bundle, StreamingAnalyzer& analyzer,
                const ReplaySchedule& schedule,
                std::uint64_t heads[kNumLogSources], std::uint64_t& total,
                const std::function<Status(std::uint64_t total)>& on_line,
                Status& status) {
  for (;;) {
    int pick = -1;
    for (std::size_t s = 0; s < kNumLogSources; ++s) {
      if (heads[s] >= bundle.lines[s].size()) continue;
      if (pick < 0 ||
          bundle.claimed[s][heads[s]] < bundle.claimed[pick][heads[pick]]) {
        pick = static_cast<int>(s);
      }
    }
    if (pick < 0) break;
    const std::string& line = bundle.lines[pick][heads[pick]];
    const TimePoint time = bundle.claimed[pick][heads[pick]];
    ++heads[pick];
    ++total;
    switch (static_cast<LogSource>(pick)) {
      case LogSource::kTorque: analyzer.AddTorqueLine(line); break;
      case LogSource::kAlps: analyzer.AddAlpsLine(line); break;
      case LogSource::kSyslog: analyzer.AddSyslogLine(line); break;
      case LogSource::kHwerr: analyzer.AddHwerrLine(line); break;
    }
    CrashPoint("ingest");
    if (schedule.advance_every != 0 && total % schedule.advance_every == 0) {
      analyzer.Advance(time - schedule.reorder_slack);
    }
    if (on_line) {
      status = on_line(total);
      if (!status.ok()) return;
    }
  }
}

}  // namespace

Result<std::uint64_t> BundlePartitionFingerprint(const StreamInputs& inputs,
                                                 std::uint32_t shard_count) {
  // Delegates to the parsed-bundle cache's in-memory fingerprint so the
  // snapshot headers and the cache entries can never disagree about a
  // bundle's identity.
  const std::string* paths[kNumLogSources] = {
      &inputs.torque_path, &inputs.alps_path, &inputs.syslog_path,
      &inputs.hwerr_path};
  std::vector<std::string> lines[kNumLogSources];
  LogSetView views;
  std::vector<std::string_view>* view_cols[kNumLogSources] = {
      &views.torque, &views.alps, &views.syslog, &views.hwerr};
  for (std::size_t s = 0; s < kNumLogSources; ++s) {
    LD_ASSIGN_OR_RETURN(lines[s], ReadLines(*paths[s]));
    view_cols[s]->assign(lines[s].begin(), lines[s].end());
  }
  return cache::LinesFingerprint(views, shard_count);
}

Result<std::uint64_t> ReplayBundle(const LogDiverConfig& config,
                                   const StreamInputs& inputs,
                                   const ReplaySchedule& schedule,
                                   StreamingAnalyzer& analyzer,
                                   BundleLoadStats* load_stats) {
  LD_ASSIGN_OR_RETURN(const LoadedBundle bundle,
                      LoadBundle(inputs, config, load_stats));
  std::uint64_t heads[kNumLogSources] = {0, 0, 0, 0};
  std::uint64_t total = 0;
  Status status;
  ReplayLoop(bundle, analyzer, schedule, heads, total, nullptr, status);
  LD_TRY(status);
  return total;
}

Result<ResumableSummary> RunResumableAnalysis(const Machine& machine,
                                              const LogDiverConfig& config,
                                              const StreamInputs& inputs,
                                              const ResumeOptions& options) {
  LD_ASSIGN_OR_RETURN(const LoadedBundle bundle,
                      LoadBundle(inputs, config));
  const std::vector<std::string>* files[kNumLogSources] = {
      &bundle.lines[0], &bundle.lines[1], &bundle.lines[2], &bundle.lines[3]};
  LD_ASSIGN_OR_RETURN(const std::uint64_t fingerprint,
                      BundlePartitionFingerprint(inputs, 0));

  StreamingAnalyzer analyzer(machine, config);
  ResumableSummary out;
  std::uint64_t heads[kNumLogSources] = {0, 0, 0, 0};
  std::uint64_t total = 0;

  const bool snapshots_enabled =
      !options.snapshot_dir.empty() && options.snapshot_interval != 0;
  SnapshotStore store(options.snapshot_dir, options.keep_generations);

  if (!options.snapshot_dir.empty() && options.resume) {
    // Fingerprint-gated: a snapshot of a *different* bundle in this
    // directory is rejected and skipped like a torn one.
    auto loaded = store.LoadLatest(fingerprint);
    if (loaded.ok()) {
      out.snapshots_rejected = loaded->rejected;
      SnapshotReader r(loaded->payload);
      const std::uint32_t version = r.U32();
      if (!r.ok()) return r.status();
      if (version != kResumeStateVersion) {
        return FailedPreconditionError(
            "snapshot resume-state version " + std::to_string(version) +
            ", this build speaks " + std::to_string(kResumeStateVersion));
      }
      for (std::uint64_t& head : heads) head = r.U64();
      LD_TRY(analyzer.Restore(r));
      for (std::size_t s = 0; s < kNumLogSources; ++s) {
        if (heads[s] > files[s]->size()) {
          return FailedPreconditionError(
              "snapshot records an offset past the end of " +
              std::string(LogSourceName(static_cast<LogSource>(s))) +
              " — it belongs to a different bundle");
        }
        total += heads[s];
      }
      out.resumed_generation = loaded->generation;
      out.lines_skipped = total;
      LD_OBS_COUNTER_ADD(obs::names::kResumeLinesSkippedTotal, total);
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }

  LD_OBS_SPAN("resume/replay");
  // Both schedules key off the *total* line count, which the restored
  // offsets reproduce exactly — a resumed pass advances and snapshots
  // at the same lines an uninterrupted one would.
  const ReplaySchedule schedule{options.advance_every, options.reorder_slack};
  Status replay_status;
  ReplayLoop(
      bundle, analyzer, schedule, heads, total,
      [&](std::uint64_t total_now) -> Status {
        if (!snapshots_enabled || total_now % options.snapshot_interval != 0) {
          return Status::Ok();
        }
        SnapshotWriter w;
        w.U32(kResumeStateVersion);
        for (std::uint64_t head : heads) w.U64(head);
        analyzer.Snapshot(w);
        LD_TRY(store.Write(w.bytes(), fingerprint));
        ++out.snapshots_written;
        CrashPoint("snapshot");
        return Status::Ok();
      },
      replay_status);
  LD_TRY(replay_status);

  // Bulk counters once per pass, never per merged line (obs.hpp
  // granularity rule): streamed = lines actually replayed this attempt.
  LD_OBS_COUNTER_ADD(obs::names::kResumeLinesStreamedTotal,
                     total - out.lines_skipped);
  out.summary = analyzer.Finalize();
  out.total_lines = total;
  return out;
}

CrashSupervisor::Outcome CrashSupervisor::Run(
    const std::function<int(int attempt)>& child, const Options& options) {
  Outcome out;
  for (int attempt = 0;; ++attempt) {
    out.attempts = attempt + 1;
    // Flush so the child does not replay the parent's buffered output
    // when it exits.
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid < 0) {
      out.exit_code = -1;
      return out;
    }
    if (pid == 0) {
      const int rc = child(attempt);
      std::fflush(nullptr);
      std::_Exit(rc);
    }
    int status = 0;
    bool hung = false;
    if (options.timeout_ms == 0) {
      if (waitpid(pid, &status, 0) < 0) {
        out.exit_code = -1;
        return out;
      }
    } else {
      // Poll with a wall-clock deadline: a child that stops making
      // progress (deadlock, injected hang) is escalated to SIGKILL and
      // handled as a crash — it cannot hang the supervisor forever.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(options.timeout_ms);
      for (;;) {
        const pid_t r = waitpid(pid, &status, WNOHANG);
        if (r == pid) break;
        if (r < 0) {
          out.exit_code = -1;
          return out;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
          ::kill(pid, SIGKILL);
          if (waitpid(pid, &status, 0) < 0) {
            out.exit_code = -1;
            return out;
          }
          hung = true;
          break;
        }
        ::usleep(2000);
      }
    }
    if (hung) ++out.hangs_killed;
    bool crashed = false;
    int code = 0;
    if (WIFSIGNALED(status)) {
      crashed = true;
      code = 128 + WTERMSIG(status);
    } else {
      code = WEXITSTATUS(status);
      crashed = code >= 128;  // injected crashes exit with 128+signal
    }
    if (!crashed) {
      out.exit_code = code;
      return out;
    }
    ++out.crashes;
    if (out.crashes > options.max_restarts) {
      out.exhausted = true;
      out.exit_code = code;
      return out;
    }
  }
}

}  // namespace ld
