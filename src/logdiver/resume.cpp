#include "logdiver/resume.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/crashpoint.hpp"
#include "common/obs/obs.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/snapshot.hpp"

namespace ld {
namespace {

/// Resume payload layout: the per-source replay offsets wrap the
/// analyzer state (docs/FORMATS.md "snapshot — analyzer checkpoint
/// files").
constexpr std::uint32_t kResumeStateVersion = 1;

/// Per-line claimed times of one source, in file order.  Lines that do
/// not parse carry the last claimed time of their source — a real
/// shipper cannot drop what it cannot read.  Recomputed from line zero
/// on every (re)start with throwaway parsers, so the merge order never
/// depends on restored state.
std::vector<TimePoint> ClaimedTimes(const std::vector<std::string>& lines,
                                    LogSource source, int base_year) {
  std::vector<TimePoint> times;
  times.reserve(lines.size());
  TorqueParser torque;
  AlpsParser alps;
  HwerrParser hwerr;
  TimePoint last;
  for (const std::string& line : lines) {
    switch (source) {
      case LogSource::kTorque: {
        auto rec = torque.ParseLine(line);
        if (rec.ok() && rec->has_value()) last = (*rec)->time;
        break;
      }
      case LogSource::kAlps: {
        auto rec = alps.ParseLine(line);
        if (rec.ok() && rec->has_value()) last = (*rec)->time;
        break;
      }
      case LogSource::kSyslog: {
        if (line.size() >= 15) {
          auto t = SyslogParser::ParseSyslogTime(line.substr(0, 15),
                                                 base_year);
          if (t.ok()) last = *t;
        }
        break;
      }
      case LogSource::kHwerr: {
        auto rec = hwerr.ParseLine(line);
        if (rec.ok() && rec->has_value()) last = (*rec)->time;
        break;
      }
    }
    times.push_back(last);
  }
  return times;
}

}  // namespace

Result<ResumableSummary> RunResumableAnalysis(const Machine& machine,
                                              const LogDiverConfig& config,
                                              const StreamInputs& inputs,
                                              const ResumeOptions& options) {
  LD_ASSIGN_OR_RETURN(const std::vector<std::string> torque,
                      ReadLines(inputs.torque_path));
  LD_ASSIGN_OR_RETURN(const std::vector<std::string> alps,
                      ReadLines(inputs.alps_path));
  LD_ASSIGN_OR_RETURN(const std::vector<std::string> syslog,
                      ReadLines(inputs.syslog_path));
  LD_ASSIGN_OR_RETURN(const std::vector<std::string> hwerr,
                      ReadLines(inputs.hwerr_path));
  const std::vector<std::string>* files[kNumLogSources] = {&torque, &alps,
                                                           &syslog, &hwerr};

  std::vector<TimePoint> claimed[kNumLogSources];
  for (std::size_t s = 0; s < kNumLogSources; ++s) {
    claimed[s] = ClaimedTimes(*files[s], static_cast<LogSource>(s),
                              config.syslog_base_year);
  }

  StreamingAnalyzer analyzer(machine, config);
  ResumableSummary out;
  std::uint64_t heads[kNumLogSources] = {0, 0, 0, 0};
  std::uint64_t total = 0;

  const bool snapshots_enabled =
      !options.snapshot_dir.empty() && options.snapshot_interval != 0;
  SnapshotStore store(options.snapshot_dir, options.keep_generations);

  if (!options.snapshot_dir.empty() && options.resume) {
    auto loaded = store.LoadLatest();
    if (loaded.ok()) {
      out.snapshots_rejected = loaded->rejected;
      SnapshotReader r(loaded->payload);
      const std::uint32_t version = r.U32();
      if (!r.ok()) return r.status();
      if (version != kResumeStateVersion) {
        return FailedPreconditionError(
            "snapshot resume-state version " + std::to_string(version) +
            ", this build speaks " + std::to_string(kResumeStateVersion));
      }
      for (std::uint64_t& head : heads) head = r.U64();
      LD_TRY(analyzer.Restore(r));
      for (std::size_t s = 0; s < kNumLogSources; ++s) {
        if (heads[s] > files[s]->size()) {
          return FailedPreconditionError(
              "snapshot records an offset past the end of " +
              std::string(LogSourceName(static_cast<LogSource>(s))) +
              " — it belongs to a different bundle");
        }
        total += heads[s];
      }
      out.resumed_generation = loaded->generation;
      out.lines_skipped = total;
      LD_OBS_COUNTER_ADD(obs::names::kResumeLinesSkippedTotal, total);
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }

  LD_OBS_SPAN("resume/replay");
  for (;;) {
    // Deterministic merge: the head with the earliest claimed time
    // wins; strict `<` breaks ties toward the lowest source index.
    int pick = -1;
    for (std::size_t s = 0; s < kNumLogSources; ++s) {
      if (heads[s] >= files[s]->size()) continue;
      if (pick < 0 ||
          claimed[s][heads[s]] < claimed[pick][heads[pick]]) {
        pick = static_cast<int>(s);
      }
    }
    if (pick < 0) break;
    const std::string& line = (*files[pick])[heads[pick]];
    const TimePoint time = claimed[pick][heads[pick]];
    ++heads[pick];
    ++total;
    switch (static_cast<LogSource>(pick)) {
      case LogSource::kTorque: analyzer.AddTorqueLine(line); break;
      case LogSource::kAlps: analyzer.AddAlpsLine(line); break;
      case LogSource::kSyslog: analyzer.AddSyslogLine(line); break;
      case LogSource::kHwerr: analyzer.AddHwerrLine(line); break;
    }
    CrashPoint("ingest");
    // Both schedules key off the *total* line count, which the restored
    // offsets reproduce exactly — a resumed pass advances and snapshots
    // at the same lines an uninterrupted one would.
    if (options.advance_every != 0 && total % options.advance_every == 0) {
      analyzer.Advance(time - options.reorder_slack);
    }
    if (snapshots_enabled && total % options.snapshot_interval == 0) {
      SnapshotWriter w;
      w.U32(kResumeStateVersion);
      for (std::uint64_t head : heads) w.U64(head);
      analyzer.Snapshot(w);
      LD_TRY(store.Write(w.bytes()));
      ++out.snapshots_written;
      CrashPoint("snapshot");
    }
  }

  // Bulk counters once per pass, never per merged line (obs.hpp
  // granularity rule): streamed = lines actually replayed this attempt.
  LD_OBS_COUNTER_ADD(obs::names::kResumeLinesStreamedTotal,
                     total - out.lines_skipped);
  out.summary = analyzer.Finalize();
  out.total_lines = total;
  return out;
}

CrashSupervisor::Outcome CrashSupervisor::Run(
    const std::function<int(int attempt)>& child, const Options& options) {
  Outcome out;
  for (int attempt = 0;; ++attempt) {
    out.attempts = attempt + 1;
    // Flush so the child does not replay the parent's buffered output
    // when it exits.
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid < 0) {
      out.exit_code = -1;
      return out;
    }
    if (pid == 0) {
      const int rc = child(attempt);
      std::fflush(nullptr);
      std::_Exit(rc);
    }
    int status = 0;
    if (waitpid(pid, &status, 0) < 0) {
      out.exit_code = -1;
      return out;
    }
    bool crashed = false;
    int code = 0;
    if (WIFSIGNALED(status)) {
      crashed = true;
      code = 128 + WTERMSIG(status);
    } else {
      code = WEXITSTATUS(status);
      crashed = code >= 128;  // injected crashes exit with 128+signal
    }
    if (!crashed) {
      out.exit_code = code;
      return out;
    }
    ++out.crashes;
    if (out.crashes > options.max_restarts) {
      out.exhausted = true;
      out.exit_code = code;
      return out;
    }
  }
}

}  // namespace ld
