// The parsed-bundle cache: a versioned, CRC-checksummed binary columnar
// intermediate format keyed by the FNV-1a-64 bundle fingerprint, so
// re-analysis of an already-seen bundle skips text parsing entirely.
//
// Two entry kinds live in one cache directory (conventionally next to
// the snapshot store):
//
//   bundle-<fp>.ldpbc   ParsedLogs as raw little-endian column arrays
//                       (keyed additionally by a parse-config hash),
//                       plus an optional memoized AnalysisResult
//                       section (keyed additionally by an
//                       analysis-config + machine-geometry hash).
//   claims-<fp>.ldpbc   Per-line claimed-time columns for the
//                       streaming/fleet bundle loader (keyed by the
//                       syslog base year), replacing the throwaway
//                       re-parse in resume.cpp's ClaimedTimes.
//
// Safety model (docs/FORMATS.md "Parsed-bundle cache"): every load
// validates magic, format version, payload size, payload CRC-32, the
// input fingerprint and the relevant config keys.  Any mismatch — a
// torn write, a foreign bundle's entry copied in, a stale entry from an
// older build or different config — rejects the entry
// (ld.cache.rejected_total) and the caller falls back to the text
// parse.  A cache hit can only ever make a run faster, never change a
// byte of its report; the equivalence tests in
// tests/logdiver/bundle_cache_test.cpp hold the two paths to
// FingerprintReport identity.
//
// Writes reuse the snapshot store's atomicity discipline: pid-qualified
// tmp file, fsync, rename.  Concurrent writers of the same entry are
// safe (last rename wins, both files valid); readers memory-map and
// validate before decoding a single field.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "logdiver/logdiver.hpp"

namespace ld::cache {

/// On-disk format version; bump on any layout change (old entries are
/// then rejected as stale and rewritten).  Version 2 compacted the
/// memoized-result section: the AppRun/ErrorTuple columns that dominate
/// entry size (ids, epochs, node lists) are stored as zigzag-varint
/// deltas instead of fixed-width words (docs/FORMATS.md "Parsed-bundle
/// cache v2").  v1 entries are rejected as stale — loudly, with the
/// text-parse fallback — and rewritten in v2 on the next store.
inline constexpr std::uint32_t kBundleCacheVersion = 2;

/// FNV-1a-64 (word-folded over line content for speed; bytewise
/// framing) over the four line streams, with the framing
/// resume.cpp's BundlePartitionFingerprint delegates to (per-source
/// tag byte, line bytes + '\n', trailing shard-count mix, 0 remapped
/// to 1) — computed from lines already in memory instead of
/// re-reading the files, so the batch, streaming and fleet paths
/// agree on a bundle's identity.
std::uint64_t LinesFingerprint(const LogSetView& lines,
                               std::uint32_t shard_count);

/// The three keys a bundle entry is validated against.
struct CacheKeys {
  std::uint64_t input_fingerprint = 0;  // LinesFingerprint(lines, 0)
  std::uint64_t parse_key = 0;          // parse-affecting config
  std::uint64_t analysis_key = 0;       // tail-affecting config + machine
};

/// Derives all three keys for this bundle + configuration.
CacheKeys MakeKeys(const LogSetView& lines, const Machine& machine,
                   const LogDiverConfig& config);

/// Hash of the parse-affecting configuration alone (base year,
/// quarantine caps).
std::uint64_t ParseKey(const LogDiverConfig& config);

/// Hash of everything after parsing that shapes the report: machine
/// geometry, coalesce/correlator/metrics configs, shard spec,
/// degradation policy and error budget.
std::uint64_t AnalysisKey(const Machine& machine,
                          const LogDiverConfig& config);

/// A successfully validated bundle entry.
struct LoadedEntry {
  ParsedLogs parsed;
  /// Present iff the entry's memoized result matched `analysis_key`.
  std::optional<AnalysisResult> result;
};

/// Claimed-time columns for the streaming loader, one per source, each
/// the length of that source's line stream.
using ClaimedColumns = std::array<std::vector<TimePoint>, kNumLogSources>;

class BundleCache {
 public:
  /// `max_bytes` caps the total size of *.ldpbc entries in `dir`
  /// (0 = unbounded).  The cap is enforced LRU-first — least recently
  /// *used*, not written: every successful Load/LoadClaims touches the
  /// entry's mtime — at construction (startup trim of an over-cap
  /// directory) and after every store.  Eviction is a plain unlink of a
  /// complete, valid file: a reader that already mapped the entry keeps
  /// its mapping, a later reader sees a clean miss — never a torn or
  /// stale entry.  Evictions bump ld.cache.evicted_total.
  explicit BundleCache(std::string dir, std::uint64_t max_bytes = 0);

  const std::string& dir() const { return dir_; }
  std::uint64_t max_bytes() const { return max_bytes_; }
  std::string BundlePath(std::uint64_t input_fingerprint) const;
  std::string ClaimsPath(std::uint64_t input_fingerprint) const;

  /// Loads and validates the bundle entry.  NotFound when absent;
  /// ParseError (counted in ld.cache.rejected_total) when torn, foreign,
  /// or written under a different parse config / format version.  A
  /// parse-key match with an analysis-key mismatch is still a records
  /// hit: `result` is simply absent.
  Result<LoadedEntry> Load(const CacheKeys& keys) const;

  /// Serializes the records section.  Callers encode before the
  /// analysis tail consumes `parsed`, then pass the bytes to Store —
  /// no record copies, no second parse.
  static std::vector<std::uint8_t> EncodeParsed(const ParsedLogs& parsed);

  /// Writes the bundle entry (records section + memoized result)
  /// atomically.  Failure is reported but non-fatal to the analysis.
  Status Store(const CacheKeys& keys,
               const std::vector<std::uint8_t>& parsed_bytes,
               const AnalysisResult& result) const;

  /// Loads claimed-time columns; `line_counts` are the per-source line
  /// counts of the live bundle (a mismatch rejects the entry).
  Result<ClaimedColumns> LoadClaims(
      std::uint64_t input_fingerprint, int base_year,
      const std::array<std::size_t, kNumLogSources>& line_counts) const;

  Status StoreClaims(std::uint64_t input_fingerprint, int base_year,
                     const ClaimedColumns& claimed) const;

 private:
  /// Deletes least-recently-used entries until the directory is back
  /// under max_bytes_; no-op when unbounded.
  void EnforceCap() const;

  std::string dir_;
  std::uint64_t max_bytes_ = 0;
};

}  // namespace ld::cache
