#include "logdiver/cache/bundle_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <unordered_map>
#include <utility>

#include "common/obs/names.hpp"
#include "common/obs/obs.hpp"
#include "logdiver/block_reader.hpp"
#include "logdiver/snapshot.hpp"

namespace ld::cache {
namespace {

// --- keys ------------------------------------------------------------

// Same FNV-1a-64 as resume.cpp's BundlePartitionFingerprint; the two
// must stay value-identical (bundle_cache_test pins this) so a fleet
// worker's snapshot fingerprint and its claims-cache entry agree.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void FnvMix(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

// Word-folded FNV variant for bulk line content: folds eight input
// bytes per multiply instead of one.  Not bit-compatible with the
// byte-at-a-time mix above, which is fine — fingerprints are always
// recomputed at runtime on both the store and the load side, never
// compared against an externally pinned value, so changing the mix
// only ever turns old entries into safe rejections.  The bulk path is
// little-endian only; big-endian hosts take the bytewise loop (and a
// cache entry shared across endiannesses rejects, which is correct).
void FnvMixBulk(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
    for (; i + 8 <= size; i += 8) {
      std::uint64_t w;
      std::memcpy(&w, bytes + i, 8);
      h ^= w;
      h *= kFnvPrime;
    }
  }
  for (; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void MixU64(std::uint64_t& h, std::uint64_t v) { FnvMix(h, &v, sizeof(v)); }
void MixI64(std::uint64_t& h, std::int64_t v) {
  MixU64(h, static_cast<std::uint64_t>(v));
}

// --- file framing ----------------------------------------------------

// Deliberately distinct from the snapshot magic: a checkpoint copied
// into a cache directory (or vice versa) must fail the very first
// header check, not limp into payload decoding.
constexpr std::array<std::uint8_t, 8> kMagic = {'L', 'D', 'P', 'B',
                                                'C', 'H', 'E', '1'};
// magic | version u32 | crc u32 | payload size u64 | fingerprint u64
constexpr std::size_t kHeaderSize = kMagic.size() + 4 + 4 + 8 + 8;

constexpr std::uint8_t kKindBundle = 1;
constexpr std::uint8_t kKindClaims = 2;

void PutU32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t GetU64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         static_cast<std::uint64_t>(GetU32(p + 4)) << 32;
}

/// Atomic publish with the snapshot store's discipline: pid-qualified
/// tmp, full write, fsync, rename.  Concurrent writers of the same
/// entry race benignly — last rename wins and both candidates are
/// complete, valid files.
Status AtomicWrite(const std::string& path,
                   const std::vector<std::uint8_t>& bytes) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return InternalError("bundle cache: cannot create " + tmp + ": " +
                         std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return InternalError("bundle cache: short write to " + tmp + ": " + why);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return InternalError("bundle cache: fsync " + tmp + " failed: " + why);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return InternalError("bundle cache: close " + tmp + " failed");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = std::strerror(errno);
    ::unlink(tmp.c_str());
    return InternalError("bundle cache: rename to " + path + " failed: " +
                         why);
  }
  return Status::Ok();
}

Status WriteEntry(const std::string& dir, const std::string& path,
                  std::uint64_t fingerprint, SnapshotWriter&& payload_writer) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return InternalError("bundle cache: cannot create " + dir + ": " +
                         ec.message());
  }
  const std::vector<std::uint8_t> payload = payload_writer.TakeBytes();
  std::vector<std::uint8_t> framed;
  framed.reserve(kHeaderSize + payload.size());
  framed.insert(framed.end(), kMagic.begin(), kMagic.end());
  std::uint8_t scratch[8];
  PutU32(scratch, kBundleCacheVersion);
  framed.insert(framed.end(), scratch, scratch + 4);
  PutU32(scratch, Crc32(payload));
  framed.insert(framed.end(), scratch, scratch + 4);
  const std::uint64_t size = payload.size();
  PutU32(scratch, static_cast<std::uint32_t>(size));
  PutU32(scratch + 4, static_cast<std::uint32_t>(size >> 32));
  framed.insert(framed.end(), scratch, scratch + 8);
  PutU32(scratch, static_cast<std::uint32_t>(fingerprint));
  PutU32(scratch + 4, static_cast<std::uint32_t>(fingerprint >> 32));
  framed.insert(framed.end(), scratch, scratch + 8);
  framed.insert(framed.end(), payload.begin(), payload.end());
  LD_TRY(AtomicWrite(path, framed));
  LD_OBS_COUNTER_ADD(obs::names::kCacheWritesTotal, 1);
  LD_OBS_COUNTER_ADD(obs::names::kCacheWriteBytesTotal, framed.size());
  return Status::Ok();
}

/// A mapped entry whose header has passed every structural check; the
/// payload span aliases the mapping, which must stay alive through
/// decoding.
struct MappedEntry {
  MappedFile file;
  const std::uint8_t* payload = nullptr;
  std::size_t size = 0;
};

/// Every failure path here is a *rejection*: the file exists but cannot
/// be trusted.  The caller converts to a loud fallback.
Result<MappedEntry> OpenEntry(const std::string& path,
                              std::uint64_t expected_fingerprint) {
  auto mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  MappedEntry entry;
  entry.file = std::move(*mapped);
  const std::string_view data = entry.file.data();
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(data.data());
  if (data.size() < kHeaderSize) {
    return ParseError(path + " shorter than the header");
  }
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes)) {
    return ParseError(path + " has a bad magic number");
  }
  const std::uint32_t version = GetU32(bytes + kMagic.size());
  if (version != kBundleCacheVersion) {
    return ParseError(path + " has format version " + std::to_string(version) +
                      ", this build speaks " +
                      std::to_string(kBundleCacheVersion));
  }
  const std::uint32_t crc = GetU32(bytes + kMagic.size() + 4);
  const std::uint64_t declared = GetU64(bytes + kMagic.size() + 8);
  if (declared != data.size() - kHeaderSize) {
    return ParseError(path + " is torn (declares " + std::to_string(declared) +
                      " payload bytes, has " +
                      std::to_string(data.size() - kHeaderSize) + ")");
  }
  entry.payload = bytes + kHeaderSize;
  entry.size = data.size() - kHeaderSize;
  if (Crc32(entry.payload, entry.size) != crc) {
    return ParseError(path + " fails its CRC check");
  }
  const std::uint64_t fingerprint = GetU64(bytes + kMagic.size() + 16);
  if (fingerprint != expected_fingerprint) {
    return ParseError(path + " belongs to a different bundle (fingerprint " +
                      std::to_string(fingerprint) + ", expected " +
                      std::to_string(expected_fingerprint) + ")");
  }
  return entry;
}

// --- column primitives -----------------------------------------------

template <typename T>
void PutElement(SnapshotWriter& w, T v) {
  static_assert(sizeof(T) == 1 || sizeof(T) == 4 || sizeof(T) == 8);
  if constexpr (sizeof(T) == 1) {
    std::uint8_t b;
    std::memcpy(&b, &v, 1);
    w.U8(b);
  } else if constexpr (sizeof(T) == 4) {
    std::uint32_t b;
    std::memcpy(&b, &v, 4);
    w.U32(b);
  } else {
    std::uint64_t b;
    std::memcpy(&b, &v, 8);
    w.U64(b);
  }
}

template <typename T>
T GetElement(SnapshotReader& r) {
  static_assert(sizeof(T) == 1 || sizeof(T) == 4 || sizeof(T) == 8);
  T v{};
  if constexpr (sizeof(T) == 1) {
    const std::uint8_t b = r.U8();
    std::memcpy(&v, &b, 1);
  } else if constexpr (sizeof(T) == 4) {
    const std::uint32_t b = r.U32();
    std::memcpy(&v, &b, 4);
  } else {
    const std::uint64_t b = r.U64();
    std::memcpy(&v, &b, 8);
  }
  return v;
}

/// u64 count + the raw little-endian array.  On LE hosts (every target
/// this repo builds for) the dump and the load are single memcpys —
/// this is what makes a records hit decode at memory bandwidth.
template <typename T>
void PutPodColumn(SnapshotWriter& w, const std::vector<T>& col) {
  static_assert(std::is_trivially_copyable_v<T>);
  w.U64(col.size());
  if constexpr (std::endian::native == std::endian::little) {
    w.Raw(col.data(), col.size() * sizeof(T));
  } else {
    for (const T& v : col) PutElement(w, v);
  }
}

template <typename T>
void GetPodColumn(SnapshotReader& r, std::vector<T>& col) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::uint64_t n = r.U64();
  if (!r.ok()) return;
  if (n > r.remaining() / sizeof(T)) {
    r.Fail("column longer than the payload");
    return;
  }
  col.resize(n);
  if constexpr (std::endian::native == std::endian::little) {
    r.Raw(col.data(), col.size() * sizeof(T));
  } else {
    for (T& v : col) v = GetElement<T>(r);
  }
}

/// Interned-symbol column: a first-seen string table (u32 count +
/// length-prefixed strings) followed by a u32 index column.  Symbol ids
/// are process-local (intern.hpp), so the *strings* are the on-disk
/// identity and the loader re-interns them.
template <typename GetFn>
void PutSymbolColumn(SnapshotWriter& w, std::size_t n, GetFn get) {
  std::unordered_map<std::uint32_t, std::uint32_t> seen;
  std::vector<Symbol> table;
  std::vector<std::uint32_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Symbol s = get(i);
    const auto [it, inserted] =
        seen.emplace(s.id(), static_cast<std::uint32_t>(table.size()));
    if (inserted) table.push_back(s);
    idx[i] = it->second;
  }
  w.U32(static_cast<std::uint32_t>(table.size()));
  for (const Symbol s : table) w.Str(s.view());
  PutPodColumn(w, idx);
}

template <typename SetFn>
void GetSymbolColumn(SnapshotReader& r, std::size_t n, SetFn set) {
  const std::uint32_t table_size = r.U32();
  if (!r.ok()) return;
  if (table_size > r.remaining() / 4) {
    r.Fail("symbol table longer than the payload");
    return;
  }
  std::vector<Symbol> table;
  table.reserve(table_size);
  for (std::uint32_t i = 0; i < table_size && r.ok(); ++i) {
    table.push_back(Intern(r.Str()));
  }
  std::vector<std::uint32_t> idx;
  GetPodColumn(r, idx);
  if (!r.ok()) return;
  if (idx.size() != n) {
    r.Fail("symbol column length mismatch");
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (idx[i] >= table.size()) {
      r.Fail("symbol index out of range");
      return;
    }
    set(i, table[idx[i]]);
  }
}

// --- v2 compacted columns --------------------------------------------
//
// The memoized-result section stores its dominant columns (ids, epochs,
// node lists) as zigzag-varint deltas: consecutive apids ascend, times
// cluster within a run population, so most deltas fit in 1–2 bytes
// instead of 8.  Arithmetic is done in uint64 (wraparound
// well-defined), with C++20 two's-complement casts at the boundaries,
// so the round trip is exact for every 64-bit value.

class DeltaWriter {
 public:
  explicit DeltaWriter(SnapshotWriter& w) : w_(w) {}
  void Add(std::uint64_t v) {
    w_.VarintSigned(static_cast<std::int64_t>(v - prev_));
    prev_ = v;
  }
  void AddSigned(std::int64_t v) { Add(static_cast<std::uint64_t>(v)); }

 private:
  SnapshotWriter& w_;
  std::uint64_t prev_ = 0;
};

class DeltaReader {
 public:
  explicit DeltaReader(SnapshotReader& r) : r_(r) {}
  std::uint64_t Next() {
    prev_ += static_cast<std::uint64_t>(r_.VarintSigned());
    return prev_;
  }
  std::int64_t NextSigned() { return static_cast<std::int64_t>(Next()); }

 private:
  SnapshotReader& r_;
  std::uint64_t prev_ = 0;
};

/// Node-list CSR in v2: per-row varint length (the offset delta) + one
/// varint entry stream.  Returns false (after r.Fail) on inconsistency.
template <typename Row>
void PutNodeCsr(SnapshotWriter& w, const std::vector<Row>& rows) {
  for (const auto& row : rows) w.Varint(row.nodes.size());
  for (const auto& row : rows) {
    for (const NodeIndex nid : row.nodes) w.Varint(nid);
  }
}

template <typename Row>
bool GetNodeCsr(SnapshotReader& r, std::vector<Row>& rows, const char* what) {
  std::vector<std::uint64_t> lengths(rows.size());
  std::uint64_t total = 0;
  for (auto& len : lengths) {
    len = r.Varint();
    total += len;
  }
  if (!r.ok()) return false;
  // Each entry costs at least one payload byte: a total past the
  // remaining payload means a malformed length column.
  if (total > r.remaining()) {
    r.Fail(std::string(what) + " node CSR is inconsistent");
    return false;
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].nodes.resize(lengths[i]);
    for (auto& nid : rows[i].nodes) {
      nid = static_cast<NodeIndex>(r.Varint());
    }
  }
  return r.ok();
}

// --- parsed-records section ------------------------------------------

void PutTorque(SnapshotWriter& w, const std::vector<TorqueRecord>& recs) {
  const std::size_t n = recs.size();
  w.U64(n);
  for (const auto& rec : recs) w.U8(static_cast<std::uint8_t>(rec.kind));
  for (const auto& rec : recs) w.I64(rec.time.unix_seconds());
  for (const auto& rec : recs) w.U64(rec.jobid);
  PutSymbolColumn(w, n, [&](std::size_t i) { return recs[i].user; });
  PutSymbolColumn(w, n, [&](std::size_t i) { return recs[i].queue; });
  PutSymbolColumn(w, n, [&](std::size_t i) { return recs[i].job_name; });
  for (const auto& rec : recs) w.I64(rec.submit.unix_seconds());
  for (const auto& rec : recs) w.I64(rec.start.unix_seconds());
  for (const auto& rec : recs) w.I64(rec.end.unix_seconds());
  for (const auto& rec : recs) w.I32(rec.exit_status);
  for (const auto& rec : recs) w.U32(rec.nodect);
  for (const auto& rec : recs) w.I64(rec.walltime_limit.seconds());
  for (const auto& rec : recs) w.I64(rec.walltime_used.seconds());
}

void GetTorque(SnapshotReader& r, std::vector<TorqueRecord>& recs) {
  const std::uint64_t n = r.U64();
  if (!r.ok()) return;
  if (n > r.remaining()) {  // every record spends well over 1 byte
    r.Fail("torque column longer than the payload");
    return;
  }
  recs.resize(n);
  for (auto& rec : recs) rec.kind = static_cast<TorqueRecord::Kind>(r.U8());
  for (auto& rec : recs) rec.time = TimePoint(r.I64());
  for (auto& rec : recs) rec.jobid = r.U64();
  GetSymbolColumn(r, n, [&](std::size_t i, Symbol s) { recs[i].user = s; });
  GetSymbolColumn(r, n, [&](std::size_t i, Symbol s) { recs[i].queue = s; });
  GetSymbolColumn(r, n, [&](std::size_t i, Symbol s) { recs[i].job_name = s; });
  for (auto& rec : recs) rec.submit = TimePoint(r.I64());
  for (auto& rec : recs) rec.start = TimePoint(r.I64());
  for (auto& rec : recs) rec.end = TimePoint(r.I64());
  for (auto& rec : recs) rec.exit_status = r.I32();
  for (auto& rec : recs) rec.nodect = r.U32();
  for (auto& rec : recs) rec.walltime_limit = Duration(r.I64());
  for (auto& rec : recs) rec.walltime_used = Duration(r.I64());
}

void PutAlps(SnapshotWriter& w, const std::vector<AlpsRecord>& recs) {
  const std::size_t n = recs.size();
  w.U64(n);
  for (const auto& rec : recs) w.U8(static_cast<std::uint8_t>(rec.kind));
  for (const auto& rec : recs) w.I64(rec.time.unix_seconds());
  for (const auto& rec : recs) w.U64(rec.apid);
  for (const auto& rec : recs) w.U64(rec.jobid);
  PutSymbolColumn(w, n, [&](std::size_t i) { return recs[i].user; });
  PutSymbolColumn(w, n, [&](std::size_t i) { return recs[i].command; });
  for (const auto& rec : recs) w.U32(rec.nodect);
  // Node placements as CSR: offsets + one packed entry array.
  std::vector<std::uint64_t> offsets;
  offsets.reserve(n + 1);
  offsets.push_back(0);
  std::vector<NodeIndex> entries;
  for (const auto& rec : recs) {
    entries.insert(entries.end(), rec.nids.begin(), rec.nids.end());
    offsets.push_back(entries.size());
  }
  PutPodColumn(w, offsets);
  PutPodColumn(w, entries);
  for (const auto& rec : recs) w.I32(rec.exit_code);
  for (const auto& rec : recs) w.I32(rec.exit_signal);
  for (const auto& rec : recs) w.Str(rec.kill_reason);
  for (const auto& rec : recs) w.U32(rec.failed_nid);
}

void GetAlps(SnapshotReader& r, std::vector<AlpsRecord>& recs) {
  const std::uint64_t n = r.U64();
  if (!r.ok()) return;
  if (n > r.remaining()) {
    r.Fail("alps column longer than the payload");
    return;
  }
  recs.resize(n);
  for (auto& rec : recs) rec.kind = static_cast<AlpsRecord::Kind>(r.U8());
  for (auto& rec : recs) rec.time = TimePoint(r.I64());
  for (auto& rec : recs) rec.apid = r.U64();
  for (auto& rec : recs) rec.jobid = r.U64();
  GetSymbolColumn(r, n, [&](std::size_t i, Symbol s) { recs[i].user = s; });
  GetSymbolColumn(r, n, [&](std::size_t i, Symbol s) { recs[i].command = s; });
  for (auto& rec : recs) rec.nodect = r.U32();
  std::vector<std::uint64_t> offsets;
  std::vector<NodeIndex> entries;
  GetPodColumn(r, offsets);
  GetPodColumn(r, entries);
  if (!r.ok()) return;
  if (offsets.size() != n + 1 || offsets[0] != 0 ||
      offsets.back() != entries.size()) {
    r.Fail("alps nid CSR is inconsistent");
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (offsets[i] > offsets[i + 1]) {
      r.Fail("alps nid CSR is inconsistent");
      return;
    }
    recs[i].nids.assign(entries.begin() + offsets[i],
                        entries.begin() + offsets[i + 1]);
  }
  for (auto& rec : recs) rec.exit_code = r.I32();
  for (auto& rec : recs) rec.exit_signal = r.I32();
  for (auto& rec : recs) rec.kill_reason = r.Str();
  for (auto& rec : recs) rec.failed_nid = r.U32();
}

void PutErrorColumns(SnapshotWriter& w, const ErrorColumns& cols) {
  w.U64(cols.size());
  PutPodColumn(w, cols.time);
  PutPodColumn(w, cols.category);
  PutPodColumn(w, cols.severity);
  PutPodColumn(w, cols.scope);
  PutPodColumn(w, cols.source);
  PutSymbolColumn(w, cols.size(),
                  [&](std::size_t i) { return cols.location[i]; });
  PutPodColumn(w, cols.recovered_set);
  PutPodColumn(w, cols.recovered);
}

void GetErrorColumns(SnapshotReader& r, ErrorColumns& cols) {
  const std::uint64_t n = r.U64();
  if (!r.ok()) return;
  GetPodColumn(r, cols.time);
  GetPodColumn(r, cols.category);
  GetPodColumn(r, cols.severity);
  GetPodColumn(r, cols.scope);
  GetPodColumn(r, cols.source);
  if (!r.ok()) return;
  cols.location.resize(cols.time.size());
  GetSymbolColumn(r, cols.time.size(),
                  [&](std::size_t i, Symbol s) { cols.location[i] = s; });
  GetPodColumn(r, cols.recovered_set);
  GetPodColumn(r, cols.recovered);
  if (!r.ok()) return;
  if (cols.time.size() != n || cols.category.size() != n ||
      cols.severity.size() != n || cols.scope.size() != n ||
      cols.source.size() != n || cols.recovered_set.size() != n ||
      cols.recovered.size() != n) {
    r.Fail("error columns have mismatched lengths");
  }
}

void DecodeParsed(SnapshotReader& r, ParsedLogs& parsed) {
  GetTorque(r, parsed.torque);
  GetAlps(r, parsed.alps);
  GetErrorColumns(r, parsed.errors);
  LoadParseStats(r, parsed.torque_stats);
  LoadParseStats(r, parsed.alps_stats);
  LoadParseStats(r, parsed.syslog_stats);
  LoadParseStats(r, parsed.hwerr_stats);
  parsed.sink.LoadState(r);
}

// --- memoized-result section -----------------------------------------

// v2 layout: every id/epoch column is a per-column delta stream, node
// lists are varint CSR, small integers are plain (zigzag) varints.
// Column order is unchanged from v1 — only the element encoding
// shrank.
void PutRuns(SnapshotWriter& w, const std::vector<AppRun>& runs) {
  const std::size_t n = runs.size();
  w.Varint(n);
  {
    DeltaWriter apid(w);
    for (const auto& run : runs) apid.Add(run.apid);
  }
  {
    DeltaWriter jobid(w);
    for (const auto& run : runs) jobid.Add(run.jobid);
  }
  PutSymbolColumn(w, n, [&](std::size_t i) { return runs[i].user; });
  PutSymbolColumn(w, n, [&](std::size_t i) { return runs[i].queue; });
  for (const auto& run : runs) w.U8(static_cast<std::uint8_t>(run.node_type));
  PutNodeCsr(w, runs);
  for (const auto& run : runs) w.Varint(run.nodect);
  {
    DeltaWriter start(w);
    for (const auto& run : runs) start.AddSigned(run.start.unix_seconds());
  }
  {
    DeltaWriter end(w);
    for (const auto& run : runs) end.AddSigned(run.end.unix_seconds());
  }
  for (const auto& run : runs) {
    std::uint8_t flags = 0;
    if (run.has_termination) flags |= 1;
    if (run.killed_node_failure) flags |= 2;
    w.U8(flags);
  }
  for (const auto& run : runs) w.VarintSigned(run.exit_code);
  for (const auto& run : runs) w.VarintSigned(run.exit_signal);
  for (const auto& run : runs) w.Varint(run.failed_nid);
  {
    DeltaWriter submit(w);
    for (const auto& run : runs) submit.AddSigned(run.job_submit.unix_seconds());
  }
  {
    DeltaWriter jstart(w);
    for (const auto& run : runs) jstart.AddSigned(run.job_start.unix_seconds());
  }
  for (const auto& run : runs) w.VarintSigned(run.walltime_limit.seconds());
  for (const auto& run : runs) w.VarintSigned(run.job_exit_status);
}

void GetRuns(SnapshotReader& r, std::vector<AppRun>& runs) {
  const std::uint64_t n = r.Varint();
  if (!r.ok()) return;
  if (n > r.remaining()) {  // every run spends well over 1 byte
    r.Fail("run column longer than the payload");
    return;
  }
  runs.resize(n);
  {
    DeltaReader apid(r);
    for (auto& run : runs) run.apid = apid.Next();
  }
  {
    DeltaReader jobid(r);
    for (auto& run : runs) run.jobid = jobid.Next();
  }
  GetSymbolColumn(r, n, [&](std::size_t i, Symbol s) { runs[i].user = s; });
  GetSymbolColumn(r, n, [&](std::size_t i, Symbol s) { runs[i].queue = s; });
  for (auto& run : runs) run.node_type = static_cast<NodeType>(r.U8());
  if (!GetNodeCsr(r, runs, "run")) return;
  for (auto& run : runs) run.nodect = static_cast<std::uint32_t>(r.Varint());
  {
    DeltaReader start(r);
    for (auto& run : runs) run.start = TimePoint(start.NextSigned());
  }
  {
    DeltaReader end(r);
    for (auto& run : runs) run.end = TimePoint(end.NextSigned());
  }
  for (auto& run : runs) {
    const std::uint8_t flags = r.U8();
    run.has_termination = (flags & 1) != 0;
    run.killed_node_failure = (flags & 2) != 0;
  }
  for (auto& run : runs) run.exit_code = static_cast<int>(r.VarintSigned());
  for (auto& run : runs) run.exit_signal = static_cast<int>(r.VarintSigned());
  for (auto& run : runs) run.failed_nid = static_cast<NodeIndex>(r.Varint());
  {
    DeltaReader submit(r);
    for (auto& run : runs) run.job_submit = TimePoint(submit.NextSigned());
  }
  {
    DeltaReader jstart(r);
    for (auto& run : runs) run.job_start = TimePoint(jstart.NextSigned());
  }
  for (auto& run : runs) run.walltime_limit = Duration(r.VarintSigned());
  for (auto& run : runs) {
    run.job_exit_status = static_cast<int>(r.VarintSigned());
  }
}

void PutTuples(SnapshotWriter& w, const std::vector<ErrorTuple>& tuples) {
  const std::size_t n = tuples.size();
  w.Varint(n);
  {
    DeltaWriter id(w);
    for (const auto& t : tuples) id.Add(t.id);
  }
  for (const auto& t : tuples) w.U8(static_cast<std::uint8_t>(t.category));
  for (const auto& t : tuples) w.U8(static_cast<std::uint8_t>(t.severity));
  for (const auto& t : tuples) w.U8(static_cast<std::uint8_t>(t.scope));
  PutSymbolColumn(w, n, [&](std::size_t i) { return tuples[i].location; });
  PutNodeCsr(w, tuples);
  {
    DeltaWriter first(w);
    for (const auto& t : tuples) first.AddSigned(t.first.unix_seconds());
  }
  {
    DeltaWriter last(w);
    for (const auto& t : tuples) last.AddSigned(t.last.unix_seconds());
  }
  for (const auto& t : tuples) w.U8(t.recovered.has_value() ? 1 : 0);
  {
    // Sparse column: only set recovery times are written, as deltas.
    DeltaWriter recovered(w);
    for (const auto& t : tuples) {
      if (t.recovered) recovered.AddSigned(t.recovered->unix_seconds());
    }
  }
  for (const auto& t : tuples) w.Varint(t.count);
  for (const auto& t : tuples) {
    std::uint8_t flags = 0;
    if (t.from_syslog) flags |= 1;
    if (t.from_hwerr) flags |= 2;
    w.U8(flags);
  }
}

void GetTuples(SnapshotReader& r, std::vector<ErrorTuple>& tuples) {
  const std::uint64_t n = r.Varint();
  if (!r.ok()) return;
  if (n > r.remaining()) {
    r.Fail("tuple column longer than the payload");
    return;
  }
  tuples.resize(n);
  {
    DeltaReader id(r);
    for (auto& t : tuples) t.id = id.Next();
  }
  for (auto& t : tuples) t.category = static_cast<ErrorCategory>(r.U8());
  for (auto& t : tuples) t.severity = static_cast<Severity>(r.U8());
  for (auto& t : tuples) t.scope = static_cast<LocScope>(r.U8());
  GetSymbolColumn(r, n,
                  [&](std::size_t i, Symbol s) { tuples[i].location = s; });
  if (!GetNodeCsr(r, tuples, "tuple")) return;
  {
    DeltaReader first(r);
    for (auto& t : tuples) t.first = TimePoint(first.NextSigned());
  }
  {
    DeltaReader last(r);
    for (auto& t : tuples) t.last = TimePoint(last.NextSigned());
  }
  std::vector<std::uint8_t> recovered_set(n);
  for (auto& set : recovered_set) set = r.U8();
  {
    DeltaReader recovered(r);
    for (std::size_t i = 0; i < n; ++i) {
      if (recovered_set[i] != 0) {
        tuples[i].recovered = TimePoint(recovered.NextSigned());
      }
    }
  }
  for (auto& t : tuples) t.count = static_cast<std::uint32_t>(r.Varint());
  for (auto& t : tuples) {
    const std::uint8_t flags = r.U8();
    t.from_syslog = (flags & 1) != 0;
    t.from_hwerr = (flags & 2) != 0;
  }
}

void PutClassified(SnapshotWriter& w, const std::vector<ClassifiedRun>& cls) {
  w.U64(cls.size());
  for (const auto& c : cls) w.U32(c.run_index);
  for (const auto& c : cls) w.U8(static_cast<std::uint8_t>(c.outcome));
  for (const auto& c : cls) w.U8(static_cast<std::uint8_t>(c.cause));
  for (const auto& c : cls) w.U64(c.tuple_id);
}

void GetClassified(SnapshotReader& r, std::vector<ClassifiedRun>& cls) {
  const std::uint64_t n = r.U64();
  if (!r.ok()) return;
  if (n > r.remaining()) {
    r.Fail("classified column longer than the payload");
    return;
  }
  cls.resize(n);
  for (auto& c : cls) c.run_index = r.U32();
  for (auto& c : cls) c.outcome = static_cast<AppOutcome>(r.U8());
  for (auto& c : cls) c.cause = static_cast<ErrorCategory>(r.U8());
  for (auto& c : cls) c.tuple_id = r.U64();
}

void EncodeResult(SnapshotWriter& w, const AnalysisResult& result) {
  SaveParseStats(w, result.torque_stats);
  SaveParseStats(w, result.alps_stats);
  SaveParseStats(w, result.syslog_stats);
  SaveParseStats(w, result.hwerr_stats);
  w.U64(result.reconstruct_stats.placements);
  w.U64(result.reconstruct_stats.terminations);
  w.U64(result.reconstruct_stats.runs);
  w.U64(result.reconstruct_stats.missing_termination);
  w.U64(result.reconstruct_stats.orphan_terminations);
  w.U64(result.reconstruct_stats.missing_job);
  w.U64(result.reconstruct_stats.mixed_node_types);
  w.U64(result.reconstruct_stats.duplicate_placements);
  w.U64(result.reconstruct_stats.duplicate_terminations);
  w.U64(result.coalesce_stats.input_events);
  w.U64(result.coalesce_stats.tuples);
  w.U64(result.coalesce_stats.unresolved_locations);
  SaveIngestStats(w, result.ingest);
  w.U64(result.quarantine.size());
  for (const auto& entry : result.quarantine) SaveQuarantineEntry(w, entry);
  PutRuns(w, result.runs);
  PutClassified(w, result.classified);
  PutTuples(w, result.tuples);
  SaveMetricsReport(w, result.metrics);
}

void DecodeResult(SnapshotReader& r, AnalysisResult& result) {
  LoadParseStats(r, result.torque_stats);
  LoadParseStats(r, result.alps_stats);
  LoadParseStats(r, result.syslog_stats);
  LoadParseStats(r, result.hwerr_stats);
  result.reconstruct_stats.placements = r.U64();
  result.reconstruct_stats.terminations = r.U64();
  result.reconstruct_stats.runs = r.U64();
  result.reconstruct_stats.missing_termination = r.U64();
  result.reconstruct_stats.orphan_terminations = r.U64();
  result.reconstruct_stats.missing_job = r.U64();
  result.reconstruct_stats.mixed_node_types = r.U64();
  result.reconstruct_stats.duplicate_placements = r.U64();
  result.reconstruct_stats.duplicate_terminations = r.U64();
  result.coalesce_stats.input_events = r.U64();
  result.coalesce_stats.tuples = r.U64();
  result.coalesce_stats.unresolved_locations = r.U64();
  LoadIngestStats(r, result.ingest);
  const std::uint64_t quarantined = r.U64();
  if (!r.ok()) return;
  if (quarantined > r.remaining()) {
    r.Fail("quarantine column longer than the payload");
    return;
  }
  result.quarantine.resize(quarantined);
  for (auto& entry : result.quarantine) LoadQuarantineEntry(r, entry);
  GetRuns(r, result.runs);
  GetClassified(r, result.classified);
  GetTuples(r, result.tuples);
  LoadMetricsReport(r, result.metrics);
}

/// Marks an entry as recently used.  mtime is the LRU recency signal
/// EnforceCap sorts by; best-effort — a failed touch only makes the
/// entry *look* older, which can cost a re-parse but never correctness.
void TouchEntry(const std::string& path) {
  std::error_code ec;
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now(), ec);
}

std::string HexFingerprint(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return std::string(buf, 16);
}

}  // namespace

std::uint64_t LinesFingerprint(const LogSetView& lines,
                               std::uint32_t shard_count) {
  const std::vector<std::string_view>* sources[kNumLogSources] = {
      &lines.torque, &lines.alps, &lines.syslog, &lines.hwerr};
  std::uint64_t h = kFnvOffset;
  for (std::size_t s = 0; s < kNumLogSources; ++s) {
    const unsigned char tag = static_cast<unsigned char>(0xF0 + s);
    FnvMix(h, &tag, 1);
    for (const std::string_view line : *sources[s]) {
      FnvMixBulk(h, line.data(), line.size());
      const unsigned char nl = '\n';
      FnvMix(h, &nl, 1);
    }
  }
  const std::uint32_t count = shard_count;
  FnvMix(h, &count, sizeof(count));
  // 0 is reserved for "unspecified" in file headers.
  return h == 0 ? 1 : h;
}

std::uint64_t ParseKey(const LogDiverConfig& config) {
  std::uint64_t h = kFnvOffset;
  MixI64(h, config.syslog_base_year);
  MixU64(h, config.ingest.quarantine.max_entries);
  MixU64(h, config.ingest.quarantine.max_line_bytes);
  return h;
}

std::uint64_t AnalysisKey(const Machine& machine,
                          const LogDiverConfig& config) {
  std::uint64_t h = kFnvOffset;
  MixU64(h, machine.node_count());
  MixU64(h, machine.xe_count());
  MixU64(h, machine.xk_count());
  MixI64(h, config.coalesce.tupling_window.seconds());
  MixI64(h, config.correlator.attribution_before.seconds());
  MixI64(h, config.correlator.attribution_after.seconds());
  MixU64(h, config.correlator.category_before.size());
  for (const auto& [category, window] : config.correlator.category_before) {
    MixU64(h, static_cast<std::uint64_t>(category));
    MixI64(h, window.seconds());
  }
  MixI64(h, config.correlator.incident_slack.seconds());
  MixI64(h, config.correlator.walltime_tolerance.seconds());
  for (const auto* buckets :
       {&config.metrics.xe_scale_buckets, &config.metrics.xk_scale_buckets}) {
    MixU64(h, buckets->size());
    for (const auto& [lo, hi] : *buckets) {
      MixU64(h, lo);
      MixU64(h, hi);
    }
  }
  MixU64(h, config.shard.index);
  MixU64(h, config.shard.count);
  MixU64(h, static_cast<std::uint64_t>(config.ingest.policy));
  MixU64(h, config.ingest.budget.min_malformed);
  FnvMix(h, &config.ingest.budget.max_malformed_fraction, sizeof(double));
  return h;
}

CacheKeys MakeKeys(const LogSetView& lines, const Machine& machine,
                   const LogDiverConfig& config) {
  CacheKeys keys;
  keys.input_fingerprint = LinesFingerprint(lines, 0);
  keys.parse_key = ParseKey(config);
  keys.analysis_key = AnalysisKey(machine, config);
  return keys;
}

BundleCache::BundleCache(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {
  // Startup trim: a directory left over-cap by a previous run (or a
  // smaller --bundle-cache-max-mb than last time) is brought under the
  // cap before any entry is served.
  EnforceCap();
}

void BundleCache::EnforceCap() const {
  if (max_bytes_ == 0 || dir_.empty()) return;
  namespace fs = std::filesystem;
  struct Candidate {
    fs::path path;
    std::uint64_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<Candidate> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(dir_, ec)) {
    if (ec) return;  // directory missing or unreadable: nothing to trim
    // Only published cache entries count against the cap; in-flight
    // .tmp.<pid> files are transient and owned by their writer.
    if (item.path().extension() != ".ldpbc") continue;
    std::error_code item_ec;
    if (!item.is_regular_file(item_ec) || item_ec) continue;
    Candidate c;
    c.path = item.path();
    c.size = item.file_size(item_ec);
    if (item_ec) continue;
    c.mtime = item.last_write_time(item_ec);
    if (item_ec) continue;
    total += c.size;
    entries.push_back(std::move(c));
  }
  if (total <= max_bytes_) return;
  std::sort(entries.begin(), entries.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;  // deterministic tie-break
            });
  for (const Candidate& victim : entries) {
    if (total <= max_bytes_) break;
    std::error_code rm_ec;
    // unlink is atomic: a reader that already mapped the file keeps a
    // valid mapping; a later reader sees a clean miss.  A concurrent
    // writer can republish the name — that new entry is complete and
    // valid, so the worst case is an extra eviction pass.
    if (fs::remove(victim.path, rm_ec) && !rm_ec) {
      total -= victim.size;
      LD_OBS_COUNTER_ADD(obs::names::kCacheEvictedTotal, 1);
    }
  }
}

std::string BundleCache::BundlePath(std::uint64_t input_fingerprint) const {
  return dir_ + "/bundle-" + HexFingerprint(input_fingerprint) + ".ldpbc";
}

std::string BundleCache::ClaimsPath(std::uint64_t input_fingerprint) const {
  return dir_ + "/claims-" + HexFingerprint(input_fingerprint) + ".ldpbc";
}

Result<LoadedEntry> BundleCache::Load(const CacheKeys& keys) const {
  const std::string path = BundlePath(keys.input_fingerprint);
  const std::uint64_t load_start_ns = LD_OBS_NOW_NS();
  if (!std::filesystem::exists(path)) {
    LD_OBS_COUNTER_ADD(obs::names::kCacheMissesTotal, 1);
    return NotFoundError("bundle cache: no entry at " + path);
  }
  const auto reject = [](Status why) {
    LD_OBS_COUNTER_ADD(obs::names::kCacheRejectedTotal, 1);
    return Status(StatusCode::kParseError,
                  "bundle cache: " + why.message() + " — entry rejected, "
                  "falling back to the text parse");
  };
  auto entry = OpenEntry(path, keys.input_fingerprint);
  if (!entry.ok()) return reject(entry.status());
  SnapshotReader head(entry->payload, entry->size);
  const std::uint8_t kind = head.U8();
  if (head.ok() && kind != kKindBundle) {
    head.Fail("entry kind " + std::to_string(kind) + " is not a bundle");
  }
  const std::uint64_t parse_key = head.U64();
  if (head.ok() && parse_key != keys.parse_key) {
    head.Fail(path + " was written under a different parse configuration");
  }
  const std::uint64_t records_len = head.U64();
  if (head.ok() && records_len > head.remaining()) {
    head.Fail(path + " declares a records section past its payload");
  }
  if (!head.ok()) return reject(head.status());

  // head has consumed kind + parse_key + records_len: the records
  // section starts right here, the result section right after it.
  constexpr std::size_t kPrefix = 1 + 8 + 8;
  SnapshotReader records(entry->payload + kPrefix, records_len);
  SnapshotReader tail(entry->payload + kPrefix + records_len,
                      entry->size - kPrefix - records_len);

  LoadedEntry out;
  const bool has_result = tail.Bool();
  const std::uint64_t analysis_key = has_result ? tail.U64() : 0;
  if (!tail.ok()) return reject(tail.status());
  if (has_result && analysis_key == keys.analysis_key) {
    // Full hit: decode only the memoized result, never the records.
    AnalysisResult result;
    DecodeResult(tail, result);
    if (!tail.ok()) return reject(tail.status());
    out.result = std::move(result);
    LD_OBS_COUNTER_ADD(obs::names::kCacheHitsTotal, 1);
  } else {
    DecodeParsed(records, out.parsed);
    if (!records.ok()) return reject(records.status());
    LD_OBS_COUNTER_ADD(obs::names::kCacheRecordHitsTotal, 1);
  }
  if (load_start_ns != 0) {
    LD_OBS_HIST_RECORD(obs::names::kCacheLoadMicros,
                       (LD_OBS_NOW_NS() - load_start_ns) / 1000);
  }
  TouchEntry(path);
  return out;
}

std::vector<std::uint8_t> BundleCache::EncodeParsed(const ParsedLogs& parsed) {
  SnapshotWriter w;
  PutTorque(w, parsed.torque);
  PutAlps(w, parsed.alps);
  PutErrorColumns(w, parsed.errors);
  SaveParseStats(w, parsed.torque_stats);
  SaveParseStats(w, parsed.alps_stats);
  SaveParseStats(w, parsed.syslog_stats);
  SaveParseStats(w, parsed.hwerr_stats);
  parsed.sink.SaveState(w);
  return w.TakeBytes();
}

Status BundleCache::Store(const CacheKeys& keys,
                          const std::vector<std::uint8_t>& parsed_bytes,
                          const AnalysisResult& result) const {
  SnapshotWriter w;
  w.U8(kKindBundle);
  w.U64(keys.parse_key);
  w.U64(parsed_bytes.size());
  w.Raw(parsed_bytes.data(), parsed_bytes.size());
  w.Bool(true);
  w.U64(keys.analysis_key);
  EncodeResult(w, result);
  LD_TRY(WriteEntry(dir_, BundlePath(keys.input_fingerprint),
                    keys.input_fingerprint, std::move(w)));
  EnforceCap();
  return Status::Ok();
}

Result<ClaimedColumns> BundleCache::LoadClaims(
    std::uint64_t input_fingerprint, int base_year,
    const std::array<std::size_t, kNumLogSources>& line_counts) const {
  const std::string path = ClaimsPath(input_fingerprint);
  if (!std::filesystem::exists(path)) {
    LD_OBS_COUNTER_ADD(obs::names::kCacheMissesTotal, 1);
    return NotFoundError("bundle cache: no claims entry at " + path);
  }
  const auto reject = [](Status why) {
    LD_OBS_COUNTER_ADD(obs::names::kCacheRejectedTotal, 1);
    return Status(StatusCode::kParseError,
                  "bundle cache: " + why.message() + " — claims entry "
                  "rejected, reparsing claimed times");
  };
  auto entry = OpenEntry(path, input_fingerprint);
  if (!entry.ok()) return reject(entry.status());
  SnapshotReader r(entry->payload, entry->size);
  const std::uint8_t kind = r.U8();
  if (r.ok() && kind != kKindClaims) {
    r.Fail("entry kind " + std::to_string(kind) + " is not a claims entry");
  }
  const std::int32_t entry_year = r.I32();
  if (r.ok() && entry_year != base_year) {
    r.Fail(path + " was written under base year " +
           std::to_string(entry_year));
  }
  ClaimedColumns out;
  for (std::size_t s = 0; s < kNumLogSources && r.ok(); ++s) {
    std::vector<std::int64_t> column;
    GetPodColumn(r, column);
    if (!r.ok()) break;
    if (column.size() != line_counts[s]) {
      r.Fail(path + " claims column " + std::to_string(s) +
             " does not match the bundle's line count");
      break;
    }
    out[s].reserve(column.size());
    for (const std::int64_t t : column) out[s].push_back(TimePoint(t));
  }
  if (!r.ok()) return reject(r.status());
  LD_OBS_COUNTER_ADD(obs::names::kCacheHitsTotal, 1);
  TouchEntry(path);
  return out;
}

Status BundleCache::StoreClaims(std::uint64_t input_fingerprint,
                                int base_year,
                                const ClaimedColumns& claimed) const {
  SnapshotWriter w;
  w.U8(kKindClaims);
  w.I32(base_year);
  for (const auto& column : claimed) {
    std::vector<std::int64_t> seconds;
    seconds.reserve(column.size());
    for (const TimePoint t : column) seconds.push_back(t.unix_seconds());
    PutPodColumn(w, seconds);
  }
  LD_TRY(WriteEntry(dir_, ClaimsPath(input_fingerprint), input_fingerprint,
                    std::move(w)));
  EnforceCap();
  return Status::Ok();
}

}  // namespace ld::cache
