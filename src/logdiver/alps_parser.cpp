#include "logdiver/alps_parser.hpp"

#include "common/strings.hpp"
#include "logdiver/quarantine.hpp"

namespace ld {
namespace {

Result<std::optional<AlpsRecord>> ParseLineImpl(std::string_view line) {
  // "YYYY-MM-DDTHH:MM:SS daemon[pid]: payload"
  if (line.size() < 21) {
    return ParseError("alps: line too short");
  }
  LD_ASSIGN_OR_RETURN(const auto when, TimePoint::FromIso(line.substr(0, 19)));
  const std::string_view rest = line.substr(20);
  const std::size_t colon = rest.find(": ");
  if (colon == std::string_view::npos) {
    return ParseError("alps: missing daemon separator");
  }
  const std::string_view daemon = rest.substr(0, colon);
  const std::string_view payload = rest.substr(colon + 2);

  AlpsRecord rec;
  rec.time = when;

  if (StartsWith(daemon, "apsched") && StartsWith(payload, "placeApp")) {
    rec.kind = AlpsRecord::Kind::kPlace;
    // One SIMD tokenization pass over the payload; the bare "placeApp"
    // token has no '=' and is skipped by the tokenizer.
    const KeyValueView kv(payload);
    const auto apid = kv.Get("apid");
    const auto jobid = kv.Get("jobid");
    const auto nids = kv.Get("nids");
    if (!apid.has_value() || !jobid.has_value() || !nids.has_value()) {
      return ParseError("alps: placeApp missing apid/jobid/nids");
    }
    auto apid_v = ParseUint(*apid);
    auto jobid_v = ParseUint(*jobid);
    if (!apid_v.ok() || !jobid_v.ok()) {
      return ParseError("alps: bad apid/jobid");
    }
    rec.apid = *apid_v;
    rec.jobid = *jobid_v;
    if (auto v = kv.Get("user")) rec.user = Intern(*v);
    if (auto v = kv.Get("cmd")) rec.command = Intern(*v);
    if (auto v = kv.Get("nodect")) {
      if (auto n = ParseUint(*v); n.ok()) {
        rec.nodect = static_cast<std::uint32_t>(*n);
      }
    }
    LD_ASSIGN_OR_RETURN(rec.nids, ParseNidRanges(*nids));
    return std::optional<AlpsRecord>{std::move(rec)};
  }

  if (StartsWith(daemon, "apsys")) {
    const KeyValueView kv(payload);
    const auto apid = kv.Get("apid");
    if (!apid.has_value()) {
      return NotFoundError("key 'apid' not present");
    }
    LD_ASSIGN_OR_RETURN(const auto apid_v, ParseUint(*apid));
    rec.apid = apid_v;
    if (Contains(payload, "exited")) {
      rec.kind = AlpsRecord::Kind::kExit;
      if (auto v = kv.Get("status")) {
        if (auto n = ParseInt(*v); n.ok()) rec.exit_code = static_cast<int>(*n);
      }
      if (auto v = kv.Get("signal")) {
        if (auto n = ParseInt(*v); n.ok()) {
          rec.exit_signal = static_cast<int>(*n);
        }
      }
      return std::optional<AlpsRecord>{std::move(rec)};
    }
    if (Contains(payload, "killed")) {
      rec.kind = AlpsRecord::Kind::kKill;
      if (auto v = kv.Get("reason")) {
        rec.kill_reason = *v;
      }
      if (auto v = kv.Get("nid")) {
        if (auto n = ParseUint(*v); n.ok()) {
          rec.failed_nid = static_cast<NodeIndex>(*n);
        }
      }
      return std::optional<AlpsRecord>{std::move(rec)};
    }
  }

  return std::optional<AlpsRecord>{};
}

}  // namespace

Result<std::optional<AlpsRecord>> AlpsParser::ParseLine(std::string_view line) {
  ++stats_.lines;
  auto rec = ParseLineImpl(line);
  if (!rec.ok()) {
    ++stats_.malformed;
  } else if (rec->has_value()) {
    ++stats_.records;
  } else {
    ++stats_.skipped;
  }
  return rec;
}

AlpsParser::Chunk AlpsParser::ParseChunk(
    std::span<const std::string_view> lines, std::uint64_t first_line_no,
    const QuarantineConfig* capture) {
  return ParseChunkWith<AlpsRecord>(
      lines, first_line_no, capture, LogSource::kAlps,
      [](std::string_view line) { return ParseLineImpl(line); });
}

std::vector<AlpsRecord> AlpsParser::ReduceChunks(std::vector<Chunk>&& chunks,
                                                 QuarantineSink* sink) {
  return ReduceParsedChunks(std::move(chunks), &stats_, sink);
}

std::vector<AlpsRecord> AlpsParser::ParseLines(
    std::span<const std::string_view> lines, QuarantineSink* sink,
    ThreadPool* pool, std::size_t chunk_lines) {
  auto chunks = MapLineChunks(
      lines, chunk_lines, pool,
      sink != nullptr ? &sink->config() : nullptr,
      [](std::span<const std::string_view> slice, std::uint64_t first,
         const QuarantineConfig* capture) {
        return ParseChunk(slice, first, capture);
      });
  return ReduceChunks(std::move(chunks), sink);
}

std::vector<AlpsRecord> AlpsParser::ParseLines(
    const std::vector<std::string>& lines, QuarantineSink* sink) {
  const std::vector<std::string_view> views = LineViews(lines);
  return ParseLines(std::span<const std::string_view>(views), sink);
}

}  // namespace ld
