#include "logdiver/alps_parser.hpp"

#include "common/strings.hpp"
#include "logdiver/quarantine.hpp"

namespace ld {
namespace {

Result<std::optional<AlpsRecord>> ParseLineImpl(std::string_view line) {
  // "YYYY-MM-DDTHH:MM:SS daemon[pid]: payload"
  if (line.size() < 21) {
    return ParseError("alps: line too short");
  }
  LD_ASSIGN_OR_RETURN(const auto when,
                      TimePoint::FromIso(std::string(line.substr(0, 19))));
  const std::string_view rest = line.substr(20);
  const std::size_t colon = rest.find(": ");
  if (colon == std::string_view::npos) {
    return ParseError("alps: missing daemon separator");
  }
  const std::string_view daemon = rest.substr(0, colon);
  const std::string payload(rest.substr(colon + 2));

  AlpsRecord rec;
  rec.time = when;

  if (StartsWith(daemon, "apsched") && StartsWith(payload, "placeApp")) {
    rec.kind = AlpsRecord::Kind::kPlace;
    auto apid = FindKeyValue(payload, "apid");
    auto jobid = FindKeyValue(payload, "jobid");
    auto nids = FindKeyValue(payload, "nids");
    if (!apid.ok() || !jobid.ok() || !nids.ok()) {
      return ParseError("alps: placeApp missing apid/jobid/nids");
    }
    auto apid_v = ParseUint(*apid);
    auto jobid_v = ParseUint(*jobid);
    if (!apid_v.ok() || !jobid_v.ok()) {
      return ParseError("alps: bad apid/jobid");
    }
    rec.apid = *apid_v;
    rec.jobid = *jobid_v;
    if (auto v = FindKeyValue(payload, "user"); v.ok()) rec.user = *v;
    if (auto v = FindKeyValue(payload, "cmd"); v.ok()) rec.command = *v;
    if (auto v = FindKeyValue(payload, "nodect"); v.ok()) {
      if (auto n = ParseUint(*v); n.ok()) {
        rec.nodect = static_cast<std::uint32_t>(*n);
      }
    }
    LD_ASSIGN_OR_RETURN(rec.nids, ParseNidRanges(*nids));
    return std::optional<AlpsRecord>{std::move(rec)};
  }

  if (StartsWith(daemon, "apsys")) {
    LD_ASSIGN_OR_RETURN(const auto apid, FindKeyValue(payload, "apid"));
    LD_ASSIGN_OR_RETURN(const auto apid_v, ParseUint(apid));
    rec.apid = apid_v;
    if (Contains(payload, "exited")) {
      rec.kind = AlpsRecord::Kind::kExit;
      if (auto v = FindKeyValue(payload, "status"); v.ok()) {
        if (auto n = ParseInt(*v); n.ok()) rec.exit_code = static_cast<int>(*n);
      }
      if (auto v = FindKeyValue(payload, "signal"); v.ok()) {
        if (auto n = ParseInt(*v); n.ok()) {
          rec.exit_signal = static_cast<int>(*n);
        }
      }
      return std::optional<AlpsRecord>{std::move(rec)};
    }
    if (Contains(payload, "killed")) {
      rec.kind = AlpsRecord::Kind::kKill;
      if (auto v = FindKeyValue(payload, "reason"); v.ok()) {
        rec.kill_reason = *v;
      }
      if (auto v = FindKeyValue(payload, "nid"); v.ok()) {
        if (auto n = ParseUint(*v); n.ok()) {
          rec.failed_nid = static_cast<NodeIndex>(*n);
        }
      }
      return std::optional<AlpsRecord>{std::move(rec)};
    }
  }

  return std::optional<AlpsRecord>{};
}

}  // namespace

Result<std::optional<AlpsRecord>> AlpsParser::ParseLine(std::string_view line) {
  ++stats_.lines;
  auto rec = ParseLineImpl(line);
  if (!rec.ok()) {
    ++stats_.malformed;
  } else if (rec->has_value()) {
    ++stats_.records;
  } else {
    ++stats_.skipped;
  }
  return rec;
}

std::vector<AlpsRecord> AlpsParser::ParseLines(
    const std::vector<std::string>& lines, QuarantineSink* sink) {
  std::vector<AlpsRecord> out;
  out.reserve(lines.size());
  std::uint64_t line_no = 0;
  for (const std::string& line : lines) {
    ++line_no;
    auto rec = ParseLine(line);
    if (!rec.ok()) {
      if (sink != nullptr) {
        sink->Add(LogSource::kAlps, line_no, line, rec.status());
      }
      continue;
    }
    if (rec->has_value()) out.push_back(std::move(**rec));
  }
  return out;
}

}  // namespace ld
