// CSV export of the metric report: one file per table/figure series,
// ready for gnuplot/pandas.  Files written into a directory:
//
//   outcomes.csv, categories.csv, attribution.csv, xe_scale.csv,
//   xk_scale.csv, monthly.csv, detection_gap.csv, queue_waits.csv,
//   headline.csv
#pragma once

#include <string>

#include "common/status.hpp"
#include "logdiver/metrics.hpp"

namespace ld {

/// Writes every series of the report into `dir` (created if missing).
/// Returns the number of files written.
Result<int> ExportMetricsCsv(const MetricsReport& report,
                             const std::string& dir);

}  // namespace ld
