// Fault-tolerant multi-process scale-out: the ShardSupervisor fans a
// bundle analysis across N worker processes and merges their partial
// aggregates back into one MetricsReport.
//
// Partitioning is SPMD ownership, not input splitting: every worker
// replays the *whole* bundle with the deterministic schedule of the
// serial analyzer (resume.hpp ReplayBundle), so parsing, coalescing and
// classification context are bit-identical everywhere; each worker only
// folds its owned runs (`apid % shard_count`) and tuples
// (`id % shard_count`) into its MetricsAccumulator (ShardSpec,
// logdiver.hpp).  Disjoint ownership makes the partials merge-exact:
// the supervisor's merged report is bit-identical to the serial
// analyzer's — bench/fleet_campaign asserts this across a worker-fault
// sweep.
//
// The loop is hardened end-to-end, following the detection /
// containment / recovery layering of the resilience design patterns
// literature:
//   * detection — waitpid status decoding (crash vs. ordinary failure),
//     per-shard wall-clock deadlines, CRC + fingerprint + shard-id
//     validation of every partial before it may merge;
//   * containment — workers are separate processes; a fault costs one
//     shard attempt, never the fleet;
//   * recovery — bounded retries with exponential backoff + jitter
//     (deterministic under FleetOptions::seed), SIGKILL escalation for
//     hangs, and a per-fleet failure budget deciding between fail-fast
//     and degrade-and-annotate (the report ships with a coverage row
//     naming dropped shards, mirroring the quarantine philosophy).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "logdiver/fleet/partial.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/resume.hpp"

namespace ld::fleet {

/// Test-only worker fault injection, armed inside the forked worker via
/// the crashpoint machinery (common/crashpoint.hpp).
enum class WorkerFault : std::uint8_t {
  kNone = 0,
  kCrash,             // std::_Exit at the Nth ingest boundary
  kHang,              // pause() loop at the Nth ingest boundary
  kTruncatedPartial,  // corrupt the partial after writing, exit 0
};

struct FaultPlan {
  WorkerFault fault = WorkerFault::kNone;
  /// Which CrashPoint() boundary fires (crash/hang faults).
  std::uint64_t after_lines = 1;
  /// Arm on every attempt instead of only the first — makes the shard
  /// unrecoverable, for exercising the failure budget.
  bool persistent = false;
};

struct FleetOptions {
  /// Ownership partitions; also the worker count unless max_workers
  /// caps it.  1 is legal (a fleet of one, still fault-supervised).
  std::uint32_t shard_count = 4;
  /// Concurrent worker processes; 0 = shard_count.
  std::uint32_t max_workers = 0;
  /// Wall-clock budget per shard attempt before SIGKILL escalation.
  std::uint64_t shard_timeout_ms = 120000;
  /// Total attempts per shard (first try + retries).
  int max_attempts = 3;
  /// Shards allowed to drop (exhaust retries) before the fleet fails.
  /// Only consulted under kQuarantineAndContinue; kFailFast aborts on
  /// the first dropped shard regardless.
  std::uint32_t failure_budget = 0;
  /// kFailFast: any dropped shard fails the fleet.
  /// kQuarantineAndContinue: up to failure_budget dropped shards
  /// degrade the report (coverage-annotated) instead of failing.
  DegradationPolicy policy = DegradationPolicy::kFailFast;
  /// Seed for retry jitter; the whole backoff schedule is a
  /// deterministic function of (seed, shard, attempt).
  std::uint64_t seed = 1;
  /// Backoff before retry r (1-based): min(cap, base << (r-1)) plus
  /// jitter uniform in [0, base], from Rng(seed).Fork("shard-i/try-r").
  std::uint64_t backoff_base_ms = 5;
  std::uint64_t backoff_cap_ms = 250;
  /// Directory for partial-snapshot files (created if needed).
  std::string partial_dir;
  /// Replay schedule; must stay at the defaults for bit-identity with
  /// the serial analyzer (see ReplaySchedule).
  ReplaySchedule schedule;
  /// Test-only fault injection, keyed by shard index.
  std::map<std::uint32_t, FaultPlan> faults;
};

/// What happened to one shard across all its attempts.
struct ShardOutcome {
  std::uint32_t shard_index = 0;
  int attempts = 0;
  int crashes = 0;
  int hangs_killed = 0;
  int partials_rejected = 0;
  /// Backoff delay (ms, jitter included) slept before each retry;
  /// deterministic under a fixed FleetOptions::seed.
  std::vector<std::uint64_t> backoff_ms;
  bool completed = false;
  bool dropped = false;
};

/// The coverage row a degraded report ships with.
struct FleetCoverage {
  std::uint32_t shard_count = 0;
  std::uint32_t shards_merged = 0;
  std::vector<std::uint32_t> dropped_shards;  // ascending
  bool degraded() const { return !dropped_shards.empty(); }
  /// "fleet coverage: 7/8 shards merged (dropped: 3)" — the row the
  /// CLI prints above a degraded report.
  std::string Row() const;
};

struct FleetSummary {
  /// Merged metrics; bit-identical to the serial analyzer's when
  /// coverage is full, a monotone subset of it when degraded.
  MetricsReport report;
  /// Bundle-wide counters, from the lowest-index surviving shard
  /// (identical on every survivor by construction).
  std::uint64_t runs_finalized = 0;
  std::uint64_t unterminated_runs = 0;
  std::uint64_t orphan_terminations = 0;
  ParseStats torque_stats;
  ParseStats alps_stats;
  ParseStats syslog_stats;
  ParseStats hwerr_stats;
  CoalesceStats coalesce_stats;
  Status ingest_status;
  std::uint64_t bundle_fingerprint = 0;
  /// Claims-cache activity summed over merged shards (each worker loads
  /// the bundle independently, so a warm fleet shows hits ≈ shard
  /// count).  Zero across the board when no bundle_cache_dir is set.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_rejected = 0;
  std::uint64_t cache_stores = 0;
  FleetCoverage coverage;
  std::vector<ShardOutcome> shards;  // one per shard, index order
};

/// Runs the fleet: spawn, supervise, validate, merge (ascending shard
/// index — the documented canonical order).  Errors when zero shards
/// survive, when a worker fails *ordinarily* (non-crash exit: its
/// error, e.g. a tripped ingest budget, must pass through unretried),
/// under kFailFast when any shard drops, and with kOutOfRange when
/// dropped shards exceed the failure budget — the CLI maps that code
/// to its fleet-budget exit code.
class ShardSupervisor {
 public:
  ShardSupervisor(const Machine& machine, LogDiverConfig config)
      : machine_(machine), config_(std::move(config)) {}

  Result<FleetSummary> Run(const StreamInputs& inputs,
                           const FleetOptions& options) const;

 private:
  const Machine& machine_;
  LogDiverConfig config_;
};

}  // namespace ld::fleet
