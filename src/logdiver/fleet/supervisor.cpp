#include "logdiver/fleet/supervisor.hpp"

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>

#include "common/crashpoint.hpp"
#include "common/obs/obs.hpp"
#include "common/rng.hpp"
#include "logdiver/streaming.hpp"

namespace ld::fleet {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string PartialPathFor(const FleetOptions& options, std::uint32_t shard) {
  char name[64];
  std::snprintf(name, sizeof(name), "partial-%04u.ldsnap", shard);
  return options.partial_dir + "/" + name;
}

/// Everything the forked worker does: arm injected faults, replay the
/// bundle shard-filtered, write the partial, optionally corrupt it.
/// Exit codes: 0 success, 1 internal error, 3 ingest budget tripped
/// (an ordinary failure the supervisor must pass through, not retry).
int RunWorkerProcess(const Machine& machine, LogDiverConfig config,
                     const StreamInputs& inputs, const FleetOptions& options,
                     std::uint64_t fingerprint, std::uint32_t shard,
                     int attempt) {
  const auto fault = options.faults.find(shard);
  if (fault != options.faults.end() &&
      (attempt == 0 || fault->second.persistent)) {
    switch (fault->second.fault) {
      case WorkerFault::kNone: break;
      case WorkerFault::kCrash:
        ArmCrashPoint(fault->second.after_lines);
        break;
      case WorkerFault::kHang:
        ArmHangPoint(fault->second.after_lines);
        break;
      case WorkerFault::kTruncatedPartial:
        ArmTruncatePartial(true);
        break;
    }
  }

  config.shard = ShardSpec{shard, options.shard_count};
  StreamingAnalyzer analyzer(machine, config);
  BundleLoadStats load_stats;
  const auto total =
      ReplayBundle(config, inputs, options.schedule, analyzer, &load_stats);
  if (!total.ok()) {
    std::fprintf(stderr, "[fleet] shard %u: %s\n", shard,
                 total.status().message().c_str());
    return 1;
  }
  const StreamingAnalyzer::Summary summary = analyzer.Finalize();

  PartialAggregates partial(config.metrics);
  partial.header.shard_index = shard;
  partial.header.shard_count = options.shard_count;
  partial.header.fingerprint = fingerprint;
  partial.runs_finalized = summary.runs_finalized;
  partial.unterminated_runs = summary.unterminated_runs;
  partial.orphan_terminations = summary.orphan_terminations;
  partial.torque_stats = summary.torque_stats;
  partial.alps_stats = summary.alps_stats;
  partial.syslog_stats = summary.syslog_stats;
  partial.hwerr_stats = summary.hwerr_stats;
  partial.coalesce_stats = summary.coalesce_stats;
  partial.ingest = summary.ingest;
  partial.ingest_status = summary.ingest_status;
  partial.cache_hits = load_stats.cache_hits;
  partial.cache_misses = load_stats.cache_misses;
  partial.cache_rejected = load_stats.cache_rejected;
  partial.cache_stores = load_stats.cache_stores;
  partial.metrics = analyzer.metrics_accumulator();

  const std::string path = PartialPathFor(options, shard);
  const Status written = WritePartialFile(path, partial);
  if (!written.ok()) {
    std::fprintf(stderr, "[fleet] shard %u: %s\n", shard,
                 written.message().c_str());
    return 1;
  }
  if (TruncatePartialArmed()) {
    // Model the torn output atomic rename cannot prevent (bad disk,
    // truncated copy off a shared filesystem): chop the file in half
    // *after* the rename and report success anyway.  Only the reader's
    // CRC stands between this partial and the merge.
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0) {
      ::truncate(path.c_str(), st.st_size / 2);
    }
    std::fprintf(stderr, "[fleet] shard %u: injected partial truncation\n",
                 shard);
  }
  if (!summary.ingest_status.ok()) return 3;
  return 0;
}

struct ShardState {
  enum class Phase { kPending, kRunning, kBackoff, kDone, kDropped };
  Phase phase = Phase::kPending;
  pid_t pid = -1;
  Clock::time_point deadline{};
  Clock::time_point retry_at{};
  ShardOutcome out;
  std::optional<PartialAggregates> partial;
};

void KillRunning(std::vector<ShardState>& shards) {
  for (ShardState& s : shards) {
    if (s.phase == ShardState::Phase::kRunning && s.pid > 0) {
      ::kill(s.pid, SIGKILL);
      int status = 0;
      ::waitpid(s.pid, &status, 0);
      s.pid = -1;
    }
  }
}

}  // namespace

std::string FleetCoverage::Row() const {
  std::string row = "fleet coverage: " + std::to_string(shards_merged) + "/" +
                    std::to_string(shard_count) + " shards merged";
  if (!dropped_shards.empty()) {
    row += " (dropped:";
    for (std::uint32_t shard : dropped_shards) {
      row += " " + std::to_string(shard);
    }
    row += ")";
  }
  return row;
}

Result<FleetSummary> ShardSupervisor::Run(const StreamInputs& inputs,
                                          const FleetOptions& options) const {
  if (options.shard_count == 0) {
    return InvalidArgumentError("fleet: shard_count must be >= 1");
  }
  if (options.max_attempts < 1) {
    return InvalidArgumentError("fleet: max_attempts must be >= 1");
  }
  if (options.partial_dir.empty()) {
    return InvalidArgumentError("fleet: partial_dir is required");
  }
  std::error_code ec;
  fs::create_directories(options.partial_dir, ec);
  if (ec) {
    return InternalError("fleet: cannot create " + options.partial_dir +
                         ": " + ec.message());
  }
  LD_ASSIGN_OR_RETURN(
      const std::uint64_t fingerprint,
      BundlePartitionFingerprint(inputs, options.shard_count));

  const std::uint32_t max_workers =
      options.max_workers == 0 ? options.shard_count : options.max_workers;
  const Rng jitter_root(options.seed);

  std::vector<ShardState> shards(options.shard_count);
  for (std::uint32_t i = 0; i < options.shard_count; ++i) {
    shards[i].out.shard_index = i;
  }

  // One failure ends the fleet immediately: a worker that exits with an
  // *ordinary* (non-crash) failure carries an error retries cannot fix.
  Status abort_status;
  std::uint32_t dropped_count = 0;

  auto running_count = [&shards] {
    return static_cast<std::uint32_t>(std::count_if(
        shards.begin(), shards.end(), [](const ShardState& s) {
          return s.phase == ShardState::Phase::kRunning;
        }));
  };

  // Retries exhausted for shard i: drop it and decide whether the fleet
  // can continue.  kFailFast aborts on the first drop; the degrade
  // policy tolerates up to failure_budget drops.
  auto drop_shard = [&](ShardState& s) {
    s.phase = ShardState::Phase::kDropped;
    s.out.dropped = true;
    ++dropped_count;
    LD_OBS_COUNTER_ADD(obs::names::kFleetShardsDroppedTotal, 1);
    if (options.policy == DegradationPolicy::kFailFast) {
      abort_status = FailedPreconditionError(
          "fleet: shard " + std::to_string(s.out.shard_index) +
          " exhausted its " + std::to_string(options.max_attempts) +
          " attempts (fail-fast policy)");
    } else if (dropped_count > options.failure_budget) {
      abort_status = OutOfRangeError(
          "fleet: failure budget exhausted (" +
          std::to_string(dropped_count) + " shards dropped, budget " +
          std::to_string(options.failure_budget) + ")");
    }
  };

  // A failed attempt for shard i: retry with deterministic backoff, or
  // drop when attempts are spent.
  auto retry_or_drop = [&](ShardState& s) {
    if (s.out.attempts >= options.max_attempts) {
      drop_shard(s);
      return;
    }
    const std::uint64_t retry = static_cast<std::uint64_t>(s.out.attempts);
    const std::uint64_t base =
        std::min(options.backoff_cap_ms,
                 options.backoff_base_ms << std::min<std::uint64_t>(
                     retry > 0 ? retry - 1 : 0, 20));
    Rng jitter = jitter_root.Fork(
        "shard-" + std::to_string(s.out.shard_index) + "/try-" +
        std::to_string(retry));
    const std::uint64_t delay =
        base + jitter.UniformInt(options.backoff_base_ms + 1);
    s.out.backoff_ms.push_back(delay);
    s.retry_at = Clock::now() + std::chrono::milliseconds(delay);
    s.phase = ShardState::Phase::kBackoff;
    LD_OBS_COUNTER_ADD(obs::names::kFleetRetriesTotal, 1);
  };

  // Exit 0 only earns a merge slot after the partial validates: CRC
  // and framing (ReadPartialFile), then fingerprint and shard identity
  // — a torn, foreign or misnumbered partial is a failed attempt.
  auto validate_partial = [&](ShardState& s) -> bool {
    auto partial = ReadPartialFile(PartialPathFor(options, s.out.shard_index),
                                   config_.metrics);
    if (partial.ok() && partial->header.fingerprint != fingerprint) {
      partial = ParseError("partial fingerprints a different bundle "
                           "partition");
    }
    if (partial.ok() && (partial->header.shard_index != s.out.shard_index ||
                         partial->header.shard_count !=
                             options.shard_count)) {
      partial = ParseError("partial claims a different shard identity");
    }
    if (!partial.ok()) {
      ++s.out.partials_rejected;
      LD_OBS_COUNTER_ADD(obs::names::kFleetPartialsRejectedTotal, 1);
      std::fprintf(stderr, "[fleet] shard %u: rejecting partial: %s\n",
                   s.out.shard_index, partial.status().message().c_str());
      return false;
    }
    s.partial = std::move(*partial);
    return true;
  };

  while (abort_status.ok()) {
    bool all_resolved = true;
    const Clock::time_point now = Clock::now();

    // Launch phase: fill free worker slots in shard-index order.
    for (ShardState& s : shards) {
      if (running_count() >= max_workers) break;
      const bool launchable =
          s.phase == ShardState::Phase::kPending ||
          (s.phase == ShardState::Phase::kBackoff && now >= s.retry_at);
      if (!launchable) continue;
      const int attempt = s.out.attempts++;
      std::fflush(nullptr);
      const pid_t pid = ::fork();
      if (pid < 0) {
        // Abort through abort_status (not an early return) so the
        // KillRunning path below reaps every already-launched worker —
        // an error exit must never leave zombies behind.
        abort_status = InternalError("fleet: fork failed for shard " +
                                     std::to_string(s.out.shard_index));
        break;
      }
      if (pid == 0) {
        const int rc = RunWorkerProcess(machine_, config_, inputs, options,
                                        fingerprint, s.out.shard_index,
                                        attempt);
        std::fflush(nullptr);
        std::_Exit(rc);
      }
      s.pid = pid;
      s.deadline =
          Clock::now() + std::chrono::milliseconds(options.shard_timeout_ms);
      s.phase = ShardState::Phase::kRunning;
      LD_OBS_COUNTER_ADD(obs::names::kFleetWorkersSpawnedTotal, 1);
    }

    // Poll phase: reap exits, escalate deadline blowers to SIGKILL.
    for (ShardState& s : shards) {
      if (s.phase != ShardState::Phase::kDone &&
          s.phase != ShardState::Phase::kDropped) {
        all_resolved = false;
      }
      if (s.phase != ShardState::Phase::kRunning) continue;
      int status = 0;
      const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
      if (r < 0) {
        abort_status = InternalError("fleet: waitpid failed for shard " +
                                     std::to_string(s.out.shard_index));
        break;
      }
      bool hung = false;
      if (r == 0) {
        if (Clock::now() < s.deadline) continue;
        // Hung: kill, reap, handle as a crash.
        ::kill(s.pid, SIGKILL);
        if (::waitpid(s.pid, &status, 0) < 0) {
          abort_status = InternalError("fleet: waitpid after SIGKILL failed");
          break;
        }
        hung = true;
        ++s.out.hangs_killed;
        LD_OBS_COUNTER_ADD(obs::names::kFleetWorkerHangsKilledTotal, 1);
      }
      s.pid = -1;
      bool crashed = hung;
      int code = 0;
      if (WIFSIGNALED(status)) {
        crashed = true;
        code = 128 + WTERMSIG(status);
      } else {
        code = WEXITSTATUS(status);
        crashed = crashed || code >= 128;
      }
      if (crashed) {
        ++s.out.crashes;
        LD_OBS_COUNTER_ADD(obs::names::kFleetWorkerCrashesTotal, 1);
        retry_or_drop(s);
      } else if (code != 0) {
        // Ordinary failure: the child's error (ingest budget, bad
        // input) passes through; retrying cannot fix it.
        abort_status = FailedPreconditionError(
            "fleet: shard " + std::to_string(s.out.shard_index) +
            " failed ordinarily (exit " + std::to_string(code) +
            "); see its stderr");
        break;
      } else if (validate_partial(s)) {
        s.phase = ShardState::Phase::kDone;
        s.out.completed = true;
      } else {
        retry_or_drop(s);
      }
      if (!abort_status.ok()) break;
    }

    if (!abort_status.ok() || all_resolved) break;
    ::usleep(2000);
  }

  if (!abort_status.ok()) {
    KillRunning(shards);
    return abort_status;
  }

  // Merge phase: ascending shard index (the documented canonical
  // order; the algebra is order-free, the bytes we compare are not
  // allowed to depend on that).
  const std::uint64_t merge_start_ns = LD_OBS_NOW_NS();
  FleetSummary summary;
  summary.bundle_fingerprint = fingerprint;
  summary.coverage.shard_count = options.shard_count;
  MetricsAccumulator merged(config_.metrics);
  const ShardState* first_survivor = nullptr;
  for (const ShardState& s : shards) {
    summary.shards.push_back(s.out);
    if (s.phase != ShardState::Phase::kDone) {
      summary.coverage.dropped_shards.push_back(s.out.shard_index);
      continue;
    }
    ++summary.coverage.shards_merged;
    merged.MergeFrom(s.partial->metrics);
    // Cache counters are per-worker facts (each worker loads the
    // bundle itself), so they sum instead of taking the survivor's.
    summary.cache_hits += s.partial->cache_hits;
    summary.cache_misses += s.partial->cache_misses;
    summary.cache_rejected += s.partial->cache_rejected;
    summary.cache_stores += s.partial->cache_stores;
    if (first_survivor == nullptr) first_survivor = &s;
  }
  if (first_survivor == nullptr) {
    return InternalError("fleet: no shard survived; nothing to merge");
  }
  // Bundle-wide counters are replayed identically by every worker; the
  // lowest-index survivor speaks for the fleet.
  const PartialAggregates& base = *first_survivor->partial;
  summary.runs_finalized = base.runs_finalized;
  summary.unterminated_runs = base.unterminated_runs;
  summary.orphan_terminations = base.orphan_terminations;
  summary.torque_stats = base.torque_stats;
  summary.alps_stats = base.alps_stats;
  summary.syslog_stats = base.syslog_stats;
  summary.hwerr_stats = base.hwerr_stats;
  summary.coalesce_stats = base.coalesce_stats;
  summary.ingest_status = base.ingest_status;
  summary.report = merged.Report();
  summary.report.ingest = base.ingest;
  if (merge_start_ns != 0) {
    LD_OBS_HIST_RECORD(obs::names::kFleetMergeMicros,
                       (LD_OBS_NOW_NS() - merge_start_ns) / 1000);
  }
  return summary;
}

}  // namespace ld::fleet
