#include "logdiver/fleet/partial.hpp"

namespace ld::fleet {

void SavePartialAggregates(SnapshotWriter& w, const PartialAggregates& p) {
  w.U32(p.header.record_version);
  w.U32(p.header.shard_index);
  w.U32(p.header.shard_count);
  w.U64(p.header.fingerprint);
  w.U64(p.runs_finalized);
  w.U64(p.unterminated_runs);
  w.U64(p.orphan_terminations);
  SaveParseStats(w, p.torque_stats);
  SaveParseStats(w, p.alps_stats);
  SaveParseStats(w, p.syslog_stats);
  SaveParseStats(w, p.hwerr_stats);
  w.U64(p.coalesce_stats.input_events);
  w.U64(p.coalesce_stats.tuples);
  w.U64(p.coalesce_stats.unresolved_locations);
  SaveIngestStats(w, p.ingest);
  SaveStatus(w, p.ingest_status);
  w.U64(p.cache_hits);
  w.U64(p.cache_misses);
  w.U64(p.cache_rejected);
  w.U64(p.cache_stores);
  p.metrics.SaveState(w);
}

Result<PartialAggregates> LoadPartialAggregates(
    const std::vector<std::uint8_t>& payload,
    const MetricsConfig& metrics_config) {
  SnapshotReader r(payload);
  PartialAggregates p(metrics_config);
  p.header.record_version = r.U32();
  if (r.ok() && p.header.record_version != kPartialRecordVersion) {
    return FailedPreconditionError(
        "partial record version " + std::to_string(p.header.record_version) +
        ", this build speaks " + std::to_string(kPartialRecordVersion));
  }
  p.header.shard_index = r.U32();
  p.header.shard_count = r.U32();
  p.header.fingerprint = r.U64();
  p.runs_finalized = r.U64();
  p.unterminated_runs = r.U64();
  p.orphan_terminations = r.U64();
  LoadParseStats(r, p.torque_stats);
  LoadParseStats(r, p.alps_stats);
  LoadParseStats(r, p.syslog_stats);
  LoadParseStats(r, p.hwerr_stats);
  p.coalesce_stats.input_events = r.U64();
  p.coalesce_stats.tuples = r.U64();
  p.coalesce_stats.unresolved_locations = r.U64();
  LoadIngestStats(r, p.ingest);
  p.ingest_status = LoadStatus(r);
  p.cache_hits = r.U64();
  p.cache_misses = r.U64();
  p.cache_rejected = r.U64();
  p.cache_stores = r.U64();
  p.metrics.LoadState(r);
  if (!r.ok()) return r.status();
  if (r.remaining() != 0) {
    return ParseError("partial payload has " +
                      std::to_string(r.remaining()) + " trailing bytes");
  }
  return p;
}

Status WritePartialFile(const std::string& path, const PartialAggregates& p) {
  SnapshotWriter w;
  SavePartialAggregates(w, p);
  return WriteSnapshotFile(path, w.bytes(), p.header.fingerprint);
}

Result<PartialAggregates> ReadPartialFile(
    const std::string& path, const MetricsConfig& metrics_config) {
  std::uint64_t file_fingerprint = 0;
  LD_ASSIGN_OR_RETURN(const std::vector<std::uint8_t> payload,
                      ReadSnapshotFile(path, &file_fingerprint));
  LD_ASSIGN_OR_RETURN(PartialAggregates p,
                      LoadPartialAggregates(payload, metrics_config));
  if (file_fingerprint != p.header.fingerprint) {
    return ParseError("partial " + path +
                      ": file-header fingerprint disagrees with the payload "
                      "header");
  }
  return p;
}

}  // namespace ld::fleet
