// Partial-snapshot records: the self-describing, verifiable unit a
// fleet worker ships back to its supervisor.
//
// A partial file reuses the snapshot framing (magic, version, CRC,
// header fingerprint — snapshot.hpp), so torn or bit-flipped partials
// are rejected the same way torn checkpoints are.  The payload adds a
// shard header (record version, shard index, shard count, the
// bundle-partition fingerprint again) followed by the worker's
// mergeable aggregates: its shard-filtered MetricsAccumulator plus the
// bundle-wide stats every worker reproduces identically (parse/
// coalesce/ingest counters, finalized-run counts).  The supervisor
// validates CRC + fingerprint + shard identity before a partial is
// allowed anywhere near the merge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "logdiver/metrics.hpp"
#include "logdiver/quarantine.hpp"
#include "logdiver/records.hpp"
#include "logdiver/snapshot.hpp"

namespace ld::fleet {

/// Payload-level record version; bump when the partial layout changes.
/// Version 2 added the worker's claims-cache counters (hits / misses /
/// rejections / stores), so the supervisor can see cache effectiveness
/// without reaching into a dead child's obs registry.
inline constexpr std::uint32_t kPartialRecordVersion = 2;

/// Who computed this partial, over what input.
struct PartialHeader {
  std::uint32_t record_version = kPartialRecordVersion;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// BundlePartitionFingerprint(inputs, shard_count) — also stamped in
  /// the file header, so mismatches are caught before payload parsing.
  std::uint64_t fingerprint = 0;
};

/// One worker's output: the shard-owned metric accumulator plus the
/// bundle-wide counters (identical on every surviving worker; the
/// supervisor takes them from the lowest-index survivor).
struct PartialAggregates {
  PartialHeader header;
  std::uint64_t runs_finalized = 0;
  std::uint64_t unterminated_runs = 0;
  std::uint64_t orphan_terminations = 0;
  ParseStats torque_stats;
  ParseStats alps_stats;
  ParseStats syslog_stats;
  ParseStats hwerr_stats;
  CoalesceStats coalesce_stats;
  IngestStats ingest;
  Status ingest_status;
  /// Claims-cache activity of this worker's bundle load (v2): whether a
  /// warm shard actually skipped the claimed-time re-parse.  Summed —
  /// not survivor-picked — by the supervisor: each worker loads the
  /// bundle independently.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_rejected = 0;
  std::uint64_t cache_stores = 0;
  MetricsAccumulator metrics;

  explicit PartialAggregates(MetricsConfig metrics_config = {})
      : metrics(std::move(metrics_config)) {}
};

/// Serializes a partial into `w` (header first, accumulator last).
void SavePartialAggregates(SnapshotWriter& w, const PartialAggregates& p);

/// Parses a partial payload.  `metrics_config` must match the config
/// the worker ran with (scale-bucket geometry is construction-time).
Result<PartialAggregates> LoadPartialAggregates(
    const std::vector<std::uint8_t>& payload,
    const MetricsConfig& metrics_config);

/// Writes `p` to `path` with the snapshot file framing, stamping
/// `p.header.fingerprint` into the file header.
Status WritePartialFile(const std::string& path, const PartialAggregates& p);

/// Reads and validates a partial file: framing (magic/version/CRC),
/// then file-header fingerprint against the payload header — a
/// mismatch means the file was tampered with or mixed up in transit.
Result<PartialAggregates> ReadPartialFile(const std::string& path,
                                          const MetricsConfig& metrics_config);

}  // namespace ld::fleet
