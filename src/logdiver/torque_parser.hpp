// Parser for Torque/Moab accounting logs.
//
// Record grammar (one per line):
//   MM/DD/YYYY HH:MM:SS;TYPE;JOBID;key=value key=value ...
// TYPE "S" = job start, "E" = job end; other record types (Q, D, A)
// are recognized and skipped.  Epoch-seconds fields (ctime/start/end)
// are authoritative for times; the leading wall-clock stamp is only the
// flush time.
#pragma once

#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "logdiver/records.hpp"

namespace ld {

class QuarantineSink;

class TorqueParser {
 public:
  /// Parses one line; nullopt result with ok status means "skipped".
  Result<std::optional<TorqueRecord>> ParseLine(std::string_view line);

  /// Parses many lines, accumulating stats.  Rejected lines are captured
  /// in `sink` (with reasons) when one is provided.
  std::vector<TorqueRecord> ParseLines(const std::vector<std::string>& lines,
                                       QuarantineSink* sink = nullptr);

  const ParseStats& stats() const { return stats_; }
  /// Checkpoint-restore hook: the parser's only cross-line state is its
  /// counters.
  void RestoreStats(const ParseStats& stats) { stats_ = stats; }

 private:
  ParseStats stats_;
};

}  // namespace ld
