// Parser for Torque/Moab accounting logs.
//
// Record grammar (one per line):
//   MM/DD/YYYY HH:MM:SS;TYPE;JOBID;key=value key=value ...
// TYPE "S" = job start, "E" = job end; other record types (Q, D, A)
// are recognized and skipped.  Epoch-seconds fields (ctime/start/end)
// are authoritative for times; the leading wall-clock stamp is only the
// flush time.
//
// The per-line parse is a pure function of the line, so batch parsing is
// chunk-parallel: ParseChunk runs on any thread over a slice of lines,
// ReduceChunks stitches the results back in original order — bit-identical
// to a sequential pass at any thread count.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "logdiver/chunked_parse.hpp"
#include "logdiver/records.hpp"

namespace ld {

class TorqueParser {
 public:
  using Chunk = ParsedChunk<TorqueRecord>;

  /// Parses one line; nullopt result with ok status means "skipped".
  Result<std::optional<TorqueRecord>> ParseLine(std::string_view line);

  /// Parses a slice of lines into a private chunk; safe to call from any
  /// thread (touches no parser state).  `first_line_no` is the 1-based
  /// global number of lines[0]; `capture` null disables quarantine.
  static Chunk ParseChunk(std::span<const std::string_view> lines,
                          std::uint64_t first_line_no,
                          const QuarantineConfig* capture);

  /// Folds chunks — in order — into this parser's stats and `sink`.
  std::vector<TorqueRecord> ReduceChunks(std::vector<Chunk>&& chunks,
                                         QuarantineSink* sink = nullptr);

  /// Parses many lines, chunked across `pool` (inline when null).
  /// Rejected lines are captured in `sink` (with reasons) when provided.
  std::vector<TorqueRecord> ParseLines(
      std::span<const std::string_view> lines, QuarantineSink* sink = nullptr,
      ThreadPool* pool = nullptr,
      std::size_t chunk_lines = kDefaultParseChunkLines);

  /// Legacy overload for owning line vectors; single-threaded.
  std::vector<TorqueRecord> ParseLines(const std::vector<std::string>& lines,
                                       QuarantineSink* sink = nullptr);

  const ParseStats& stats() const { return stats_; }
  /// Checkpoint-restore hook: the parser's only cross-line state is its
  /// counters.
  void RestoreStats(const ParseStats& stats) { stats_ = stats; }

 private:
  ParseStats stats_;
};

}  // namespace ld
