// LogDiver facade: parse -> coalesce -> reconstruct -> classify ->
// metrics, over an in-memory log set or an on-disk bundle directory.
//
// This is the public entry point a downstream user reaches for:
//
//   ld::Machine machine = ld::Machine::BlueWaters();
//   ld::LogDiver diver(machine, {});
//   auto analysis = diver.AnalyzeBundle("/data/bw-logs");
//   if (analysis.ok()) Print(analysis->metrics);
//
// The batch path is deterministically parallel: each source's lines are
// parsed in chunks across a fixed-size thread pool and reduced in
// original order, so the AnalysisResult is bit-identical at any thread
// count (see DESIGN.md "Parallel ingestion").  `LogDiverConfig::threads`
// (0 = auto: LOGDIVER_THREADS env, else hardware concurrency) sizes the
// pool; the streaming/resume path stays single-threaded by design — its
// snapshot cut points are defined per consumed line, which a parallel
// parse has no equivalent of.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "logdiver/alps_parser.hpp"
#include "logdiver/coalesce.hpp"
#include "logdiver/columns.hpp"
#include "logdiver/correlate.hpp"
#include "logdiver/hwerr_parser.hpp"
#include "logdiver/metrics.hpp"
#include "logdiver/quarantine.hpp"
#include "logdiver/reconstruct.hpp"
#include "logdiver/syslog_parser.hpp"
#include "logdiver/torque_parser.hpp"
#include "topology/machine.hpp"

namespace ld {

/// Ownership filter for multi-process scale-out (src/logdiver/fleet).
/// With count > 1 the analyzer still ingests the whole stream — parsing,
/// coalescing and the classification context stay bit-identical on
/// every worker — but folds only its owned runs and tuples into the
/// metric accumulators.  Ownership is a disjoint partition (runs by
/// `apid % count`, tuples by coalescer-assigned `id % count`, both
/// deterministic), which is what makes per-shard accumulators
/// merge-exact (MetricsAccumulator::MergeFrom).
struct ShardSpec {
  std::uint32_t index = 0;
  std::uint32_t count = 1;
  bool active() const { return count > 1; }
  bool OwnsRun(ApId apid) const {
    return count <= 1 || apid % count == index;
  }
  bool OwnsTuple(std::uint64_t tuple_id) const {
    return count <= 1 || tuple_id % count == index;
  }
};

struct LogDiverConfig {
  /// Calendar year of the first syslog line (classic syslog timestamps
  /// carry no year; see SyslogParser).
  int syslog_base_year = 2013;
  /// Parse threads for the batch path: 0 = auto (LOGDIVER_THREADS env,
  /// else hardware concurrency), 1 = sequential, N = pool of N.  The
  /// result is bit-identical for every value.
  int threads = 0;
  /// Lines per parse task; tests shrink it to force chunk boundaries on
  /// tiny streams.  0 means the default.
  std::size_t parse_chunk_lines = kDefaultParseChunkLines;
  CoalesceConfig coalesce;
  CorrelatorConfig correlator;
  MetricsConfig metrics;
  /// Degradation policy, error budgets, quarantine and streaming-state
  /// caps (see logdiver/quarantine.hpp and DESIGN.md).
  IngestConfig ingest;
  /// Metric-accumulation ownership for fleet workers; the default
  /// (count = 1) owns everything and is the serial analyzer.
  ShardSpec shard;
  /// Directory for the parsed-bundle cache (see logdiver/cache).  Empty
  /// disables caching.  AnalyzeBundle consults it before text-parsing
  /// and writes back after a miss; the streaming/fleet bundle loader
  /// caches per-line claimed times under the same keying.  A stale,
  /// foreign or torn entry is rejected (ld.cache.rejected_total) and
  /// the analysis falls back to the text parse — a cache can make a
  /// run faster, never different.
  std::string bundle_cache_dir;
  /// Byte-size cap for the bundle cache directory (0 = unbounded).
  /// When the cache grows past it, least-recently-used entries are
  /// evicted atomically (ld.cache.evicted_total); the CLI exposes it as
  /// --bundle-cache-max-mb.
  std::uint64_t bundle_cache_max_bytes = 0;
};

/// The four raw log streams LogDiver consumes.
struct LogSet {
  std::vector<std::string> torque;
  std::vector<std::string> alps;
  std::vector<std::string> syslog;
  std::vector<std::string> hwerr;
};

/// Non-owning view of the four streams: what the zero-copy bundle loader
/// produces (lines alias the file mappings) and what Analyze consumes.
struct LogSetView {
  std::vector<std::string_view> torque;
  std::vector<std::string_view> alps;
  std::vector<std::string_view> syslog;
  std::vector<std::string_view> hwerr;

  LogSetView() = default;
  /// Views into an owning LogSet (which must outlive the view).
  explicit LogSetView(const LogSet& logs);
};

/// Everything the parse phase produces, decoupled from the analysis
/// tail so the parsed-bundle cache can persist and restore it.  The
/// error stream is already columnar (syslog records first, hwerr
/// appended — the exact order the coalescer's tie-break keys on).
struct ParsedLogs {
  std::vector<TorqueRecord> torque;
  std::vector<AlpsRecord> alps;
  ErrorColumns errors;
  ParseStats torque_stats;
  ParseStats alps_stats;
  ParseStats syslog_stats;
  ParseStats hwerr_stats;
  QuarantineSink sink;
};

/// How the parsed-bundle cache participated in an analysis.
enum class CacheOutcome : std::uint8_t {
  kDisabled = 0,   // no cache dir configured
  kMiss,           // no usable entry; text parse ran, entry written
  kRejected,       // entry present but stale/foreign/torn; text parse ran
  kRecordsHit,     // parsed records loaded; analysis tail re-ran
  kHit,            // full hit: memoized result returned
};

struct AnalysisResult {
  std::vector<AppRun> runs;
  std::vector<ClassifiedRun> classified;
  std::vector<ErrorTuple> tuples;
  MetricsReport metrics;

  ParseStats torque_stats;
  ParseStats alps_stats;
  ParseStats syslog_stats;
  ParseStats hwerr_stats;
  ReconstructStats reconstruct_stats;
  CoalesceStats coalesce_stats;

  /// Ingestion-health counters; all-zero on a clean bundle.  Mirrored
  /// into `metrics.ingest` so exports carry them.
  IngestStats ingest;
  /// Rejected lines with reasons (bounded by the quarantine config).
  std::vector<QuarantineEntry> quarantine;

  /// Parsed-bundle cache participation (AnalyzeBundle only; the
  /// in-memory Analyze overloads always report kDisabled).
  CacheOutcome cache_outcome = CacheOutcome::kDisabled;
  /// Human-readable reason when an entry was rejected; the CLI prints
  /// it so a fallback to text parse is loud, never silent.
  std::string cache_note;
};

class LogDiver {
 public:
  LogDiver(const Machine& machine, LogDiverConfig config);

  /// Full pipeline over in-memory log lines.
  Result<AnalysisResult> Analyze(const LogSet& logs) const;

  /// Full pipeline over borrowed lines; the backing storage must stay
  /// alive for the duration of the call.
  Result<AnalysisResult> Analyze(const LogSetView& logs) const;

  /// Reads torque.log / alps.log / syslog.log / hwerr.log from `dir`
  /// (memory-mapped, rotation families stitched oldest-first) and runs
  /// the pipeline.  Missing hwerr.log is tolerated (the source is
  /// optional); the other three are required.
  Result<AnalysisResult> AnalyzeBundle(const std::string& dir) const;

  /// The parse phase alone: chunk-parallel parse + ordered reduction of
  /// all four sources into ParsedLogs.  Budget checks happen in
  /// AnalyzeParsed so a cached ParsedLogs takes the identical path.
  Result<ParsedLogs> ParseLogs(const LogSetView& logs, ThreadPool* pool) const;

  /// The analysis tail: budget checks, coalesce, reconstruct, classify,
  /// metrics.  AnalyzeWith == ParseLogs + AnalyzeParsed; the bundle
  /// cache feeds restored ParsedLogs straight into this.
  Result<AnalysisResult> AnalyzeParsed(ParsedLogs&& parsed,
                                       ThreadPool* pool) const;

  const LogDiverConfig& config() const { return config_; }
  const Machine& machine() const { return machine_; }

 private:
  Result<AnalysisResult> AnalyzeWith(const LogSetView& logs,
                                     ThreadPool* pool) const;

  const Machine& machine_;
  LogDiverConfig config_;
};

/// Reads a whole text file into lines (shared by the bundle loader and
/// the examples).
Result<std::vector<std::string>> ReadLines(const std::string& path);

/// Reads a logrotate family oldest-first: base.N ... base.2, base.1,
/// then base itself.  A lone base file (no rotations) reads as-is.
Result<std::vector<std::string>> ReadRotatedLines(const std::string& base);

/// Resolves a logrotate family to its segment paths, oldest first
/// (base.N ... base.1, base).  Fails with NotFound when `base` itself is
/// missing, and with a distinct "rotation gap" NotFound when a middle
/// segment is absent but higher-numbered ones exist — previously such a
/// gap silently truncated the stream's history.
Result<std::vector<std::string>> RotationSegments(const std::string& base);

}  // namespace ld
