// LogDiver facade: parse -> coalesce -> reconstruct -> classify ->
// metrics, over an in-memory log set or an on-disk bundle directory.
//
// This is the public entry point a downstream user reaches for:
//
//   ld::Machine machine = ld::Machine::BlueWaters();
//   ld::LogDiver diver(machine, {});
//   auto analysis = diver.AnalyzeBundle("/data/bw-logs");
//   if (analysis.ok()) Print(analysis->metrics);
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "logdiver/alps_parser.hpp"
#include "logdiver/coalesce.hpp"
#include "logdiver/correlate.hpp"
#include "logdiver/hwerr_parser.hpp"
#include "logdiver/metrics.hpp"
#include "logdiver/quarantine.hpp"
#include "logdiver/reconstruct.hpp"
#include "logdiver/syslog_parser.hpp"
#include "logdiver/torque_parser.hpp"
#include "topology/machine.hpp"

namespace ld {

struct LogDiverConfig {
  /// Calendar year of the first syslog line (classic syslog timestamps
  /// carry no year; see SyslogParser).
  int syslog_base_year = 2013;
  CoalesceConfig coalesce;
  CorrelatorConfig correlator;
  MetricsConfig metrics;
  /// Degradation policy, error budgets, quarantine and streaming-state
  /// caps (see logdiver/quarantine.hpp and DESIGN.md).
  IngestConfig ingest;
};

/// The four raw log streams LogDiver consumes.
struct LogSet {
  std::vector<std::string> torque;
  std::vector<std::string> alps;
  std::vector<std::string> syslog;
  std::vector<std::string> hwerr;
};

struct AnalysisResult {
  std::vector<AppRun> runs;
  std::vector<ClassifiedRun> classified;
  std::vector<ErrorTuple> tuples;
  MetricsReport metrics;

  ParseStats torque_stats;
  ParseStats alps_stats;
  ParseStats syslog_stats;
  ParseStats hwerr_stats;
  ReconstructStats reconstruct_stats;
  CoalesceStats coalesce_stats;

  /// Ingestion-health counters; all-zero on a clean bundle.  Mirrored
  /// into `metrics.ingest` so exports carry them.
  IngestStats ingest;
  /// Rejected lines with reasons (bounded by the quarantine config).
  std::vector<QuarantineEntry> quarantine;
};

class LogDiver {
 public:
  LogDiver(const Machine& machine, LogDiverConfig config);

  /// Full pipeline over in-memory log lines.
  Result<AnalysisResult> Analyze(const LogSet& logs) const;

  /// Reads torque.log / alps.log / syslog.log / hwerr.log from `dir`
  /// and runs the pipeline.  Missing hwerr.log is tolerated (the source
  /// is optional); the other three are required.
  Result<AnalysisResult> AnalyzeBundle(const std::string& dir) const;

  const LogDiverConfig& config() const { return config_; }

 private:
  const Machine& machine_;
  LogDiverConfig config_;
};

/// Reads a whole text file into lines (shared by the bundle loader and
/// the examples).
Result<std::vector<std::string>> ReadLines(const std::string& path);

/// Reads a logrotate family oldest-first: base.N ... base.2, base.1,
/// then base itself.  A lone base file (no rotations) reads as-is.
Result<std::vector<std::string>> ReadRotatedLines(const std::string& base);

}  // namespace ld
