#include "logdiver/reconstruct.hpp"

#include <algorithm>
#include <type_traits>
#include <unordered_map>

namespace ld {
namespace {

// Shared body for the const-ref and rvalue overloads: when the caller
// hands over the records, each placement's nid list is moved into its
// run instead of copied (~50k vector clones per full-campaign bundle).
template <typename AlpsVec>
std::vector<AppRun> ReconstructImpl(const Machine& machine, AlpsVec& alps,
                                    const std::vector<TorqueRecord>& torque,
                                    ReconstructStats* stats) {
  constexpr bool kMayMove = !std::is_const_v<AlpsVec>;
  ReconstructStats local;

  // Index Torque E records (authoritative for job context); fall back to
  // S records for jobs still running at end-of-log.
  std::unordered_map<JobId, const TorqueRecord*> jobs;
  jobs.reserve(torque.size());
  for (const TorqueRecord& rec : torque) {
    if (rec.kind == TorqueRecord::Kind::kEnd) {
      jobs[rec.jobid] = &rec;
    } else {
      jobs.try_emplace(rec.jobid, &rec);
    }
  }

  std::size_t placements = 0;
  for (const AlpsRecord& rec : alps) {
    placements += rec.kind == AlpsRecord::Kind::kPlace;
  }
  std::unordered_map<ApId, AppRun> by_apid;
  by_apid.reserve(placements);
  for (auto& rec : alps) {
    if (rec.kind == AlpsRecord::Kind::kPlace) {
      ++local.placements;
      AppRun run;
      run.apid = rec.apid;
      run.jobid = rec.jobid;
      run.user = rec.user;
      run.nodect = rec.nodect != 0
                       ? rec.nodect
                       : static_cast<std::uint32_t>(rec.nids.size());
      if constexpr (kMayMove) {
        run.nodes = std::move(rec.nids);
      } else {
        run.nodes = rec.nids;
      }
      run.start = rec.time;
      run.end = rec.time;  // until a termination record arrives
      if (!by_apid.emplace(rec.apid, std::move(run)).second) {
        ++local.duplicate_placements;  // replayed placement; first wins
      }
    }
  }

  for (const AlpsRecord& rec : alps) {
    if (rec.kind == AlpsRecord::Kind::kPlace) continue;
    ++local.terminations;
    auto it = by_apid.find(rec.apid);
    if (it == by_apid.end()) {
      ++local.orphan_terminations;
      continue;
    }
    AppRun& run = it->second;
    if (run.has_termination) {
      ++local.duplicate_terminations;  // replayed exit/kill; first wins
      continue;
    }
    run.end = rec.time;
    run.has_termination = true;
    if (rec.kind == AlpsRecord::Kind::kExit) {
      run.exit_code = rec.exit_code;
      run.exit_signal = rec.exit_signal;
    } else {
      run.killed_node_failure = rec.kill_reason == "node_failure";
      run.failed_nid = rec.failed_nid;
      run.exit_code = 137;  // SIGKILL convention
      run.exit_signal = 9;
    }
  }

  // The majority vote below touches every placed nid; a dense type
  // table keeps those lookups inside a few KB instead of striding
  // through the full Node records.
  std::vector<NodeType> node_types(machine.node_count());
  for (NodeIndex n = 0; n < machine.node_count(); ++n) {
    node_types[n] = machine.node(n).type;
  }

  std::vector<AppRun> runs;
  runs.reserve(by_apid.size());
  for (auto& [apid, run] : by_apid) {
    if (!run.has_termination) ++local.missing_termination;

    // Node type from placement: majority partition of the nids.
    std::uint32_t xe = 0, xk = 0, other = 0;
    for (NodeIndex n : run.nodes) {
      if (n >= machine.node_count()) {
        ++other;
        continue;
      }
      switch (node_types[n]) {
        case NodeType::kXE: ++xe; break;
        case NodeType::kXK: ++xk; break;
        case NodeType::kService: ++other; break;
      }
    }
    run.node_type = xk > xe ? NodeType::kXK : NodeType::kXE;
    if (xe != 0 && xk != 0) ++local.mixed_node_types;

    const auto job = jobs.find(run.jobid);
    if (job == jobs.end()) {
      ++local.missing_job;
    } else {
      run.queue = job->second->queue;
      run.job_submit = job->second->submit;
      run.job_start = job->second->start;
      run.walltime_limit = job->second->walltime_limit;
      run.job_exit_status = job->second->exit_status;
      if (run.user.empty()) run.user = job->second->user;
    }
    runs.push_back(std::move(run));
  }

  // Sort (start, apid, index) keys instead of the ~wide AppRun structs
  // themselves, then place each run once: same order, a fraction of the
  // bytes shuffled through the sort network.
  struct SortKey {
    TimePoint start;
    ApId apid;
    std::uint32_t index;
  };
  std::vector<SortKey> keys;
  keys.reserve(runs.size());
  for (std::uint32_t i = 0; i < runs.size(); ++i) {
    keys.push_back(SortKey{runs[i].start, runs[i].apid, i});
  }
  std::sort(keys.begin(), keys.end(), [](const SortKey& a, const SortKey& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.apid < b.apid;
  });
  std::vector<AppRun> sorted;
  sorted.reserve(runs.size());
  for (const SortKey& key : keys) {
    sorted.push_back(std::move(runs[key.index]));
  }
  runs = std::move(sorted);
  local.runs = runs.size();
  if (stats != nullptr) *stats = local;
  return runs;
}

}  // namespace

std::vector<AppRun> ReconstructRuns(const Machine& machine,
                                    const std::vector<AlpsRecord>& alps,
                                    const std::vector<TorqueRecord>& torque,
                                    ReconstructStats* stats) {
  return ReconstructImpl(machine, alps, torque, stats);
}

std::vector<AppRun> ReconstructRuns(const Machine& machine,
                                    std::vector<AlpsRecord>&& alps,
                                    const std::vector<TorqueRecord>& torque,
                                    ReconstructStats* stats) {
  return ReconstructImpl(machine, alps, torque, stats);
}

}  // namespace ld
