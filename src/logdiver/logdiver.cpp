#include "logdiver/logdiver.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <optional>
#include <span>
#include <utility>

#include "common/obs/obs.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "logdiver/block_reader.hpp"
#include "logdiver/cache/bundle_cache.hpp"

namespace ld {

Result<std::vector<std::string>> ReadLines(const std::string& path) {
  LD_ASSIGN_OR_RETURN(const MappedFile file, MappedFile::Open(path));
  std::vector<std::string_view> views;
  AppendLines(file.data(), &views);
  std::vector<std::string> lines;
  lines.reserve(views.size());
  for (const std::string_view line : views) lines.emplace_back(line);
  return lines;
}

Result<std::vector<std::string>> RotationSegments(const std::string& base) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::exists(base, ec) || ec) {
    return NotFoundError("cannot open '" + base + "'");
  }
  // Scan the directory for base.N siblings instead of probing upward
  // from base.1: probing stops at the first hole, so a missing middle
  // segment used to silently drop every older segment from the stream.
  const fs::path base_path(base);
  fs::path parent = base_path.parent_path();
  if (parent.empty()) parent = ".";
  const std::string prefix = base_path.filename().string() + ".";
  std::vector<std::uint64_t> numbers;
  for (fs::directory_iterator it(parent, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (!StartsWith(name, prefix)) continue;
    const auto n = ParseUint(std::string_view(name).substr(prefix.size()));
    if (n.ok() && *n >= 1) numbers.push_back(*n);
  }
  std::sort(numbers.begin(), numbers.end());
  numbers.erase(std::unique(numbers.begin(), numbers.end()), numbers.end());
  if (!numbers.empty()) {
    const std::uint64_t highest = numbers.back();
    for (std::uint64_t expected = 1; expected <= highest; ++expected) {
      if (numbers[static_cast<std::size_t>(expected - 1)] != expected) {
        return NotFoundError("rotation gap: '" + base + "." +
                             std::to_string(expected) +
                             "' is missing but '" + base + "." +
                             std::to_string(highest) + "' exists");
      }
    }
  }
  std::vector<std::string> paths;
  paths.reserve(numbers.size() + 1);
  for (auto it = numbers.rbegin(); it != numbers.rend(); ++it) {
    paths.push_back(base + "." + std::to_string(*it));
  }
  paths.push_back(base);
  return paths;
}

Result<std::vector<std::string>> ReadRotatedLines(const std::string& base) {
  // logrotate convention: base.log is the newest segment, base.log.1 the
  // one before it, and so on.  Read oldest-first so the stream stays
  // chronological (the syslog year reconstruction depends on it).
  LD_ASSIGN_OR_RETURN(const auto segments, RotationSegments(base));
  std::uintmax_t total_bytes = 0;
  for (const std::string& path : segments) {
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (!ec) total_bytes += size;
  }
  std::vector<std::string> lines;
  // ~64 bytes/line is conservative for these formats; one reservation
  // instead of doubling growth across a multi-segment family.
  lines.reserve(static_cast<std::size_t>(total_bytes / 64) + 1);
  for (const std::string& path : segments) {
    LD_ASSIGN_OR_RETURN(auto segment, ReadLines(path));
    lines.insert(lines.end(), std::make_move_iterator(segment.begin()),
                 std::make_move_iterator(segment.end()));
  }
  return lines;
}

LogSetView::LogSetView(const LogSet& logs)
    : torque(LineViews(logs.torque)),
      alps(LineViews(logs.alps)),
      syslog(LineViews(logs.syslog)),
      hwerr(LineViews(logs.hwerr)) {}

LogDiver::LogDiver(const Machine& machine, LogDiverConfig config)
    : machine_(machine), config_(std::move(config)) {}

Result<AnalysisResult> LogDiver::Analyze(const LogSet& logs) const {
  return Analyze(LogSetView(logs));
}

Result<AnalysisResult> LogDiver::Analyze(const LogSetView& logs) const {
  const int threads = ResolveThreadCount(config_.threads);
  if (threads > 1) {
    ThreadPool pool(threads);
    return AnalyzeWith(logs, &pool);
  }
  return AnalyzeWith(logs, nullptr);
}

namespace {

/// Folds one source's ParseStats into the ingest counters.  Called once
/// per source per analysis, after the ordered reduction — never per
/// line, per the obs.hpp granularity rule.
void CountSourceStats([[maybe_unused]] const ParseStats& stats) {
  LD_OBS_COUNTER_ADD(obs::names::kIngestLinesTotal, stats.lines);
  LD_OBS_COUNTER_ADD(obs::names::kIngestRecordsTotal, stats.records);
  LD_OBS_COUNTER_ADD(obs::names::kIngestMalformedTotal, stats.malformed);
}

}  // namespace

Result<AnalysisResult> LogDiver::AnalyzeWith(const LogSetView& logs,
                                             ThreadPool* pool) const {
  LD_OBS_SPAN("analyze");
  const std::uint64_t analyze_start_ns = LD_OBS_NOW_NS();
  LD_ASSIGN_OR_RETURN(ParsedLogs parsed, ParseLogs(logs, pool));
  auto result = AnalyzeParsed(std::move(parsed), pool);
  if (analyze_start_ns != 0 && result.ok()) {
    LD_OBS_HIST_RECORD(obs::names::kAnalyzeTotalMicros,
                       (LD_OBS_NOW_NS() - analyze_start_ns) / 1000);
  }
  return result;
}

Result<ParsedLogs> LogDiver::ParseLogs(const LogSetView& logs,
                                       ThreadPool* pool) const {
  ParsedLogs parsed;
  parsed.sink = QuarantineSink(config_.ingest.quarantine);
  QuarantineSink& sink = parsed.sink;
  const QuarantineConfig* capture = &config_.ingest.quarantine;

  // Parse each source, all four concurrently on one pool: every chunk
  // of every source is one task in a single group, so a small source
  // cannot leave the pool idle while a big one still has chunks queued.
  // Chunks land in pre-sized slots (no locks); the ordered per-source
  // reductions below run on this thread, in fixed source order, which
  // keeps records, stats, and quarantine entries bit-identical to a
  // sequential pass.
  const std::size_t chunk_lines = config_.parse_chunk_lines == 0
                                      ? kDefaultParseChunkLines
                                      : config_.parse_chunk_lines;
  const auto torque_ranges = ChunkRanges(logs.torque.size(), chunk_lines);
  const auto alps_ranges = ChunkRanges(logs.alps.size(), chunk_lines);
  const auto syslog_ranges = ChunkRanges(logs.syslog.size(), chunk_lines);
  const auto hwerr_ranges = ChunkRanges(logs.hwerr.size(), chunk_lines);
  std::vector<TorqueParser::Chunk> torque_chunks(torque_ranges.size());
  std::vector<AlpsParser::Chunk> alps_chunks(alps_ranges.size());
  std::vector<SyslogParser::Chunk> syslog_chunks(syslog_ranges.size());
  std::vector<HwerrParser::Chunk> hwerr_chunks(hwerr_ranges.size());
  {
    LD_OBS_SPAN("parse");
    TaskGroup group(pool);
    // span_name is a string literal ("chunk/torque", ...) so the per-task
    // trace span costs no allocation when the tracer is disarmed.
    const auto submit = [&group, capture](const auto& ranges, const auto& lines,
                                          auto& chunks, auto parse_chunk,
                                          [[maybe_unused]] const char* span_name) {
      const std::string_view* base = lines.data();
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        const IndexRange r = ranges[i];
        auto* slot = &chunks[i];
        group.Run([base, r, capture, slot, parse_chunk, span_name] {
          LD_OBS_SPAN(span_name);
          const std::uint64_t chunk_start_ns = LD_OBS_NOW_NS();
          *slot = parse_chunk(
              std::span<const std::string_view>(base + r.begin, r.size()),
              static_cast<std::uint64_t>(r.begin) + 1, capture);
          LD_OBS_COUNTER_ADD(obs::names::kIngestChunksTotal, 1);
          if (chunk_start_ns != 0) {
            LD_OBS_HIST_RECORD(obs::names::kIngestChunkMicros,
                               (LD_OBS_NOW_NS() - chunk_start_ns) / 1000);
          }
        });
      }
    };
    submit(torque_ranges, logs.torque, torque_chunks, &TorqueParser::ParseChunk,
           "chunk/torque");
    submit(alps_ranges, logs.alps, alps_chunks, &AlpsParser::ParseChunk,
           "chunk/alps");
    submit(syslog_ranges, logs.syslog, syslog_chunks,
           &SyslogParser::ParseChunk, "chunk/syslog");
    submit(hwerr_ranges, logs.hwerr, hwerr_chunks, &HwerrParser::ParseChunk,
           "chunk/hwerr");
    group.Wait();
  }

  TorqueParser torque_parser;
  {
    LD_OBS_SPAN("reduce/torque");
    parsed.torque = torque_parser.ReduceChunks(std::move(torque_chunks), &sink);
  }
  parsed.torque_stats = torque_parser.stats();
  CountSourceStats(parsed.torque_stats);

  AlpsParser alps_parser;
  {
    LD_OBS_SPAN("reduce/alps");
    parsed.alps = alps_parser.ReduceChunks(std::move(alps_chunks), &sink);
  }
  parsed.alps_stats = alps_parser.stats();
  CountSourceStats(parsed.alps_stats);

  SyslogParser syslog_parser(config_.syslog_base_year);
  std::vector<ErrorRecord> errors;
  {
    LD_OBS_SPAN("reduce/syslog");
    errors = syslog_parser.ReduceChunks(std::move(syslog_chunks), &sink);
  }
  parsed.syslog_stats = syslog_parser.stats();
  CountSourceStats(parsed.syslog_stats);

  HwerrParser hwerr_parser;
  std::vector<ErrorRecord> hwerr;
  {
    LD_OBS_SPAN("reduce/hwerr");
    hwerr = hwerr_parser.ReduceChunks(std::move(hwerr_chunks), &sink);
  }
  parsed.hwerr_stats = hwerr_parser.stats();
  CountSourceStats(parsed.hwerr_stats);

  // Syslog errors first, hwerr appended — the order the coalescer's
  // (time, input index) tie-break keys on.
  parsed.errors.reserve(errors.size() + hwerr.size());
  parsed.errors.Append(errors);
  parsed.errors.Append(hwerr);
  return parsed;
}

Result<AnalysisResult> LogDiver::AnalyzeParsed(ParsedLogs&& parsed,
                                               ThreadPool* pool) const {
  AnalysisResult result;
  const IngestConfig& ingest = config_.ingest;
  result.torque_stats = parsed.torque_stats;
  result.alps_stats = parsed.alps_stats;
  result.syslog_stats = parsed.syslog_stats;
  result.hwerr_stats = parsed.hwerr_stats;

  // A source over its malformed-line budget either aborts the analysis
  // (fail-fast: this is probably the wrong file or a truncated transfer)
  // or is disclosed in the ingest counters (quarantine-and-continue).
  // The checks run here, not in ParseLogs, so a cache-restored
  // ParsedLogs faces exactly the policy a fresh parse would.
  auto check_budget = [&](const char* name, const ParseStats& stats) -> Status {
    if (!ingest.budget.Exceeded(stats)) return Status::Ok();
    ++result.ingest.budget_exhausted_sources;
    LD_OBS_COUNTER_ADD(obs::names::kIngestBudgetExhaustedTotal, 1);
    if (ingest.policy == DegradationPolicy::kFailFast) {
      return ParseError(std::string(name) + ": " +
                        std::to_string(stats.malformed) + " of " +
                        std::to_string(stats.lines) +
                        " lines malformed, over the error budget");
    }
    return Status::Ok();
  };
  LD_TRY(check_budget("torque", result.torque_stats));
  LD_TRY(check_budget("alps", result.alps_stats));
  LD_TRY(check_budget("syslog", result.syslog_stats));
  LD_TRY(check_budget("hwerr", result.hwerr_stats));

  // 2. Coalesce error events into tuples (columnar feed).
  {
    LD_OBS_SPAN("coalesce");
    result.tuples = CoalesceEvents(machine_, parsed.errors, config_.coalesce,
                                   &result.coalesce_stats);
  }

  // 3. Reconstruct application runs (replayed records dedup here).
  {
    LD_OBS_SPAN("reconstruct");
    // parsed is consumed by this analysis (the cache path snapshots the
    // records before calling in), so the placements' nid lists move.
    result.runs = ReconstructRuns(machine_, std::move(parsed.alps),
                                  parsed.torque, &result.reconstruct_stats);
  }

  // 4. Categorize and attribute.
  {
    LD_OBS_SPAN("classify");
    const Correlator correlator(machine_, config_.correlator);
    result.classified = correlator.Classify(result.runs, result.tuples, pool);
  }

  // 5. Metrics.
  {
    LD_OBS_SPAN("metrics");
    result.metrics = ComputeMetrics(result.runs, result.classified,
                                    result.tuples, config_.metrics);
  }

  result.ingest.quarantined = parsed.sink.total();
  result.ingest.quarantine_overflow = parsed.sink.overflow();
  result.ingest.duplicate_placements =
      result.reconstruct_stats.duplicate_placements;
  result.ingest.duplicate_terminations =
      result.reconstruct_stats.duplicate_terminations;
  result.quarantine = parsed.sink.entries();
  result.metrics.ingest = result.ingest;

  // Bulk self-measurements, once per analysis (overflow is counted here,
  // not in QuarantineSink::MergeFrom, so merged sinks never double-count).
  LD_OBS_COUNTER_ADD(obs::names::kQuarantineOverflowTotal,
                     parsed.sink.overflow());
  LD_OBS_COUNTER_ADD(obs::names::kAnalyzeRunsTotal, result.runs.size());
  LD_OBS_COUNTER_ADD(obs::names::kAnalyzeTuplesTotal, result.tuples.size());
  return result;
}

Result<AnalysisResult> LogDiver::AnalyzeBundle(const std::string& dir) const {
  const int threads = ResolveThreadCount(config_.threads);
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool_storage.emplace(threads);
    pool = &*pool_storage;
  }

  // Map every segment and keep the mappings alive across the analysis:
  // the line views (and the quarantine/record fields parsers keep as
  // views nowhere — they copy) alias the mapped bytes.
  std::vector<MappedFile> mappings;
  LogSetView views;
  const auto load = [&mappings, pool](const std::string& base,
                                      std::vector<std::string_view>* out)
      -> Status {
    LD_ASSIGN_OR_RETURN(const auto segments, RotationSegments(base));
    for (const std::string& path : segments) {
      LD_OBS_SPAN_DYN("load/" + path);
      LD_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
      const std::vector<std::string_view> lines =
          SplitLinesParallel(file.data(), pool);
      out->insert(out->end(), lines.begin(), lines.end());
      mappings.push_back(std::move(file));
    }
    return Status::Ok();
  };

  {
    LD_OBS_SPAN("load_bundle");
    LD_TRY(load(dir + "/torque.log", &views.torque));
    LD_TRY(load(dir + "/alps.log", &views.alps));
    LD_TRY(load(dir + "/syslog.log", &views.syslog));
    if (std::filesystem::exists(dir + "/hwerr.log")) {
      LD_TRY(load(dir + "/hwerr.log", &views.hwerr));
    }
  }
  if (config_.bundle_cache_dir.empty()) return AnalyzeWith(views, pool);

  // Parsed-bundle cache (src/logdiver/cache).  A full hit returns the
  // memoized result without touching a parser; a records hit replays
  // the analysis tail over restored columns; anything untrustworthy is
  // rejected and the text parse below remains the source of truth.
  const cache::BundleCache bundle_cache(config_.bundle_cache_dir,
                                        config_.bundle_cache_max_bytes);
  const cache::CacheKeys keys = cache::MakeKeys(views, machine_, config_);
  auto entry = bundle_cache.Load(keys);
  if (entry.ok()) {
    if (entry->result.has_value()) {
      AnalysisResult result = std::move(*entry->result);
      result.cache_outcome = CacheOutcome::kHit;
      return result;
    }
    auto result = AnalyzeParsed(std::move(entry->parsed), pool);
    if (result.ok()) result->cache_outcome = CacheOutcome::kRecordsHit;
    return result;
  }
  const bool rejected = entry.status().code() != StatusCode::kNotFound;
  const std::string note = rejected ? entry.status().message() : "";

  LD_OBS_SPAN("analyze");
  const std::uint64_t analyze_start_ns = LD_OBS_NOW_NS();
  LD_ASSIGN_OR_RETURN(ParsedLogs parsed, ParseLogs(views, pool));
  // Snapshot the records bytes before the tail consumes the columns.
  const std::vector<std::uint8_t> parsed_bytes =
      cache::BundleCache::EncodeParsed(parsed);
  auto result = AnalyzeParsed(std::move(parsed), pool);
  if (!result.ok()) return result;
  if (analyze_start_ns != 0) {
    LD_OBS_HIST_RECORD(obs::names::kAnalyzeTotalMicros,
                       (LD_OBS_NOW_NS() - analyze_start_ns) / 1000);
  }
  result->cache_outcome = rejected ? CacheOutcome::kRejected
                                   : CacheOutcome::kMiss;
  result->cache_note = note;
  const Status stored = bundle_cache.Store(keys, parsed_bytes, *result);
  if (!stored.ok()) {
    // A write failure costs only the next run's speed; disclose it.
    result->cache_note = result->cache_note.empty()
                             ? stored.message()
                             : result->cache_note + "; " + stored.message();
  }
  return result;
}

}  // namespace ld
