#include "logdiver/logdiver.hpp"

#include <filesystem>
#include <fstream>

namespace ld {

Result<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

LogDiver::LogDiver(const Machine& machine, LogDiverConfig config)
    : machine_(machine), config_(std::move(config)) {}

Result<AnalysisResult> LogDiver::Analyze(const LogSet& logs) const {
  AnalysisResult result;
  const IngestConfig& ingest = config_.ingest;
  QuarantineSink sink(ingest.quarantine);

  // A source over its malformed-line budget either aborts the analysis
  // (fail-fast: this is probably the wrong file or a truncated transfer)
  // or is disclosed in the ingest counters (quarantine-and-continue).
  auto check_budget = [&](const char* name, const ParseStats& stats) -> Status {
    if (!ingest.budget.Exceeded(stats)) return Status::Ok();
    ++result.ingest.budget_exhausted_sources;
    if (ingest.policy == DegradationPolicy::kFailFast) {
      return ParseError(std::string(name) + ": " +
                        std::to_string(stats.malformed) + " of " +
                        std::to_string(stats.lines) +
                        " lines malformed, over the error budget");
    }
    return Status::Ok();
  };

  // 1. Parse each source.
  TorqueParser torque_parser;
  const std::vector<TorqueRecord> torque =
      torque_parser.ParseLines(logs.torque, &sink);
  result.torque_stats = torque_parser.stats();
  LD_TRY(check_budget("torque", result.torque_stats));

  AlpsParser alps_parser;
  const std::vector<AlpsRecord> alps = alps_parser.ParseLines(logs.alps, &sink);
  result.alps_stats = alps_parser.stats();
  LD_TRY(check_budget("alps", result.alps_stats));

  SyslogParser syslog_parser(config_.syslog_base_year);
  std::vector<ErrorRecord> errors =
      syslog_parser.ParseLines(logs.syslog, &sink);
  result.syslog_stats = syslog_parser.stats();
  LD_TRY(check_budget("syslog", result.syslog_stats));

  HwerrParser hwerr_parser;
  std::vector<ErrorRecord> hwerr = hwerr_parser.ParseLines(logs.hwerr, &sink);
  result.hwerr_stats = hwerr_parser.stats();
  LD_TRY(check_budget("hwerr", result.hwerr_stats));

  errors.insert(errors.end(), std::make_move_iterator(hwerr.begin()),
                std::make_move_iterator(hwerr.end()));

  // 2. Coalesce error events into tuples.
  result.tuples = CoalesceEvents(machine_, std::move(errors),
                                 config_.coalesce, &result.coalesce_stats);

  // 3. Reconstruct application runs (replayed records dedup here).
  result.runs =
      ReconstructRuns(machine_, alps, torque, &result.reconstruct_stats);

  // 4. Categorize and attribute.
  const Correlator correlator(machine_, config_.correlator);
  result.classified = correlator.Classify(result.runs, result.tuples);

  // 5. Metrics.
  result.metrics = ComputeMetrics(result.runs, result.classified,
                                  result.tuples, config_.metrics);

  result.ingest.quarantined = sink.total();
  result.ingest.quarantine_overflow = sink.overflow();
  result.ingest.duplicate_placements =
      result.reconstruct_stats.duplicate_placements;
  result.ingest.duplicate_terminations =
      result.reconstruct_stats.duplicate_terminations;
  result.quarantine = sink.entries();
  result.metrics.ingest = result.ingest;
  return result;
}

Result<std::vector<std::string>> ReadRotatedLines(const std::string& base) {
  // logrotate convention: base.log is the newest segment, base.log.1 the
  // one before it, and so on.  Read oldest-first so the stream stays
  // chronological (the syslog year reconstruction depends on it).
  std::vector<std::string> lines;
  int highest = 0;
  while (std::filesystem::exists(base + "." + std::to_string(highest + 1))) {
    ++highest;
  }
  for (int n = highest; n >= 1; --n) {
    auto segment = ReadLines(base + "." + std::to_string(n));
    if (!segment.ok()) return segment.status();
    lines.insert(lines.end(), std::make_move_iterator(segment->begin()),
                 std::make_move_iterator(segment->end()));
  }
  auto newest = ReadLines(base);
  if (!newest.ok()) return newest.status();
  lines.insert(lines.end(), std::make_move_iterator(newest->begin()),
               std::make_move_iterator(newest->end()));
  return lines;
}

Result<AnalysisResult> LogDiver::AnalyzeBundle(const std::string& dir) const {
  LogSet logs;
  auto torque = ReadRotatedLines(dir + "/torque.log");
  if (!torque.ok()) return torque.status();
  logs.torque = std::move(*torque);

  auto alps = ReadRotatedLines(dir + "/alps.log");
  if (!alps.ok()) return alps.status();
  logs.alps = std::move(*alps);

  auto syslog = ReadRotatedLines(dir + "/syslog.log");
  if (!syslog.ok()) return syslog.status();
  logs.syslog = std::move(*syslog);

  if (std::filesystem::exists(dir + "/hwerr.log")) {
    auto hwerr = ReadRotatedLines(dir + "/hwerr.log");
    if (!hwerr.ok()) return hwerr.status();
    logs.hwerr = std::move(*hwerr);
  }
  return Analyze(logs);
}

}  // namespace ld
