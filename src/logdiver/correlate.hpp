// Outcome categorization and error-application correlation — the heart
// of LogDiver.
//
// Every reconstructed run is categorized as success / user failure /
// system failure / walltime / unknown by combining:
//   1. exit evidence (code, signal, ALPS kill records),
//   2. walltime accounting (did the scheduler kill the job at its limit?)
//   3. spatio-temporal correlation with coalesced error tuples: a fatal
//      tuple on one of the run's nodes (or its blade/Gemini router)
//      shortly before the run died, or a system-wide incident whose
//      window covers the death time.
//
// Only fatal-severity tuples are eligible for attribution: corrected
// events are the noise floor and blaming them would poison precision —
// the ablation bench quantifies exactly that with the baselines in
// src/analysis/baselines.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "logdiver/coalesce.hpp"
#include "logdiver/reconstruct.hpp"
#include "topology/machine.hpp"
#include "workload/types.hpp"

namespace ld {

class ThreadPool;

struct CorrelatorConfig {
  /// A node-scoped fatal tuple attributes to a run that died within
  /// [tuple.first - after, tuple.first + before] ... i.e. the run's end
  /// must fall no more than `before` after the error started and no
  /// more than `after` before it (log timestamp jitter).
  Duration attribution_before = Duration::Seconds(300);
  Duration attribution_after = Duration::Seconds(120);
  /// Per-category overrides of `attribution_before`: some error classes
  /// take much longer to kill (a memory error can corrupt state minutes
  /// before the crash; a heartbeat fault kills within seconds).  The
  /// real LogDiver tuned windows per category the same way.
  std::vector<std::pair<ErrorCategory, Duration>> category_before;
  /// Extra slack around a system incident's impact window.
  Duration incident_slack = Duration::Seconds(120);
  /// Tolerance for "the job ran into its walltime limit".
  Duration walltime_tolerance = Duration::Seconds(90);

  /// The `before` window for a category (override or default).
  Duration BeforeWindow(ErrorCategory category) const {
    for (const auto& [cat, window] : category_before) {
      if (cat == category) return window;
    }
    return attribution_before;
  }
};

struct ClassifiedRun {
  std::uint32_t run_index = 0;  // into the input runs vector
  AppOutcome outcome = AppOutcome::kUnknown;
  /// Attributed root cause for system failures; kUnknown when the
  /// failure is evident (e.g. ALPS node-failure kill) but no error
  /// tuple explains it — the detection-gap signal of anchor A6.
  ErrorCategory cause = ErrorCategory::kUnknown;
  /// Matched tuple id (0 = none).
  std::uint64_t tuple_id = 0;
};

class Correlator {
 public:
  Correlator(const Machine& machine, CorrelatorConfig config);

  /// Classifies every run against the tuple set.  Runs and tuples may be
  /// in any order; an internal spatial index is built once per call.
  /// With a pool, runs are classified in chunks across the workers; each
  /// run's verdict depends only on that run and the (read-only) index,
  /// and results land in index-ordered slots, so the output is
  /// bit-identical at any thread count.
  std::vector<ClassifiedRun> Classify(const std::vector<AppRun>& runs,
                                      const std::vector<ErrorTuple>& tuples,
                                      ThreadPool* pool = nullptr) const;

  const CorrelatorConfig& config() const { return config_; }

 private:
  const Machine& machine_;
  CorrelatorConfig config_;
};

}  // namespace ld
