#include "analysis/bootstrap.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace ld {

Result<BootstrapCi> BootstrapRatioCi(const std::vector<double>& numerator,
                                     const std::vector<double>& denominator,
                                     std::uint32_t replicas, Rng& rng) {
  if (numerator.size() != denominator.size() || numerator.empty()) {
    return InvalidArgumentError("BootstrapRatioCi: mismatched/empty inputs");
  }
  if (replicas == 0) {
    return InvalidArgumentError("BootstrapRatioCi: need replicas > 0");
  }
  double num_total = 0.0, den_total = 0.0;
  for (std::size_t i = 0; i < numerator.size(); ++i) {
    num_total += numerator[i];
    den_total += denominator[i];
  }
  if (!(den_total > 0.0)) {
    return InvalidArgumentError("BootstrapRatioCi: zero denominator");
  }

  const std::size_t n = numerator.size();
  std::vector<double> samples;
  samples.reserve(replicas);
  for (std::uint32_t r = 0; r < replicas; ++r) {
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pick = rng.UniformInt(n);
      num += numerator[pick];
      den += denominator[pick];
    }
    samples.push_back(den > 0.0 ? num / den : 0.0);
  }

  BootstrapCi ci;
  ci.point = num_total / den_total;
  ci.lo = Quantile(samples, 0.025);
  ci.hi = Quantile(samples, 0.975);
  return ci;
}

Result<BootstrapCi> BootstrapLostShareCi(
    const std::vector<AppRun>& runs,
    const std::vector<ClassifiedRun>& classified, std::uint32_t replicas,
    Rng& rng) {
  std::vector<double> lost, consumed;
  lost.reserve(classified.size());
  consumed.reserve(classified.size());
  for (const ClassifiedRun& cls : classified) {
    const double nh = runs[cls.run_index].NodeHours();
    consumed.push_back(nh);
    lost.push_back(cls.outcome == AppOutcome::kSystemFailure ? nh : 0.0);
  }
  return BootstrapRatioCi(lost, consumed, replicas, rng);
}

Result<BootstrapCi> BootstrapFailureFractionCi(
    const std::vector<AppRun>& runs,
    const std::vector<ClassifiedRun>& classified, std::uint32_t replicas,
    Rng& rng) {
  (void)runs;
  std::vector<double> failed(classified.size(), 0.0);
  std::vector<double> ones(classified.size(), 1.0);
  for (std::size_t i = 0; i < classified.size(); ++i) {
    if (classified[i].outcome == AppOutcome::kSystemFailure) failed[i] = 1.0;
  }
  return BootstrapRatioCi(failed, ones, replicas, rng);
}

}  // namespace ld
