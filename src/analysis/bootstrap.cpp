#include "analysis/bootstrap.hpp"

#include <algorithm>

#include "common/obs/names.hpp"
#include "common/obs/obs.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"

namespace ld {

Result<BootstrapCi> BootstrapRatioCi(const std::vector<double>& numerator,
                                     const std::vector<double>& denominator,
                                     std::uint32_t replicas, Rng& rng,
                                     ThreadPool* pool) {
  if (numerator.size() != denominator.size() || numerator.empty()) {
    return InvalidArgumentError("BootstrapRatioCi: mismatched/empty inputs");
  }
  if (replicas == 0) {
    return InvalidArgumentError("BootstrapRatioCi: need replicas > 0");
  }
  const std::uint64_t start_ns = LD_OBS_NOW_NS();
  double num_total = 0.0, den_total = 0.0;
  for (std::size_t i = 0; i < numerator.size(); ++i) {
    num_total += numerator[i];
    den_total += denominator[i];
  }
  if (!(den_total > 0.0)) {
    return InvalidArgumentError("BootstrapRatioCi: zero denominator");
  }

  // Each replicate draws from its own counter-based stream: a pure
  // function of (one base draw from the caller's rng, replicate index).
  // The caller's rng advances by exactly one draw however many replicas
  // or threads there are, and replicate r picks the same indices whether
  // it runs inline, first, or last on a pool — so the CI is bit-identical
  // at any thread count.
  const std::uint64_t base_seed = rng.NextU64();
  const std::size_t n = numerator.size();
  std::vector<double> samples(replicas);
  ParallelFor(pool, replicas, [&](std::size_t r) {
    std::uint64_t state =
        base_seed + (static_cast<std::uint64_t>(r) + 1) * 0x9e3779b97f4a7c15ULL;
    Rng rep(SplitMix64(state));
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pick = rep.UniformInt(n);
      num += numerator[pick];
      den += denominator[pick];
    }
    samples[r] = den > 0.0 ? num / den : 0.0;
  });

  BootstrapCi ci;
  ci.point = num_total / den_total;
  ci.lo = Quantile(samples, 0.025);
  ci.hi = Quantile(samples, 0.975);
  LD_OBS_COUNTER_ADD(obs::names::kBootstrapReplicasTotal, replicas);
  if (start_ns != 0) {
    LD_OBS_HIST_RECORD(obs::names::kBootstrapTotalMicros,
                       (LD_OBS_NOW_NS() - start_ns) / 1000);
  }
  return ci;
}

Result<BootstrapCi> BootstrapLostShareCi(
    const std::vector<AppRun>& runs,
    const std::vector<ClassifiedRun>& classified, std::uint32_t replicas,
    Rng& rng, ThreadPool* pool) {
  std::vector<double> lost, consumed;
  lost.reserve(classified.size());
  consumed.reserve(classified.size());
  for (const ClassifiedRun& cls : classified) {
    const double nh = runs[cls.run_index].NodeHours();
    consumed.push_back(nh);
    lost.push_back(cls.outcome == AppOutcome::kSystemFailure ? nh : 0.0);
  }
  return BootstrapRatioCi(lost, consumed, replicas, rng, pool);
}

Result<BootstrapCi> BootstrapFailureFractionCi(
    const std::vector<AppRun>& runs,
    const std::vector<ClassifiedRun>& classified, std::uint32_t replicas,
    Rng& rng, ThreadPool* pool) {
  (void)runs;
  std::vector<double> failed(classified.size(), 0.0);
  std::vector<double> ones(classified.size(), 1.0);
  for (std::size_t i = 0; i < classified.size(); ++i) {
    if (classified[i].outcome == AppOutcome::kSystemFailure) failed[i] = 1.0;
  }
  return BootstrapRatioCi(failed, ones, replicas, rng, pool);
}

}  // namespace ld
