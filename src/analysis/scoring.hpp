// Ground-truth scoring of a classification against the injector's truth.
//
// This is the capability the simulated substrate adds over the original
// field study: because every kill has a known cause, LogDiver's (and the
// baselines') categorization and attribution can be scored exactly.
#pragma once

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "faults/injector.hpp"
#include "logdiver/correlate.hpp"
#include "logdiver/reconstruct.hpp"

namespace ld {

inline constexpr int kOutcomeCount = 5;

struct ScoreReport {
  std::uint64_t scored_runs = 0;
  std::uint64_t missing_truth = 0;

  /// confusion[truth][predicted], indexed by AppOutcome.
  std::array<std::array<std::uint64_t, kOutcomeCount>, kOutcomeCount>
      confusion{};

  /// Detection of system-caused failures as a binary task.
  double system_precision = 0.0;
  double system_recall = 0.0;
  double system_f1 = 0.0;

  /// Among true-system failures that were predicted system: fraction
  /// whose attributed cause matches the injected category, and the
  /// fraction left unattributed (cause == kUnknown).
  double cause_accuracy = 0.0;
  double cause_unattributed = 0.0;

  /// Outcome-level accuracy across all scored runs.
  double overall_accuracy = 0.0;
};

/// Scores a classification against an apid -> truth map.
ScoreReport ScoreClassification(
    const std::vector<AppRun>& runs,
    const std::vector<ClassifiedRun>& classified,
    const std::unordered_map<ApId, TruthRecord>& truth);

/// Loads a ground_truth.csv sidecar written by the scenario driver.
Result<std::unordered_map<ApId, TruthRecord>> LoadGroundTruth(
    const std::string& path);

}  // namespace ld
