#include "analysis/scaling.hpp"

#include <algorithm>
#include <cmath>

namespace ld {

double ScalingFit::Predict(double nodes) const {
  const double z = exponent * std::log(nodes) + log_c;
  return 1.0 - std::exp(-std::exp(z));
}

Result<ScalingFit> FitScaleCurve(const std::vector<ScalePoint>& points) {
  // x = ln(mean bucket nodes), y = ln(-ln(1-p)), weight = runs.
  std::vector<double> xs, ys, ws;
  for (const ScalePoint& p : points) {
    if (p.runs == 0) continue;
    const double prob = p.failure_probability.point;
    if (prob <= 0.0 || prob >= 1.0) continue;
    const double mean_nodes = 0.5 * (static_cast<double>(p.lo) +
                                     static_cast<double>(p.hi));
    xs.push_back(std::log(mean_nodes));
    ys.push_back(std::log(-std::log(1.0 - prob)));
    ws.push_back(static_cast<double>(p.runs));
  }
  if (xs.size() < 2) {
    return InvalidArgumentError(
        "FitScaleCurve: need >= 2 buckets with 0 < p < 1");
  }
  double sw = 0, sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sw += ws[i];
    sx += ws[i] * xs[i];
    sy += ws[i] * ys[i];
    sxx += ws[i] * xs[i] * xs[i];
    sxy += ws[i] * xs[i] * ys[i];
  }
  const double denom = sw * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    return InternalError("FitScaleCurve: degenerate design");
  }
  ScalingFit fit;
  fit.exponent = (sw * sxy - sx * sy) / denom;
  fit.log_c = (sy - fit.exponent * sx) / sw;

  // Weighted R^2.
  const double ybar = sy / sw;
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.exponent * xs[i] + fit.log_c;
    ss_res += ws[i] * (ys[i] - pred) * (ys[i] - pred);
    ss_tot += ws[i] * (ys[i] - ybar) * (ys[i] - ybar);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

Result<double> InterpolateScaleCurve(const std::vector<ScalePoint>& points,
                                     double nodes) {
  if (!(nodes > 0.0)) {
    return InvalidArgumentError("InterpolateScaleCurve: nodes must be > 0");
  }
  std::vector<std::pair<double, double>> curve;  // (ln mid-nodes, p)
  for (const ScalePoint& p : points) {
    if (p.runs == 0) continue;
    const double mid =
        0.5 * (static_cast<double>(p.lo) + static_cast<double>(p.hi));
    curve.emplace_back(std::log(mid), p.failure_probability.point);
  }
  if (curve.empty()) {
    return InvalidArgumentError("InterpolateScaleCurve: no populated buckets");
  }
  std::sort(curve.begin(), curve.end());
  const double x = std::log(nodes);
  if (x <= curve.front().first) return curve.front().second;
  if (x >= curve.back().first) return curve.back().second;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (x <= curve[i].first) {
      const double t = (x - curve[i - 1].first) /
                       (curve[i].first - curve[i - 1].first);
      return curve[i - 1].second +
             t * (curve[i].second - curve[i - 1].second);
    }
  }
  return curve.back().second;
}

std::vector<double> InterruptionGapsHours(
    const std::vector<AppRun>& runs,
    const std::vector<ClassifiedRun>& classified) {
  std::vector<TimePoint> failures;
  for (const ClassifiedRun& cls : classified) {
    if (cls.outcome != AppOutcome::kSystemFailure) continue;
    failures.push_back(runs[cls.run_index].end);
  }
  std::sort(failures.begin(), failures.end());
  std::vector<double> gaps;
  gaps.reserve(failures.size());
  for (std::size_t i = 1; i < failures.size(); ++i) {
    const double hours = (failures[i] - failures[i - 1]).hours();
    if (hours > 0.0) gaps.push_back(hours);
  }
  return gaps;
}

Result<std::vector<std::unique_ptr<Distribution>>> FitInterruptionGaps(
    const std::vector<AppRun>& runs,
    const std::vector<ClassifiedRun>& classified) {
  const std::vector<double> gaps = InterruptionGapsHours(runs, classified);
  if (gaps.size() < 10) {
    return InvalidArgumentError(
        "FitInterruptionGaps: need >= 10 gaps, have " +
        std::to_string(gaps.size()));
  }
  return FitAll(gaps);
}

}  // namespace ld
