// Scaling-model and interruption-time analysis.
//
// The paper's scale figures are summarized by fitting the per-bucket
// failure probabilities to the exposure model
//     P(fail | N) = 1 - exp(-(c * N)^b)
// i.e.  ln(-ln(1 - P)) = b ln N + a.   b ~ 1 means hazard scales
// linearly with node count; b > 1 means super-linear fragility at scale.
// Interruption gaps (times between consecutive system-caused failures)
// are fitted against the standard reliability families.
#pragma once

#include <memory>
#include <vector>

#include "common/distributions.hpp"
#include "common/status.hpp"
#include "logdiver/correlate.hpp"
#include "logdiver/metrics.hpp"
#include "logdiver/reconstruct.hpp"

namespace ld {

struct ScalingFit {
  double log_c = 0.0;  // intercept a
  double exponent = 0.0;  // slope b
  double r_squared = 0.0;
  /// Model prediction at a node count.
  double Predict(double nodes) const;
};

/// Weighted least squares over buckets with at least one run and
/// non-degenerate probability (0 < p < 1).  Needs >= 2 usable buckets.
Result<ScalingFit> FitScaleCurve(const std::vector<ScalePoint>& points);

/// Direct read of the measured curve: failure probability at `nodes` by
/// log-linear interpolation between bucket midpoints (the parametric fit
/// underestimates the full-scale blowup because the small-bucket mass is
/// dominated by the node-count-independent system-wide channel).  Fails
/// if no bucket has data.
Result<double> InterpolateScaleCurve(const std::vector<ScalePoint>& points,
                                     double nodes);

/// Hours between consecutive system-caused failures, time-ordered.
std::vector<double> InterruptionGapsHours(
    const std::vector<AppRun>& runs,
    const std::vector<ClassifiedRun>& classified);

/// Fits the reliability families to the interruption gaps; best first.
Result<std::vector<std::unique_ptr<Distribution>>> FitInterruptionGaps(
    const std::vector<AppRun>& runs,
    const std::vector<ClassifiedRun>& classified);

}  // namespace ld
