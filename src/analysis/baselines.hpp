// Baseline classifiers for the correlation ablation.
//
// The field study's contribution is the *joint* spatio-temporal
// correlation of error logs with application runs.  These baselines
// remove one ingredient at a time so the ablation bench can show what
// each buys:
//   kExitOnlyConservative — no log correlation at all; a failure is
//       "system" only when ALPS itself reported a node-failure kill.
//       (Undercounts: misses every app-scope system kill.)
//   kExitOnlyPessimistic  — no log correlation; every abnormal exit is
//       "system".  (Overcounts: swallows all user failures.)
//   kTemporalOnly         — correlates with fatal tuples by time only,
//       anywhere on the machine.  (Overcounts: a node death in a distant
//       cabinet gets blamed for an unrelated user crash.)
//   kSpatialOnly          — correlates with tuples on the run's nodes at
//       any severity over the whole run window, ignoring death-time
//       proximity.  (Overcounts: blames the corrected-error noise floor.)
#pragma once

#include <vector>

#include "logdiver/coalesce.hpp"
#include "logdiver/correlate.hpp"
#include "logdiver/reconstruct.hpp"

namespace ld {

enum class BaselineMode {
  kExitOnlyConservative,
  kExitOnlyPessimistic,
  kTemporalOnly,
  kSpatialOnly,
};

const char* BaselineModeName(BaselineMode mode);

std::vector<ClassifiedRun> ClassifyBaseline(
    BaselineMode mode, const std::vector<AppRun>& runs,
    const std::vector<ErrorTuple>& tuples, const CorrelatorConfig& config);

}  // namespace ld
