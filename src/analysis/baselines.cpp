#include "analysis/baselines.hpp"

#include <algorithm>
#include <cstdlib>

namespace ld {
namespace {

constexpr int kSigTerm = 15;

/// Shared pre-classification: success / walltime / node-failure kills /
/// unknown are baseline-independent; returns true when the run was fully
/// classified, false when it's an abnormal exit needing correlation.
bool PreClassify(const AppRun& run, const CorrelatorConfig& config,
                 ClassifiedRun& cls) {
  if (!run.has_termination) {
    cls.outcome = AppOutcome::kUnknown;
    return true;
  }
  if (run.exit_code == 0 && run.exit_signal == 0) {
    cls.outcome = AppOutcome::kSuccess;
    return true;
  }
  if (run.killed_node_failure) {
    cls.outcome = AppOutcome::kSystemFailure;
    return true;
  }
  if (run.walltime_limit.seconds() > 0 && run.exit_signal == kSigTerm) {
    const Duration used = run.end - run.job_start;
    if (used + config.walltime_tolerance >= run.walltime_limit) {
      cls.outcome = AppOutcome::kWalltime;
      return true;
    }
  }
  return false;
}

}  // namespace

const char* BaselineModeName(BaselineMode mode) {
  switch (mode) {
    case BaselineMode::kExitOnlyConservative: return "exit-only-conservative";
    case BaselineMode::kExitOnlyPessimistic: return "exit-only-pessimistic";
    case BaselineMode::kTemporalOnly: return "temporal-only";
    case BaselineMode::kSpatialOnly: return "spatial-only";
  }
  return "invalid";
}

std::vector<ClassifiedRun> ClassifyBaseline(BaselineMode mode,
                                            const std::vector<AppRun>& runs,
                                            const std::vector<ErrorTuple>& tuples,
                                            const CorrelatorConfig& config) {
  // Time-sorted fatal tuples for the temporal baseline.
  std::vector<const ErrorTuple*> fatal_by_time;
  for (const ErrorTuple& t : tuples) {
    if (t.severity == Severity::kFatal) fatal_by_time.push_back(&t);
  }
  std::sort(fatal_by_time.begin(), fatal_by_time.end(),
            [](const ErrorTuple* a, const ErrorTuple* b) {
              return a->first < b->first;
            });

  // Node -> tuples (any severity) for the spatial baseline.
  std::unordered_map<NodeIndex, std::vector<const ErrorTuple*>> by_node;
  for (const ErrorTuple& t : tuples) {
    for (NodeIndex n : t.nodes) by_node[n].push_back(&t);
  }

  std::vector<ClassifiedRun> out;
  out.reserve(runs.size());
  for (std::uint32_t i = 0; i < runs.size(); ++i) {
    const AppRun& run = runs[i];
    ClassifiedRun cls;
    cls.run_index = i;
    if (PreClassify(run, config, cls)) {
      out.push_back(cls);
      continue;
    }

    switch (mode) {
      case BaselineMode::kExitOnlyConservative:
        cls.outcome = AppOutcome::kUserFailure;
        break;
      case BaselineMode::kExitOnlyPessimistic:
        cls.outcome = AppOutcome::kSystemFailure;
        break;
      case BaselineMode::kTemporalOnly: {
        const TimePoint lo = run.end - config.attribution_before;
        const TimePoint hi = run.end + config.attribution_after;
        const ErrorTuple* best = nullptr;
        std::int64_t best_gap = 0;
        auto it = std::lower_bound(
            fatal_by_time.begin(), fatal_by_time.end(), lo,
            [](const ErrorTuple* t, TimePoint v) { return t->first < v; });
        for (; it != fatal_by_time.end() && (*it)->first <= hi; ++it) {
          const std::int64_t gap = std::llabs(((*it)->first - run.end).seconds());
          if (best == nullptr || gap < best_gap) {
            best = *it;
            best_gap = gap;
          }
        }
        if (best != nullptr) {
          cls.outcome = AppOutcome::kSystemFailure;
          cls.cause = best->category;
          cls.tuple_id = best->id;
        } else {
          cls.outcome = AppOutcome::kUserFailure;
        }
        break;
      }
      case BaselineMode::kSpatialOnly: {
        const Interval window{run.start, run.end + Duration(1)};
        const ErrorTuple* best = nullptr;
        for (NodeIndex n : run.nodes) {
          const auto hit = by_node.find(n);
          if (hit == by_node.end()) continue;
          for (const ErrorTuple* t : hit->second) {
            if (t->ImpactWindow().Overlaps(window)) {
              best = t;
              break;
            }
          }
          if (best != nullptr) break;
        }
        if (best != nullptr) {
          cls.outcome = AppOutcome::kSystemFailure;
          cls.cause = best->category;
          cls.tuple_id = best->id;
        } else {
          cls.outcome = AppOutcome::kUserFailure;
        }
        break;
      }
    }
    out.push_back(cls);
  }
  return out;
}

}  // namespace ld
