#include "analysis/checkpoint.hpp"

#include <algorithm>
#include <cmath>

namespace ld {
namespace {

/// Core engine, parameterized over the gap sampler.
template <typename SampleGap>
CheckpointRunResult Simulate(const CheckpointRunConfig& config,
                             SampleGap&& sample_gap) {
  LD_CHECK(config.work_hours > 0.0, "work_hours must be > 0");
  LD_CHECK(config.checkpoint_cost_hours >= 0.0, "negative checkpoint cost");
  LD_CHECK(config.restart_cost_hours >= 0.0, "negative restart cost");

  CheckpointRunResult result;
  const bool checkpointing = config.interval_hours > 0.0;

  double clock = 0.0;            // wall time elapsed
  double done = 0.0;             // useful work completed AND saved
  double next_failure = sample_gap();

  while (done < config.work_hours) {
    if (clock > config.max_makespan_hours) {
      result.makespan_hours = clock;
      result.useful_fraction = done / clock;
      return result;  // declared failed
    }
    // The next segment: up to `interval` of work, then a checkpoint
    // (unless it finishes the job, which needs no final checkpoint).
    const double segment_work =
        checkpointing ? std::min(config.interval_hours,
                                 config.work_hours - done)
                      : config.work_hours - done;
    const bool final_segment = done + segment_work >= config.work_hours;
    const double segment_span =
        segment_work +
        (checkpointing && !final_segment ? config.checkpoint_cost_hours : 0.0);

    if (clock + segment_span <= next_failure) {
      // Segment completes and (if applicable) checkpoints.
      clock += segment_span;
      done += segment_work;
      continue;
    }
    // Interrupted mid-segment: all unsaved work is lost; pay restart.
    ++result.interruptions;
    clock = next_failure + config.restart_cost_hours;
    if (!checkpointing) done = 0.0;  // everything gone
    next_failure = clock + sample_gap();
  }

  result.completed = true;
  result.makespan_hours = clock;
  result.useful_fraction =
      clock > 0.0 ? config.work_hours / clock : 1.0;
  return result;
}

}  // namespace

CheckpointRunResult SimulateCheckpointRun(const CheckpointRunConfig& config,
                                          double mtti_hours, Rng& rng) {
  LD_CHECK(mtti_hours > 0.0, "mtti must be > 0");
  return Simulate(config,
                  [&rng, mtti_hours] { return rng.Exponential(1.0 / mtti_hours); });
}

CheckpointRunResult SimulateCheckpointRun(const CheckpointRunConfig& config,
                                          const Distribution& gap_dist,
                                          Rng& rng) {
  // Inverse-CDF sampling by bisection: the Distribution interface only
  // guarantees Cdf, and these draws are not on a hot path.
  auto sample = [&rng, &gap_dist] {
    const double u = rng.UniformDouble();
    double lo = 0.0, hi = 1.0;
    while (gap_dist.Cdf(hi) < u && hi < 1e12) hi *= 2.0;
    for (int i = 0; i < 80; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (gap_dist.Cdf(mid) < u) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return 0.5 * (lo + hi);
  };
  return Simulate(config, sample);
}

CheckpointStudy RunCheckpointStudy(const CheckpointRunConfig& config,
                                   double mtti_hours, std::uint32_t replicas,
                                   Rng& rng) {
  LD_CHECK(replicas > 0, "need at least one replica");
  CheckpointStudy study;
  for (std::uint32_t i = 0; i < replicas; ++i) {
    const CheckpointRunResult run =
        SimulateCheckpointRun(config, mtti_hours, rng);
    study.mean_makespan_hours += run.makespan_hours;
    study.mean_useful_fraction += run.useful_fraction;
    study.mean_interruptions += static_cast<double>(run.interruptions);
    study.completion_rate += run.completed ? 1.0 : 0.0;
  }
  const double n = static_cast<double>(replicas);
  study.mean_makespan_hours /= n;
  study.mean_useful_fraction /= n;
  study.mean_interruptions /= n;
  study.completion_rate /= n;
  return study;
}

double DalyInterval(double checkpoint_cost_hours, double mtti_hours) {
  LD_CHECK(checkpoint_cost_hours >= 0.0 && mtti_hours > 0.0,
           "bad Daly inputs");
  return std::sqrt(2.0 * checkpoint_cost_hours * mtti_hours);
}

}  // namespace ld
