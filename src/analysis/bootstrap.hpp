// Bootstrap confidence intervals for ratio-of-sums statistics.
//
// The headline lost-node-hours share (anchor A3) is a ratio whose
// numerator is dominated by a handful of huge failed runs, so a normal
// approximation is useless; the standard answer is a nonparametric
// bootstrap over runs.  Exposed generically for any per-run (value,
// weight) ratio.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "logdiver/correlate.hpp"
#include "logdiver/reconstruct.hpp"

namespace ld {

class ThreadPool;

struct BootstrapCi {
  double point = 0.0;
  double lo = 0.0;   // 2.5th percentile
  double hi = 0.0;   // 97.5th percentile
};

/// Percentile-bootstrap CI of sum(numerator_i) / sum(denominator_i)
/// under resampling of the (numerator, denominator) pairs with
/// replacement.  Requires a positive total denominator.
///
/// `rng` advances by exactly one draw; each replicate resamples from its
/// own counter-based stream derived from that draw and the replicate
/// index.  With a pool the replicates run concurrently, and the result
/// is bit-identical at any thread count (including none).
Result<BootstrapCi> BootstrapRatioCi(const std::vector<double>& numerator,
                                     const std::vector<double>& denominator,
                                     std::uint32_t replicas, Rng& rng,
                                     ThreadPool* pool = nullptr);

/// A3 applied: CI of the node-hours share consumed by system-failed
/// runs.  `replicas` resamples of the run population.
Result<BootstrapCi> BootstrapLostShareCi(
    const std::vector<AppRun>& runs,
    const std::vector<ClassifiedRun>& classified, std::uint32_t replicas,
    Rng& rng, ThreadPool* pool = nullptr);

/// A2 applied: CI of the system-failure run fraction.
Result<BootstrapCi> BootstrapFailureFractionCi(
    const std::vector<AppRun>& runs,
    const std::vector<ClassifiedRun>& classified, std::uint32_t replicas,
    Rng& rng, ThreadPool* pool = nullptr);

}  // namespace ld
