#include "analysis/users.hpp"

#include <algorithm>
#include <map>
#include <string_view>

namespace ld {

UserImpactReport ComputeUserImpact(
    const std::vector<AppRun>& runs,
    const std::vector<ClassifiedRun>& classified) {
  // Keyed by the interned user's resolved view (stable arena storage);
  // the ordered map keeps iteration — and thus double summation below —
  // deterministic regardless of symbol-id assignment order.
  std::map<std::string_view, UserImpactRow> by_user;
  for (const ClassifiedRun& cls : classified) {
    const AppRun& run = runs[cls.run_index];
    UserImpactRow& row = by_user[run.user.view()];
    if (row.user.empty()) row.user = run.user.str();
    ++row.runs;
    const double nh = run.NodeHours();
    row.node_hours += nh;
    switch (cls.outcome) {
      case AppOutcome::kSystemFailure:
        ++row.system_failures;
        row.lost_node_hours += nh;
        break;
      case AppOutcome::kUserFailure:
        ++row.user_failures;
        break;
      default:
        break;
    }
  }

  UserImpactReport report;
  report.rows.reserve(by_user.size());
  for (auto& [user, row] : by_user) {
    report.total_lost_node_hours += row.lost_node_hours;
    report.rows.push_back(std::move(row));
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const UserImpactRow& a, const UserImpactRow& b) {
              if (a.lost_node_hours != b.lost_node_hours) {
                return a.lost_node_hours > b.lost_node_hours;
              }
              return a.user < b.user;
            });

  if (report.total_lost_node_hours > 0.0 && !report.rows.empty()) {
    const std::size_t decile =
        std::max<std::size_t>(1, report.rows.size() / 10);
    double top = 0.0;
    for (std::size_t i = 0; i < decile; ++i) {
      top += report.rows[i].lost_node_hours;
    }
    report.top_decile_lost_share = top / report.total_lost_node_hours;
  }
  return report;
}

}  // namespace ld
