// Checkpoint/restart what-if simulation.
//
// Turns the study's measured interruption rates into actionable policy:
// given an application with W hours of useful work on N nodes, a
// checkpoint cost C, restart cost R, and an interruption process, how
// long does the run really take — and what checkpoint interval should
// it use?  The analytic first-order answer is Young/Daly
// (tau* = sqrt(2 C MTTI)); the simulator here validates it under the
// actual (non-exponential) interruption processes LogDiver measures.
#pragma once

#include <cstdint>

#include "common/distributions.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace ld {

struct CheckpointRunConfig {
  double work_hours = 10.0;           // useful compute to finish
  double checkpoint_cost_hours = 0.1; // time to write one checkpoint
  double restart_cost_hours = 0.1;    // time to relaunch + read state
  /// Checkpoint interval (useful-work hours between checkpoints);
  /// <= 0 means no checkpointing: an interruption loses everything.
  double interval_hours = 1.0;
  /// Safety valve: give up beyond this makespan (declared failed).
  double max_makespan_hours = 10000.0;
};

struct CheckpointRunResult {
  bool completed = false;
  double makespan_hours = 0.0;
  std::uint32_t interruptions = 0;
  double useful_fraction = 0.0;  // work / makespan
};

/// Simulates one run under exponential interruptions with the given
/// MTTI.  Deterministic in the rng state.
CheckpointRunResult SimulateCheckpointRun(const CheckpointRunConfig& config,
                                          double mtti_hours, Rng& rng);

/// Simulates one run drawing interruption gaps from an arbitrary fitted
/// distribution (e.g. the Weibull LogDiver fits to the measured gaps).
CheckpointRunResult SimulateCheckpointRun(const CheckpointRunConfig& config,
                                          const Distribution& gap_dist,
                                          Rng& rng);

struct CheckpointStudy {
  double mean_makespan_hours = 0.0;
  double mean_useful_fraction = 0.0;
  double mean_interruptions = 0.0;
  double completion_rate = 0.0;  // runs finished within the safety valve
};

/// Averages `replicas` simulated runs.
CheckpointStudy RunCheckpointStudy(const CheckpointRunConfig& config,
                                   double mtti_hours, std::uint32_t replicas,
                                   Rng& rng);

/// Young/Daly first-order optimal interval: sqrt(2 * C * MTTI).
double DalyInterval(double checkpoint_cost_hours, double mtti_hours);

}  // namespace ld
