#include "analysis/scoring.hpp"

#include "common/csv.hpp"
#include "common/strings.hpp"

namespace ld {
namespace {

Result<AppOutcome> ParseOutcome(const std::string& name) {
  for (int i = 0; i < kOutcomeCount; ++i) {
    const auto o = static_cast<AppOutcome>(i);
    if (name == AppOutcomeName(o)) return o;
  }
  return ParseError("unknown outcome '" + name + "'");
}

}  // namespace

ScoreReport ScoreClassification(
    const std::vector<AppRun>& runs,
    const std::vector<ClassifiedRun>& classified,
    const std::unordered_map<ApId, TruthRecord>& truth) {
  ScoreReport report;

  std::uint64_t tp = 0, fp = 0, fn = 0;
  std::uint64_t correct = 0;
  std::uint64_t cause_hits = 0, cause_unknown = 0, cause_total = 0;

  for (const ClassifiedRun& cls : classified) {
    const AppRun& run = runs[cls.run_index];
    const auto it = truth.find(run.apid);
    if (it == truth.end()) {
      ++report.missing_truth;
      continue;
    }
    const TruthRecord& t = it->second;
    ++report.scored_runs;
    const auto ti = static_cast<std::size_t>(t.outcome);
    const auto pi = static_cast<std::size_t>(cls.outcome);
    ++report.confusion[ti][pi];
    if (t.outcome == cls.outcome) ++correct;

    const bool truth_system = t.outcome == AppOutcome::kSystemFailure;
    const bool pred_system = cls.outcome == AppOutcome::kSystemFailure;
    if (truth_system && pred_system) {
      ++tp;
      ++cause_total;
      if (cls.cause == t.cause) {
        ++cause_hits;
      } else if (cls.cause == ErrorCategory::kUnknown) {
        ++cause_unknown;
      }
    } else if (pred_system) {
      ++fp;
    } else if (truth_system) {
      ++fn;
    }
  }

  report.system_precision =
      tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
  report.system_recall =
      tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
  const double pr = report.system_precision + report.system_recall;
  report.system_f1 =
      pr > 0.0 ? 2.0 * report.system_precision * report.system_recall / pr : 0.0;
  report.cause_accuracy = cause_total > 0 ? static_cast<double>(cause_hits) /
                                                static_cast<double>(cause_total)
                                          : 0.0;
  report.cause_unattributed =
      cause_total > 0
          ? static_cast<double>(cause_unknown) / static_cast<double>(cause_total)
          : 0.0;
  report.overall_accuracy =
      report.scored_runs > 0 ? static_cast<double>(correct) /
                                   static_cast<double>(report.scored_runs)
                             : 0.0;
  return report;
}

Result<std::unordered_map<ApId, TruthRecord>> LoadGroundTruth(
    const std::string& path) {
  auto table = CsvReader::ReadFile(path, /*has_header=*/true);
  if (!table.ok()) return table.status();
  std::unordered_map<ApId, TruthRecord> truth;
  truth.reserve(table->rows.size());
  for (const auto& row : table->rows) {
    if (row.size() < 5) {
      return ParseError("ground truth row with " + std::to_string(row.size()) +
                        " fields");
    }
    TruthRecord rec;
    auto apid = ParseUint(row[0]);
    if (!apid.ok()) return apid.status();
    rec.apid = *apid;
    auto outcome = ParseOutcome(row[1]);
    if (!outcome.ok()) return outcome.status();
    rec.outcome = *outcome;
    if (!row[2].empty()) {
      auto cause = ParseErrorCategory(row[2]);
      if (!cause.ok()) return cause.status();
      rec.cause = *cause;
    }
    auto event_id = ParseUint(row[3]);
    if (!event_id.ok()) return event_id.status();
    rec.event_id = *event_id;
    rec.cause_detected = row[4] == "1";
    truth.emplace(rec.apid, rec);
  }
  return truth;
}

}  // namespace ld
