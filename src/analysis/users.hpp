// Per-user impact analysis.
//
// The field study's motivation is the *user-visible* cost of system
// problems; this module rolls the classified runs up per user: who lost
// the most node-hours, whose workloads fail most, and how concentrated
// the lost work is (a handful of capability users absorb most of it,
// because they run the big, long, exposure-heavy jobs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logdiver/correlate.hpp"
#include "logdiver/reconstruct.hpp"

namespace ld {

struct UserImpactRow {
  std::string user;
  std::uint64_t runs = 0;
  std::uint64_t system_failures = 0;
  std::uint64_t user_failures = 0;
  double node_hours = 0.0;
  double lost_node_hours = 0.0;  // consumed by system-failed runs

  double SystemFailureRate() const {
    return runs ? static_cast<double>(system_failures) /
                      static_cast<double>(runs)
                : 0.0;
  }
};

struct UserImpactReport {
  /// One row per user, sorted by lost node-hours descending.
  std::vector<UserImpactRow> rows;
  /// Fraction of all lost node-hours absorbed by the top 10% of users
  /// (by lost node-hours); 0 when nothing was lost.
  double top_decile_lost_share = 0.0;
  double total_lost_node_hours = 0.0;
};

UserImpactReport ComputeUserImpact(const std::vector<AppRun>& runs,
                                   const std::vector<ClassifiedRun>& classified);

}  // namespace ld
