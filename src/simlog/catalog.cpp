#include "simlog/catalog.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/obs/names.hpp"
#include "common/obs/obs.hpp"
#include "logdiver/logdiver.hpp"
#include "workload/appmix.hpp"

namespace ld {
namespace {

// ---------------------------------------------------------------------
// syslog stamp round-trip (the 15-char RFC3164 prefix has no year; the
// campaign epoch anchors reconstruction, exactly like the parser does).

constexpr const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                   "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

bool ParseStamp(const std::string& line, TimePoint epoch, TimePoint* out) {
  if (line.size() < 15) return false;
  int month = 0;
  for (int m = 0; m < 12; ++m) {
    if (line.compare(0, 3, kMonths[m]) == 0) {
      month = m + 1;
      break;
    }
  }
  if (month == 0) return false;
  const auto digit = [&](std::size_t i) { return line[i] - '0'; };
  const int day = (line[4] == ' ' ? 0 : digit(4) * 10) + digit(5);
  const int hour = digit(7) * 10 + digit(8);
  const int minute = digit(10) * 10 + digit(11);
  const int second = digit(13) * 10 + digit(14);
  if (day < 1 || day > 31 || hour > 23 || minute > 59 || second > 59) {
    return false;
  }
  const CalendarTime e = ToCalendar(epoch);
  const int year = month >= e.month ? e.year : e.year + 1;
  *out = TimePoint::FromCalendar(year, month, day, hour, minute, second);
  return true;
}

}  // namespace

std::vector<std::string> SkewSyslogMidnights(
    const std::vector<std::string>& lines, int skew_seconds, TimePoint epoch) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  for (const std::string& line : lines) {
    TimePoint t;
    if (skew_seconds > 0 && ParseStamp(line, epoch, &t)) {
      const std::int64_t tod =
          ((t.unix_seconds() % 86400) + 86400) % 86400;
      if (tod < skew_seconds) {
        const TimePoint skewed = t - Duration(skew_seconds);
        std::string rewritten = line;
        rewritten.replace(0, 15, skewed.ToSyslog());
        out.push_back(std::move(rewritten));
        continue;
      }
    }
    out.push_back(line);
  }
  return out;
}

std::vector<std::vector<std::string>> SplitSyslogByDays(
    const std::vector<std::string>& lines, TimePoint epoch, int rotate_days) {
  std::vector<std::vector<std::string>> segments(1);
  if (rotate_days <= 0) {
    segments[0] = lines;
    return segments;
  }
  TimePoint boundary = epoch + Duration::Days(rotate_days);
  for (const std::string& line : lines) {
    TimePoint t;
    // Unparseable stamps stay with the current segment (a rotating
    // daemon cuts on wall clock, but our streams are stamp-ordered).
    if (ParseStamp(line, epoch, &t)) {
      while (t >= boundary) {
        segments.emplace_back();
        boundary = boundary + Duration::Days(rotate_days);
      }
    }
    segments.back().push_back(line);
  }
  return segments;
}

namespace {

Status WriteLines(const std::string& path,
                  const std::vector<std::string>& lines) {
  std::ofstream out(path);
  if (!out) return InternalError("cannot write '" + path + "'");
  for (const std::string& line : lines) out << line << '\n';
  return Status::Ok();
}

/// Writes an already-run campaign as a bundle, applying the spec's
/// syslog transforms (skew, then rotation — the cut order a live system
/// would produce).
Status WriteTransformedBundle(const Campaign& campaign,
                              const ScenarioConfig& config,
                              int rotate_days, int skew_seconds,
                              const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return InternalError("cannot create '" + dir + "': " + ec.message());
  LogBundle bundle;
  bundle.dir = dir;

  if (Status s = WriteLines(bundle.torque_path(), campaign.logs.torque);
      !s.ok()) {
    return s;
  }
  if (Status s = WriteLines(bundle.alps_path(), campaign.logs.alps); !s.ok()) {
    return s;
  }
  if (Status s = WriteLines(bundle.hwerr_path(), campaign.logs.hwerr);
      !s.ok()) {
    return s;
  }

  std::vector<std::string> syslog = campaign.logs.syslog;
  if (skew_seconds > 0) {
    syslog = SkewSyslogMidnights(syslog, skew_seconds, config.workload.epoch);
  }
  const auto segments =
      SplitSyslogByDays(syslog, config.workload.epoch, rotate_days);
  // logrotate layout: oldest segment gets the highest suffix, the
  // newest is the bare file.
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    const std::string path =
        bundle.syslog_path() + "." + std::to_string(segments.size() - 1 - i);
    if (Status s = WriteLines(path, segments[i]); !s.ok()) return s;
  }
  if (Status s = WriteLines(bundle.syslog_path(), segments.back()); !s.ok()) {
    return s;
  }

  if (Status s = WriteLines(
          bundle.truth_path(),
          RenderGroundTruthCsv(campaign.workload, campaign.injection));
      !s.ok()) {
    return s;
  }
  std::vector<std::string> manifest;
  manifest.push_back("seed=" + std::to_string(config.seed));
  manifest.push_back("epoch=" + config.workload.epoch.ToIso());
  manifest.push_back("campaign_days=" +
                     std::to_string(config.workload.campaign.days()));
  manifest.push_back("jobs=" + std::to_string(campaign.workload.jobs.size()));
  manifest.push_back("apps=" + std::to_string(campaign.workload.apps.size()));
  manifest.push_back("events=" +
                     std::to_string(campaign.injection.events.size()));
  manifest.push_back("rotate_days=" + std::to_string(rotate_days));
  manifest.push_back("midnight_skew_seconds=" + std::to_string(skew_seconds));
  return WriteLines(bundle.manifest_path(), manifest);
}

// ---------------------------------------------------------------------
// The registered scenarios.  configure() applies on top of
// SmallScenario(seed); validate() checks ground-truth expectations.
// Thresholds are calibrated against the campaign's measured values at
// the default seed/scale with margin; docs/SCENARIOS.md records both.

void ConfigureDetectionGap(ScenarioConfig* config) {
  // One GPU-side fatal in three leaves no RAS line — injected with the
  // exact-count override so the ledger identity is checkable.
  config->faults.gpu_underreport_fraction = 0.35;
  config->workload.xk_job_fraction = 0.30;  // a meaningful hybrid population
  // SmallScenario's month-long testbed yields only a handful of GPU
  // fatals; heat the hybrid hazards so the gap is measured on a pool of
  // tens of events, not single digits.
  config->faults.xk_fatal_per_node_hour = 1e-3;
  config->faults.xk_app_fatal_per_hour = 0.04;
  // A fatal GPU error takes the node out of service: ALPS still records
  // the node loss (so the run is classified a system failure) while the
  // under-reported RAS side leaves no explaining tuple — that pairing is
  // exactly what renders the gap as Fig 6's *unattributed* XK share
  // rather than as silent user-failure misclassification.
  config->faults.node_down_share_gpu = 0.70;
}

std::vector<std::string> ValidateDetectionGap(const ScenarioOutcome& o) {
  std::vector<std::string> v;
  char buf[160];
  const std::uint64_t want = static_cast<std::uint64_t>(
      std::llround(0.35 * static_cast<double>(o.ledger.gpu_fatal_injected)));
  if (o.ledger.gpu_fatal_injected < 10) {
    v.push_back("too few GPU fatal events to measure the gap");
  }
  if (o.ledger.gpu_fatal_undetected != want) {
    std::snprintf(buf, sizeof(buf),
                  "exact-gap identity broken: undetected=%llu want=%llu "
                  "of %llu injected",
                  static_cast<unsigned long long>(o.ledger.gpu_fatal_undetected),
                  static_cast<unsigned long long>(want),
                  static_cast<unsigned long long>(o.ledger.gpu_fatal_injected));
    v.push_back(buf);
  }
  // The gap must surface as the paper's Fig-6 asymmetry: hybrid runs
  // lose attribution much more often than CPU-only runs.
  if (o.ledger.xk_kills >= 10 &&
      o.xk_unattributed_share <= o.xe_unattributed_share) {
    std::snprintf(buf, sizeof(buf),
                  "no XK/XE unattributed asymmetry: xk=%.3f xe=%.3f",
                  o.xk_unattributed_share, o.xe_unattributed_share);
    v.push_back(buf);
  }
  if (o.score.system_recall < 0.80) {
    std::snprintf(buf, sizeof(buf),
                  "system recall collapsed: %.3f (ALPS evidence should "
                  "survive the RAS gap)",
                  o.score.system_recall);
    v.push_back(buf);
  }
  return v;
}

void ConfigureGeminiCascade(ScenarioConfig* config) {
  config->faults.cascade.storms_per_campaign = 6.0;
  config->faults.cascade.torus_radius = 2;
}

std::vector<std::string> ValidateGeminiCascade(const ScenarioOutcome& o) {
  std::vector<std::string> v;
  char buf[160];
  const CategoryTally& gemini =
      o.ledger.by_category[static_cast<std::size_t>(ErrorCategory::kGeminiLink)];
  if (gemini.kills < 5) {
    std::snprintf(buf, sizeof(buf),
                  "cascade storms produced only %llu Gemini kills",
                  static_cast<unsigned long long>(gemini.kills));
    v.push_back(buf);
  }
  // Storm kills present as node losses with a fatal link event on the
  // router: the analyzer should attribute most of them, with bounded
  // spill into other categories.
  const CauseBias* bias = o.BiasFor(ErrorCategory::kGeminiLink);
  if (bias == nullptr) {
    v.push_back("no Gemini attribution row at all");
  } else if (bias->attributed_runs * 2 < bias->injected_kills) {
    std::snprintf(buf, sizeof(buf),
                  "Gemini attribution bias too negative: attributed=%llu "
                  "injected=%llu",
                  static_cast<unsigned long long>(bias->attributed_runs),
                  static_cast<unsigned long long>(bias->injected_kills));
    v.push_back(buf);
  }
  if (o.score.system_recall < 0.80) {
    std::snprintf(buf, sizeof(buf), "system recall %.3f under cascade load",
                  o.score.system_recall);
    v.push_back(buf);
  }
  return v;
}

void ConfigureLustreStorm(ScenarioConfig* config) {
  // ~10 storms x 3-8 incidents each, on top of the steady-state channel
  // (~45 incidents/month): the clustered population has to dominate.
  config->faults.lustre_storm.storms_per_campaign = 10.0;
}

std::vector<std::string> ValidateLustreStorm(const ScenarioOutcome& o) {
  std::vector<std::string> v;
  char buf[160];
  const CategoryTally& lustre =
      o.ledger.by_category[static_cast<std::size_t>(ErrorCategory::kLustre)];
  // SmallScenario's steady-state channel alone lands well under this;
  // the storms must visibly move the population.
  if (lustre.kills < 100) {
    std::snprintf(buf, sizeof(buf), "Lustre kills %llu — storms missing",
                  static_cast<unsigned long long>(lustre.kills));
    v.push_back(buf);
  }
  const CauseBias* bias = o.BiasFor(ErrorCategory::kLustre);
  if (bias == nullptr || bias->attributed_runs * 10 < bias->injected_kills * 7) {
    v.push_back("Lustre attribution under 70% of injected storm kills");
  }
  if (o.score.system_recall < 0.80) {
    std::snprintf(buf, sizeof(buf), "system recall %.3f under storm load",
                  o.score.system_recall);
    v.push_back(buf);
  }
  return v;
}

void ConfigureMaintenanceWindow(ScenarioConfig* config) {
  config->faults.maintenance.windows_per_campaign = 2.0;
  config->faults.maintenance.node_fraction = 0.25;
}

std::vector<std::string> ValidateMaintenanceWindow(const ScenarioOutcome& o) {
  std::vector<std::string> v;
  char buf[160];
  const CategoryTally& heartbeat = o.ledger.by_category[static_cast<std::size_t>(
      ErrorCategory::kNodeHeartbeat)];
  if (heartbeat.kills < 5) {
    std::snprintf(buf, sizeof(buf),
                  "maintenance drains killed only %llu runs",
                  static_cast<unsigned long long>(heartbeat.kills));
    v.push_back(buf);
  }
  // Drain kills are fully detected node losses; the reboot noise burst
  // must not poison precision.
  if (o.score.system_precision < 0.80) {
    std::snprintf(buf, sizeof(buf),
                  "reboot noise poisoned precision: %.3f",
                  o.score.system_precision);
    v.push_back(buf);
  }
  if (o.score.system_recall < 0.80) {
    std::snprintf(buf, sizeof(buf), "system recall %.3f", o.score.system_recall);
    v.push_back(buf);
  }
  return v;
}

void ConfigureRotationSkew(ScenarioConfig* config) {
  // Span a Dec -> Jan midnight so the no-year syslog stamps force a
  // rollover right where the skew reorders lines.
  config->workload.epoch = TimePoint::FromCalendar(2013, 12, 15);
}

std::vector<std::string> ValidateRotationSkew(const ScenarioOutcome& o) {
  std::vector<std::string> v;
  char buf[160];
  if (!o.rotated_matches_whole) {
    v.push_back("rotated bundle diverged from the whole-file bundle");
  }
  if (o.score.scored_runs == 0 || o.score.missing_truth != 0) {
    std::snprintf(buf, sizeof(buf),
                  "scoring broke across the skewed year boundary: "
                  "scored=%llu missing=%llu",
                  static_cast<unsigned long long>(o.score.scored_runs),
                  static_cast<unsigned long long>(o.score.missing_truth));
    v.push_back(buf);
  }
  if (o.score.system_recall < 0.80) {
    std::snprintf(buf, sizeof(buf),
                  "recall %.3f — year reconstruction likely misplaced events",
                  o.score.system_recall);
    v.push_back(buf);
  }
  return v;
}

void ConfigureDiurnalIo(ScenarioConfig* config) {
  config->workload.app_mix = IoHeavyMix();
  config->workload.diurnal_amplitude = 0.6;
  config->workload.diurnal_peak_hour = 14;
  // A slightly longer campaign smooths the hourly arrival histogram.
  config->workload.campaign = Duration::Days(45);
}

std::vector<std::string> ValidateDiurnalIo(const ScenarioOutcome& o) {
  std::vector<std::string> v;
  char buf[160];
  // The undriven arrival histogram shows ~1.7 from binning noise alone;
  // the driven ratio must clear that decisively (measured ~6 at the
  // default seed — see docs/SCENARIOS.md).
  if (o.peak_trough_ratio < 3.0) {
    std::snprintf(buf, sizeof(buf),
                  "diurnal modulation not visible: peak/trough %.2f",
                  o.peak_trough_ratio);
    v.push_back(buf);
  }
  if (o.io_heavy_lustre_kill_rate < 0.0 || o.other_lustre_kill_rate < 0.0) {
    v.push_back("app mix did not produce both sensitivity groups");
  } else if (o.io_heavy_lustre_kill_rate <= o.other_lustre_kill_rate) {
    std::snprintf(buf, sizeof(buf),
                  "I/O-heavy jobs not preferentially killed by Lustre: "
                  "io=%.4f other=%.4f",
                  o.io_heavy_lustre_kill_rate, o.other_lustre_kill_rate);
    v.push_back(buf);
  }
  if (o.score.system_recall < 0.80) {
    std::snprintf(buf, sizeof(buf), "system recall %.3f", o.score.system_recall);
    v.push_back(buf);
  }
  return v;
}

}  // namespace

const CauseBias* ScenarioOutcome::BiasFor(ErrorCategory cause) const {
  for (const CauseBias& b : bias) {
    if (b.cause == cause) return &b;
  }
  return nullptr;
}

const std::vector<ScenarioSpec>& ScenarioCatalog() {
  static const std::vector<ScenarioSpec> catalog = {
      {"detection-gap",
       "Hybrid GPU errors under-reported at an exact, ledger-checkable rate",
       "Sec. VI / Fig. 6 (anchor A6)", ConfigureDetectionGap,
       ValidateDetectionGap},
      {"gemini-cascade",
       "Torus cascade storms: link failures propagating hop by hop",
       "Sec. V-B (interconnect failures)", ConfigureGeminiCascade,
       ValidateGeminiCascade},
      {"lustre-storm",
       "Clustered filesystem incident storms with long outage windows",
       "Sec. V-A (Lustre dominates population failures, anchor A2)",
       ConfigureLustreStorm, ValidateLustreStorm},
      {"maintenance-window",
       "Scheduled drains: mass node-down kills plus reboot log noise",
       "Sec. IV (filtering maintenance events)", ConfigureMaintenanceWindow,
       ValidateMaintenanceWindow},
      {"rotation-skew",
       "Multi-day rotated syslog across a clock-skewed Dec->Jan midnight",
       "Sec. III (log collection realities)", ConfigureRotationSkew,
       ValidateRotationSkew, /*rotate_days=*/7, /*midnight_skew_seconds=*/90},
      {"diurnal-io",
       "Diurnal arrivals over an I/O-heavy application mix",
       "Sec. IV (workload characterization)", ConfigureDiurnalIo,
       ValidateDiurnalIo},
  };
  return catalog;
}

const ScenarioSpec* FindScenario(std::string_view name) {
  for (const ScenarioSpec& spec : ScenarioCatalog()) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

Result<LogBundle> WriteScenarioBundle(const Machine& machine,
                                      const ScenarioConfig& config,
                                      const ScenarioSpec& spec,
                                      const std::string& dir) {
  auto campaign = RunCampaign(machine, config);
  if (!campaign.ok()) return campaign.status();
  if (Status s = WriteTransformedBundle(*campaign, config, spec.rotate_days,
                                        spec.midnight_skew_seconds, dir);
      !s.ok()) {
    return s;
  }
  LogBundle bundle;
  bundle.dir = dir;
  return bundle;
}

Result<ScenarioOutcome> RunScenario(const ScenarioSpec& spec,
                                    const ScenarioRunOptions& options) {
  const std::uint64_t t0 = LD_OBS_NOW_NS();

  ScenarioConfig config = SmallScenario(options.seed);
  if (options.app_scale != 1.0) {
    config.workload.target_app_runs = std::max<std::uint64_t>(
        100, static_cast<std::uint64_t>(
                 std::llround(options.app_scale *
                              static_cast<double>(
                                  config.workload.target_app_runs))));
  }
  spec.configure(&config);
  const Machine machine = MakeMachine(config);

  auto campaign = RunCampaign(machine, config);
  if (!campaign.ok()) return campaign.status();

  ScenarioOutcome out;
  out.name = spec.name;
  out.seed = options.seed;
  out.jobs = campaign->workload.jobs.size();
  out.apps = campaign->workload.apps.size();
  out.events = campaign->injection.events.size();
  out.ledger = BuildFaultLedger(campaign->workload, campaign->injection);

  LogDiverConfig diver_config;
  diver_config.threads = options.threads;
  LogDiver diver(machine, diver_config);
  LogSet logs;
  logs.torque = campaign->logs.torque;
  logs.alps = campaign->logs.alps;
  logs.syslog = campaign->logs.syslog;
  logs.hwerr = campaign->logs.hwerr;
  auto analysis = diver.Analyze(logs);
  if (!analysis.ok()) return analysis.status();

  out.score = ScoreClassification(analysis->runs, analysis->classified,
                                  campaign->injection.truth);
  for (const DetectionGapRow& row : analysis->metrics.detection_gap) {
    (row.type == NodeType::kXK ? out.xk_unattributed_share
                               : out.xe_unattributed_share) =
        row.unattributed_share;
  }

  // Attribution bias: injected kills per true cause vs analyzer verdicts.
  std::array<std::uint64_t, kErrorCategoryCount> injected{};
  std::array<std::uint64_t, kErrorCategoryCount> attributed{};
  for (const auto& [apid, rec] : campaign->injection.truth) {
    if (rec.outcome == AppOutcome::kSystemFailure) {
      ++injected[static_cast<std::size_t>(rec.cause)];
    }
  }
  for (const ClassifiedRun& cls : analysis->classified) {
    if (cls.outcome == AppOutcome::kSystemFailure &&
        cls.cause != ErrorCategory::kUnknown) {
      ++attributed[static_cast<std::size_t>(cls.cause)];
    }
  }
  for (int c = 0; c < kErrorCategoryCount; ++c) {
    const auto idx = static_cast<std::size_t>(c);
    if (injected[idx] == 0 && attributed[idx] == 0) continue;
    CauseBias b;
    b.cause = static_cast<ErrorCategory>(c);
    b.injected_kills = injected[idx];
    b.attributed_runs = attributed[idx];
    b.bias = (static_cast<double>(b.attributed_runs) -
              static_cast<double>(b.injected_kills)) /
             static_cast<double>(std::max<std::uint64_t>(1, b.injected_kills));
    out.bias.push_back(b);
  }

  // Diurnal shape: hourly job-arrival histogram over the campaign.
  {
    std::array<std::uint64_t, 24> hours{};
    for (const Job& job : campaign->workload.jobs) {
      const std::int64_t rel = (job.submit - config.workload.epoch).seconds();
      hours[static_cast<std::size_t>((rel / 3600) % 24)] += 1;
    }
    const std::uint64_t peak = *std::max_element(hours.begin(), hours.end());
    const std::uint64_t trough = *std::min_element(hours.begin(), hours.end());
    out.peak_trough_ratio = static_cast<double>(peak) /
                            static_cast<double>(std::max<std::uint64_t>(1, trough));
  }

  // Lustre kill rates by I/O sensitivity group (app-mix scenarios).
  {
    std::uint64_t io_apps = 0, io_kills = 0, other_apps = 0, other_kills = 0;
    for (const Application& app : campaign->workload.apps) {
      if (app.cancelled) continue;
      const bool io_heavy =
          campaign->workload.job_of(app).lustre_sensitivity > 1.5;
      const auto it = campaign->injection.truth.find(app.apid);
      const bool lustre_kill =
          it != campaign->injection.truth.end() &&
          it->second.outcome == AppOutcome::kSystemFailure &&
          it->second.cause == ErrorCategory::kLustre;
      (io_heavy ? io_apps : other_apps) += 1;
      if (lustre_kill) (io_heavy ? io_kills : other_kills) += 1;
    }
    if (io_apps > 0) {
      out.io_heavy_lustre_kill_rate =
          static_cast<double>(io_kills) / static_cast<double>(io_apps);
    }
    if (other_apps > 0) {
      out.other_lustre_kill_rate =
          static_cast<double>(other_kills) / static_cast<double>(other_apps);
    }
  }

  // Rotation scenarios: the rotated, skewed bundle must analyze exactly
  // like the same skewed stream as one whole file.
  if (spec.rotate_days > 0 || spec.midnight_skew_seconds > 0) {
    std::string work = options.work_dir;
    if (work.empty()) {
      work = (std::filesystem::temp_directory_path() /
              ("ld_scenario_" + std::string(spec.name) + "_" +
               std::to_string(options.seed)))
                 .string();
    }
    const std::string whole_dir = work + "/whole";
    const std::string rotated_dir = work + "/rotated";
    std::filesystem::remove_all(whole_dir);
    std::filesystem::remove_all(rotated_dir);
    if (Status s = WriteTransformedBundle(*campaign, config, /*rotate_days=*/0,
                                          spec.midnight_skew_seconds,
                                          whole_dir);
        !s.ok()) {
      return s;
    }
    if (Status s = WriteTransformedBundle(*campaign, config, spec.rotate_days,
                                          spec.midnight_skew_seconds,
                                          rotated_dir);
        !s.ok()) {
      return s;
    }
    auto whole = diver.AnalyzeBundle(whole_dir);
    auto rotated = diver.AnalyzeBundle(rotated_dir);
    if (!whole.ok()) return whole.status();
    if (!rotated.ok()) return rotated.status();
    out.rotated_matches_whole =
        whole->runs.size() == rotated->runs.size() &&
        whole->classified.size() == rotated->classified.size() &&
        whole->metrics.system_failure_fraction ==
            rotated->metrics.system_failure_fraction;
    if (out.rotated_matches_whole) {
      for (std::size_t i = 0; i < whole->classified.size(); ++i) {
        if (whole->classified[i].outcome != rotated->classified[i].outcome ||
            whole->classified[i].cause != rotated->classified[i].cause) {
          out.rotated_matches_whole = false;
          break;
        }
      }
    }
    // Score the skewed on-disk analysis — that is the stream the
    // year-reconstruction fix has to survive.
    out.score = ScoreClassification(whole->runs, whole->classified,
                                    campaign->injection.truth);
    std::filesystem::remove_all(work);
  }

  out.violations = spec.validate(out);

  LD_OBS_COUNTER_ADD(obs::names::kScenarioRunsTotal, 1);
  LD_OBS_COUNTER_ADD(obs::names::kScenarioAppsTotal, out.apps);
  LD_OBS_COUNTER_ADD(obs::names::kScenarioValidationFailuresTotal,
                     out.violations.size());
  const std::uint64_t t1 = LD_OBS_NOW_NS();
  if (t0 != 0 && t1 > t0) {
    LD_OBS_HIST_RECORD(obs::names::kScenarioRunMicros, (t1 - t0) / 1000);
  }
  return out;
}

}  // namespace ld
