// The fault-scenario catalog: named, seeded, ground-truth-validated
// campaign recipes.
//
// Each ScenarioSpec composes a workload (app mix, diurnal load), a
// fault schedule (steady-state hazards plus episode channels from
// faults/storms.hpp), and emitter/bundle transforms (multi-day log
// rotation, clock-skewed midnights) into one named, reproducible cell.
// RunScenario executes the cell end to end — generate, inject, emit,
// analyze — and measures the analyzer's *attribution bias* against the
// injector's ground-truth ledger; every spec carries a validate hook
// whose expectations are asserted by bench/scenario_campaign.cpp (ctest
// label `scenario`).  docs/SCENARIOS.md is the human-facing page per
// entry; the two are kept in lockstep by the campaign's manifest.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/scoring.hpp"
#include "common/status.hpp"
#include "faults/ledger.hpp"
#include "simlog/scenario.hpp"

namespace ld {

/// Per-category attribution bias: how many kills the injector charged
/// to a cause vs how many runs the analyzer attributed to it.
struct CauseBias {
  ErrorCategory cause = ErrorCategory::kUnknown;
  std::uint64_t injected_kills = 0;   // ground truth
  std::uint64_t attributed_runs = 0;  // analyzer verdicts
  /// (attributed - injected) / max(1, injected); 0 = unbiased.
  double bias = 0.0;
};

/// Everything RunScenario measures for one cell.
struct ScenarioOutcome {
  std::string name;
  std::uint64_t seed = 0;
  std::uint64_t jobs = 0;
  std::uint64_t apps = 0;
  std::uint64_t events = 0;

  FaultLedger ledger;   // injected ground truth
  ScoreReport score;    // analyzer vs truth
  std::vector<CauseBias> bias;

  /// Fig-6-style unattributed shares per partition (analyzer side).
  double xe_unattributed_share = 0.0;
  double xk_unattributed_share = 0.0;

  /// Diurnal load: busiest / quietest hourly job-arrival bin.
  double peak_trough_ratio = 0.0;
  /// Lustre kill rate of I/O-heavy jobs (lustre_sensitivity > 1.5) vs
  /// the rest; -1 when the group is empty.
  double io_heavy_lustre_kill_rate = -1.0;
  double other_lustre_kill_rate = -1.0;

  /// Rotation scenarios: the rotated, clock-skewed bundle analyzed
  /// identically to the same stream as one whole file.
  bool rotated_matches_whole = true;

  /// Violated expectations (empty = the cell validates).
  std::vector<std::string> violations;

  const CauseBias* BiasFor(ErrorCategory cause) const;
};

struct ScenarioSpec {
  const char* name;          // registry key and manifest slug
  const char* title;         // one-line intent
  const char* paper_anchor;  // section/figure the cell reproduces
  /// Applied on top of SmallScenario(seed).
  void (*configure)(ScenarioConfig* config);
  /// Ground-truth expectations; returns violation strings (empty = pass).
  std::vector<std::string> (*validate)(const ScenarioOutcome& outcome);
  /// Bundle transform: split syslog into one segment per N days
  /// (syslog.log.N oldest ... syslog.log), 0 = single file.
  int rotate_days = 0;
  /// Bundle transform: re-stamp syslog lines falling within this many
  /// seconds after any midnight back by the same amount (a node whose
  /// clock lags the fleet), 0 = off.
  int midnight_skew_seconds = 0;
};

/// The registered scenarios, in catalog order (stable for docs/CI).
const std::vector<ScenarioSpec>& ScenarioCatalog();
const ScenarioSpec* FindScenario(std::string_view name);

struct ScenarioRunOptions {
  std::uint64_t seed = 42;
  /// LogDiver thread count (0 = auto); the outcome is bit-identical at
  /// any value — the determinism tests pin that.
  int threads = 0;
  /// Scratch directory for scenarios that write bundles; empty = a
  /// name-and-seed-keyed directory under the system temp dir.
  std::string work_dir;
  /// Multiplies SmallScenario's target_app_runs (campaign size knob).
  double app_scale = 1.0;
};

/// Runs one catalog cell end to end and measures it against ground
/// truth.  Deterministic in (spec, seed, app_scale).
Result<ScenarioOutcome> RunScenario(const ScenarioSpec& spec,
                                    const ScenarioRunOptions& options);

/// Writes the scenario's bundle with its rotation/skew transforms
/// applied (for `logdiver_cli generate --scenario <name>` and tests).
Result<LogBundle> WriteScenarioBundle(const Machine& machine,
                                      const ScenarioConfig& config,
                                      const ScenarioSpec& spec,
                                      const std::string& dir);

// --- bundle transforms (exposed for the regression tests) ------------

/// Re-stamps syslog lines whose time of day is < `skew_seconds` back by
/// `skew_seconds`, keeping file position — around each midnight the
/// stream then carries yesterday's stamps *after* today's, which is
/// what a lagging node clock does to a merged syslog.  `epoch` anchors
/// the year reconstruction (campaigns under a year).
std::vector<std::string> SkewSyslogMidnights(
    const std::vector<std::string>& lines, int skew_seconds, TimePoint epoch);

/// Splits syslog lines into rotation segments of `rotate_days` days
/// (oldest first).  A cut happens at the first line stamped at or past
/// each boundary; skewed lines right after a cut stay in the newer
/// segment, like a rotating daemon would leave them.
std::vector<std::vector<std::string>> SplitSyslogByDays(
    const std::vector<std::string>& lines, TimePoint epoch, int rotate_days);

}  // namespace ld
