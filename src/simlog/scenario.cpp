#include "simlog/scenario.hpp"

#include <filesystem>
#include <fstream>

namespace ld {

Machine MakeMachine(const ScenarioConfig& config) {
  if (config.full_machine) return Machine::BlueWaters();
  return Machine::Testbed(config.testbed_xe, config.testbed_xk);
}

Result<Campaign> RunCampaign(const Machine& machine,
                             const ScenarioConfig& config) {
  Rng rng(config.seed);

  WorkloadGenerator generator(machine, config.workload);
  Rng wl_rng = rng.Fork("workload");
  auto workload = generator.Generate(wl_rng);
  if (!workload.ok()) return workload.status();

  Campaign campaign;
  campaign.workload = std::move(*workload);

  FaultInjector injector(machine, config.faults);
  Rng fault_rng = rng.Fork("faults");
  auto injection =
      injector.Inject(campaign.workload, config.workload.epoch,
                      config.workload.campaign, fault_rng);
  if (!injection.ok()) return injection.status();
  campaign.injection = std::move(*injection);

  Rng emit_rng = rng.Fork("emitters");
  campaign.logs = EmitLogs(machine, campaign.workload, campaign.injection,
                           config.emitter, emit_rng);
  return campaign;
}

namespace {

Status WriteLines(const std::string& path,
                  const std::vector<std::string>& lines) {
  std::ofstream out(path);
  if (!out) return InternalError("cannot write '" + path + "'");
  for (const std::string& line : lines) out << line << '\n';
  return Status::Ok();
}

}  // namespace

Result<LogBundle> WriteBundle(const Machine& machine,
                              const ScenarioConfig& config,
                              const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return InternalError("cannot create '" + dir + "': " + ec.message());

  auto campaign = RunCampaign(machine, config);
  if (!campaign.ok()) return campaign.status();

  LogBundle bundle;
  bundle.dir = dir;
  if (Status s = WriteLines(bundle.torque_path(), campaign->logs.torque);
      !s.ok()) {
    return s;
  }
  if (Status s = WriteLines(bundle.alps_path(), campaign->logs.alps); !s.ok()) {
    return s;
  }
  if (Status s = WriteLines(bundle.syslog_path(), campaign->logs.syslog);
      !s.ok()) {
    return s;
  }
  if (Status s = WriteLines(bundle.hwerr_path(), campaign->logs.hwerr);
      !s.ok()) {
    return s;
  }
  if (Status s = WriteLines(
          bundle.truth_path(),
          RenderGroundTruthCsv(campaign->workload, campaign->injection));
      !s.ok()) {
    return s;
  }

  std::vector<std::string> manifest;
  manifest.push_back("seed=" + std::to_string(config.seed));
  manifest.push_back("epoch=" + config.workload.epoch.ToIso());
  manifest.push_back("campaign_days=" +
                     std::to_string(config.workload.campaign.days()));
  manifest.push_back("jobs=" + std::to_string(campaign->workload.jobs.size()));
  manifest.push_back("apps=" + std::to_string(campaign->workload.apps.size()));
  manifest.push_back("events=" +
                     std::to_string(campaign->injection.events.size()));
  if (Status s = WriteLines(bundle.manifest_path(), manifest); !s.ok()) {
    return s;
  }
  return bundle;
}

ScenarioConfig SmallScenario(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.full_machine = false;
  config.testbed_xe = 960;
  config.testbed_xk = 192;
  config.workload.target_app_runs = 4000;
  config.workload.campaign = Duration::Days(30);
  // Boost the error processes so a month-long testbed campaign still
  // sees enough events to exercise every code path.
  config.faults.xe_fatal_per_node_hour = 4e-5;
  config.faults.xk_fatal_per_node_hour = 2e-4;
  config.faults.lustre_incidents_per_day = 1.5;
  config.faults.blade_faults_per_day = 0.3;
  config.faults.link_failures_per_day = 2.0;
  config.faults.corrected_mce_per_day = 20.0;
  return config;
}

}  // namespace ld
