// Scenario driver: runs a full simulated campaign end to end.
//
// machine model -> workload generation -> fault injection -> log
// emission, either into memory (for tests and benches that feed LogDiver
// directly) or onto disk as a log bundle directory:
//
//   <dir>/torque.log   <dir>/alps.log   <dir>/syslog.log
//   <dir>/hwerr.log    <dir>/ground_truth.csv   <dir>/MANIFEST
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "faults/injector.hpp"
#include "simlog/emitters.hpp"
#include "topology/machine.hpp"
#include "workload/generator.hpp"

namespace ld {

struct ScenarioConfig {
  std::uint64_t seed = 42;
  /// Full Blue Waters (27,648 slots) vs a small testbed machine.
  bool full_machine = true;
  std::uint32_t testbed_xe = 960;
  std::uint32_t testbed_xk = 192;
  WorkloadConfig workload;
  FaultModelConfig faults;
  EmitterConfig emitter;
};

/// Builds the machine this scenario runs on.
Machine MakeMachine(const ScenarioConfig& config);

/// Everything a campaign produces, in memory.
struct Campaign {
  Workload workload;
  InjectionResult injection;
  EmittedLogs logs;
};

/// Runs the campaign in memory.  The same machine instance must be used
/// for downstream LogDiver analysis (node identity is positional).
Result<Campaign> RunCampaign(const Machine& machine,
                             const ScenarioConfig& config);

/// File layout of an on-disk log bundle.
struct LogBundle {
  std::string dir;
  std::string torque_path() const { return dir + "/torque.log"; }
  std::string alps_path() const { return dir + "/alps.log"; }
  std::string syslog_path() const { return dir + "/syslog.log"; }
  std::string hwerr_path() const { return dir + "/hwerr.log"; }
  std::string truth_path() const { return dir + "/ground_truth.csv"; }
  std::string manifest_path() const { return dir + "/MANIFEST"; }
};

/// Runs the campaign and writes the bundle to `dir` (created if needed).
Result<LogBundle> WriteBundle(const Machine& machine,
                              const ScenarioConfig& config,
                              const std::string& dir);

/// Convenience for tests/examples: a small, fast scenario (testbed
/// machine, a few thousand app runs, one simulated month).
ScenarioConfig SmallScenario(std::uint64_t seed = 42);

}  // namespace ld
