#include "simlog/emitters.hpp"

#include <algorithm>
#include <cstdio>

#include "common/strings.hpp"

namespace ld {
namespace {

/// A line tagged with its timestamp so each source can be sorted into
/// wall-clock order after jitter.
struct TimedLine {
  TimePoint time;
  std::uint64_t tiebreak;
  std::string text;
};

void SortAndStrip(std::vector<TimedLine>& lines, std::vector<std::string>& out) {
  std::sort(lines.begin(), lines.end(),
            [](const TimedLine& a, const TimedLine& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.tiebreak < b.tiebreak;
            });
  out.reserve(lines.size());
  for (auto& line : lines) out.push_back(std::move(line.text));
}

std::string JobIdString(JobId id) { return std::to_string(id) + ".bw"; }

std::string WalltimeField(Duration d) {
  const std::int64_t s = d.seconds();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld",
                static_cast<long long>(s / 3600),
                static_cast<long long>((s / 60) % 60),
                static_cast<long long>(s % 60));
  return buf;
}

/// The gemini component name for a node: blade prefix + g{pair}, e.g.
/// "c3-4c1s2g0" for nodes 0-1 of the blade, "...g1" for nodes 2-3.
std::string GeminiName(const Cname& cname) {
  return cname.BladePrefix() + "g" + std::to_string(cname.node / 2);
}

}  // namespace

std::string TorqueTimestamp(TimePoint t) {
  const CalendarTime c = ToCalendar(t);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02d/%02d/%04d %02d:%02d:%02d", c.month,
                c.day, c.year, c.hour, c.minute, c.second);
  return buf;
}

std::string CompressNids(std::vector<NodeIndex> nids) {
  std::sort(nids.begin(), nids.end());
  std::string out;
  std::size_t i = 0;
  while (i < nids.size()) {
    std::size_t j = i;
    while (j + 1 < nids.size() && nids[j + 1] == nids[j] + 1) ++j;
    if (!out.empty()) out += ',';
    out += std::to_string(nids[i]);
    if (j > i) {
      out += '-';
      out += std::to_string(nids[j]);
    }
    i = j + 1;
  }
  return out;
}

std::string RenderTorqueStart(const Job& job) {
  std::string line = TorqueTimestamp(job.start);
  line += ";S;" + JobIdString(job.jobid) + ";";
  line += "user=" + job.user_name + " group=users queue=" + job.queue;
  line += " jobname=" + job.job_name;
  line += " ctime=" + job.submit.ToEpochString();
  line += " qtime=" + job.submit.ToEpochString();
  line += " etime=" + job.submit.ToEpochString();
  line += " start=" + job.start.ToEpochString();
  line += " owner=" + job.user_name + "@bw";
  line += " Resource_List.nodect=" + std::to_string(job.nodect());
  line += " Resource_List.walltime=" + WalltimeField(job.walltime_limit);
  return line;
}

std::string RenderTorqueEnd(const Job& job) {
  std::string line = TorqueTimestamp(job.end);
  line += ";E;" + JobIdString(job.jobid) + ";";
  line += "user=" + job.user_name + " group=users queue=" + job.queue;
  line += " jobname=" + job.job_name;
  line += " ctime=" + job.submit.ToEpochString();
  line += " qtime=" + job.submit.ToEpochString();
  line += " start=" + job.start.ToEpochString();
  line += " end=" + job.end.ToEpochString();
  line += " Exit_status=" + std::to_string(job.exit_status);
  line += " Resource_List.nodect=" + std::to_string(job.nodect());
  line += " Resource_List.walltime=" + WalltimeField(job.walltime_limit);
  line += " resources_used.walltime=" + WalltimeField(job.end - job.start);
  return line;
}

std::string RenderAlpsPlace(const Job& job, const Application& app) {
  std::string line = app.start.ToIso();
  line += " apsched[5]: placeApp apid=" + std::to_string(app.apid);
  line += " jobid=" + std::to_string(job.jobid);
  line += " user=" + job.user_name;
  line += " cmd=" + job.job_name + ".exe";
  line += " nodect=" + std::to_string(job.nodect());
  line += " nids=" + CompressNids(job.nodes);
  return line;
}

std::string RenderAlpsExit(const Application& app) {
  std::string line = app.end.ToIso();
  line += " apsys[5]: apid=" + std::to_string(app.apid);
  line += " exited, status=" + std::to_string(app.exit_code);
  line += " signal=" + std::to_string(app.exit_signal);
  return line;
}

std::string RenderAlpsNodeFailureKill(const Application& app, NodeIndex nid) {
  std::string line = app.end.ToIso();
  line += " apsys[5]: apid=" + std::to_string(app.apid);
  line += " killed, reason=node_failure nid=" + std::to_string(nid);
  return line;
}

std::string RenderSyslogLine(const Machine& machine, const ErrorEvent& event,
                             TimePoint when) {
  const std::string stamp = when.ToSyslog();
  const bool has_node = event.node != kInvalidNode;
  const std::string cname =
      has_node ? machine.node(event.node).cname.ToString() : std::string();

  switch (event.category) {
    case ErrorCategory::kMachineCheck:
      if (event.severity == Severity::kCorrected) {
        return stamp + " " + cname +
               " kernel: [Hardware Error]: Machine check events logged "
               "(corrected)";
      }
      return stamp + " " + cname +
             " kernel: [Hardware Error]: Machine check: Processor context "
             "corrupt";
    case ErrorCategory::kMemoryUE:
      return stamp + " " + cname +
             " kernel: EDAC MC0: UE row 4, channel 1 (uncorrectable memory "
             "error)";
    case ErrorCategory::kGpuDbe:
      return stamp + " " + cname +
             " kernel: NVRM: Xid (0000:02:00): 48, Double Bit ECC Error";
    case ErrorCategory::kGpuXid:
      if (event.severity == Severity::kCorrected) {
        return stamp + " " + cname +
               " kernel: NVRM: Xid (0000:02:00): 63, ECC page retirement";
      }
      return stamp + " " + cname +
             " kernel: NVRM: Xid (0000:02:00): 13, Graphics SM exception";
    case ErrorCategory::kGeminiLink: {
      const std::string gemini =
          has_node ? GeminiName(machine.node(event.node).cname)
                   : std::string("c0-0c0s0g0");
      if (event.severity == Severity::kCorrected) {
        return stamp + " smw netwatch: lane degrade on " + gemini +
               "l12, recovered";
      }
      if (event.severity == Severity::kDegraded) {
        return stamp + " smw netwatch: Gemini LCB " + gemini +
               "l33 failed, failover initiated";
      }
      return stamp + " smw netwatch: Gemini LCB " + gemini +
             "l33 failed, failover unsuccessful";
    }
    case ErrorCategory::kLustre:
      return stamp +
             " sonexion LustreError: 11-0: snx11003-OST0042: operation "
             "ost_write failed: service unavailable";
    case ErrorCategory::kNodeHeartbeat:
      return stamp + " smw node_health: node " + cname +
             " heartbeat fault, marking node down";
    case ErrorCategory::kBladeFault: {
      const std::string blade =
          has_node ? machine.node(event.node).cname.BladePrefix()
                   : std::string("c0-0c0s0");
      return stamp + " smw hwerrd: blade " + blade +
             " voltage fault, powering down blade";
    }
    case ErrorCategory::kKernelSoftware:
      return stamp + " " + cname +
             " kernel: Kernel panic - not syncing: Fatal exception";
    case ErrorCategory::kUnknown:
      break;
  }
  return stamp + " smw ras: unclassified event";
}

std::string RenderSyslogRecovery(const ErrorEvent& event, TimePoint when) {
  (void)event;
  return when.ToSyslog() +
         " sonexion Lustre: snx11003-OST0042: service recovered";
}

std::string RenderHwerrLine(const Machine& machine, const ErrorEvent& event,
                            TimePoint when) {
  // Only hardware-side categories are recorded by the hardware error
  // logger; OS/software and filesystem incidents are not.
  switch (event.category) {
    case ErrorCategory::kMachineCheck:
    case ErrorCategory::kMemoryUE:
    case ErrorCategory::kGpuDbe:
    case ErrorCategory::kGpuXid:
    case ErrorCategory::kBladeFault:
      break;
    default:
      return "";
  }
  const std::string cname = event.node != kInvalidNode
                                ? machine.node(event.node).cname.ToString()
                                : "unknown";
  std::string line = when.ToEpochString();
  line += "|";
  line += ErrorCategoryName(event.category);
  line += "|" + cname + "|";
  line += SeverityName(event.severity);
  line += "|bank=4 status=0x" + std::to_string(event.event_id % 0xffff);
  return line;
}

EmittedLogs EmitLogs(const Machine& machine, const Workload& workload,
                     const InjectionResult& injection,
                     const EmitterConfig& config, Rng& rng) {
  EmittedLogs out;
  Rng jitter_rng = rng.Fork("emit-jitter");
  auto jitter = [&](TimePoint t) {
    if (config.timestamp_jitter_seconds <= 0) return t;
    const std::int64_t j = jitter_rng.UniformInt(
        -static_cast<std::int64_t>(config.timestamp_jitter_seconds),
        static_cast<std::int64_t>(config.timestamp_jitter_seconds));
    return t + Duration(j);
  };

  std::uint64_t seq = 0;

  // --- torque ---
  {
    std::vector<TimedLine> lines;
    lines.reserve(workload.jobs.size() * 2);
    for (const Job& job : workload.jobs) {
      lines.push_back({job.start, seq++, RenderTorqueStart(job)});
      lines.push_back({job.end, seq++, RenderTorqueEnd(job)});
    }
    SortAndStrip(lines, out.torque);
  }

  // --- alps ---
  {
    std::unordered_map<std::uint64_t, NodeIndex> event_node;
    event_node.reserve(injection.events.size());
    for (const ErrorEvent& ev : injection.events) {
      event_node.emplace(ev.event_id, ev.node);
    }
    std::vector<TimedLine> lines;
    lines.reserve(workload.apps.size() * 2);
    for (const Application& app : workload.apps) {
      if (app.cancelled) continue;
      const Job& job = workload.job_of(app);
      lines.push_back({app.start, seq++, RenderAlpsPlace(job, app)});
      if (app.alps_node_failure) {
        // The dead node is recorded in the kill message; recover it from
        // the killing event when known, else use the job's head node.
        NodeIndex nid = job.nodes.front();
        const auto truth = injection.truth.find(app.apid);
        if (truth != injection.truth.end() && truth->second.event_id != 0) {
          const auto hit = event_node.find(truth->second.event_id);
          if (hit != event_node.end() && hit->second != kInvalidNode) {
            nid = hit->second;
          }
        }
        lines.push_back({app.end, seq++, RenderAlpsNodeFailureKill(app, nid)});
      } else {
        lines.push_back({app.end, seq++, RenderAlpsExit(app)});
      }
    }
    SortAndStrip(lines, out.alps);
  }

  // --- syslog + hwerr ---
  {
    std::vector<TimedLine> sys_lines;
    std::vector<TimedLine> hw_lines;
    for (const ErrorEvent& event : injection.events) {
      if (!event.detected) continue;
      const TimePoint when = jitter(event.time);
      sys_lines.push_back({when, seq++, RenderSyslogLine(machine, event, when)});
      if (event.scope == Scope::kSystem && event.outage.seconds() > 0) {
        const TimePoint rec = event.time + event.outage;
        sys_lines.push_back({rec, seq++, RenderSyslogRecovery(event, rec)});
      }
      const TimePoint hw_when = jitter(event.time);
      std::string hw = RenderHwerrLine(machine, event, hw_when);
      if (!hw.empty()) hw_lines.push_back({hw_when, seq++, std::move(hw)});
    }
    SortAndStrip(sys_lines, out.syslog);
    SortAndStrip(hw_lines, out.hwerr);
  }

  return out;
}

std::vector<std::string> RenderGroundTruthCsv(const Workload& workload,
                                              const InjectionResult& injection) {
  std::vector<std::string> lines;
  lines.reserve(workload.apps.size() + 1);
  lines.push_back("apid,outcome,cause,event_id,cause_detected");
  for (const Application& app : workload.apps) {
    if (app.cancelled) continue;
    const auto it = injection.truth.find(app.apid);
    TruthRecord rec;
    if (it != injection.truth.end()) rec = it->second;
    std::string line = std::to_string(app.apid);
    line += ",";
    line += AppOutcomeName(rec.outcome);
    line += ",";
    line += rec.outcome == AppOutcome::kSystemFailure
                ? ErrorCategoryName(rec.cause)
                : "";
    line += "," + std::to_string(rec.event_id);
    line += ",";
    line += rec.cause_detected ? "1" : "0";
    lines.push_back(std::move(line));
  }
  return lines;
}

}  // namespace ld
