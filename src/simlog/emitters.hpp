// Log emitters: render a simulated campaign into the textual log bundle
// LogDiver consumes.
//
// Four sources, mirroring the Blue Waters data sources:
//   torque.log  — Torque/Moab accounting records ("S" start, "E" end),
//                 `MM/DD/YYYY HH:MM:SS;TYPE;JOBID;key=value ...`
//   alps.log    — ALPS apsched/apsys records: application placement
//                 (apid -> nid list), exits, and node-failure kills
//   syslog.log  — RFC3164-style RAS messages (NO YEAR in the timestamp —
//                 the parser must reconstruct it, as the real tool must)
//   hwerr.log   — structured hardware error records
//                 `epoch|category|cname|severity|detail` (hardware
//                 categories also appear in syslog: cross-source
//                 duplicates are intentional; the coalescing stage must
//                 collapse them)
//
// Only `detected` events are rendered.  Undetected node losses still
// surface in alps.log as "killed, reason=node_failure" because ALPS's
// own health monitoring observes the node loss — exactly the asymmetry
// that lets LogDiver categorize such failures without attributing them.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "faults/injector.hpp"
#include "faults/taxonomy.hpp"
#include "topology/machine.hpp"
#include "workload/types.hpp"

namespace ld {

struct EmittedLogs {
  std::vector<std::string> torque;
  std::vector<std::string> alps;
  std::vector<std::string> syslog;
  std::vector<std::string> hwerr;
};

struct EmitterConfig {
  /// Max +/- jitter applied to log timestamps relative to ground truth
  /// (real daemons flush asynchronously); exercised by the coalescing
  /// window logic.
  int timestamp_jitter_seconds = 2;
};

/// Renders every log line of the campaign, time-sorted per source.
/// Deterministic in the rng seed.
EmittedLogs EmitLogs(const Machine& machine, const Workload& workload,
                     const InjectionResult& injection,
                     const EmitterConfig& config, Rng& rng);

/// Renders the ground-truth sidecar (CSV with header).  Consumed only by
/// the analysis/scoring layer, never by LogDiver itself.
std::vector<std::string> RenderGroundTruthCsv(const Workload& workload,
                                              const InjectionResult& injection);

// --- individual record renderers (exposed for tests) ---

/// Torque accounting timestamp: "04/01/2013 02:10:02".
std::string TorqueTimestamp(TimePoint t);

/// Compresses a node list into ALPS range syntax: {3,4,5,9} -> "3-5,9".
std::string CompressNids(std::vector<NodeIndex> nids);

std::string RenderTorqueStart(const Job& job);
std::string RenderTorqueEnd(const Job& job);
std::string RenderAlpsPlace(const Job& job, const Application& app);
std::string RenderAlpsExit(const Application& app);
std::string RenderAlpsNodeFailureKill(const Application& app, NodeIndex nid);
/// Syslog line for a detected error event; empty string if the category
/// has no syslog signature (never the case today).
std::string RenderSyslogLine(const Machine& machine, const ErrorEvent& event,
                             TimePoint when);
/// End-of-outage line for system-scope incidents.
std::string RenderSyslogRecovery(const ErrorEvent& event, TimePoint when);
/// Structured hwerr record; empty if the category is not hardware-side.
std::string RenderHwerrLine(const Machine& machine, const ErrorEvent& event,
                            TimePoint when);

}  // namespace ld
