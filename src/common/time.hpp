// Simulated time for the Blue Waters campaign model and for log
// timestamp parsing/formatting.
//
// All simulation and log-analysis time is UTC seconds from an arbitrary
// epoch (we use the classic Unix epoch so formatted timestamps look like
// real syslog/Torque records).  Sub-second resolution is not needed: the
// field study's correlation windows are seconds-to-minutes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace ld {

/// A span of time, in whole seconds.  Value type; arithmetic is checked
/// nowhere (int64 seconds overflow ~292 billion years).
class Duration {
 public:
  constexpr Duration() : secs_(0) {}
  constexpr explicit Duration(std::int64_t seconds) : secs_(seconds) {}

  static constexpr Duration Seconds(std::int64_t s) { return Duration(s); }
  static constexpr Duration Minutes(std::int64_t m) { return Duration(m * 60); }
  static constexpr Duration Hours(std::int64_t h) { return Duration(h * 3600); }
  static constexpr Duration Days(std::int64_t d) { return Duration(d * 86400); }

  constexpr std::int64_t seconds() const { return secs_; }
  constexpr double hours() const { return static_cast<double>(secs_) / 3600.0; }
  constexpr double days() const { return static_cast<double>(secs_) / 86400.0; }

  constexpr Duration operator+(Duration o) const { return Duration(secs_ + o.secs_); }
  constexpr Duration operator-(Duration o) const { return Duration(secs_ - o.secs_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(secs_ * k); }
  constexpr auto operator<=>(const Duration&) const = default;

  /// "[Nd ]HH:MM:SS" walltime rendering, e.g. "2d 03:15:00".
  std::string ToString() const;

 private:
  std::int64_t secs_;
};

/// A point in simulated time (UTC seconds since the Unix epoch).
class TimePoint {
 public:
  constexpr TimePoint() : secs_(0) {}
  constexpr explicit TimePoint(std::int64_t unix_seconds) : secs_(unix_seconds) {}

  constexpr std::int64_t unix_seconds() const { return secs_; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(secs_ + d.seconds()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(secs_ - d.seconds()); }
  constexpr Duration operator-(TimePoint o) const { return Duration(secs_ - o.secs_); }
  constexpr auto operator<=>(const TimePoint&) const = default;

  /// ISO-8601 UTC: "2013-04-01T12:34:56".
  std::string ToIso() const;
  /// Syslog style: "Apr  1 12:34:56" (no year, like classic RFC3164).
  std::string ToSyslog() const;
  /// Unix epoch integer as a string (Torque accounting style field).
  std::string ToEpochString() const { return std::to_string(secs_); }

  /// Parses "YYYY-MM-DDTHH:MM:SS" (UTC; ' ' also accepted as the date/
  /// time separator).  Allocation-free on the success path so the ALPS
  /// parser can call it per line.
  static Result<TimePoint> FromIso(std::string_view text);
  /// Builds a time point from calendar components (UTC, proleptic Gregorian).
  static TimePoint FromCalendar(int year, int month, int day, int hour = 0,
                                int minute = 0, int second = 0);

 private:
  std::int64_t secs_;
};

/// Breaks a TimePoint into UTC calendar fields.
struct CalendarTime {
  int year;
  int month;   // 1..12
  int day;     // 1..31
  int hour;    // 0..23
  int minute;  // 0..59
  int second;  // 0..59
};
CalendarTime ToCalendar(TimePoint t);

}  // namespace ld
