// Minimal blocking socket plumbing for the line-protocol service
// (src/logdiver/service): listen/connect on an address string, plus a
// buffered newline-framed channel.
//
// Addresses come in two spellings:
//
//   unix:<path>   — an AF_UNIX stream socket at <path> (the default for
//                   tests and single-host deployments: no ports to
//                   collide, the path namespaces the daemon instance);
//   <host>:<port> — an AF_INET TCP socket; host must be a numeric IPv4
//                   address ("127.0.0.1:7070"); port 0 asks the kernel
//                   for a free port, and ListeningAddress() reports the
//                   one it picked.
//
// Everything here is deliberately blocking: the daemon runs a thread
// per connection, and the campaign's latency numbers measure the real
// syscall path, not an event-loop abstraction.  SIGPIPE is disabled
// per-send (MSG_NOSIGNAL) so a vanished peer surfaces as an error
// return instead of killing the process.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace ld {

/// Prefix selecting the AF_UNIX spelling.
inline constexpr const char* kUnixAddressPrefix = "unix:";

/// Creates a listening socket on `address` (see spellings above).  For
/// unix addresses a stale socket file from a crashed previous daemon is
/// unlinked first — the restart path must not require manual cleanup.
Result<int> ListenOn(const std::string& address, int backlog = 64);

/// Connects to `address`; returns the connected fd.
Result<int> ConnectTo(const std::string& address);

/// The address a listening fd is actually bound to, in the same
/// spelling ListenOn accepts — resolves port 0 to the kernel's pick.
Result<std::string> ListeningAddress(int fd);

/// Accepts one connection; blocks.  Errors on a closed listener (the
/// daemon's shutdown path closes the fd to unblock the accept thread).
Result<int> AcceptOn(int listen_fd);

/// Sets SO_RCVTIMEO so reads fail with kUnavailable-ish timeouts
/// instead of blocking forever (clients talking to a hung daemon).
Status SetRecvTimeoutMs(int fd, std::uint64_t timeout_ms);

/// Newline-framed messages over a connected fd.  Reads are buffered;
/// writes go out whole (looped over partial writes).  Owns the fd and
/// closes it on destruction.
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}
  ~LineChannel();
  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  /// Next line without its terminating '\n' (a final unterminated line
  /// is returned as-is at EOF).  A trailing '\r' is stripped with the
  /// newline — CRLF clients are first-class.  nullopt = clean EOF.
  /// Errors on socket
  /// failure or a receive timeout; `timed_out()` distinguishes the two
  /// (a server loop continues after a timeout, exits on a real error).
  Result<std::optional<std::string>> ReadLine();

  /// True iff the last ReadLine error was a receive timeout.
  bool timed_out() const { return timed_out_; }

  /// Writes `line` + '\n' in full.
  Status WriteLine(std::string_view line);

  int fd() const { return fd_; }
  /// Closes the fd early (idempotent).
  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;
  std::size_t buffer_pos_ = 0;
  bool eof_ = false;
  bool timed_out_ = false;
};

}  // namespace ld
