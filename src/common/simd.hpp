// SIMD scanning kernels shared by the block reader and all four log
// parsers: byte search (newline splitting), whitespace classification
// (field splitting), digit-run and HH:MM:SS recognition (timestamp fast
// paths), a delimiter-set scanner, and a streaming key=value classifier
// that bit-maps a whole record in one call (the KeyValueView splitter).
//
// Backends are selected by *runtime dispatch*: the build compiles every
// backend the target architecture can express (SSE2 + AVX2 on x86-64,
// NEON on aarch64, always the portable scalar loops), and the first
// kernel call resolves a function-pointer table against the CPU it is
// actually running on (AVX2 via __builtin_cpu_supports).  The
// LD_SIMD_FORCE environment variable (scalar|sse2|avx2|neon) pins the
// dispatch for testing; an unsupported or unknown name falls back to
// the best supported backend — forcing can only ever narrow, never
// crash on an old CPU.  -DLOGDIVER_SIMD=OFF (LOGDIVER_SIMD_DISABLED)
// compiles only the scalar backend.
//
// The kernels are pure byte-classification functions, so every backend
// returns bit-identical results — the scalar reference implementations
// in simd::scalar are always compiled, both as the fallback and so one
// binary can benchmark any compiled backend against them (BM_SimdScan)
// and tests can assert agreement on adversarial buffers at every lane
// offset (16, 32 and misaligned tails).
//
// Run manifests record both halves of the story: `build.simd_backend`
// is the compiled capability (CompiledBackends), `runtime.simd_dispatch`
// is the backend the dispatch resolved to (BackendName).
//
// The whitespace set is exactly the C locale's std::isspace set
// (' ', '\t', '\n', '\v', '\f', '\r'): SplitWhitespace and Trim are
// built on these kernels and their observable behavior must not change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ld::simd {

/// The dispatchable kernel table: one entry per operation, every
/// backend fills all of them.  Benches and tests grab specific backends
/// via GetBackend to compare them inside one binary; production code
/// uses the free functions below, which route through the resolved
/// table.
struct Kernels {
  const char* name;
  std::size_t (*find_byte)(std::string_view data, char needle,
                           std::size_t pos);
  std::size_t (*find_whitespace)(std::string_view data, std::size_t pos);
  std::size_t (*skip_whitespace)(std::string_view data, std::size_t pos);
  std::size_t (*digit_run_length)(std::string_view data, std::size_t pos);
  bool (*is_clock_hhmmss)(const char* p);
  std::size_t (*find_any_of)(std::string_view data, std::string_view delims,
                             std::size_t pos);
  void (*classify_kv)(const char* data, std::size_t size, char delim,
                      std::uint64_t* delim_bits, std::uint64_t* ws_bits);
};

/// The table runtime dispatch resolved to (honoring LD_SIMD_FORCE).
/// Resolved once, on first use.
const Kernels& ActiveKernels();

/// Backend by name ("scalar", "sse2", "avx2", "neon") when it is both
/// compiled in and runnable on this host's CPU; nullptr otherwise.
const Kernels* GetBackend(std::string_view name);

/// Name of the backend runtime dispatch resolved to: "avx2", "sse2",
/// "neon" or "scalar".  Surfaced in run manifests as
/// runtime.simd_dispatch so a benchmark row is attributable.
const char* BackendName();

/// The compiled capability, independent of the host CPU and of
/// LD_SIMD_FORCE: "sse2+avx2" on x86-64, "neon" on aarch64, "scalar"
/// otherwise or under -DLOGDIVER_SIMD=OFF.  Surfaced in run manifests
/// as build.simd_backend.
const char* CompiledBackends();

/// Index of the first occurrence of `needle` at or after `pos`, or
/// std::string_view::npos.  Semantics match std::string_view::find.
std::size_t FindByte(std::string_view data, char needle, std::size_t pos = 0);

/// Index of the first byte in the isspace set at or after `pos`, or
/// data.size() when none.
std::size_t FindWhitespace(std::string_view data, std::size_t pos = 0);

/// Index of the first byte NOT in the isspace set at or after `pos`,
/// or data.size() when the rest of the buffer is whitespace.
std::size_t SkipWhitespace(std::string_view data, std::size_t pos = 0);

/// Length of the run of ASCII digits starting at `pos` (0 when
/// data[pos] is not a digit or pos is out of range).
std::size_t DigitRunLength(std::string_view data, std::size_t pos = 0);

/// True when the 8 bytes at `p` spell a clock "HH:MM:SS": digits at
/// offsets {0,1,3,4,6,7} and ':' at {2,5}.  Range checks (hours < 24)
/// remain the caller's job.  The caller guarantees 8 readable bytes.
bool IsClockHHMMSS(const char* p);

/// Index of the first byte at or after `pos` that appears in `delims`,
/// or std::string_view::npos when none.  Semantics match
/// std::string_view::find_first_of.  Vectorized for small delimiter
/// sets (the key=value splitters pass 2–7 bytes); large sets take the
/// scalar loop.
std::size_t FindAnyOf(std::string_view data, std::string_view delims,
                      std::size_t pos = 0);

/// One streaming classification pass for the key=value splitter: fills
/// `delim_bits` and `ws_bits` with one bit per input byte (bit i%64 of
/// word i/64 corresponds to data[i]) — set in delim_bits when the byte
/// equals `delim`, set in ws_bits when it is in the isspace set; the
/// two are computed independently, so a whitespace `delim` sets both.
/// Both arrays must hold ceil(size/64) words; bits past `size` in the
/// last word are zero.  This is the splitter's workhorse: one call per
/// record instead of three dispatched scans per token, and the wide
/// backends stream the whole record (this is where 32-byte lanes
/// actually pay — per-call overhead buries them on short seek scans).
void ClassifyKeyValue(const char* data, std::size_t size, char delim,
                      std::uint64_t* delim_bits, std::uint64_t* ws_bits);

// Scalar reference implementations — always compiled, regardless of
// the active backend.  Identical observable behavior by contract.
namespace scalar {
std::size_t FindByte(std::string_view data, char needle, std::size_t pos = 0);
std::size_t FindWhitespace(std::string_view data, std::size_t pos = 0);
std::size_t SkipWhitespace(std::string_view data, std::size_t pos = 0);
std::size_t DigitRunLength(std::string_view data, std::size_t pos = 0);
bool IsClockHHMMSS(const char* p);
std::size_t FindAnyOf(std::string_view data, std::string_view delims,
                      std::size_t pos = 0);
void ClassifyKeyValue(const char* data, std::size_t size, char delim,
                      std::uint64_t* delim_bits, std::uint64_t* ws_bits);
}  // namespace scalar

}  // namespace ld::simd
