// SIMD scanning kernels shared by the block reader and all four log
// parsers: byte search (newline splitting), whitespace classification
// (field splitting), digit-run and HH:MM:SS recognition (timestamp fast
// paths).
//
// One backend is selected at compile time: SSE2 on x86-64, NEON on
// aarch64, and a portable scalar loop everywhere else or when the build
// sets -DLOGDIVER_SIMD=OFF (which defines LOGDIVER_SIMD_DISABLED).  The
// kernels are pure byte-classification functions, so every backend
// returns bit-identical results — the scalar reference implementations
// in simd::scalar are always compiled, both as the fallback and so one
// binary can benchmark the active backend against them (BM_SimdScan)
// and tests can assert agreement on adversarial buffers.
//
// The whitespace set is exactly the C locale's std::isspace set
// (' ', '\t', '\n', '\v', '\f', '\r'): SplitWhitespace and Trim are
// built on these kernels and their observable behavior must not change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ld::simd {

/// Name of the compiled-in backend: "sse2", "neon" or "scalar".
/// Surfaced in run manifests so a benchmark row is attributable.
const char* BackendName();

/// Index of the first occurrence of `needle` at or after `pos`, or
/// std::string_view::npos.  Semantics match std::string_view::find.
std::size_t FindByte(std::string_view data, char needle, std::size_t pos = 0);

/// Index of the first byte in the isspace set at or after `pos`, or
/// data.size() when none.
std::size_t FindWhitespace(std::string_view data, std::size_t pos = 0);

/// Index of the first byte NOT in the isspace set at or after `pos`,
/// or data.size() when the rest of the buffer is whitespace.
std::size_t SkipWhitespace(std::string_view data, std::size_t pos = 0);

/// Length of the run of ASCII digits starting at `pos` (0 when
/// data[pos] is not a digit or pos is out of range).
std::size_t DigitRunLength(std::string_view data, std::size_t pos = 0);

/// True when the 8 bytes at `p` spell a clock "HH:MM:SS": digits at
/// offsets {0,1,3,4,6,7} and ':' at {2,5}.  Range checks (hours < 24)
/// remain the caller's job.  The caller guarantees 8 readable bytes.
bool IsClockHHMMSS(const char* p);

// Scalar reference implementations — always compiled, regardless of
// the active backend.  Identical observable behavior by contract.
namespace scalar {
std::size_t FindByte(std::string_view data, char needle, std::size_t pos = 0);
std::size_t FindWhitespace(std::string_view data, std::size_t pos = 0);
std::size_t SkipWhitespace(std::string_view data, std::size_t pos = 0);
std::size_t DigitRunLength(std::string_view data, std::size_t pos = 0);
bool IsClockHHMMSS(const char* p);
}  // namespace scalar

}  // namespace ld::simd
