#include "common/strings.hpp"

#include <bit>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/simd.hpp"

namespace ld {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t hit = simd::FindByte(text, sep, start);
    if (hit == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, hit - start));
    start = hit + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    const std::size_t start = simd::SkipWhitespace(text, i);
    if (start == text.size()) break;
    i = simd::FindWhitespace(text, start);
    out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  const std::size_t b = simd::SkipWhitespace(text, 0);
  std::size_t e = text.size();
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

Result<std::int64_t> ParseInt(std::string_view text) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return ParseError("bad integer: '" + std::string(text) + "'");
  }
  return v;
}

Result<std::uint64_t> ParseUint(std::string_view text) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return ParseError("bad unsigned integer: '" + std::string(text) + "'");
  }
  return v;
}

Result<double> ParseDouble(std::string_view text) {
  // std::from_chars for double is not universally available; strtod via a
  // bounded copy keeps this portable.
  if (text.empty() || text.size() > 64) {
    return ParseError("bad double: '" + std::string(text) + "'");
  }
  char buf[65];
  text.copy(buf, text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + text.size()) {
    return ParseError("bad double: '" + std::string(text) + "'");
  }
  return v;
}

std::optional<std::string_view> FindKeyValueOpt(std::string_view record,
                                                std::string_view key) {
  std::size_t pos = 0;
  while (pos < record.size()) {
    const std::size_t hit = record.find(key, pos);
    if (hit == std::string_view::npos) break;
    // Must be at start or preceded by whitespace to be a field boundary,
    // and followed by '=' to be this key and not a prefix of another.
    const std::size_t eq = hit + key.size();
    if ((hit == 0 ||
         std::isspace(static_cast<unsigned char>(record[hit - 1]))) &&
        eq < record.size() && record[eq] == '=') {
      const std::size_t vstart = eq + 1;
      const std::size_t vend = simd::FindWhitespace(record, vstart);
      return record.substr(vstart, vend - vstart);
    }
    pos = hit + 1;
  }
  return std::nullopt;
}

namespace {

// '=' plus the C-locale whitespace set: the one delimiter class the
// key=value tokenizer needs, so a single delimiter-set pass finds both
// the end of a key and the end of a bare token.
constexpr std::string_view kKeyValueDelims = "= \t\n\v\f\r";

// Records up to this size take the classify-once bitmap walk on stack
// buffers; longer ones (a giant exec_host list) fall back to the
// per-token kernel scan.
constexpr std::size_t kClassifyInlineBytes = 4096;
constexpr std::size_t kClassifyWords = kClassifyInlineBytes / 64;

}  // namespace

KeyValueView::KeyValueView(std::string_view record)
    : KeyValueView(record, simd::ActiveKernels()) {}

KeyValueView::KeyValueView(std::string_view record,
                           const simd::Kernels& kernels)
    : record_(record) {
  if (record.size() > kClassifyInlineBytes) {
    BuildByTokenScan(kernels);
    return;
  }
  // One streaming classification pass over the record, then a bit-walk
  // over the '=' bits: every entry corresponds to the first '=' of its
  // token, so the walk visits one bit per entry and derives the key and
  // value bounds from the whitespace bitmap with local word ops — no
  // dispatched kernel call per field, which is what lets the one-pass
  // splitter beat repeated per-key memmem scans.
  std::uint64_t eq_bits[kClassifyWords];
  std::uint64_t ws_bits[kClassifyWords];
  kernels.classify_kv(record.data(), record.size(), '=', eq_bits, ws_bits);
  const std::size_t size = record.size();
  const std::size_t nwords = (size + 63) >> 6;
  std::size_t vend = 0;  // end of the previous entry's value
  for (std::size_t w = 0; w < nwords; ++w) {
    std::uint64_t eqw = eq_bits[w];
    while (eqw != 0) {
      const std::size_t e =
          (w << 6) + static_cast<std::size_t>(std::countr_zero(eqw));
      eqw &= eqw - 1;
      // A second '=' inside a value ("neednodes=1:ppn=16") is not a
      // field boundary; the first '=' of each token is ('=' is never
      // whitespace, so e == vend cannot happen).
      if (e < vend) continue;
      // Key start: one past the last whitespace bit before e.
      std::size_t ks = 0;
      const std::uint64_t before =
          (e & 63) ? (ws_bits[w] & ((std::uint64_t{1} << (e & 63)) - 1)) : 0;
      if (before != 0) {
        ks = (w << 6) + 64 -
             static_cast<std::size_t>(std::countl_zero(before));
      } else {
        for (std::size_t pw = w; pw > 0;) {
          --pw;
          if (ws_bits[pw] != 0) {
            ks = (pw << 6) + 64 -
                 static_cast<std::size_t>(std::countl_zero(ws_bits[pw]));
            break;
          }
        }
      }
      // Value end: the next whitespace bit after e (size when none).
      std::size_t ve = size;
      for (std::size_t fw = (e + 1) >> 6; fw < nwords; ++fw) {
        const std::uint64_t word =
            fw == ((e + 1) >> 6)
                ? ws_bits[fw] & (~std::uint64_t{0} << ((e + 1) & 63))
                : ws_bits[fw];
        if (word != 0) {
          ve = (fw << 6) + static_cast<std::size_t>(std::countr_zero(word));
          break;
        }
      }
      if (count_ == kMaxEntries) {
        overflow_ = true;  // Get falls back to per-key record scans
        return;
      }
      entries_[count_++] = Entry{record.substr(ks, e - ks),
                                 record.substr(e + 1, ve - (e + 1))};
      vend = ve;
    }
  }
}

void KeyValueView::BuildByTokenScan(const simd::Kernels& kernels) {
  const std::string_view record = record_;
  std::size_t pos = 0;
  while (true) {
    const std::size_t start = kernels.skip_whitespace(record, pos);
    if (start >= record.size()) break;
    const std::size_t boundary =
        kernels.find_any_of(record, kKeyValueDelims, start);
    if (boundary == std::string_view::npos) break;  // bare trailing token
    if (record[boundary] != '=') {
      pos = boundary;  // token without '=': skip, like FindKeyValueOpt
      continue;
    }
    const std::size_t vstart = boundary + 1;
    const std::size_t vend = kernels.find_whitespace(record, vstart);
    if (count_ == kMaxEntries) {
      overflow_ = true;  // Get falls back to per-key record scans
      return;
    }
    entries_[count_++] = Entry{record.substr(start, boundary - start),
                               record.substr(vstart, vend - vstart)};
    pos = vend;
  }
}

std::optional<std::string_view> KeyValueView::Get(std::string_view key) const {
  if (overflow_) return FindKeyValueOpt(record_, key);
  for (std::size_t i = 0; i < count_; ++i) {
    const Entry& e = entries_[i];
    // Size + first-byte prefilter: the full compare is an out-of-line
    // memcmp, and most entries differ in length or initial letter.
    if (e.key.size() != key.size()) continue;
    if (!key.empty() && e.key.front() != key.front()) continue;
    if (e.key == key) return e.value;
  }
  return std::nullopt;
}

Result<std::string> FindKeyValue(std::string_view record, std::string_view key) {
  if (const auto value = FindKeyValueOpt(record, key)) {
    return std::string(*value);
  }
  return NotFoundError("key '" + std::string(key) + "' not present");
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string WithThousands(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace ld
