#include "common/strings.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "common/simd.hpp"

namespace ld {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    const std::size_t start = simd::SkipWhitespace(text, i);
    if (start == text.size()) break;
    i = simd::FindWhitespace(text, start);
    out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  const std::size_t b = simd::SkipWhitespace(text, 0);
  std::size_t e = text.size();
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

Result<std::int64_t> ParseInt(std::string_view text) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return ParseError("bad integer: '" + std::string(text) + "'");
  }
  return v;
}

Result<std::uint64_t> ParseUint(std::string_view text) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return ParseError("bad unsigned integer: '" + std::string(text) + "'");
  }
  return v;
}

Result<double> ParseDouble(std::string_view text) {
  // std::from_chars for double is not universally available; strtod via a
  // bounded copy keeps this portable.
  if (text.empty() || text.size() > 64) {
    return ParseError("bad double: '" + std::string(text) + "'");
  }
  char buf[65];
  text.copy(buf, text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + text.size()) {
    return ParseError("bad double: '" + std::string(text) + "'");
  }
  return v;
}

std::optional<std::string_view> FindKeyValueOpt(std::string_view record,
                                                std::string_view key) {
  std::size_t pos = 0;
  while (pos < record.size()) {
    const std::size_t hit = record.find(key, pos);
    if (hit == std::string_view::npos) break;
    // Must be at start or preceded by whitespace to be a field boundary,
    // and followed by '=' to be this key and not a prefix of another.
    const std::size_t eq = hit + key.size();
    if ((hit == 0 ||
         std::isspace(static_cast<unsigned char>(record[hit - 1]))) &&
        eq < record.size() && record[eq] == '=') {
      const std::size_t vstart = eq + 1;
      const std::size_t vend = simd::FindWhitespace(record, vstart);
      return record.substr(vstart, vend - vstart);
    }
    pos = hit + 1;
  }
  return std::nullopt;
}

Result<std::string> FindKeyValue(std::string_view record, std::string_view key) {
  if (const auto value = FindKeyValueOpt(record, key)) {
    return std::string(*value);
  }
  return NotFoundError("key '" + std::string(key) + "' not present");
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string WithThousands(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace ld
