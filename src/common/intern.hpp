// String interning: one arena-backed copy of every distinct hot string,
// addressed by a stable 32-bit Symbol.
//
// The four log parsers see the same few hundred user names, queue
// names, job names and component cnames millions of times; storing a
// std::string per record made every record a heap allocation (or three)
// and every snapshot a sea of repeated bytes.  Records now carry
// Symbols: 4 bytes, trivially copyable, O(1) equality.
//
// Design constraints, in order:
//   1. Thread safety.  Parsing is chunk-parallel (PR 3), so Intern() is
//      called concurrently.  The pool is sharded 16 ways by string hash;
//      each shard has its own mutex, lookup table and arena.
//   2. Stable views.  View(symbol) returns a string_view into the
//      shard's arena; arenas only grow (bump allocation in fixed blocks)
//      and entry tables are chunked, never reallocated, so a view or an
//      entry pointer obtained once stays valid for the process lifetime.
//      Reads take no lock: an entry is fully written before its Symbol
//      escapes the shard mutex, and whoever hands the Symbol to another
//      thread synchronizes that handoff (the thread-pool task queue in
//      practice).
//   3. Ids are NOT deterministic.  Assignment order depends on thread
//      interleaving, so the numeric id of "userA" can differ between a
//      1-thread and a 4-thread run of the same input.  Nothing
//      observable may depend on id values: snapshots serialize the
//      resolved string (re-interning on load), and every ordered
//      container or sort keyed by an interned field compares the
//      resolved strings (see DESIGN.md "Parallel analysis").
//
// Symbol 0 is the empty string; a default-constructed Symbol is empty.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace ld {

class Symbol {
 public:
  constexpr Symbol() = default;

  /// True for the default / empty-string symbol.
  bool empty() const { return id_ == 0; }
  std::uint32_t id() const { return id_; }

  /// The interned string; valid for the process lifetime.
  std::string_view view() const;
  std::string str() const { return std::string(view()); }

  /// Equality is id equality: the pool dedups globally, so two Symbols
  /// compare equal iff their strings are equal.  There is deliberately
  /// no operator< — id order is assignment order, which is not
  /// deterministic under parallel parsing; order by view() instead.
  friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend bool operator==(Symbol a, std::string_view b) {
    return a.view() == b;
  }
  friend bool operator==(std::string_view a, Symbol b) {
    return a == b.view();
  }

 private:
  friend Symbol Intern(std::string_view);
  explicit constexpr Symbol(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = 0;
};

/// Interns `s` into the global pool and returns its Symbol.  Returns
/// the same Symbol for equal strings, from any thread.
Symbol Intern(std::string_view s);

/// Number of distinct strings interned so far (including nothing for
/// the implicit empty string).  Diagnostic only.
std::size_t InternedCount();

/// Total arena bytes held by the pool.  Diagnostic only.
std::size_t InternedBytes();

/// gtest / logging support: prints the resolved string.
std::ostream& operator<<(std::ostream& os, Symbol s);

}  // namespace ld
