// Deterministic pseudo-random generation for the simulation substrate.
//
// All stochastic components of the campaign simulator draw from Rng so a
// scenario is fully reproducible from a single 64-bit seed.  xoshiro256**
// is used for the stream (fast, passes BigCrush); splitmix64 expands the
// seed into the initial state and derives independent child streams.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ld {

/// Stateless splitmix64 step; used for seeding and hashing.
std::uint64_t SplitMix64(std::uint64_t& state);

/// 64-bit FNV-1a over a string; for deriving per-entity substreams by name.
std::uint64_t HashString(std::string_view s);

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform on [0, 2^64).
  std::uint64_t NextU64();
  /// Uniform on [0, n); n must be > 0.
  std::uint64_t UniformInt(std::uint64_t n);
  /// Uniform on [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);
  /// Uniform on [0, 1).
  double UniformDouble();
  /// Uniform on [lo, hi).
  double UniformDouble(double lo, double hi);
  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (cached pair).
  double Normal();
  double Normal(double mean, double stddev);
  /// Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);
  /// Weibull with shape k and scale lambda.
  double Weibull(double shape, double scale);
  /// Lognormal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);
  /// Pareto (type I) with scale x_m and shape alpha.
  double Pareto(double xm, double alpha);
  /// Poisson-distributed count with the given mean (Knuth / normal approx.).
  std::uint64_t Poisson(double mean);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  /// A child generator whose stream is independent of this one and a
  /// deterministic function of (this stream's seed lineage, tag).
  Rng Fork(std::string_view tag) const;

 private:
  std::uint64_t state_[4];
  std::uint64_t lineage_;  // seed lineage for Fork()
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Zipf(α) sampler over ranks {1..n} with precomputed CDF; used for the
/// heavy-tailed user/app popularity mix in the workload generator.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);
  /// Rank in [1, n].
  std::size_t Sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace ld
