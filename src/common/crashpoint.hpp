// Deterministic crash-point injection for crash-recovery testing.
//
// A crash point is a named boundary in the code ("snapshot", "ingest")
// where a test may ask the process to die abruptly.  Arming the
// mechanism with N makes the Nth boundary hit call std::_Exit — no
// destructors, no atexit, no flushing — which is the closest portable
// stand-in for a power loss or OOM kill.  Disarmed (the default), every
// CrashPoint() call is a branch on one bool and nothing more, so the
// hooks are safe to leave in production code paths.
//
// Arming is either programmatic (ArmCrashPoint) or via the environment
// variable LD_CRASH_AFTER=<n>, read once on first use — the env path is
// what lets a supervisor arm its *child* without a side channel.
#pragma once

#include <cstdint>
#include <string_view>

namespace ld {

/// Exit code used by an injected crash; chosen to look like SIGKILL
/// (128 + 9) so supervisors exercise their real crash-detection path.
inline constexpr int kCrashExitCode = 137;

/// Name of the environment variable carrying the countdown.
inline constexpr const char* kCrashAfterEnv = "LD_CRASH_AFTER";

/// Arms the countdown: the `after`-th CrashPoint() call from now dies.
/// `after` == 1 means the very next boundary.
void ArmCrashPoint(std::uint64_t after);

/// Disarms; subsequent CrashPoint() calls are no-ops.
void DisarmCrashPoint();

/// True when a countdown is live (programmatic or from the env).
bool CrashPointArmed();

/// Boundaries left before the crash; 0 when disarmed.
std::uint64_t CrashPointRemaining();

/// Marks a crash boundary.  `tag` names the boundary in the death
/// message written to stderr so campaign logs show *where* each
/// injected crash landed.
void CrashPoint(std::string_view tag);

}  // namespace ld
