// Deterministic fault injection at named code boundaries, for
// crash-recovery and fleet-resilience testing.
//
// A crash point is a named boundary in the code ("snapshot", "ingest")
// where a test may ask the process to misbehave.  Three fault kinds
// share the boundary:
//
//   * crash — the Nth boundary hit calls std::_Exit: no destructors, no
//     atexit, no flushing — the closest portable stand-in for a power
//     loss or OOM kill.
//   * hang — the Nth boundary hit stops making progress (a pause()
//     loop).  The process stays alive and ignorable-signal-free, so the
//     only way a supervisor recovers is its wall-clock timeout +
//     SIGKILL path — exactly what the fault exists to exercise.
//   * truncate-partial — a flag a fleet worker checks *after* writing
//     its partial snapshot; when set, the worker corrupts the file in
//     place and exits successfully.  This models the one torn-output
//     case atomic rename cannot prevent (bad disk, truncated copy on a
//     shared filesystem) and must be caught by the reader's CRC.
//   * delay — from the Nth boundary on, every boundary sleeps a
//     seeded pseudo-random duration.  Unlike a hang the process keeps
//     making progress, so a monitoring layer (the logdiverd watchdog)
//     can be tested to *not* kill a merely-slow shard while still
//     killing a hung one.  The delay sequence is a deterministic
//     function of (seed, boundary index).
//
// Disarmed (the default), every CrashPoint() call is a branch on one
// bool and nothing more, so the hooks are safe to leave in production
// code paths.  The countdown state is atomic: the multi-tenant service
// ticks boundaries from many shard worker threads at once, and exactly
// one of them must win the fault.
//
// Arming is either programmatic (ArmCrashPoint / ArmHangPoint /
// ArmTruncatePartial / ArmDelayPoint) or via the environment variables
// LD_CRASH_AFTER, LD_HANG_AFTER, LD_TRUNCATE_PARTIAL and LD_DELAY_AFTER
// (with LD_DELAY_MS / LD_DELAY_SEED companions), read once on first use
// — the env path is what lets a supervisor arm its *child* without a
// side channel.
#pragma once

#include <cstdint>
#include <string_view>

namespace ld {

/// Exit code used by an injected crash; chosen to look like SIGKILL
/// (128 + 9) so supervisors exercise their real crash-detection path.
inline constexpr int kCrashExitCode = 137;

/// Name of the environment variable carrying the crash countdown.
inline constexpr const char* kCrashAfterEnv = "LD_CRASH_AFTER";
/// Environment variable carrying the hang countdown.
inline constexpr const char* kHangAfterEnv = "LD_HANG_AFTER";
/// Environment variable flagging partial-truncation (any non-empty,
/// non-"0" value arms it).
inline constexpr const char* kTruncatePartialEnv = "LD_TRUNCATE_PARTIAL";
/// Environment variable carrying the delay-start boundary count.
inline constexpr const char* kDelayAfterEnv = "LD_DELAY_AFTER";
/// Mean injected delay per boundary, in milliseconds (default 5).
inline constexpr const char* kDelayMsEnv = "LD_DELAY_MS";
/// Seed of the deterministic delay sequence (default 1).
inline constexpr const char* kDelaySeedEnv = "LD_DELAY_SEED";

/// Arms the crash countdown: the `after`-th CrashPoint() call from now
/// dies.  `after` == 1 means the very next boundary.
void ArmCrashPoint(std::uint64_t after);

/// Disarms the crash countdown; it no longer fires at boundaries.
void DisarmCrashPoint();

/// True when a crash countdown is live (programmatic or from the env).
bool CrashPointArmed();

/// Boundaries left before the crash; 0 when disarmed.
std::uint64_t CrashPointRemaining();

/// Arms the hang countdown: the `after`-th CrashPoint() call from now
/// stops forever in a pause() loop (recoverable only by SIGKILL).
void ArmHangPoint(std::uint64_t after);

/// Disarms the hang countdown.
void DisarmHangPoint();

/// True when a hang countdown is live (programmatic or from the env).
bool HangPointArmed();

/// Arms/disarms the truncate-partial flag a fleet worker checks after
/// writing its partial snapshot.
void ArmTruncatePartial(bool armed = true);

/// True when the worker should corrupt its partial before exiting.
bool TruncatePartialArmed();

/// Arms latency injection: boundary hits `after` and beyond each sleep a
/// duration drawn deterministically from `seed` with mean `mean_ms`
/// (uniform in [mean_ms/2, 3*mean_ms/2], minimum 1 ms).  `after` == 1
/// slows every boundary from the next one on; `after` == 0 disarms.
void ArmDelayPoint(std::uint64_t after, std::uint64_t mean_ms = 5,
                   std::uint64_t seed = 1);

/// Disarms latency injection.
void DisarmDelayPoint();

/// True when latency injection is live (programmatic or from the env).
bool DelayPointArmed();

/// The delay (ms) boundary number `index` (1-based) would sleep under
/// the given seed/mean — exposed so tests can assert the injected
/// sequence is the deterministic function the docs promise.
std::uint64_t DelayForBoundary(std::uint64_t index, std::uint64_t mean_ms,
                               std::uint64_t seed);

/// Marks a fault boundary.  `tag` names the boundary in the diagnostic
/// written to stderr so campaign logs show *where* each injected fault
/// landed.  Both countdowns tick here; the crash countdown is checked
/// first when both expire on the same boundary.
void CrashPoint(std::string_view tag);

}  // namespace ld
