// Minimal CSV/TSV reading and writing.
//
// Used for LogDiver report output (tables consumed by plotting scripts)
// and for the ground-truth sidecar files the simulator writes.  Handles
// RFC-4180-style quoting on read and write; no embedded-newline support
// (log-derived tables never need it).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace ld {

class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out, char sep = ',');

  void WriteRow(const std::vector<std::string>& fields);

 private:
  std::string EscapeField(const std::string& field) const;

  std::ostream& out_;
  char sep_;
};

class CsvReader {
 public:
  /// Parses one CSV line into fields (handles quotes and doubled quotes).
  static Result<std::vector<std::string>> ParseLine(const std::string& line,
                                                    char sep = ',');

  /// Reads an entire file; first row optionally treated as header.
  struct Table {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
  };
  static Result<Table> ReadFile(const std::string& path, bool has_header,
                                char sep = ',');
};

}  // namespace ld
