#include "common/time.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>

namespace ld {
namespace {

// Days from the civil (proleptic Gregorian) date to 1970-01-01.
// Howard Hinnant's algorithm; exact for the entire int64 range we use.
std::int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void CivilFromDays(std::int64_t z, int& y, int& m, int& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);           // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);           // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                // [0, 11]
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

constexpr std::array<const char*, 12> kMonthAbbrev = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

}  // namespace

std::string Duration::ToString() const {
  std::int64_t s = secs_;
  const bool neg = s < 0;
  if (neg) s = -s;
  const std::int64_t days = s / 86400;
  s %= 86400;
  char buf[64];
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldd %02lld:%02lld:%02lld",
                  neg ? "-" : "", static_cast<long long>(days),
                  static_cast<long long>(s / 3600),
                  static_cast<long long>((s / 60) % 60),
                  static_cast<long long>(s % 60));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%02lld:%02lld:%02lld", neg ? "-" : "",
                  static_cast<long long>(s / 3600),
                  static_cast<long long>((s / 60) % 60),
                  static_cast<long long>(s % 60));
  }
  return buf;
}

CalendarTime ToCalendar(TimePoint t) {
  std::int64_t s = t.unix_seconds();
  std::int64_t days = s / 86400;
  std::int64_t rem = s % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  CalendarTime c{};
  CivilFromDays(days, c.year, c.month, c.day);
  c.hour = static_cast<int>(rem / 3600);
  c.minute = static_cast<int>((rem / 60) % 60);
  c.second = static_cast<int>(rem % 60);
  return c;
}

std::string TimePoint::ToIso() const {
  const CalendarTime c = ToCalendar(*this);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return buf;
}

std::string TimePoint::ToSyslog() const {
  const CalendarTime c = ToCalendar(*this);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s %2d %02d:%02d:%02d",
                kMonthAbbrev[static_cast<size_t>(c.month - 1)], c.day, c.hour,
                c.minute, c.second);
  return buf;
}

namespace {

/// Consumes a decimal integer at the front of `text`; false when no
/// digit is present.  The cursor advances past the digits.
bool EatInt(std::string_view& text, int& out) {
  std::size_t used = 0;
  long v = 0;
  while (used < text.size() && text[used] >= '0' && text[used] <= '9') {
    v = v * 10 + (text[used] - '0');
    if (v > 1000000000) return false;
    ++used;
  }
  if (used == 0) return false;
  out = static_cast<int>(v);
  text.remove_prefix(used);
  return true;
}

bool EatChar(std::string_view& text, char a, char b) {
  if (text.empty() || (text.front() != a && text.front() != b)) return false;
  text.remove_prefix(1);
  return true;
}

}  // namespace

Result<TimePoint> TimePoint::FromIso(std::string_view text) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0;
  std::string_view rest = text;
  // Accept both 'T' and ' ' separators; seconds required.  Trailing
  // bytes after the seconds field are ignored (fractional seconds,
  // timezone suffixes).
  if (!EatInt(rest, y) || !EatChar(rest, '-', '-') || !EatInt(rest, mo) ||
      !EatChar(rest, '-', '-') || !EatInt(rest, d) ||
      !EatChar(rest, 'T', ' ') || !EatInt(rest, h) ||
      !EatChar(rest, ':', ':') || !EatInt(rest, mi) ||
      !EatChar(rest, ':', ':') || !EatInt(rest, s)) {
    return ParseError("bad ISO timestamp: '" + std::string(text) + "'");
  }
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h < 0 || h > 23 || mi < 0 ||
      mi > 59 || s < 0 || s > 60) {
    return ParseError("out-of-range ISO timestamp: '" + std::string(text) +
                      "'");
  }
  return FromCalendar(y, mo, d, h, mi, s);
}

TimePoint TimePoint::FromCalendar(int year, int month, int day, int hour,
                                  int minute, int second) {
  return TimePoint(DaysFromCivil(year, month, day) * 86400 + hour * 3600 +
                   minute * 60 + second);
}

}  // namespace ld
