#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ld {

void RunningStats::Add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double nt = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / nt;
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> sample, double q) {
  if (sample.empty()) throw std::invalid_argument("Quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Quantile: q not in [0,1]");
  std::sort(sample.begin(), sample.end());
  const double h = (static_cast<double>(sample.size()) - 1.0) * q;
  const std::size_t lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(h));
  return sample[lo] + (h - static_cast<double>(lo)) * (sample[hi] - sample[lo]);
}

std::vector<std::pair<double, double>> EmpiricalCdf(std::vector<double> sample) {
  std::vector<std::pair<double, double>> out;
  if (sample.empty()) return out;
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    // Emit one point per distinct value with the final cumulative share.
    if (i + 1 == sample.size() || sample[i + 1] != sample[i]) {
      out.emplace_back(sample[i], static_cast<double>(i + 1) / n);
    }
  }
  return out;
}

ProportionCi WilsonInterval(std::uint64_t successes, std::uint64_t trials,
                            double z) {
  if (trials == 0) return {0.0, 0.0, 0.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {p, std::max(0.0, center - half), std::min(1.0, center + half)};
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: bad range/bins");
  }
}

void Histogram::Add(double x, double weight) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}
double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins)
    : counts_(bins, 0.0) {
  if (!(lo > 0.0) || !(hi > lo) || bins == 0) {
    throw std::invalid_argument("LogHistogram: bad range/bins");
  }
  log_lo_ = std::log(lo);
  log_hi_ = std::log(hi);
  width_ = (log_hi_ - log_lo_) / static_cast<double>(bins);
}

void LogHistogram::Add(double x, double weight) {
  std::size_t idx;
  if (!(x > 0.0)) {
    idx = 0;
  } else {
    const double lx = std::log(x);
    if (lx < log_lo_) {
      idx = 0;
    } else if (lx >= log_hi_) {
      idx = counts_.size() - 1;
    } else {
      idx = static_cast<std::size_t>((lx - log_lo_) / width_);
      if (idx >= counts_.size()) idx = counts_.size() - 1;
    }
  }
  counts_[idx] += weight;
  total_ += weight;
}

double LogHistogram::bin_lo(std::size_t i) const {
  return std::exp(log_lo_ + width_ * static_cast<double>(i));
}
double LogHistogram::bin_hi(std::size_t i) const {
  return std::exp(log_lo_ + width_ * static_cast<double>(i + 1));
}

}  // namespace ld
