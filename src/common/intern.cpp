#include "common/intern.hpp"

#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace ld {
namespace {

// Id layout: low 4 bits select the shard, the rest is the per-shard
// entry index biased by one so id 0 stays the empty string.
constexpr std::uint32_t kShardBits = 4;
constexpr std::uint32_t kNumShards = 1u << kShardBits;

// Entry tables are chunked so they can grow without relocating: readers
// resolve Symbols lock-free against chunks that, once published, never
// move.  4096 chunks x 1024 entries = ~4M distinct strings per shard —
// far beyond any real log's vocabulary.
constexpr std::uint32_t kChunkEntries = 1024;
constexpr std::uint32_t kMaxChunks = 4096;

constexpr std::size_t kArenaBlockBytes = 64 * 1024;

struct ViewHash {
  std::size_t operator()(std::string_view s) const {
    return static_cast<std::size_t>(HashString(s));
  }
};

class Shard {
 public:
  /// Returns the 1-based biased index of `s` in this shard, interning a
  /// copy on first sight.
  std::uint32_t InternLocked(std::string_view s) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = lookup_.find(s);
    if (it != lookup_.end()) return it->second;
    const std::uint32_t index = count_;
    LD_CHECK(index < kMaxChunks * kChunkEntries,
             "interner shard is full — pathological string cardinality");
    const std::uint32_t chunk = index / kChunkEntries;
    if (chunks_[chunk] == nullptr) {
      chunks_[chunk] = std::make_unique<std::string_view[]>(kChunkEntries);
    }
    const std::string_view stored = Copy(s);
    // The entry is fully written before the index (and so the Symbol)
    // can escape this mutex; see the header on why readers need no lock.
    chunks_[chunk][index % kChunkEntries] = stored;
    ++count_;
    lookup_.emplace(stored, index + 1);
    return index + 1;
  }

  std::string_view Resolve(std::uint32_t biased_index) const {
    const std::uint32_t index = biased_index - 1;
    return chunks_[index / kChunkEntries][index % kChunkEntries];
  }

  std::size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  std::size_t arena_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return arena_bytes_;
  }

 private:
  /// Copies `s` into the shard arena; blocks only grow, so the returned
  /// view is stable forever.
  std::string_view Copy(std::string_view s) {
    if (s.size() > kArenaBlockBytes - block_pos_ || blocks_.empty()) {
      const std::size_t block = std::max(kArenaBlockBytes, s.size());
      blocks_.push_back(std::make_unique<char[]>(block));
      block_pos_ = 0;
      arena_bytes_ += block;
    }
    char* dst = blocks_.back().get() + block_pos_;
    std::memcpy(dst, s.data(), s.size());
    block_pos_ += s.size();
    return std::string_view(dst, s.size());
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string_view, std::uint32_t, ViewHash> lookup_;
  std::unique_ptr<std::string_view[]> chunks_[kMaxChunks];
  std::uint32_t count_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::size_t block_pos_ = 0;
  std::size_t arena_bytes_ = 0;
};

/// The process-wide pool.  Leaked on purpose: Symbols resolve during
/// static destruction (gtest printers, atexit manifest hooks), so the
/// arenas must outlive every other static.
Shard* Shards() {
  static Shard* shards = new Shard[kNumShards];
  return shards;
}

}  // namespace

Symbol Intern(std::string_view s) {
  if (s.empty()) return Symbol();
  const std::uint32_t shard =
      static_cast<std::uint32_t>(HashString(s)) & (kNumShards - 1);
  const std::uint32_t biased = Shards()[shard].InternLocked(s);
  return Symbol((biased << kShardBits) | shard);
}

std::string_view Symbol::view() const {
  if (id_ == 0) return std::string_view();
  return Shards()[id_ & (kNumShards - 1)].Resolve(id_ >> kShardBits);
}

std::size_t InternedCount() {
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < kNumShards; ++s) {
    total += Shards()[s].count();
  }
  return total;
}

std::size_t InternedBytes() {
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < kNumShards; ++s) {
    total += Shards()[s].arena_bytes();
  }
  return total;
}

std::ostream& operator<<(std::ostream& os, Symbol s) {
  return os << s.view();
}

}  // namespace ld
