// Statistical kit used by both the simulator calibration and the
// LogDiver metrics engine: streaming moments, quantiles, histograms,
// and binomial confidence intervals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ld {

/// Streaming mean/variance/min/max via Welford's algorithm.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact quantile of a sample (linear interpolation between order
/// statistics, type-7 as in R).  q in [0,1].  Sorts a copy.
double Quantile(std::vector<double> sample, double q);

/// Empirical CDF evaluation points: returns (x, F(x)) pairs at each
/// distinct sample value.  Sorts a copy.
std::vector<std::pair<double, double>> EmpiricalCdf(std::vector<double> sample);

/// Wilson score interval for a binomial proportion at ~95% confidence
/// (z = 1.96).  Returns {lo, hi}; degenerate inputs return {0, 0} or {1, 1}.
struct ProportionCi {
  double point;
  double lo;
  double hi;
};
ProportionCi WilsonInterval(std::uint64_t successes, std::uint64_t trials,
                            double z = 1.96);

/// Fixed-width linear histogram over [lo, hi); out-of-range samples are
/// clamped into the edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x, double weight = 1.0);
  std::size_t bin_count() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

 private:
  double lo_, hi_, width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Log-spaced histogram over [lo, hi) with `bins` bins per factor-of-base
/// structure collapsed into a fixed count; suited for run durations and
/// node counts spanning orders of magnitude.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins);

  void Add(double x, double weight = 1.0);
  std::size_t bin_count() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

 private:
  double log_lo_, log_hi_, width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace ld
