#include "common/parallel.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/obs/obs.hpp"

namespace ld {

int DefaultThreadCount() {
  if (const char* env = std::getenv("LOGDIVER_THREADS");
      env != nullptr && *env != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(std::min<long>(v, 256));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveThreadCount(int configured) {
  return configured > 0 ? configured : DefaultThreadCount();
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  [[maybe_unused]] std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back({std::move(task), LD_OBS_NOW_NS()});
    depth = queue_.size();
  }
  LD_OBS_COUNTER_ADD(obs::names::kPoolTasksTotal, 1);
  LD_OBS_GAUGE_SET(obs::names::kPoolQueueDepth,
                   static_cast<std::int64_t>(depth));
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    [[maybe_unused]] std::size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    // enqueue_ns == 0 means obs was inactive at submit time; skip the
    // wait sample rather than record a bogus epoch-sized value.
    if (task.enqueue_ns != 0) {
      LD_OBS_GAUGE_SET(obs::names::kPoolQueueDepth,
                       static_cast<std::int64_t>(depth));
      const std::uint64_t start_ns = LD_OBS_NOW_NS();
      if (start_ns > task.enqueue_ns) {
        LD_OBS_HIST_RECORD(obs::names::kPoolWaitMicros,
                           (start_ns - task.enqueue_ns) / 1000);
      }
      task.fn();
      const std::uint64_t end_ns = LD_OBS_NOW_NS();
      if (end_ns > start_ns) {
        LD_OBS_HIST_RECORD(obs::names::kPoolRunMicros,
                           (end_ns - start_ns) / 1000);
      }
    } else {
      task.fn();
    }
  }
}

TaskGroup::~TaskGroup() {
  // Destruction must not throw: drain the tasks but drop any exception
  // (a caller who cares calls Wait() explicitly first).
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr || pool_->size() <= 1) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    std::exception_ptr error;
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
    Finish(error);
  });
}

void TaskGroup::Finish(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (error != nullptr && first_error_ == nullptr) first_error_ = error;
  if (--pending_ == 0) cv_.notify_all();
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

std::vector<IndexRange> ChunkRanges(std::size_t n, std::size_t chunk) {
  if (chunk == 0) chunk = 1;
  std::vector<IndexRange> ranges;
  ranges.reserve(n / chunk + 1);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    ranges.push_back({begin, std::min(n, begin + chunk)});
  }
  return ranges;
}

}  // namespace ld
