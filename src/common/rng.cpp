#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ld {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t HashString(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) : lineage_(seed) {
  std::uint64_t sm = seed;
  for (auto& w : state_) w = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  // xoshiro256**
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("UniformInt(0)");
  // Lemire-style rejection to kill modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("UniformInt: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextU64());  // full range
  return lo + static_cast<std::int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Exponential: rate <= 0");
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::Weibull(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("Weibull: shape/scale <= 0");
  }
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("Pareto: xm/alpha <= 0");
  }
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::Poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Poisson: mean < 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= UniformDouble();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // event-count draws the simulator uses at large means.
  const double x = Normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("WeightedIndex: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("WeightedIndex: zero total");
  double target = UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge
}

Rng Rng::Fork(std::string_view tag) const {
  std::uint64_t mix = lineage_ ^ Rotl(HashString(tag), 23);
  SplitMix64(mix);  // decorrelate
  return Rng(mix);
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

}  // namespace ld
