// Parametric lifetime distributions with density/CDF evaluation and
// maximum-likelihood fitting.
//
// The field study fits time-between-interruption data; we provide the
// standard reliability trio (exponential, Weibull, lognormal) so the
// analysis layer can reproduce distribution-fit tables and compare
// goodness of fit via log-likelihood / AIC.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace ld {

class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual std::string name() const = 0;
  /// Probability density at x (0 outside support).
  virtual double Pdf(double x) const = 0;
  /// P(X <= x).
  virtual double Cdf(double x) const = 0;
  virtual double Mean() const = 0;
  /// Log-likelihood of a sample under this distribution.
  double LogLikelihood(const std::vector<double>& sample) const;
  /// Akaike information criterion: 2k - 2 lnL.
  double Aic(const std::vector<double>& sample) const;
  /// Number of free parameters (for AIC).
  virtual int parameter_count() const = 0;
  /// Human-readable parameterization, e.g. "Weibull(k=0.78, λ=3321)".
  virtual std::string ToString() const = 0;
};

class ExponentialDist final : public Distribution {
 public:
  explicit ExponentialDist(double rate);
  std::string name() const override { return "exponential"; }
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override { return 1.0 / rate_; }
  int parameter_count() const override { return 1; }
  std::string ToString() const override;
  double rate() const { return rate_; }

  /// MLE fit: rate = 1 / sample mean.
  static Result<ExponentialDist> Fit(const std::vector<double>& sample);

 private:
  double rate_;
};

class WeibullDist final : public Distribution {
 public:
  WeibullDist(double shape, double scale);
  std::string name() const override { return "weibull"; }
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override;
  int parameter_count() const override { return 2; }
  std::string ToString() const override;
  double shape() const { return shape_; }
  double scale() const { return scale_; }

  /// MLE fit via Newton iteration on the profile likelihood in the shape.
  static Result<WeibullDist> Fit(const std::vector<double>& sample);

 private:
  double shape_, scale_;
};

class LogNormalDist final : public Distribution {
 public:
  LogNormalDist(double mu, double sigma);
  std::string name() const override { return "lognormal"; }
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override;
  int parameter_count() const override { return 2; }
  std::string ToString() const override;
  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

  /// MLE fit: moments of log-sample.
  static Result<LogNormalDist> Fit(const std::vector<double>& sample);

 private:
  double mu_, sigma_;
};

/// Fits all three families and returns them ordered by ascending AIC
/// (best fit first).  Sample values must be strictly positive.
Result<std::vector<std::unique_ptr<Distribution>>> FitAll(
    const std::vector<double>& sample);

/// Kolmogorov–Smirnov statistic of a sample against a distribution
/// (max |F_emp - F|); used as a simple goodness-of-fit summary.
double KsStatistic(std::vector<double> sample, const Distribution& dist);

}  // namespace ld
