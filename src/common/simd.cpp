#include "common/simd.hpp"

#include <bit>
#include <cstdlib>

#include "common/obs/names.hpp"
#include "common/obs/obs.hpp"

#if !defined(LOGDIVER_SIMD_DISABLED) && \
    (defined(__SSE2__) || defined(_M_X64))
#define LD_SIMD_X86 1
#include <immintrin.h>
#elif !defined(LOGDIVER_SIMD_DISABLED) && defined(__aarch64__)
#define LD_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace ld::simd {
namespace {

// The C locale isspace set: ' ' plus the control range '\t'..'\r'.
inline bool IsSpaceByte(unsigned char c) {
  return c == ' ' || (c >= '\t' && c <= '\r');
}

inline bool IsDigitByte(unsigned char c) { return c >= '0' && c <= '9'; }

// Delimiter sets larger than this take the scalar loop: the splitters
// pass 2–7 delimiters, and splatting an unbounded set would cost more
// than it saves.
constexpr std::size_t kMaxVectorDelims = 8;

}  // namespace

// ---------------------------------------------------------------------
// Scalar reference backend: plain byte loops, no libc memchr, so the
// SIMD-vs-scalar benchmark compares instruction selection, not libc.
// ---------------------------------------------------------------------
namespace scalar {

std::size_t FindByte(std::string_view data, char needle, std::size_t pos) {
  for (std::size_t i = pos; i < data.size(); ++i) {
    if (data[i] == needle) return i;
  }
  return std::string_view::npos;
}

std::size_t FindWhitespace(std::string_view data, std::size_t pos) {
  for (std::size_t i = pos; i < data.size(); ++i) {
    if (IsSpaceByte(static_cast<unsigned char>(data[i]))) return i;
  }
  return data.size();
}

std::size_t SkipWhitespace(std::string_view data, std::size_t pos) {
  for (std::size_t i = pos; i < data.size(); ++i) {
    if (!IsSpaceByte(static_cast<unsigned char>(data[i]))) return i;
  }
  return data.size();
}

std::size_t DigitRunLength(std::string_view data, std::size_t pos) {
  std::size_t i = pos;
  while (i < data.size() && IsDigitByte(static_cast<unsigned char>(data[i]))) {
    ++i;
  }
  return i - pos;
}

bool IsClockHHMMSS(const char* p) {
  return IsDigitByte(static_cast<unsigned char>(p[0])) &&
         IsDigitByte(static_cast<unsigned char>(p[1])) && p[2] == ':' &&
         IsDigitByte(static_cast<unsigned char>(p[3])) &&
         IsDigitByte(static_cast<unsigned char>(p[4])) && p[5] == ':' &&
         IsDigitByte(static_cast<unsigned char>(p[6])) &&
         IsDigitByte(static_cast<unsigned char>(p[7]));
}

std::size_t FindAnyOf(std::string_view data, std::string_view delims,
                      std::size_t pos) {
  for (std::size_t i = pos; i < data.size(); ++i) {
    for (const char d : delims) {
      if (data[i] == d) return i;
    }
  }
  return std::string_view::npos;
}

void ClassifyKeyValue(const char* data, std::size_t size, char delim,
                      std::uint64_t* delim_bits, std::uint64_t* ws_bits) {
  const std::size_t nwords = (size + 63) / 64;
  for (std::size_t w = 0; w < nwords; ++w) {
    delim_bits[w] = 0;
    ws_bits[w] = 0;
  }
  for (std::size_t i = 0; i < size; ++i) {
    const unsigned char c = static_cast<unsigned char>(data[i]);
    const std::uint64_t bit = 1ull << (i & 63);
    if (c == static_cast<unsigned char>(delim)) delim_bits[i >> 6] |= bit;
    if (IsSpaceByte(c)) ws_bits[i >> 6] |= bit;
  }
}

}  // namespace scalar

namespace {

constexpr Kernels kScalarKernels = {
    "scalar",           &scalar::FindByte,     &scalar::FindWhitespace,
    &scalar::SkipWhitespace, &scalar::DigitRunLength, &scalar::IsClockHHMMSS,
    &scalar::FindAnyOf, &scalar::ClassifyKeyValue,
};

}  // namespace

#if defined(LD_SIMD_X86)
// ---------------------------------------------------------------------
// SSE2 backend (baseline x86-64, always runnable).
// ---------------------------------------------------------------------
namespace sse2 {
namespace {

// 0xFF lanes where the byte is in the isspace set.  The range compare
// uses signed arithmetic: bytes >= 0x80 are negative, so both range
// tests are false for them — exactly the scalar behavior.
inline __m128i WhitespaceLanes(__m128i v) {
  const __m128i space = _mm_cmpeq_epi8(v, _mm_set1_epi8(' '));
  const __m128i ge_tab = _mm_cmpgt_epi8(v, _mm_set1_epi8('\t' - 1));
  const __m128i le_cr = _mm_cmpgt_epi8(_mm_set1_epi8('\r' + 1), v);
  return _mm_or_si128(space, _mm_and_si128(ge_tab, le_cr));
}

inline __m128i DigitLanes(__m128i v) {
  const __m128i ge0 = _mm_cmpgt_epi8(v, _mm_set1_epi8('0' - 1));
  const __m128i le9 = _mm_cmpgt_epi8(_mm_set1_epi8('9' + 1), v);
  return _mm_and_si128(ge0, le9);
}

inline __m128i Load16(const char* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

}  // namespace

std::size_t FindByte(std::string_view data, char needle, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  const __m128i vn = _mm_set1_epi8(needle);
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const unsigned mask = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(Load16(base + i), vn)));
    if (mask != 0) return i + std::countr_zero(mask);
  }
  for (; i < n; ++i) {
    if (base[i] == needle) return i;
  }
  return std::string_view::npos;
}

std::size_t FindWhitespace(std::string_view data, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const unsigned mask = static_cast<unsigned>(
        _mm_movemask_epi8(WhitespaceLanes(Load16(base + i))));
    if (mask != 0) return i + std::countr_zero(mask);
  }
  for (; i < n; ++i) {
    if (IsSpaceByte(static_cast<unsigned char>(base[i]))) return i;
  }
  return n;
}

std::size_t SkipWhitespace(std::string_view data, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const unsigned mask = 0xFFFFu & ~static_cast<unsigned>(
        _mm_movemask_epi8(WhitespaceLanes(Load16(base + i))));
    if (mask != 0) return i + std::countr_zero(mask);
  }
  for (; i < n; ++i) {
    if (!IsSpaceByte(static_cast<unsigned char>(base[i]))) return i;
  }
  return n;
}

std::size_t DigitRunLength(std::string_view data, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const unsigned nondigit = 0xFFFFu & ~static_cast<unsigned>(
        _mm_movemask_epi8(DigitLanes(Load16(base + i))));
    if (nondigit != 0) return i + std::countr_zero(nondigit) - pos;
  }
  for (; i < n; ++i) {
    if (!IsDigitByte(static_cast<unsigned char>(base[i]))) break;
  }
  return i - pos;
}

bool IsClockHHMMSS(const char* p) {
  const __m128i v = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  const unsigned digits =
      static_cast<unsigned>(_mm_movemask_epi8(DigitLanes(v))) & 0xFFu;
  const unsigned colons = static_cast<unsigned>(_mm_movemask_epi8(
                              _mm_cmpeq_epi8(v, _mm_set1_epi8(':')))) &
                          0xFFu;
  // Digits at offsets {0,1,3,4,6,7} = 0xDB; colons at {2,5} = 0x24.
  return digits == 0xDBu && colons == 0x24u;
}

std::size_t FindAnyOf(std::string_view data, std::string_view delims,
                      std::size_t pos) {
  if (delims.empty() || delims.size() > kMaxVectorDelims) {
    return scalar::FindAnyOf(data, delims, pos);
  }
  __m128i splat[kMaxVectorDelims];
  for (std::size_t j = 0; j < delims.size(); ++j) {
    splat[j] = _mm_set1_epi8(delims[j]);
  }
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = Load16(base + i);
    __m128i hit = _mm_cmpeq_epi8(v, splat[0]);
    for (std::size_t j = 1; j < delims.size(); ++j) {
      hit = _mm_or_si128(hit, _mm_cmpeq_epi8(v, splat[j]));
    }
    const unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(hit));
    if (mask != 0) return i + std::countr_zero(mask);
  }
  return scalar::FindAnyOf(data, delims, i);
}

void ClassifyKeyValue(const char* data, std::size_t size, char delim,
                      std::uint64_t* delim_bits, std::uint64_t* ws_bits) {
  const __m128i vd = _mm_set1_epi8(delim);
  std::size_t i = 0;
  std::size_t w = 0;
  for (; i + 64 <= size; i += 64, ++w) {
    std::uint64_t eqm = 0;
    std::uint64_t wsm = 0;
    for (unsigned k = 0; k < 4; ++k) {
      const __m128i v = Load16(data + i + 16 * k);
      eqm |= static_cast<std::uint64_t>(static_cast<unsigned>(
                 _mm_movemask_epi8(_mm_cmpeq_epi8(v, vd))))
             << (16 * k);
      wsm |= static_cast<std::uint64_t>(static_cast<unsigned>(
                 _mm_movemask_epi8(WhitespaceLanes(v))))
             << (16 * k);
    }
    delim_bits[w] = eqm;
    ws_bits[w] = wsm;
  }
  // Tail: classify a zero-padded copy with the same vector loop — a
  // NUL byte is neither whitespace nor a delimiter, so the padding
  // bits come out zero, exactly the contract for the last word.  The
  // copy is far cheaper than a per-byte scalar loop here.
  if (i < size) {
    alignas(16) char buf[64] = {};
    __builtin_memcpy(buf, data + i, size - i);
    std::uint64_t eqm = 0;
    std::uint64_t wsm = 0;
    for (unsigned k = 0; k < 4; ++k) {
      const __m128i v = Load16(buf + 16 * k);
      eqm |= static_cast<std::uint64_t>(static_cast<unsigned>(
                 _mm_movemask_epi8(_mm_cmpeq_epi8(v, vd))))
             << (16 * k);
      wsm |= static_cast<std::uint64_t>(static_cast<unsigned>(
                 _mm_movemask_epi8(WhitespaceLanes(v))))
             << (16 * k);
    }
    // Mask off the padding anyway: a NUL `delim` must not leak bits
    // past `size`.
    const std::uint64_t valid = (std::uint64_t{1} << (size - i)) - 1;
    delim_bits[w] = eqm & valid;
    ws_bits[w] = wsm & valid;
  }
}

}  // namespace sse2

// ---------------------------------------------------------------------
// AVX2 backend: the same kernels over 32-byte lanes.  Compiled via the
// per-function target attribute, so the rest of the binary keeps the
// baseline ISA and these bodies are only reached after
// __builtin_cpu_supports("avx2") says the host can run them.
// ---------------------------------------------------------------------
namespace avx2 {
namespace {

#define LD_AVX2_FN __attribute__((target("avx2")))

LD_AVX2_FN inline __m256i Load32(const char* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

LD_AVX2_FN inline __m256i WhitespaceLanes(__m256i v) {
  const __m256i space = _mm256_cmpeq_epi8(v, _mm256_set1_epi8(' '));
  const __m256i ge_tab = _mm256_cmpgt_epi8(v, _mm256_set1_epi8('\t' - 1));
  const __m256i le_cr = _mm256_cmpgt_epi8(_mm256_set1_epi8('\r' + 1), v);
  return _mm256_or_si256(space, _mm256_and_si256(ge_tab, le_cr));
}

LD_AVX2_FN inline __m256i DigitLanes(__m256i v) {
  const __m256i ge0 = _mm256_cmpgt_epi8(v, _mm256_set1_epi8('0' - 1));
  const __m256i le9 = _mm256_cmpgt_epi8(_mm256_set1_epi8('9' + 1), v);
  return _mm256_and_si256(ge0, le9);
}

}  // namespace

LD_AVX2_FN std::size_t FindByte(std::string_view data, char needle,
                                std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  const __m256i vn = _mm256_set1_epi8(needle);
  std::size_t i = pos;
  for (; i + 32 <= n; i += 32) {
    const std::uint32_t mask = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(Load32(base + i), vn)));
    if (mask != 0) return i + std::countr_zero(mask);
  }
  return sse2::FindByte(data, needle, i);
}

LD_AVX2_FN std::size_t FindWhitespace(std::string_view data,
                                      std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 32 <= n; i += 32) {
    const std::uint32_t mask = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(WhitespaceLanes(Load32(base + i))));
    if (mask != 0) return i + std::countr_zero(mask);
  }
  return sse2::FindWhitespace(data, i);
}

LD_AVX2_FN std::size_t SkipWhitespace(std::string_view data,
                                      std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 32 <= n; i += 32) {
    const std::uint32_t mask = ~static_cast<std::uint32_t>(
        _mm256_movemask_epi8(WhitespaceLanes(Load32(base + i))));
    if (mask != 0) return i + std::countr_zero(mask);
  }
  return sse2::SkipWhitespace(data, i);
}

LD_AVX2_FN std::size_t DigitRunLength(std::string_view data,
                                      std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 32 <= n; i += 32) {
    const std::uint32_t nondigit = ~static_cast<std::uint32_t>(
        _mm256_movemask_epi8(DigitLanes(Load32(base + i))));
    if (nondigit != 0) return i + std::countr_zero(nondigit) - pos;
  }
  // Every byte in [pos, i) was a digit; the 16-byte kernel measures the
  // rest of the run from i.
  return (i - pos) + sse2::DigitRunLength(data, i);
}

LD_AVX2_FN std::size_t FindAnyOf(std::string_view data,
                                 std::string_view delims, std::size_t pos) {
  if (delims.empty() || delims.size() > kMaxVectorDelims) {
    return scalar::FindAnyOf(data, delims, pos);
  }
  __m256i splat[kMaxVectorDelims];
  for (std::size_t j = 0; j < delims.size(); ++j) {
    splat[j] = _mm256_set1_epi8(delims[j]);
  }
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 32 <= n; i += 32) {
    const __m256i v = Load32(base + i);
    __m256i hit = _mm256_cmpeq_epi8(v, splat[0]);
    for (std::size_t j = 1; j < delims.size(); ++j) {
      hit = _mm256_or_si256(hit, _mm256_cmpeq_epi8(v, splat[j]));
    }
    const std::uint32_t mask =
        static_cast<std::uint32_t>(_mm256_movemask_epi8(hit));
    if (mask != 0) return i + std::countr_zero(mask);
  }
  return sse2::FindAnyOf(data, delims, i);
}

LD_AVX2_FN void ClassifyKeyValue(const char* data, std::size_t size,
                                 char delim, std::uint64_t* delim_bits,
                                 std::uint64_t* ws_bits) {
  const __m256i vd = _mm256_set1_epi8(delim);
  std::size_t i = 0;
  std::size_t w = 0;
  for (; i + 64 <= size; i += 64, ++w) {
    const __m256i lo = Load32(data + i);
    const __m256i hi = Load32(data + i + 32);
    delim_bits[w] =
        static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, vd))) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
             _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, vd))))
         << 32);
    ws_bits[w] =
        static_cast<std::uint32_t>(
            _mm256_movemask_epi8(WhitespaceLanes(lo))) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
             _mm256_movemask_epi8(WhitespaceLanes(hi))))
         << 32);
  }
  // Tail: classify a zero-padded copy with the same vector loop (see
  // the SSE2 kernel); the valid-mask keeps the padding bits zero even
  // for a NUL `delim`.
  if (i < size) {
    alignas(32) char buf[64] = {};
    __builtin_memcpy(buf, data + i, size - i);
    const __m256i lo = Load32(buf);
    const __m256i hi = Load32(buf + 32);
    const std::uint64_t valid = (std::uint64_t{1} << (size - i)) - 1;
    delim_bits[w] =
        (static_cast<std::uint32_t>(
             _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, vd))) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
              _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, vd))))
          << 32)) &
        valid;
    ws_bits[w] =
        (static_cast<std::uint32_t>(
             _mm256_movemask_epi8(WhitespaceLanes(lo))) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
              _mm256_movemask_epi8(WhitespaceLanes(hi))))
          << 32)) &
        valid;
  }
}

#undef LD_AVX2_FN

}  // namespace avx2

namespace {

const Kernels kSse2Kernels = {
    "sse2",           &sse2::FindByte,     &sse2::FindWhitespace,
    &sse2::SkipWhitespace, &sse2::DigitRunLength, &sse2::IsClockHHMMSS,
    &sse2::FindAnyOf, &sse2::ClassifyKeyValue,
};

// IsClockHHMMSS reads exactly 8 bytes — nothing for a 32-byte lane to
// add, so the AVX2 table reuses the SSE2 kernel.
const Kernels kAvx2Kernels = {
    "avx2",           &avx2::FindByte,     &avx2::FindWhitespace,
    &avx2::SkipWhitespace, &avx2::DigitRunLength, &sse2::IsClockHHMMSS,
    &avx2::FindAnyOf, &avx2::ClassifyKeyValue,
};

bool HostHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }

}  // namespace

#elif defined(LD_SIMD_NEON)
// ---------------------------------------------------------------------
// NEON backend (aarch64; baseline, no runtime probe needed).  Movemask
// is emulated by narrowing the 16x8-bit compare result to one nibble
// per lane (vshrn), giving a 64-bit mask where lane i occupies bits
// [4i, 4i+4).
// ---------------------------------------------------------------------
namespace neon {
namespace {

inline std::uint64_t NibbleMask(uint8x16_t lanes) {
  const uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(lanes), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

inline uint8x16_t WhitespaceLanes(uint8x16_t v) {
  const uint8x16_t space = vceqq_u8(v, vdupq_n_u8(' '));
  const uint8x16_t ge_tab = vcgeq_u8(v, vdupq_n_u8('\t'));
  const uint8x16_t le_cr = vcleq_u8(v, vdupq_n_u8('\r'));
  return vorrq_u8(space, vandq_u8(ge_tab, le_cr));
}

inline uint8x16_t DigitLanes(uint8x16_t v) {
  return vandq_u8(vcgeq_u8(v, vdupq_n_u8('0')), vcleq_u8(v, vdupq_n_u8('9')));
}

// True 1-bit-per-lane movemask (unlike NibbleMask's 4 bits per lane),
// for the classifier's packed bitmaps: weight each 0xFF lane by its bit
// position within the byte, then pairwise-add down to one byte per
// 8-lane half.
inline std::uint64_t ByteMask16(uint8x16_t lanes) {
  const uint8x16_t weights = vcombine_u8(vcreate_u8(0x8040201008040201ull),
                                         vcreate_u8(0x8040201008040201ull));
  const uint8x16_t t = vandq_u8(lanes, weights);
  uint8x8_t sum = vpadd_u8(vget_low_u8(t), vget_high_u8(t));
  sum = vpadd_u8(sum, sum);
  sum = vpadd_u8(sum, sum);
  return vget_lane_u16(vreinterpret_u16_u8(sum), 0);
}

}  // namespace

std::size_t FindByte(std::string_view data, char needle, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  const uint8x16_t vn = vdupq_n_u8(static_cast<std::uint8_t>(needle));
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(base + i));
    const std::uint64_t mask = NibbleMask(vceqq_u8(v, vn));
    if (mask != 0) return i + (std::countr_zero(mask) >> 2);
  }
  for (; i < n; ++i) {
    if (base[i] == needle) return i;
  }
  return std::string_view::npos;
}

std::size_t FindWhitespace(std::string_view data, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(base + i));
    const std::uint64_t mask = NibbleMask(WhitespaceLanes(v));
    if (mask != 0) return i + (std::countr_zero(mask) >> 2);
  }
  for (; i < n; ++i) {
    if (IsSpaceByte(static_cast<unsigned char>(base[i]))) return i;
  }
  return n;
}

std::size_t SkipWhitespace(std::string_view data, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(base + i));
    const std::uint64_t mask = ~NibbleMask(WhitespaceLanes(v));
    if (mask != 0) return i + (std::countr_zero(mask) >> 2);
  }
  for (; i < n; ++i) {
    if (!IsSpaceByte(static_cast<unsigned char>(base[i]))) return i;
  }
  return n;
}

std::size_t DigitRunLength(std::string_view data, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(base + i));
    const std::uint64_t nondigit = ~NibbleMask(DigitLanes(v));
    if (nondigit != 0) return i + (std::countr_zero(nondigit) >> 2) - pos;
  }
  for (; i < n; ++i) {
    if (!IsDigitByte(static_cast<unsigned char>(base[i]))) break;
  }
  return i - pos;
}

bool IsClockHHMMSS(const char* p) {
  const uint8x8_t v = vld1_u8(reinterpret_cast<const std::uint8_t*>(p));
  const uint8x8_t dig =
      vand_u8(vcge_u8(v, vdup_n_u8('0')), vcle_u8(v, vdup_n_u8('9')));
  const uint8x8_t col = vceq_u8(v, vdup_n_u8(':'));
  // Lane i occupies bits [8i, 8i+8) of the 64-bit view.
  return vget_lane_u64(vreinterpret_u64_u8(dig), 0) == 0xFFFF00FFFF00FFFFull &&
         vget_lane_u64(vreinterpret_u64_u8(col), 0) == 0x0000FF0000FF0000ull;
}

std::size_t FindAnyOf(std::string_view data, std::string_view delims,
                      std::size_t pos) {
  if (delims.empty() || delims.size() > kMaxVectorDelims) {
    return scalar::FindAnyOf(data, delims, pos);
  }
  uint8x16_t splat[kMaxVectorDelims];
  for (std::size_t j = 0; j < delims.size(); ++j) {
    splat[j] = vdupq_n_u8(static_cast<std::uint8_t>(delims[j]));
  }
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(base + i));
    uint8x16_t hit = vceqq_u8(v, splat[0]);
    for (std::size_t j = 1; j < delims.size(); ++j) {
      hit = vorrq_u8(hit, vceqq_u8(v, splat[j]));
    }
    const std::uint64_t mask = NibbleMask(hit);
    if (mask != 0) return i + (std::countr_zero(mask) >> 2);
  }
  return scalar::FindAnyOf(data, delims, i);
}

void ClassifyKeyValue(const char* data, std::size_t size, char delim,
                      std::uint64_t* delim_bits, std::uint64_t* ws_bits) {
  const uint8x16_t vd = vdupq_n_u8(static_cast<std::uint8_t>(delim));
  std::size_t i = 0;
  std::size_t w = 0;
  for (; i + 64 <= size; i += 64, ++w) {
    std::uint64_t eqm = 0;
    std::uint64_t wsm = 0;
    for (unsigned k = 0; k < 4; ++k) {
      const uint8x16_t v =
          vld1q_u8(reinterpret_cast<const std::uint8_t*>(data + i + 16 * k));
      eqm |= ByteMask16(vceqq_u8(v, vd)) << (16 * k);
      wsm |= ByteMask16(WhitespaceLanes(v)) << (16 * k);
    }
    delim_bits[w] = eqm;
    ws_bits[w] = wsm;
  }
  // Tail: classify a zero-padded copy with the same vector loop (see
  // the SSE2 kernel); the valid-mask keeps the padding bits zero even
  // for a NUL `delim`.
  if (i < size) {
    alignas(16) char buf[64] = {};
    __builtin_memcpy(buf, data + i, size - i);
    std::uint64_t eqm = 0;
    std::uint64_t wsm = 0;
    for (unsigned k = 0; k < 4; ++k) {
      const uint8x16_t v =
          vld1q_u8(reinterpret_cast<const std::uint8_t*>(buf + 16 * k));
      eqm |= ByteMask16(vceqq_u8(v, vd)) << (16 * k);
      wsm |= ByteMask16(WhitespaceLanes(v)) << (16 * k);
    }
    const std::uint64_t valid = (std::uint64_t{1} << (size - i)) - 1;
    delim_bits[w] = eqm & valid;
    ws_bits[w] = wsm & valid;
  }
}

}  // namespace neon

namespace {

const Kernels kNeonKernels = {
    "neon",           &neon::FindByte,     &neon::FindWhitespace,
    &neon::SkipWhitespace, &neon::DigitRunLength, &neon::IsClockHHMMSS,
    &neon::FindAnyOf, &neon::ClassifyKeyValue,
};

}  // namespace

#endif

// ---------------------------------------------------------------------
// Runtime dispatch.
// ---------------------------------------------------------------------

const Kernels* GetBackend(std::string_view name) {
  if (name == "scalar") return &kScalarKernels;
#if defined(LD_SIMD_X86)
  if (name == "sse2") return &kSse2Kernels;
  if (name == "avx2" && HostHasAvx2()) return &kAvx2Kernels;
#elif defined(LD_SIMD_NEON)
  if (name == "neon") return &kNeonKernels;
#endif
  return nullptr;
}

namespace {

/// Stable numeric encoding of the resolved tier for the
/// ld.simd.dispatch gauge: 0 scalar, 1 sse2, 2 avx2, 3 neon.
int DispatchTier(std::string_view name) {
  if (name == "sse2") return 1;
  if (name == "avx2") return 2;
  if (name == "neon") return 3;
  return 0;
}

const Kernels& Resolve() {
  const Kernels* picked = nullptr;
  if (const char* force = std::getenv("LD_SIMD_FORCE");
      force != nullptr && *force != '\0') {
    // An unknown or unsupported name falls through to the best
    // supported backend: forcing narrows, it never crashes on a CPU
    // that lacks the tier (CI probes support before asserting a tier).
    picked = GetBackend(force);
  }
  if (picked == nullptr) {
#if defined(LD_SIMD_X86)
    picked = HostHasAvx2() ? &kAvx2Kernels : &kSse2Kernels;
#elif defined(LD_SIMD_NEON)
    picked = &kNeonKernels;
#else
    picked = &kScalarKernels;
#endif
  }
  LD_OBS_GAUGE_SET(obs::names::kSimdDispatch, DispatchTier(picked->name));
  return *picked;
}

}  // namespace

const Kernels& ActiveKernels() {
  static const Kernels& k = Resolve();
  return k;
}

const char* BackendName() { return ActiveKernels().name; }

const char* CompiledBackends() {
#if defined(LD_SIMD_X86)
  return "sse2+avx2";
#elif defined(LD_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

std::size_t FindByte(std::string_view data, char needle, std::size_t pos) {
  return ActiveKernels().find_byte(data, needle, pos);
}

std::size_t FindWhitespace(std::string_view data, std::size_t pos) {
  return ActiveKernels().find_whitespace(data, pos);
}

std::size_t SkipWhitespace(std::string_view data, std::size_t pos) {
  return ActiveKernels().skip_whitespace(data, pos);
}

std::size_t DigitRunLength(std::string_view data, std::size_t pos) {
  return ActiveKernels().digit_run_length(data, pos);
}

bool IsClockHHMMSS(const char* p) {
  return ActiveKernels().is_clock_hhmmss(p);
}

std::size_t FindAnyOf(std::string_view data, std::string_view delims,
                      std::size_t pos) {
  return ActiveKernels().find_any_of(data, delims, pos);
}

void ClassifyKeyValue(const char* data, std::size_t size, char delim,
                      std::uint64_t* delim_bits, std::uint64_t* ws_bits) {
  ActiveKernels().classify_kv(data, size, delim, delim_bits, ws_bits);
}

}  // namespace ld::simd
