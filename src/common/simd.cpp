#include "common/simd.hpp"

#include <bit>

#if !defined(LOGDIVER_SIMD_DISABLED) && \
    (defined(__SSE2__) || defined(_M_X64))
#define LD_SIMD_SSE2 1
#include <emmintrin.h>
#elif !defined(LOGDIVER_SIMD_DISABLED) && defined(__aarch64__)
#define LD_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace ld::simd {
namespace {

// The C locale isspace set: ' ' plus the control range '\t'..'\r'.
inline bool IsSpaceByte(unsigned char c) {
  return c == ' ' || (c >= '\t' && c <= '\r');
}

inline bool IsDigitByte(unsigned char c) { return c >= '0' && c <= '9'; }

}  // namespace

// ---------------------------------------------------------------------
// Scalar reference backend: plain byte loops, no libc memchr, so the
// SIMD-vs-scalar benchmark compares instruction selection, not libc.
// ---------------------------------------------------------------------
namespace scalar {

std::size_t FindByte(std::string_view data, char needle, std::size_t pos) {
  for (std::size_t i = pos; i < data.size(); ++i) {
    if (data[i] == needle) return i;
  }
  return std::string_view::npos;
}

std::size_t FindWhitespace(std::string_view data, std::size_t pos) {
  for (std::size_t i = pos; i < data.size(); ++i) {
    if (IsSpaceByte(static_cast<unsigned char>(data[i]))) return i;
  }
  return data.size();
}

std::size_t SkipWhitespace(std::string_view data, std::size_t pos) {
  for (std::size_t i = pos; i < data.size(); ++i) {
    if (!IsSpaceByte(static_cast<unsigned char>(data[i]))) return i;
  }
  return data.size();
}

std::size_t DigitRunLength(std::string_view data, std::size_t pos) {
  std::size_t i = pos;
  while (i < data.size() && IsDigitByte(static_cast<unsigned char>(data[i]))) {
    ++i;
  }
  return i - pos;
}

bool IsClockHHMMSS(const char* p) {
  return IsDigitByte(static_cast<unsigned char>(p[0])) &&
         IsDigitByte(static_cast<unsigned char>(p[1])) && p[2] == ':' &&
         IsDigitByte(static_cast<unsigned char>(p[3])) &&
         IsDigitByte(static_cast<unsigned char>(p[4])) && p[5] == ':' &&
         IsDigitByte(static_cast<unsigned char>(p[6])) &&
         IsDigitByte(static_cast<unsigned char>(p[7]));
}

}  // namespace scalar

#if defined(LD_SIMD_SSE2)
// ---------------------------------------------------------------------
// SSE2 backend (baseline x86-64; no runtime dispatch needed).
// ---------------------------------------------------------------------
namespace {

// 0xFF lanes where the byte is in the isspace set.  The range compare
// uses signed arithmetic: bytes >= 0x80 are negative, so both range
// tests are false for them — exactly the scalar behavior.
inline __m128i WhitespaceLanes(__m128i v) {
  const __m128i space = _mm_cmpeq_epi8(v, _mm_set1_epi8(' '));
  const __m128i ge_tab = _mm_cmpgt_epi8(v, _mm_set1_epi8('\t' - 1));
  const __m128i le_cr = _mm_cmpgt_epi8(_mm_set1_epi8('\r' + 1), v);
  return _mm_or_si128(space, _mm_and_si128(ge_tab, le_cr));
}

inline __m128i DigitLanes(__m128i v) {
  const __m128i ge0 = _mm_cmpgt_epi8(v, _mm_set1_epi8('0' - 1));
  const __m128i le9 = _mm_cmpgt_epi8(_mm_set1_epi8('9' + 1), v);
  return _mm_and_si128(ge0, le9);
}

inline __m128i Load16(const char* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

}  // namespace

const char* BackendName() { return "sse2"; }

std::size_t FindByte(std::string_view data, char needle, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  const __m128i vn = _mm_set1_epi8(needle);
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const unsigned mask = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(Load16(base + i), vn)));
    if (mask != 0) return i + std::countr_zero(mask);
  }
  for (; i < n; ++i) {
    if (base[i] == needle) return i;
  }
  return std::string_view::npos;
}

std::size_t FindWhitespace(std::string_view data, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const unsigned mask = static_cast<unsigned>(
        _mm_movemask_epi8(WhitespaceLanes(Load16(base + i))));
    if (mask != 0) return i + std::countr_zero(mask);
  }
  for (; i < n; ++i) {
    if (IsSpaceByte(static_cast<unsigned char>(base[i]))) return i;
  }
  return n;
}

std::size_t SkipWhitespace(std::string_view data, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const unsigned mask = 0xFFFFu & ~static_cast<unsigned>(
        _mm_movemask_epi8(WhitespaceLanes(Load16(base + i))));
    if (mask != 0) return i + std::countr_zero(mask);
  }
  for (; i < n; ++i) {
    if (!IsSpaceByte(static_cast<unsigned char>(base[i]))) return i;
  }
  return n;
}

std::size_t DigitRunLength(std::string_view data, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const unsigned nondigit = 0xFFFFu & ~static_cast<unsigned>(
        _mm_movemask_epi8(DigitLanes(Load16(base + i))));
    if (nondigit != 0) return i + std::countr_zero(nondigit) - pos;
  }
  for (; i < n; ++i) {
    if (!IsDigitByte(static_cast<unsigned char>(base[i]))) break;
  }
  return i - pos;
}

bool IsClockHHMMSS(const char* p) {
  const __m128i v = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  const unsigned digits =
      static_cast<unsigned>(_mm_movemask_epi8(DigitLanes(v))) & 0xFFu;
  const unsigned colons = static_cast<unsigned>(_mm_movemask_epi8(
                              _mm_cmpeq_epi8(v, _mm_set1_epi8(':')))) &
                          0xFFu;
  // Digits at offsets {0,1,3,4,6,7} = 0xDB; colons at {2,5} = 0x24.
  return digits == 0xDBu && colons == 0x24u;
}

#elif defined(LD_SIMD_NEON)
// ---------------------------------------------------------------------
// NEON backend (aarch64).  Movemask is emulated by narrowing the
// 16x8-bit compare result to one nibble per lane (vshrn), giving a
// 64-bit mask where lane i occupies bits [4i, 4i+4).
// ---------------------------------------------------------------------
namespace {

inline std::uint64_t NibbleMask(uint8x16_t lanes) {
  const uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(lanes), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

inline uint8x16_t WhitespaceLanes(uint8x16_t v) {
  const uint8x16_t space = vceqq_u8(v, vdupq_n_u8(' '));
  const uint8x16_t ge_tab = vcgeq_u8(v, vdupq_n_u8('\t'));
  const uint8x16_t le_cr = vcleq_u8(v, vdupq_n_u8('\r'));
  return vorrq_u8(space, vandq_u8(ge_tab, le_cr));
}

inline uint8x16_t DigitLanes(uint8x16_t v) {
  return vandq_u8(vcgeq_u8(v, vdupq_n_u8('0')), vcleq_u8(v, vdupq_n_u8('9')));
}

}  // namespace

const char* BackendName() { return "neon"; }

std::size_t FindByte(std::string_view data, char needle, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  const uint8x16_t vn = vdupq_n_u8(static_cast<std::uint8_t>(needle));
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(base + i));
    const std::uint64_t mask = NibbleMask(vceqq_u8(v, vn));
    if (mask != 0) return i + (std::countr_zero(mask) >> 2);
  }
  for (; i < n; ++i) {
    if (base[i] == needle) return i;
  }
  return std::string_view::npos;
}

std::size_t FindWhitespace(std::string_view data, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(base + i));
    const std::uint64_t mask = NibbleMask(WhitespaceLanes(v));
    if (mask != 0) return i + (std::countr_zero(mask) >> 2);
  }
  for (; i < n; ++i) {
    if (IsSpaceByte(static_cast<unsigned char>(base[i]))) return i;
  }
  return n;
}

std::size_t SkipWhitespace(std::string_view data, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(base + i));
    const std::uint64_t mask = ~NibbleMask(WhitespaceLanes(v));
    if (mask != 0) return i + (std::countr_zero(mask) >> 2);
  }
  for (; i < n; ++i) {
    if (!IsSpaceByte(static_cast<unsigned char>(base[i]))) return i;
  }
  return n;
}

std::size_t DigitRunLength(std::string_view data, std::size_t pos) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(base + i));
    const std::uint64_t nondigit = ~NibbleMask(DigitLanes(v));
    if (nondigit != 0) return i + (std::countr_zero(nondigit) >> 2) - pos;
  }
  for (; i < n; ++i) {
    if (!IsDigitByte(static_cast<unsigned char>(base[i]))) break;
  }
  return i - pos;
}

bool IsClockHHMMSS(const char* p) {
  const uint8x8_t v = vld1_u8(reinterpret_cast<const std::uint8_t*>(p));
  const uint8x8_t dig =
      vand_u8(vcge_u8(v, vdup_n_u8('0')), vcle_u8(v, vdup_n_u8('9')));
  const uint8x8_t col = vceq_u8(v, vdup_n_u8(':'));
  // Lane i occupies bits [8i, 8i+8) of the 64-bit view.
  return vget_lane_u64(vreinterpret_u64_u8(dig), 0) == 0xFFFF00FFFF00FFFFull &&
         vget_lane_u64(vreinterpret_u64_u8(col), 0) == 0x0000FF0000FF0000ull;
}

#else
// ---------------------------------------------------------------------
// Portable fallback: the active backend IS the scalar reference.
// ---------------------------------------------------------------------

const char* BackendName() { return "scalar"; }

std::size_t FindByte(std::string_view data, char needle, std::size_t pos) {
  return scalar::FindByte(data, needle, pos);
}

std::size_t FindWhitespace(std::string_view data, std::size_t pos) {
  return scalar::FindWhitespace(data, pos);
}

std::size_t SkipWhitespace(std::string_view data, std::size_t pos) {
  return scalar::SkipWhitespace(data, pos);
}

std::size_t DigitRunLength(std::string_view data, std::size_t pos) {
  return scalar::DigitRunLength(data, pos);
}

bool IsClockHHMMSS(const char* p) { return scalar::IsClockHHMMSS(p); }

#endif

}  // namespace ld::simd
