#include "common/interval.hpp"

#include <algorithm>

namespace ld {

Interval Interval::Intersect(const Interval& o) const {
  Interval out{std::max(start, o.start), std::min(end, o.end)};
  if (out.end < out.start) out.end = out.start;
  return out;
}

void IntervalSet::Add(Interval iv) {
  if (iv.empty()) return;
  // Find first interval whose end >= iv.start (candidate for merge).
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.end < b.start; });
  auto last = first;
  while (last != intervals_.end() && last->start <= iv.end) {
    iv.start = std::min(iv.start, last->start);
    iv.end = std::max(iv.end, last->end);
    ++last;
  }
  const auto pos = intervals_.erase(first, last);
  intervals_.insert(pos, iv);
}

bool IntervalSet::Contains(TimePoint t) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](TimePoint v, const Interval& iv) { return v < iv.start; });
  if (it == intervals_.begin()) return false;
  --it;
  return it->Contains(t);
}

Duration IntervalSet::TotalLength() const {
  std::int64_t total = 0;
  for (const auto& iv : intervals_) total += iv.length().seconds();
  return Duration(total);
}

Duration IntervalSet::OverlapWith(Interval query) const {
  if (query.empty()) return Duration(0);
  std::int64_t total = 0;
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), query,
      [](const Interval& a, const Interval& b) { return a.end <= b.start; });
  for (; it != intervals_.end() && it->start < query.end; ++it) {
    total += it->Intersect(query).length().seconds();
  }
  return Duration(total);
}

}  // namespace ld
