#include "common/sockio.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ld {
namespace {

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

struct ParsedAddress {
  bool is_unix = false;
  std::string path;  // unix
  std::string host;  // inet
  std::uint16_t port = 0;
};

Result<ParsedAddress> ParseAddress(const std::string& address) {
  ParsedAddress out;
  const std::string_view prefix = kUnixAddressPrefix;
  if (address.rfind(prefix, 0) == 0) {
    out.is_unix = true;
    out.path = address.substr(prefix.size());
    if (out.path.empty()) {
      return InvalidArgumentError("sockio: empty unix socket path");
    }
    sockaddr_un probe{};
    if (out.path.size() >= sizeof(probe.sun_path)) {
      return InvalidArgumentError("sockio: unix socket path too long: " +
                                  out.path);
    }
    return out;
  }
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return InvalidArgumentError(
        "sockio: address must be unix:<path> or <host>:<port>, got '" +
        address + "'");
  }
  out.host = address.substr(0, colon);
  char* end = nullptr;
  const std::string port_str = address.substr(colon + 1);
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port > 65535) {
    return InvalidArgumentError("sockio: bad port in '" + address + "'");
  }
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

Result<int> MakeSocket(const ParsedAddress& addr) {
  const int fd = ::socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("sockio: socket");
  return fd;
}

Result<sockaddr_in> InetSockaddr(const ParsedAddress& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    return InvalidArgumentError("sockio: host must be a numeric IPv4 "
                                "address, got '" +
                                addr.host + "'");
  }
  return sa;
}

sockaddr_un UnixSockaddr(const ParsedAddress& addr) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  std::memcpy(sa.sun_path, addr.path.c_str(), addr.path.size() + 1);
  return sa;
}

}  // namespace

Result<int> ListenOn(const std::string& address, int backlog) {
  LD_ASSIGN_OR_RETURN(const ParsedAddress addr, ParseAddress(address));
  LD_ASSIGN_OR_RETURN(const int fd, MakeSocket(addr));
  if (addr.is_unix) {
    // A crashed daemon leaves its socket file behind; bind would fail
    // with EADDRINUSE forever.  The restart path owns the address.
    ::unlink(addr.path.c_str());
    const sockaddr_un sa = UnixSockaddr(addr);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
      const Status err = ErrnoError("sockio: bind " + address);
      ::close(fd);
      return err;
    }
  } else {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    auto sa = InetSockaddr(addr);
    if (!sa.ok()) {
      ::close(fd);
      return sa.status();
    }
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&*sa), sizeof(*sa)) !=
        0) {
      const Status err = ErrnoError("sockio: bind " + address);
      ::close(fd);
      return err;
    }
  }
  if (::listen(fd, backlog) != 0) {
    const Status err = ErrnoError("sockio: listen " + address);
    ::close(fd);
    return err;
  }
  return fd;
}

Result<int> ConnectTo(const std::string& address) {
  LD_ASSIGN_OR_RETURN(const ParsedAddress addr, ParseAddress(address));
  LD_ASSIGN_OR_RETURN(const int fd, MakeSocket(addr));
  int rc;
  if (addr.is_unix) {
    const sockaddr_un sa = UnixSockaddr(addr);
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
    } while (rc != 0 && errno == EINTR);
  } else {
    auto sa = InetSockaddr(addr);
    if (!sa.ok()) {
      ::close(fd);
      return sa.status();
    }
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&*sa), sizeof(*sa));
    } while (rc != 0 && errno == EINTR);
  }
  if (rc != 0) {
    const Status err = ErrnoError("sockio: connect " + address);
    ::close(fd);
    return err;
  }
  return fd;
}

Result<std::string> ListeningAddress(int fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) != 0) {
    return ErrnoError("sockio: getsockname");
  }
  if (ss.ss_family == AF_UNIX) {
    const auto* sa = reinterpret_cast<const sockaddr_un*>(&ss);
    return std::string(kUnixAddressPrefix) + sa->sun_path;
  }
  if (ss.ss_family == AF_INET) {
    const auto* sa = reinterpret_cast<const sockaddr_in*>(&ss);
    char host[INET_ADDRSTRLEN] = {};
    ::inet_ntop(AF_INET, &sa->sin_addr, host, sizeof(host));
    return std::string(host) + ":" + std::to_string(ntohs(sa->sin_port));
  }
  return InternalError("sockio: unsupported address family " +
                       std::to_string(ss.ss_family));
}

Result<int> AcceptOn(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return ErrnoError("sockio: accept");
  }
}

Status SetRecvTimeoutMs(int fd, std::uint64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoError("sockio: SO_RCVTIMEO");
  }
  return Status::Ok();
}

LineChannel::~LineChannel() { Close(); }

void LineChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::optional<std::string>> LineChannel::ReadLine() {
  timed_out_ = false;
  for (;;) {
    const std::size_t nl = buffer_.find('\n', buffer_pos_);
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(buffer_pos_, nl - buffer_pos_);
      // CRLF shippers (telnet, netcat, tail -f | nc on Windows mounts)
      // are first-class clients: a trailing \r is line framing, not
      // payload.
      if (!line.empty() && line.back() == '\r') line.pop_back();
      buffer_pos_ = nl + 1;
      // Compact once the consumed prefix dominates, so a long-lived
      // connection does not keep every line it ever received.
      if (buffer_pos_ > 4096 && buffer_pos_ * 2 > buffer_.size()) {
        buffer_.erase(0, buffer_pos_);
        buffer_pos_ = 0;
      }
      return std::optional<std::string>(std::move(line));
    }
    if (eof_) {
      if (buffer_pos_ < buffer_.size()) {
        std::string line = buffer_.substr(buffer_pos_);
        buffer_pos_ = buffer_.size();
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return std::optional<std::string>(std::move(line));
      }
      return std::optional<std::string>();
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        timed_out_ = true;
        return InternalError("sockio: receive timed out");
      }
      return ErrnoError("sockio: recv");
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Status LineChannel::WriteLine(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("sockio: send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace ld
