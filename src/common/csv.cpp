#include "common/csv.hpp"

#include <fstream>
#include <ostream>

namespace ld {

CsvWriter::CsvWriter(std::ostream& out, char sep) : out_(out), sep_(sep) {}

std::string CsvWriter::EscapeField(const std::string& field) const {
  const bool needs_quote = field.find(sep_) != std::string::npos ||
                           field.find('"') != std::string::npos ||
                           field.find('\n') != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << sep_;
    out_ << EscapeField(fields[i]);
  }
  out_ << '\n';
}

Result<std::vector<std::string>> CsvReader::ParseLine(const std::string& line,
                                                      char sep) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      if (!cur.empty()) {
        return ParseError("quote in unquoted field at column " +
                          std::to_string(i));
      }
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quotes) return ParseError("unterminated quoted field");
  fields.push_back(std::move(cur));
  return fields;
}

Result<CsvReader::Table> CsvReader::ReadFile(const std::string& path,
                                             bool has_header, char sep) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  Table table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto fields = ParseLine(line, sep);
    if (!fields.ok()) return fields.status();
    if (first && has_header) {
      table.header = std::move(*fields);
    } else {
      table.rows.push_back(std::move(*fields));
    }
    first = false;
  }
  return table;
}

}  // namespace ld
