// Lightweight Status / Result<T> error handling.
//
// LogDiver processes multi-gigabyte log bundles where malformed lines are
// expected, not exceptional; parsers therefore report recoverable problems
// through Result<T> values instead of exceptions.  Exceptions remain in use
// for programming errors (precondition violations) via LD_CHECK.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace ld {

enum class StatusCode {
  kOk,
  kInvalidArgument,
  kNotFound,
  kParseError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// Human-readable name of a status code ("OK", "PARSE_ERROR", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value.  Cheap to copy on the success path (no
/// allocation); errors carry a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

/// A value of type T or an error Status.  Never holds both.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}      // NOLINT(implicit)
  Result(Status status) : payload_(std::move(status)) {  // NOLINT(implicit)
    if (std::get<Status>(payload_).ok()) {
      throw std::logic_error("Result constructed from OK status without value");
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const T& value() const& {
    require_ok();
    return std::get<T>(payload_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(payload_);
  }
  T&& value() && {
    require_ok();
    return std::get<T>(std::move(payload_));
  }

  /// The contained value, or `fallback` on error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void require_ok() const {
    if (!ok()) {
      throw std::runtime_error("Result accessed without value: " +
                               std::get<Status>(payload_).ToString());
    }
  }

  std::variant<T, Status> payload_;
};

namespace internal {
inline Status AsStatus(const Status& s) { return s; }
template <typename T>
Status AsStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

#define LD_CONCAT_IMPL_(a, b) a##b
#define LD_CONCAT_(a, b) LD_CONCAT_IMPL_(a, b)

/// Evaluates an expression yielding a Status or Result<T>; on error,
/// propagates the Status out of the enclosing function (which must
/// return Status or a Result — Result converts from Status implicitly).
#define LD_TRY(expr)                                                      \
  do {                                                                    \
    const auto& ld_try_value_ = (expr);                                   \
    if (!ld_try_value_.ok()) return ::ld::internal::AsStatus(ld_try_value_); \
  } while (0)

/// LD_ASSIGN_OR_RETURN(auto v, ParseThing(...)): declares/assigns `v`
/// from the Result's value, or propagates the error Status.  Cuts the
/// `auto r = ...; if (!r.ok()) return r.status();` parser boilerplate.
#define LD_ASSIGN_OR_RETURN(lhs, rexpr) \
  LD_ASSIGN_OR_RETURN_IMPL_(LD_CONCAT_(ld_result_, __LINE__), lhs, rexpr)
#define LD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

/// Precondition check; throws std::logic_error on violation.  Used for
/// programmer errors, never for data errors (those go through Status).
#define LD_CHECK(cond, msg)                                       \
  do {                                                            \
    if (!(cond)) {                                                \
      throw std::logic_error(std::string("LD_CHECK failed: ") +   \
                             #cond + " — " + (msg));              \
    }                                                             \
  } while (0)

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

inline std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(StatusCodeName(code_)) + ": " + message_;
}

}  // namespace ld
