#include "common/crashpoint.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace ld {
namespace {

// Countdown state.  Single-threaded by design (the analysis loop is
// single-threaded); no atomics needed.
bool g_armed = false;
std::uint64_t g_remaining = 0;
bool g_hang_armed = false;
std::uint64_t g_hang_remaining = 0;
bool g_truncate_partial = false;
bool g_env_checked = false;

std::uint64_t ParseCount(const char* value) {
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return 0;
  return n;
}

void MaybeInitFromEnv() {
  if (g_env_checked) return;
  g_env_checked = true;
  if (const std::uint64_t n = ParseCount(std::getenv(kCrashAfterEnv))) {
    g_armed = true;
    g_remaining = n;
  }
  if (const std::uint64_t n = ParseCount(std::getenv(kHangAfterEnv))) {
    g_hang_armed = true;
    g_hang_remaining = n;
  }
  const char* trunc = std::getenv(kTruncatePartialEnv);
  if (trunc != nullptr && *trunc != '\0' &&
      !(trunc[0] == '0' && trunc[1] == '\0')) {
    g_truncate_partial = true;
  }
}

}  // namespace

void ArmCrashPoint(std::uint64_t after) {
  MaybeInitFromEnv();  // settle the env first; programmatic wins after
  g_armed = after != 0;
  g_remaining = after;
}

void DisarmCrashPoint() {
  MaybeInitFromEnv();
  g_armed = false;
  g_remaining = 0;
}

bool CrashPointArmed() {
  MaybeInitFromEnv();
  return g_armed;
}

std::uint64_t CrashPointRemaining() {
  MaybeInitFromEnv();
  return g_armed ? g_remaining : 0;
}

void ArmHangPoint(std::uint64_t after) {
  MaybeInitFromEnv();
  g_hang_armed = after != 0;
  g_hang_remaining = after;
}

void DisarmHangPoint() {
  MaybeInitFromEnv();
  g_hang_armed = false;
  g_hang_remaining = 0;
}

bool HangPointArmed() {
  MaybeInitFromEnv();
  return g_hang_armed;
}

void ArmTruncatePartial(bool armed) {
  MaybeInitFromEnv();
  g_truncate_partial = armed;
}

bool TruncatePartialArmed() {
  MaybeInitFromEnv();
  return g_truncate_partial;
}

void CrashPoint(std::string_view tag) {
  MaybeInitFromEnv();
  if (g_armed && --g_remaining == 0) {
    // Die like a power cut: no destructors, no stream flushing beyond
    // this one diagnostic line.
    std::fprintf(stderr, "[crashpoint] injected crash at boundary '%.*s'\n",
                 static_cast<int>(tag.size()), tag.data());
    std::fflush(stderr);
    std::_Exit(kCrashExitCode);
  }
  if (g_hang_armed && --g_hang_remaining == 0) {
    // Stop making progress without dying: only SIGKILL (which pause()
    // cannot observe) gets the process unstuck, so a supervisor's
    // timeout escalation is the one recovery path.
    std::fprintf(stderr, "[crashpoint] injected hang at boundary '%.*s'\n",
                 static_cast<int>(tag.size()), tag.data());
    std::fflush(stderr);
    for (;;) ::pause();
  }
}

}  // namespace ld
