#include "common/crashpoint.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace ld {
namespace {

// Countdown state.  Atomic because the multi-tenant service ticks
// boundaries from many shard worker threads concurrently; exactly one
// thread must observe the countdown reaching zero.  The remaining
// counters keep decrementing past zero on later hits — only the exact
// transition fires.
std::atomic<bool> g_armed{false};
std::atomic<std::int64_t> g_remaining{0};
std::atomic<bool> g_hang_armed{false};
std::atomic<std::int64_t> g_hang_remaining{0};
std::atomic<bool> g_truncate_partial{false};
std::atomic<bool> g_delay_armed{false};
std::atomic<std::uint64_t> g_delay_after{0};
std::atomic<std::uint64_t> g_delay_mean_ms{5};
std::atomic<std::uint64_t> g_delay_seed{1};
std::atomic<std::uint64_t> g_delay_ticks{0};
std::once_flag g_env_once;

std::uint64_t ParseCount(const char* value) {
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return 0;
  return n;
}

void MaybeInitFromEnv() {
  std::call_once(g_env_once, [] {
    if (const std::uint64_t n = ParseCount(std::getenv(kCrashAfterEnv))) {
      g_remaining.store(static_cast<std::int64_t>(n));
      g_armed.store(true);
    }
    if (const std::uint64_t n = ParseCount(std::getenv(kHangAfterEnv))) {
      g_hang_remaining.store(static_cast<std::int64_t>(n));
      g_hang_armed.store(true);
    }
    const char* trunc = std::getenv(kTruncatePartialEnv);
    if (trunc != nullptr && *trunc != '\0' &&
        !(trunc[0] == '0' && trunc[1] == '\0')) {
      g_truncate_partial.store(true);
    }
    if (const std::uint64_t n = ParseCount(std::getenv(kDelayAfterEnv))) {
      g_delay_after.store(n);
      if (const std::uint64_t ms = ParseCount(std::getenv(kDelayMsEnv))) {
        g_delay_mean_ms.store(ms);
      }
      if (const std::uint64_t s = ParseCount(std::getenv(kDelaySeedEnv))) {
        g_delay_seed.store(s);
      }
      g_delay_armed.store(true);
    }
  });
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

void ArmCrashPoint(std::uint64_t after) {
  MaybeInitFromEnv();  // settle the env first; programmatic wins after
  g_remaining.store(static_cast<std::int64_t>(after));
  g_armed.store(after != 0);
}

void DisarmCrashPoint() {
  MaybeInitFromEnv();
  g_armed.store(false);
  g_remaining.store(0);
}

bool CrashPointArmed() {
  MaybeInitFromEnv();
  return g_armed.load();
}

std::uint64_t CrashPointRemaining() {
  MaybeInitFromEnv();
  if (!g_armed.load()) return 0;
  const std::int64_t left = g_remaining.load();
  return left > 0 ? static_cast<std::uint64_t>(left) : 0;
}

void ArmHangPoint(std::uint64_t after) {
  MaybeInitFromEnv();
  g_hang_remaining.store(static_cast<std::int64_t>(after));
  g_hang_armed.store(after != 0);
}

void DisarmHangPoint() {
  MaybeInitFromEnv();
  g_hang_armed.store(false);
  g_hang_remaining.store(0);
}

bool HangPointArmed() {
  MaybeInitFromEnv();
  return g_hang_armed.load();
}

void ArmTruncatePartial(bool armed) {
  MaybeInitFromEnv();
  g_truncate_partial.store(armed);
}

bool TruncatePartialArmed() {
  MaybeInitFromEnv();
  return g_truncate_partial.load();
}

void ArmDelayPoint(std::uint64_t after, std::uint64_t mean_ms,
                   std::uint64_t seed) {
  MaybeInitFromEnv();
  g_delay_after.store(after);
  g_delay_mean_ms.store(mean_ms == 0 ? 1 : mean_ms);
  g_delay_seed.store(seed);
  g_delay_ticks.store(0);
  g_delay_armed.store(after != 0);
}

void DisarmDelayPoint() {
  MaybeInitFromEnv();
  g_delay_armed.store(false);
  g_delay_after.store(0);
}

bool DelayPointArmed() {
  MaybeInitFromEnv();
  return g_delay_armed.load();
}

std::uint64_t DelayForBoundary(std::uint64_t index, std::uint64_t mean_ms,
                               std::uint64_t seed) {
  if (mean_ms == 0) mean_ms = 1;
  // Uniform in [mean/2, 3*mean/2], never below 1 ms, as a deterministic
  // function of (seed, boundary index).
  const std::uint64_t span = mean_ms + 1;  // values mean/2 .. mean/2+mean
  const std::uint64_t draw = SplitMix64(seed ^ (index * 0x9E3779B97F4A7C15ull));
  const std::uint64_t ms = mean_ms / 2 + draw % span;
  return ms == 0 ? 1 : ms;
}

void CrashPoint(std::string_view tag) {
  MaybeInitFromEnv();
  if (g_armed.load(std::memory_order_relaxed) &&
      g_remaining.fetch_sub(1, std::memory_order_relaxed) == 1) {
    // Die like a power cut: no destructors, no stream flushing beyond
    // this one diagnostic line.
    std::fprintf(stderr, "[crashpoint] injected crash at boundary '%.*s'\n",
                 static_cast<int>(tag.size()), tag.data());
    std::fflush(stderr);
    std::_Exit(kCrashExitCode);
  }
  if (g_hang_armed.load(std::memory_order_relaxed) &&
      g_hang_remaining.fetch_sub(1, std::memory_order_relaxed) == 1) {
    // Stop making progress without dying: only SIGKILL (which pause()
    // cannot observe) gets the process unstuck, so a supervisor's
    // timeout escalation is the one recovery path.
    std::fprintf(stderr, "[crashpoint] injected hang at boundary '%.*s'\n",
                 static_cast<int>(tag.size()), tag.data());
    std::fflush(stderr);
    for (;;) ::pause();
  }
  if (g_delay_armed.load(std::memory_order_relaxed)) {
    const std::uint64_t tick =
        g_delay_ticks.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t after = g_delay_after.load(std::memory_order_relaxed);
    if (after != 0 && tick >= after) {
      const std::uint64_t ms =
          DelayForBoundary(tick, g_delay_mean_ms.load(std::memory_order_relaxed),
                           g_delay_seed.load(std::memory_order_relaxed));
      ::usleep(static_cast<useconds_t>(ms * 1000));
    }
  }
}

}  // namespace ld
