#include "common/crashpoint.hpp"

#include <cstdio>
#include <cstdlib>

namespace ld {
namespace {

// Countdown state.  Single-threaded by design (the analysis loop is
// single-threaded); no atomics needed.
bool g_armed = false;
std::uint64_t g_remaining = 0;
bool g_env_checked = false;

void MaybeInitFromEnv() {
  if (g_env_checked) return;
  g_env_checked = true;
  const char* value = std::getenv(kCrashAfterEnv);
  if (value == nullptr || *value == '\0') return;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || n == 0) return;
  g_armed = true;
  g_remaining = n;
}

}  // namespace

void ArmCrashPoint(std::uint64_t after) {
  g_env_checked = true;  // programmatic arming overrides the env
  g_armed = after != 0;
  g_remaining = after;
}

void DisarmCrashPoint() {
  g_env_checked = true;
  g_armed = false;
  g_remaining = 0;
}

bool CrashPointArmed() {
  MaybeInitFromEnv();
  return g_armed;
}

std::uint64_t CrashPointRemaining() {
  MaybeInitFromEnv();
  return g_armed ? g_remaining : 0;
}

void CrashPoint(std::string_view tag) {
  MaybeInitFromEnv();
  if (!g_armed) return;
  if (--g_remaining > 0) return;
  // Die like a power cut: no destructors, no stream flushing beyond
  // this one diagnostic line.
  std::fprintf(stderr, "[crashpoint] injected crash at boundary '%.*s'\n",
               static_cast<int>(tag.size()), tag.data());
  std::fflush(stderr);
  std::_Exit(kCrashExitCode);
}

}  // namespace ld
