#include "common/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ld {
namespace {

Status RequirePositiveSample(const std::vector<double>& sample,
                             const char* who) {
  if (sample.empty()) {
    return InvalidArgumentError(std::string(who) + ": empty sample");
  }
  for (double x : sample) {
    if (!(x > 0.0)) {
      return InvalidArgumentError(std::string(who) +
                                  ": sample must be strictly positive");
    }
  }
  return Status::Ok();
}

std::string FormatParams(const char* fmt, double a, double b = 0.0) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

}  // namespace

double Distribution::LogLikelihood(const std::vector<double>& sample) const {
  double ll = 0.0;
  for (double x : sample) {
    const double p = Pdf(x);
    ll += std::log(p > 0.0 ? p : 1e-300);
  }
  return ll;
}

double Distribution::Aic(const std::vector<double>& sample) const {
  return 2.0 * parameter_count() - 2.0 * LogLikelihood(sample);
}

// ---------------------------------------------------------------- exponential

ExponentialDist::ExponentialDist(double rate) : rate_(rate) {
  LD_CHECK(rate > 0.0, "exponential rate must be > 0");
}

double ExponentialDist::Pdf(double x) const {
  return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x);
}

double ExponentialDist::Cdf(double x) const {
  return x < 0.0 ? 0.0 : 1.0 - std::exp(-rate_ * x);
}

std::string ExponentialDist::ToString() const {
  return FormatParams("Exponential(rate=%.6g)", rate_);
}

Result<ExponentialDist> ExponentialDist::Fit(const std::vector<double>& sample) {
  if (Status s = RequirePositiveSample(sample, "ExponentialDist::Fit"); !s.ok()) {
    return s;
  }
  double sum = 0.0;
  for (double x : sample) sum += x;
  return ExponentialDist(static_cast<double>(sample.size()) / sum);
}

// -------------------------------------------------------------------- weibull

WeibullDist::WeibullDist(double shape, double scale)
    : shape_(shape), scale_(scale) {
  LD_CHECK(shape > 0.0 && scale > 0.0, "weibull parameters must be > 0");
}

double WeibullDist::Pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = x / scale_;
  return (shape_ / scale_) * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}

double WeibullDist::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double WeibullDist::Mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

std::string WeibullDist::ToString() const {
  return FormatParams("Weibull(shape=%.4g, scale=%.6g)", shape_, scale_);
}

Result<WeibullDist> WeibullDist::Fit(const std::vector<double>& sample) {
  if (Status s = RequirePositiveSample(sample, "WeibullDist::Fit"); !s.ok()) {
    return s;
  }
  // Newton iteration on the MLE shape equation:
  //   g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0
  const double n = static_cast<double>(sample.size());
  double mean_lnx = 0.0;
  for (double x : sample) mean_lnx += std::log(x);
  mean_lnx /= n;

  double k = 1.0;  // exponential start
  for (int iter = 0; iter < 100; ++iter) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    for (double x : sample) {
      const double lx = std::log(x);
      const double xk = std::pow(x, k);
      s0 += xk;
      s1 += xk * lx;
      s2 += xk * lx * lx;
    }
    const double g = s1 / s0 - 1.0 / k - mean_lnx;
    const double gp = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
    if (!(gp > 0.0)) break;
    double k_next = k - g / gp;
    if (k_next <= 0.0) k_next = k / 2.0;
    if (std::abs(k_next - k) < 1e-10 * k) {
      k = k_next;
      break;
    }
    k = k_next;
  }
  if (!(k > 0.0) || !std::isfinite(k)) {
    return InternalError("WeibullDist::Fit: shape iteration diverged");
  }
  double sk = 0.0;
  for (double x : sample) sk += std::pow(x, k);
  const double scale = std::pow(sk / n, 1.0 / k);
  return WeibullDist(k, scale);
}

// ------------------------------------------------------------------ lognormal

LogNormalDist::LogNormalDist(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  LD_CHECK(sigma > 0.0, "lognormal sigma must be > 0");
}

double LogNormalDist::Pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * std::sqrt(2.0 * M_PI));
}

double LogNormalDist::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / (sigma_ * std::sqrt(2.0));
  return 0.5 * (1.0 + std::erf(z));
}

double LogNormalDist::Mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

std::string LogNormalDist::ToString() const {
  return FormatParams("LogNormal(mu=%.4g, sigma=%.4g)", mu_, sigma_);
}

Result<LogNormalDist> LogNormalDist::Fit(const std::vector<double>& sample) {
  if (Status s = RequirePositiveSample(sample, "LogNormalDist::Fit"); !s.ok()) {
    return s;
  }
  const double n = static_cast<double>(sample.size());
  double mu = 0.0;
  for (double x : sample) mu += std::log(x);
  mu /= n;
  double var = 0.0;
  for (double x : sample) {
    const double d = std::log(x) - mu;
    var += d * d;
  }
  var /= n;  // MLE uses 1/n
  if (!(var > 0.0)) {
    return InvalidArgumentError("LogNormalDist::Fit: zero variance sample");
  }
  return LogNormalDist(mu, std::sqrt(var));
}

// -------------------------------------------------------------------- fitting

Result<std::vector<std::unique_ptr<Distribution>>> FitAll(
    const std::vector<double>& sample) {
  if (Status s = RequirePositiveSample(sample, "FitAll"); !s.ok()) return s;

  std::vector<std::unique_ptr<Distribution>> fits;
  if (auto e = ExponentialDist::Fit(sample); e.ok()) {
    fits.push_back(std::make_unique<ExponentialDist>(*e));
  }
  if (auto w = WeibullDist::Fit(sample); w.ok()) {
    fits.push_back(std::make_unique<WeibullDist>(*w));
  }
  if (auto l = LogNormalDist::Fit(sample); l.ok()) {
    fits.push_back(std::make_unique<LogNormalDist>(*l));
  }
  if (fits.empty()) return InternalError("FitAll: no family converged");
  std::sort(fits.begin(), fits.end(),
            [&sample](const auto& a, const auto& b) {
              return a->Aic(sample) < b->Aic(sample);
            });
  return fits;
}

double KsStatistic(std::vector<double> sample, const Distribution& dist) {
  LD_CHECK(!sample.empty(), "KsStatistic: empty sample");
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double f = dist.Cdf(sample[i]);
    const double hi = static_cast<double>(i + 1) / n - f;
    const double lo = f - static_cast<double>(i) / n;
    d = std::max(d, std::max(hi, lo));
  }
  return d;
}

}  // namespace ld
