// Small string utilities shared by log parsers and emitters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace ld {

/// Splits on a single character; keeps empty fields ("a,,b" -> 3 fields).
std::vector<std::string_view> Split(std::string_view text, char sep);

/// Splits on any run of whitespace; drops empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view text);

/// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool Contains(std::string_view haystack, std::string_view needle);

/// Strict integer/double parsing: whole string must be consumed.
Result<std::int64_t> ParseInt(std::string_view text);
Result<std::uint64_t> ParseUint(std::string_view text);
Result<double> ParseDouble(std::string_view text);

/// "key=value key2=value2" field extraction (Torque accounting style).
/// Returns the value for `key` or NotFound.  Values run to the next
/// whitespace; no quoting (matches the real format).
Result<std::string> FindKeyValue(std::string_view record, std::string_view key);

/// Allocation-free FindKeyValue for the parser hot paths: the returned
/// view aliases `record`; nullopt when the key is absent (no Status is
/// built, so a miss costs nothing).
std::optional<std::string_view> FindKeyValueOpt(std::string_view record,
                                                std::string_view key);

/// Joins items with a separator.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

/// Renders a double with fixed precision, trimming trailing zeros is NOT
/// performed (tables want aligned columns).
std::string FormatDouble(double v, int precision);

/// Thousands-separated integer rendering for report tables: 1234567 ->
/// "1,234,567".
std::string WithThousands(std::uint64_t v);

}  // namespace ld
