// Small string utilities shared by log parsers and emitters.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace ld {

namespace simd {
struct Kernels;
}  // namespace simd

/// Splits on a single character; keeps empty fields ("a,,b" -> 3 fields).
std::vector<std::string_view> Split(std::string_view text, char sep);

/// Splits on any run of whitespace; drops empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view text);

/// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool Contains(std::string_view haystack, std::string_view needle);

/// Strict integer/double parsing: whole string must be consumed.
Result<std::int64_t> ParseInt(std::string_view text);
Result<std::uint64_t> ParseUint(std::string_view text);
Result<double> ParseDouble(std::string_view text);

/// "key=value key2=value2" field extraction (Torque accounting style).
/// Returns the value for `key` or NotFound.  Values run to the next
/// whitespace; no quoting (matches the real format).
Result<std::string> FindKeyValue(std::string_view record, std::string_view key);

/// Allocation-free FindKeyValue for the parser hot paths: the returned
/// view aliases `record`; nullopt when the key is absent (no Status is
/// built, so a miss costs nothing).
std::optional<std::string_view> FindKeyValueOpt(std::string_view record,
                                                std::string_view key);

/// Tokenize-once view over a "key=value key2=value2" record for parsers
/// that look up many keys in the same record: one streaming
/// classification pass (simd::ClassifyKeyValue) marks every '=' and
/// whitespace byte in two per-byte bitmaps, and a bitmap walk then
/// splits the record into at most kMaxEntries key=value entries up
/// front — a handful of word ops per token instead of a kernel call per
/// field, which is what lets this beat repeated per-key record scans.
/// Each Get is a linear scan over those small views.  Records larger
/// than the stack bitmaps (4 KiB) take a per-token delimiter-scan
/// fallback; records with more entries than the fixed table fall back
/// to FindKeyValueOpt per lookup.  Behavior is identical to repeated
/// FindKeyValueOpt calls for every record: first matching occurrence
/// wins, values run to the next whitespace, bare tokens without '=' are
/// skipped.  Keys must not contain '=' or whitespace (all parser keys
/// satisfy this).  The views alias the record; the record must outlive
/// the KeyValueView.
class KeyValueView {
 public:
  explicit KeyValueView(std::string_view record);

  /// Same splitter pinned to a specific kernel table, so tests and
  /// benchmarks can compare backends inside one binary (production
  /// code uses the one-argument form, which takes runtime dispatch).
  KeyValueView(std::string_view record, const simd::Kernels& kernels);

  /// Value for `key`, or nullopt when absent.  Same contract as
  /// FindKeyValueOpt(record, key).
  std::optional<std::string_view> Get(std::string_view key) const;

  /// Number of key=value entries found (0 when the overflow fallback is
  /// active).  Exposed for tests.
  std::size_t entry_count() const { return overflow_ ? 0 : count_; }
  bool overflowed() const { return overflow_; }

  static constexpr std::size_t kMaxEntries = 32;

 private:
  struct Entry {
    std::string_view key;
    std::string_view value;
  };

  void BuildByTokenScan(const simd::Kernels& kernels);

  std::string_view record_;
  std::array<Entry, kMaxEntries> entries_;
  std::size_t count_ = 0;
  bool overflow_ = false;
};

/// Joins items with a separator.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

/// Renders a double with fixed precision, trimming trailing zeros is NOT
/// performed (tables want aligned columns).
std::string FormatDouble(double v, int precision);

/// Thousands-separated integer rendering for report tables: 1234567 ->
/// "1,234,567".
std::string WithThousands(std::uint64_t v);

}  // namespace ld
