// Deterministic parallel-execution primitives for the ingestion engine.
//
// The design constraint is bit-identical output: callers split work into
// chunks whose processing is a pure function of the chunk, run the chunks
// on a fixed-size ThreadPool, and reduce the results in original chunk
// order.  Thread count and scheduling can then never change what is
// computed — only how fast (see DESIGN.md "Parallel ingestion").
//
// Nested use is not supported: a task running on the pool must not wait
// on another TaskGroup of the same pool (a single-thread pool would
// deadlock).  All ParallelFor/ParallelMap calls happen from the thread
// that owns the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ld {

/// Thread count used when a config asks for "auto" (0): the
/// LOGDIVER_THREADS environment variable if set to a positive integer,
/// else std::thread::hardware_concurrency(), else 1.
int DefaultThreadCount();

/// Maps a configured thread count to an effective one: values <= 0 mean
/// auto (DefaultThreadCount), anything else is taken as-is.
int ResolveThreadCount(int configured);

/// A fixed-size pool of worker threads draining one FIFO task queue.
/// Construction spawns the workers; destruction drains nothing — it
/// stops accepting work, finishes tasks already started, and joins.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task.  Must not be called after destruction began.
  void Submit(std::function<void()> task);

 private:
  /// A queued task plus its enqueue time (0 when observability is
  /// inactive, so the drain side knows not to record a wait).
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// A batch of tasks whose completion can be awaited as a unit.  With a
/// null pool, Run() executes the task inline — the sequential path goes
/// through exactly the same code as the parallel one.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> fn);

  /// Blocks until every Run() task finished.  The first exception thrown
  /// by a task (if any) is rethrown here, on the waiting thread.
  void Wait();

 private:
  void Finish(std::exception_ptr error);

  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
};

/// Runs fn(0..n-1); on a pool of size > 1 the indices run concurrently,
/// otherwise inline in index order.
template <typename Fn>
void ParallelFor(ThreadPool* pool, std::size_t n, Fn&& fn) {
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  TaskGroup group(pool);
  for (std::size_t i = 0; i < n; ++i) {
    group.Run([&fn, i] { fn(i); });
  }
  group.Wait();
}

/// Ordered map: out[i] = fn(i), with fn calls potentially concurrent.
/// The result vector is always in index order regardless of scheduling.
template <typename Fn>
auto ParallelMap(ThreadPool* pool, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(n);
  ParallelFor(pool, n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// A half-open index range [begin, end).
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Splits [0, n) into consecutive ranges of at most `chunk` items.
std::vector<IndexRange> ChunkRanges(std::size_t n, std::size_t chunk);

}  // namespace ld
