#include "common/obs/json.hpp"

#include <cctype>
#include <cstdio>

namespace ld::obs {

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_in_container_.empty()) {
    if (!first_in_container_.back()) out_ += ',';
    first_in_container_.back() = false;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_in_container_.push_back(true);
}

void JsonWriter::EndObject() {
  LD_CHECK(!first_in_container_.empty() && !pending_key_,
           "EndObject with no open object or a dangling key");
  first_in_container_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_in_container_.push_back(true);
}

void JsonWriter::EndArray() {
  LD_CHECK(!first_in_container_.empty() && !pending_key_,
           "EndArray with no open array or a dangling key");
  first_in_container_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  LD_CHECK(!pending_key_, "two keys in a row");
  if (!first_in_container_.empty()) {
    if (!first_in_container_.back()) out_ += ',';
    first_in_container_.back() = false;
  }
  out_ += '"';
  out_ += EscapeJson(key);
  out_ += "\": ";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += EscapeJson(value);
  out_ += '"';
}

void JsonWriter::Uint(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // JSON has no inf/nan; clamp to null-adjacent sentinels is worse than
  // being explicit — emit 0 and let the (never-expected) case be visible
  // in review rather than break every downstream parser.
  std::string_view printed(buf);
  if (printed == "inf" || printed == "-inf" || printed == "nan" ||
      printed == "-nan") {
    out_ += '0';
    return;
  }
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

namespace {

/// Recursive-descent structural parser; values only, no DOM.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status Run() {
    SkipWs();
    LD_TRY(Value(0));
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing bytes after JSON value");
    return Status::Ok();
  }

 private:
  Status Fail(const std::string& why) const {
    return ParseError("json: " + why + " at byte " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("bad literal");
    }
    pos_ += word.size();
    return Status::Ok();
  }

  Status StringValue() {
    if (!Eat('"')) return Fail("expected '\"'");
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status NumberValue() {
    const std::size_t start = pos_;
    Eat('-');
    if (!Eat('0')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (Eat('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start) return Fail("empty number");
    return Status::Ok();
  }

  Status Value(int depth) {
    if (depth > 256) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      SkipWs();
      if (Eat('}')) return Status::Ok();
      for (;;) {
        SkipWs();
        LD_TRY(StringValue());
        SkipWs();
        if (!Eat(':')) return Fail("expected ':'");
        SkipWs();
        LD_TRY(Value(depth + 1));
        SkipWs();
        if (Eat('}')) return Status::Ok();
        if (!Eat(',')) return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      SkipWs();
      if (Eat(']')) return Status::Ok();
      for (;;) {
        SkipWs();
        LD_TRY(Value(depth + 1));
        SkipWs();
        if (Eat(']')) return Status::Ok();
        if (!Eat(',')) return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') return StringValue();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return NumberValue();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(std::string_view text) { return Parser(text).Run(); }

}  // namespace ld::obs
