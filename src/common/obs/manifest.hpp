// Run manifests: one JSON document per CLI/bench invocation recording
// everything needed to reproduce (and audit) its numbers.
//
// A manifest answers, machine-readably: which binary (git SHA, build
// type, compiler, flags, sanitizers), which inputs (path, size, FNV-1a
// 64 content fingerprint), which knobs (seed, thread count, every
// relevant env var that was set), what it cost (wall seconds, max RSS)
// and what the pipeline observed about itself (the full metric dump).
// Every `fig*`/`table*` bench emits one automatically (bench_common),
// which is what the provenance column in EXPERIMENTS.md points at; the
// CLI emits one with `--manifest-out`.  Schema: docs/OBSERVABILITY.md,
// `kManifestSchemaVersion` guards it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace ld::obs {

inline constexpr std::uint32_t kManifestSchemaVersion = 1;

/// FNV-1a 64-bit over a file's bytes, streamed (files can be GBs).
Result<std::uint64_t> Fnv1a64File(const std::string& path);
/// FNV-1a 64-bit over a buffer (the seed/offset-basis of the file form).
std::uint64_t Fnv1a64(const void* data, std::size_t size);

/// Collects provenance incrementally and renders it once.  Construction
/// captures the wall-clock epoch; ToJson()/Write() capture wall time,
/// max RSS and the metric snapshot at that moment, so build the
/// manifest first and write it last.
class ManifestBuilder {
 public:
  explicit ManifestBuilder(std::string tool);

  void SetArgv(int argc, const char* const* argv);
  /// One run-config key/value ("seed" -> "42").  Keys render in
  /// insertion order; repeated keys are kept (last one wins for readers
  /// that flatten).
  void Set(std::string key, std::string value);
  void SetUint(std::string key, std::uint64_t value);
  void SetInt(std::string key, std::int64_t value);

  /// Fingerprints one input file (size + FNV-1a 64).  A missing or
  /// unreadable file is recorded with an "error" field instead of
  /// failing the run — the manifest must still be written.
  void AddInput(const std::string& path);

  /// Captures `name` into the env section if it is set in the
  /// environment; unset variables are recorded as null so the reader
  /// can tell "unset" from "not recorded".
  void RecordEnv(const char* name);

  void SetExitCode(int code);

  /// Renders the manifest now: build info, inputs, config, env, the
  /// current metric registry snapshot, wall seconds since construction
  /// and ru_maxrss.
  std::string ToJson() const;
  Status Write(const std::string& path) const;

 private:
  struct InputRecord {
    std::string path;
    std::uint64_t bytes = 0;
    std::uint64_t fnv1a64 = 0;
    std::string error;  // empty when fingerprinted OK
  };

  std::string tool_;
  std::vector<std::string> argv_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<InputRecord> inputs_;
  /// name -> value; nullopt records "was unset".
  std::vector<std::pair<std::string, std::optional<std::string>>> env_;
  std::uint64_t epoch_ns_ = 0;
  std::int64_t created_unix_ = 0;
  int exit_code_ = 0;
  bool have_exit_code_ = false;
};

}  // namespace ld::obs
