// Minimal JSON emission and validation for the observability layer.
//
// The trace and manifest files are consumed by external tools
// (Perfetto, jq, dashboards), so they must be *strictly* valid JSON —
// hand-rolled string concatenation rots the first time a path contains
// a quote.  JsonWriter is a streaming writer with automatic comma and
// escape handling; ValidateJson is a small structural parser the tests
// (and the CI smoke) use to reject malformed output without dragging a
// JSON library into the build.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace ld::obs {

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string EscapeJson(std::string_view s);

/// Streaming JSON writer.  Keys/values must alternate correctly inside
/// objects (LD_CHECK guards the obvious misuse); output is compact with
/// no insignificant whitespace except a space after ':' for greppability.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(std::string_view key);
  void String(std::string_view value);
  void Uint(std::uint64_t value);
  void Int(std::int64_t value);
  /// Doubles print with enough digits to round-trip (%.17g), trimmed.
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Convenience: Key + value in one call.
  void KV(std::string_view key, std::string_view value) {
    Key(key);
    String(value);
  }
  void KV(std::string_view key, std::uint64_t value) {
    Key(key);
    Uint(value);
  }
  void KV(std::string_view key, std::int64_t value) {
    Key(key);
    Int(value);
  }
  void KV(std::string_view key, bool value) {
    Key(key);
    Bool(value);
  }
  void KVDouble(std::string_view key, double value) {
    Key(key);
    Double(value);
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  /// One frame per open container: true while it has no elements yet.
  std::vector<bool> first_in_container_;
  bool pending_key_ = false;
};

/// Structural validation: `text` must be exactly one JSON value (per
/// RFC 8259) with nothing but whitespace around it.  Returns OK or a
/// ParseError naming the byte offset of the first violation.
Status ValidateJson(std::string_view text);

}  // namespace ld::obs
