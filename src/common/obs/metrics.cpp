#include "common/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

namespace ld::obs {

std::size_t Counter::ShardIndex() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Cell& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
}

void Gauge::Set(std::int64_t v) {
  value_.store(v, std::memory_order_relaxed);
  std::int64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void Gauge::Reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

int Histogram::BucketFor(std::uint64_t v) {
  if (v == 0) return 0;
  return std::min(static_cast<int>(std::bit_width(v)), kBuckets - 1);
}

std::uint64_t Histogram::BucketUpperBound(int b) {
  if (b <= 0) return 1;
  if (b >= kBuckets - 1) return ~std::uint64_t{0};
  return std::uint64_t{1} << b;
}

void Histogram::Record(std::uint64_t v) {
  buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

Registry& Registry::Get() {
  // Leaked on purpose: metrics can be recorded from atexit hooks and
  // detached threads; destruction order would be a liability.
  static Registry* registry = new Registry();
  return *registry;
}

namespace {

template <typename Metric, typename List>
Metric& FindOrCreate(List& list, std::string_view name, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  for (auto& [existing, metric] : list) {
    if (existing == name) return *metric;
  }
  list.emplace_back(std::string(name), std::make_unique<Metric>());
  return *list.back().second;
}

}  // namespace

Counter& Registry::GetCounter(std::string_view name) {
  return FindOrCreate<Counter>(counters_, name, mu_);
}

Gauge& Registry::GetGauge(std::string_view name) {
  return FindOrCreate<Gauge>(gauges_, name, mu_);
}

Histogram& Registry::GetHistogram(std::string_view name) {
  return FindOrCreate<Histogram>(histograms_, name, mu_);
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, counter] : counters_) {
      MetricSnapshot snap;
      snap.name = name;
      snap.type = MetricType::kCounter;
      snap.count = counter->Value();
      out.push_back(std::move(snap));
    }
    for (const auto& [name, gauge] : gauges_) {
      MetricSnapshot snap;
      snap.name = name;
      snap.type = MetricType::kGauge;
      snap.gauge_value = gauge->Value();
      snap.gauge_max = gauge->Max();
      out.push_back(std::move(snap));
    }
    for (const auto& [name, hist] : histograms_) {
      MetricSnapshot snap;
      snap.name = name;
      snap.type = MetricType::kHistogram;
      snap.count = hist->Count();
      snap.sum = hist->Sum();
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        const std::uint64_t n = hist->BucketCount(b);
        if (n != 0) snap.buckets.emplace_back(Histogram::BucketUpperBound(b), n);
      }
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

bool RegistryEnabled() { return Registry::Get().enabled(); }

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t NowMicros() { return NowNanos() / 1000; }

}  // namespace ld::obs
