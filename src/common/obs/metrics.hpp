// Self-observability: the metrics registry (counters, gauges, log2
// histograms).
//
// The pipeline measures other systems' resilience; this registry is how
// it measures itself (monitoring as a structural pattern — Hukerikar &
// Engelmann, ORNL/TM-2016/687).  Design constraints, in order:
//
//   1. Hot-path cost must be negligible.  Counters are sharded: each
//      thread increments its own cache-line-padded cell (selected by a
//      thread-local shard index), and the shards are only summed when a
//      snapshot is taken — no locks, no shared cache line ping-pong on
//      the ingestion path.  Instrumentation sites record per *chunk*
//      (thousands of lines), never per line.
//   2. Everything can be compiled out.  Call sites use the LD_OBS_*
//      macros from obs.hpp; building with -DLOGDIVER_OBS=OFF turns every
//      macro into `((void)0)` and leaves zero trace in the binary.
//   3. Stable names.  Every metric name lives in names.hpp and is
//      documented in docs/OBSERVABILITY.md; tools/check_metric_docs.py
//      fails CI when the two drift.
//
// Metrics are created on first use and live for the process: references
// handed out by the registry are never invalidated (Reset() zeroes
// values in place, it does not deallocate), so call sites may cache
// them in function-local statics.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ld::obs {

/// Monotonically increasing count, sharded across threads.  Add() is a
/// single relaxed fetch_add on a cell no other running thread touches
/// (threads are striped across kShards cells); Value() sums the shards.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void Add(std::uint64_t n) {
    cells_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  /// Shard of the calling thread: assigned round-robin on first use.
  static std::size_t ShardIndex();

  Cell cells_[kShards];
};

/// Last-written value plus a high-water mark.  Set() stores and folds
/// the max; cheap enough for per-task queue-depth tracking.
class Gauge {
 public:
  void Set(std::int64_t v);
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t Max() const { return max_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed log2-bucketed histogram of non-negative values (typically
/// microseconds or bytes).  Bucket 0 holds exact zeros; bucket i
/// (1 <= i < kBuckets) holds values in [2^(i-1), 2^i); the last bucket
/// also absorbs everything at or above 2^(kBuckets-2).  Count and sum
/// are tracked so snapshots can report a mean.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(std::uint64_t v);

  /// Bucket index a value lands in (0 for 0, else bit_width(v), capped).
  static int BucketFor(std::uint64_t v);
  /// Exclusive upper bound of bucket `b` (lower bound of bucket b + 1);
  /// bucket 0 covers only the value 0, so its upper bound is 1.
  static std::uint64_t BucketUpperBound(int b);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t BucketCount(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

/// Point-in-time value of one metric, as produced by Registry::Snapshot.
struct MetricSnapshot {
  std::string name;
  MetricType type = MetricType::kCounter;
  /// Counter value, or histogram observation count.
  std::uint64_t count = 0;
  /// Histogram sum of recorded values (0 for other types).
  std::uint64_t sum = 0;
  std::int64_t gauge_value = 0;
  std::int64_t gauge_max = 0;
  /// Non-empty buckets only: (exclusive upper bound, count).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/// Process-wide metric registry.  Lookup takes a mutex (call sites cache
/// the returned reference in a static); recording never does.
class Registry {
 public:
  static Registry& Get();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Runtime kill switch checked by the LD_OBS_* macros before any
  /// recording (and before any clock read at instrumented sites).
  /// Compiled-in builds default to enabled; BM_AnalyzeObsOverhead
  /// benchmarks the two states against each other.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Aggregated values of every registered metric, sorted by name.
  /// This is the "flush": shard cells are summed here, not on Add().
  std::vector<MetricSnapshot> Snapshot() const;

  /// Zeroes every metric in place.  References stay valid; intended for
  /// tests and for benches that want a per-run dump.
  void Reset();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  // node-based maps: references must survive later insertions.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
  std::atomic<bool> enabled_{true};
};

/// Free-function form of Registry::Get().enabled(), used by the
/// LD_OBS_ACTIVE() macro so call sites need no Registry spelling.
bool RegistryEnabled();

/// Monotonic clock in microseconds / nanoseconds (steady_clock), the
/// time base shared by histograms and the tracer.
std::uint64_t NowMicros();
std::uint64_t NowNanos();

}  // namespace ld::obs
