// The metric name catalog — the single place a metric name may be
// spelled in code.
//
// Names are a stable interface: dashboards, the run-manifest schema and
// docs/OBSERVABILITY.md all key off them.  Every name registered here
// MUST have a row in the docs/OBSERVABILITY.md catalog and vice versa;
// tools/check_metric_docs.py (wired into ctest and the CI docs job)
// fails the build when the two drift.  Scheme: `ld.<area>.<what>`,
// counters end in `_total`, histograms in their unit (`_micros`,
// `_bytes`), gauges say what they gauge.
#pragma once

namespace ld::obs::names {

// --- batch ingestion (logdiver.cpp, block_reader.cpp) ----------------
inline constexpr const char* kIngestLinesTotal = "ld.ingest.lines_total";
inline constexpr const char* kIngestRecordsTotal = "ld.ingest.records_total";
inline constexpr const char* kIngestMalformedTotal =
    "ld.ingest.malformed_total";
inline constexpr const char* kIngestChunksTotal = "ld.ingest.chunks_total";
inline constexpr const char* kIngestChunkMicros = "ld.ingest.chunk_micros";
inline constexpr const char* kIngestBytesMappedTotal =
    "ld.ingest.bytes_mapped_total";
inline constexpr const char* kIngestMmapFallbackTotal =
    "ld.ingest.mmap_fallback_total";
inline constexpr const char* kIngestBlocksTotal = "ld.ingest.blocks_total";
inline constexpr const char* kIngestBudgetExhaustedTotal =
    "ld.ingest.budget_exhausted_total";

// --- SIMD scanning kernels (block_reader.cpp; see common/simd.hpp) ---
inline constexpr const char* kSimdBytesScannedTotal =
    "ld.simd.bytes_scanned_total";
inline constexpr const char* kSimdDispatch = "ld.simd.dispatch";

// --- parsed-bundle cache (cache/bundle_cache.cpp) --------------------
inline constexpr const char* kCacheHitsTotal = "ld.cache.hits_total";
inline constexpr const char* kCacheRecordHitsTotal =
    "ld.cache.record_hits_total";
inline constexpr const char* kCacheMissesTotal = "ld.cache.misses_total";
inline constexpr const char* kCacheRejectedTotal = "ld.cache.rejected_total";
inline constexpr const char* kCacheWritesTotal = "ld.cache.writes_total";
inline constexpr const char* kCacheWriteBytesTotal =
    "ld.cache.write_bytes_total";
inline constexpr const char* kCacheEvictedTotal = "ld.cache.evicted_total";
inline constexpr const char* kCacheLoadMicros = "ld.cache.load_micros";

// --- quarantine (quarantine.cpp) -------------------------------------
inline constexpr const char* kQuarantineAddedTotal =
    "ld.quarantine.added_total";
inline constexpr const char* kQuarantineOverflowTotal =
    "ld.quarantine.overflow_total";

// --- thread pool (parallel.cpp) --------------------------------------
inline constexpr const char* kPoolTasksTotal = "ld.pool.tasks_total";
inline constexpr const char* kPoolWaitMicros = "ld.pool.wait_micros";
inline constexpr const char* kPoolRunMicros = "ld.pool.run_micros";
inline constexpr const char* kPoolQueueDepth = "ld.pool.queue_depth";

// --- batch analysis stages (logdiver.cpp) ----------------------------
inline constexpr const char* kAnalyzeTotalMicros = "ld.analyze.total_micros";
inline constexpr const char* kAnalyzeRunsTotal = "ld.analyze.runs_total";
inline constexpr const char* kAnalyzeTuplesTotal = "ld.analyze.tuples_total";

// --- correlation (correlate.cpp) -------------------------------------
inline constexpr const char* kCorrelateRunsTotal = "ld.correlate.runs_total";
inline constexpr const char* kCorrelateChunksTotal =
    "ld.correlate.chunks_total";
inline constexpr const char* kCorrelateIndexMicros =
    "ld.correlate.index_micros";
inline constexpr const char* kCorrelateTotalMicros =
    "ld.correlate.total_micros";

// --- bootstrap resampling (bootstrap.cpp) ----------------------------
inline constexpr const char* kBootstrapReplicasTotal =
    "ld.bootstrap.replicas_total";
inline constexpr const char* kBootstrapTotalMicros =
    "ld.bootstrap.total_micros";

// --- snapshots (snapshot.cpp) ----------------------------------------
inline constexpr const char* kSnapshotWritesTotal = "ld.snapshot.writes_total";
inline constexpr const char* kSnapshotWriteBytesTotal =
    "ld.snapshot.write_bytes_total";
inline constexpr const char* kSnapshotWriteMicros =
    "ld.snapshot.write_micros";
inline constexpr const char* kSnapshotRestoresTotal =
    "ld.snapshot.restores_total";
inline constexpr const char* kSnapshotRejectedTotal =
    "ld.snapshot.rejected_total";

// --- resume / streaming (resume.cpp, streaming.cpp) ------------------
inline constexpr const char* kResumeLinesStreamedTotal =
    "ld.resume.lines_streamed_total";
inline constexpr const char* kResumeLinesSkippedTotal =
    "ld.resume.lines_skipped_total";
inline constexpr const char* kStreamAdvancesTotal =
    "ld.stream.advances_total";
inline constexpr const char* kStreamRunsFinalizedTotal =
    "ld.stream.runs_finalized_total";
inline constexpr const char* kStreamEvictedRunsTotal =
    "ld.stream.evicted_runs_total";
inline constexpr const char* kStreamEvictedTuplesTotal =
    "ld.stream.evicted_tuples_total";

// --- fleet scale-out (fleet/supervisor.cpp) --------------------------
inline constexpr const char* kFleetWorkersSpawnedTotal =
    "ld.fleet.workers_spawned_total";
inline constexpr const char* kFleetWorkerCrashesTotal =
    "ld.fleet.worker_crashes_total";
inline constexpr const char* kFleetWorkerHangsKilledTotal =
    "ld.fleet.worker_hangs_killed_total";
inline constexpr const char* kFleetPartialsRejectedTotal =
    "ld.fleet.partials_rejected_total";
inline constexpr const char* kFleetRetriesTotal = "ld.fleet.retries_total";
inline constexpr const char* kFleetShardsDroppedTotal =
    "ld.fleet.shards_dropped_total";
inline constexpr const char* kFleetMergeMicros = "ld.fleet.merge_micros";

// --- fault injection (faults/injector.cpp, faults/storms.cpp) --------
inline constexpr const char* kFaultsEventsInjectedTotal =
    "ld.faults.events_injected_total";
inline constexpr const char* kFaultsEventsUndetectedTotal =
    "ld.faults.events_undetected_total";
inline constexpr const char* kFaultsKillsTotal = "ld.faults.kills_total";
inline constexpr const char* kFaultsStormEventsTotal =
    "ld.faults.storm_events_total";
inline constexpr const char* kFaultsMaintenanceKillsTotal =
    "ld.faults.maintenance_kills_total";
inline constexpr const char* kFaultsGapFlippedTotal =
    "ld.faults.gap_flipped_total";

// --- scenario catalog (simlog/catalog.cpp) ---------------------------
inline constexpr const char* kScenarioRunsTotal = "ld.scenario.runs_total";
inline constexpr const char* kScenarioAppsTotal = "ld.scenario.apps_total";
inline constexpr const char* kScenarioValidationFailuresTotal =
    "ld.scenario.validation_failures_total";
inline constexpr const char* kScenarioRunMicros = "ld.scenario.run_micros";

// --- multi-tenant service (service/tenant.cpp, service/daemon.cpp) ---
inline constexpr const char* kSvcIngestAcceptedTotal =
    "ld.svc.ingest_accepted_total";
inline constexpr const char* kSvcIngestShedTotal = "ld.svc.ingest_shed_total";
inline constexpr const char* kSvcIngestBackpressuredTotal =
    "ld.svc.ingest_backpressured_total";
inline constexpr const char* kSvcQueriesTotal = "ld.svc.queries_total";
inline constexpr const char* kSvcQueryMicros = "ld.svc.query_micros";
inline constexpr const char* kSvcQueueDepth = "ld.svc.queue_depth";
inline constexpr const char* kSvcSnapshotsTotal = "ld.svc.snapshots_total";
inline constexpr const char* kSvcTenantsAdmittedTotal =
    "ld.svc.tenants_admitted_total";
inline constexpr const char* kSvcTenantsRecoveredTotal =
    "ld.svc.tenants_recovered_total";
inline constexpr const char* kSvcWatchdogKillsTotal =
    "ld.svc.watchdog_kills_total";

}  // namespace ld::obs::names
