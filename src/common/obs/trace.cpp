#include "common/obs/trace.hpp"

#include <algorithm>
#include <fstream>

#include "common/obs/json.hpp"
#include "common/obs/metrics.hpp"

namespace ld::obs {

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // leaked: see Registry::Get
  return *tracer;
}

int Tracer::ThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Tracer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  epoch_ns_.store(NowNanos(), std::memory_order_relaxed);
  active_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { active_.store(false, std::memory_order_relaxed); }

void Tracer::Emit(std::string name, std::uint64_t start_ns,
                  std::uint64_t end_ns) {
  const std::uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  TraceEvent event;
  event.name = std::move(name);
  event.ts_us =
      static_cast<double>(start_ns - std::min(start_ns, epoch)) / 1000.0;
  event.dur_us =
      static_cast<double>(end_ns - std::min(end_ns, start_ns)) / 1000.0;
  event.tid = ThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::ToJson() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const TraceEvent& event : events) {
    w.BeginObject();
    w.KV("name", std::string_view(event.name));
    w.KV("cat", std::string_view("logdiver"));
    w.KV("ph", std::string_view("X"));
    w.KVDouble("ts", event.ts_us);
    w.KVDouble("dur", event.dur_us);
    w.KV("pid", std::uint64_t{1});
    w.KV("tid", static_cast<std::uint64_t>(event.tid));
    w.EndObject();
  }
  w.EndArray();
  w.KV("displayTimeUnit", std::string_view("ms"));
  w.EndObject();
  return w.Take();
}

Status Tracer::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return InternalError("trace: cannot open " + path);
  out << ToJson() << '\n';
  out.flush();
  if (!out) return InternalError("trace: short write to " + path);
  return Status::Ok();
}

std::uint64_t Span::NowNanosForSpan() { return NowNanos(); }

Span::~Span() {
  if (!armed_) return;
  if (!Tracer::Get().active()) return;  // disarmed mid-span: drop it
  const std::uint64_t end_ns = NowNanosForSpan();
  Tracer::Get().Emit(
      dynamic_name_.empty() ? std::string(name_) : std::move(dynamic_name_),
      start_ns_, end_ns);
}

}  // namespace ld::obs
