// Self-observability: span tracing in the Chrome `trace_event` format.
//
// When tracing is armed (Tracer::Start, typically via the CLI's
// `--trace-out`), LD_OBS_SPAN scopes record complete events ("ph":"X")
// with a start timestamp, a duration and the recording thread's id.
// The resulting JSON loads directly into chrome://tracing or Perfetto
// (ui.perfetto.dev), which renders one swimlane per thread — the
// fastest way to *see* why a thread-scaling curve flattens (idle lanes,
// one giant serial reduction, a straggler chunk).
//
// Spans are chunk/stage-grained, never per line; an un-armed tracer
// costs one relaxed load per span site.  Event recording takes a mutex:
// at chunk granularity (thousands of events per gigabyte of logs) the
// contention is unmeasurable, and it keeps writing/draining trivially
// correct.  Walkthrough and format details: docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace ld::obs {

/// One completed span.  Timestamps are microseconds since Start().
struct TraceEvent {
  std::string name;
  double ts_us = 0;
  double dur_us = 0;
  int tid = 0;
};

class Tracer {
 public:
  static Tracer& Get();

  /// Arms the tracer: clears any previous events and re-bases the
  /// timestamp epoch.  Spans opened before Start() are not recorded.
  void Start();
  /// Disarms; recorded events stay available to ToJson/WriteJson.
  void Stop();
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Records a completed span; start/end are NowNanos() values.  Called
  /// by Span's destructor — use LD_OBS_SPAN, not this, at call sites.
  void Emit(std::string name, std::uint64_t start_ns, std::uint64_t end_ns);

  std::size_t event_count() const;

  /// The full trace as a chrome://tracing / Perfetto-loadable JSON
  /// object ({"traceEvents": [...], ...}), events sorted by timestamp.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  /// Small dense id of the calling thread (used as the trace "tid").
  static int ThreadId();

 private:
  Tracer() = default;

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> epoch_ns_{0};
};

/// RAII span: captures the clock on construction when the tracer is
/// armed, emits a complete event on destruction.  Instantiate through
/// LD_OBS_SPAN / LD_OBS_SPAN_DYN (obs.hpp) so disabled builds compile
/// the whole thing away.
class Span {
 public:
  explicit Span(const char* name) : name_(name) {
    if (Tracer::Get().active()) {
      start_ns_ = NowNanosForSpan();
      armed_ = true;
    }
  }
  /// Dynamic-name overload (e.g. per-file spans).  The string is only
  /// materialized when the tracer is armed.
  explicit Span(const std::string& name) : Span(name.c_str()) {
    if (armed_) dynamic_name_ = name;
  }
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  static std::uint64_t NowNanosForSpan();

  const char* name_;
  std::string dynamic_name_;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

}  // namespace ld::obs
