// Self-observability entry point: the LD_OBS_* macros every
// instrumented call site uses.
//
// Two switches control cost:
//
//   Compile time — building with `-DLOGDIVER_OBS=OFF` defines
//   LOGDIVER_OBS_DISABLED on every target, and all macros below expand
//   to `((void)0)`: no registry lookups, no clock reads, no branches,
//   no strings in the binary.  tests/common/obs_off_test.cpp pins this.
//
//   Run time — with observability compiled in, every macro first checks
//   LD_OBS_ACTIVE() (one relaxed atomic load).  Registry::SetEnabled
//   (false) turns recording — including the clock reads at timed sites
//   — into that single load; BM_AnalyzeObsOverhead measures the
//   enabled-vs-disabled delta and the <2% budget.
//
// Metric names must come from names.hpp (the documented catalog), never
// be spelled inline.  Instrumentation granularity is per chunk / stage
// / file — never per log line; that convention, not the macro
// machinery, is what keeps the overhead budget honest.
#pragma once

#include <cstdint>

#include "common/obs/names.hpp"

#define LD_OBS_CONCAT_IMPL_(a, b) a##b
#define LD_OBS_CONCAT_(a, b) LD_OBS_CONCAT_IMPL_(a, b)

#if defined(LOGDIVER_OBS_DISABLED)

#define LD_OBS_ACTIVE() false
#define LD_OBS_NOW_NS() (std::uint64_t{0})
#define LD_OBS_COUNTER_ADD(name, delta) ((void)0)
#define LD_OBS_GAUGE_SET(name, value) ((void)0)
#define LD_OBS_HIST_RECORD(name, value) ((void)0)
#define LD_OBS_SPAN(name) ((void)0)
#define LD_OBS_SPAN_DYN(name_expr) ((void)0)

#else  // observability compiled in

#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"

#define LD_OBS_ACTIVE() (::ld::obs::RegistryEnabled())

/// Monotonic nanoseconds for hand-timed sections, or 0 when recording
/// is disabled — 0 doubles as the "don't record this sample" sentinel,
/// so a disabled run never pays the clock read.
#define LD_OBS_NOW_NS() \
  (LD_OBS_ACTIVE() ? ::ld::obs::NowNanos() : std::uint64_t{0})

/// Adds `delta` to the named counter.  The registry lookup happens once
/// per call site (static reference); the hot path is one sharded
/// relaxed fetch_add.
#define LD_OBS_COUNTER_ADD(name, delta)                          \
  do {                                                           \
    if (LD_OBS_ACTIVE()) {                                       \
      static ::ld::obs::Counter& ld_obs_metric_ =                \
          ::ld::obs::Registry::Get().GetCounter(name);           \
      ld_obs_metric_.Add(delta);                                 \
    }                                                            \
  } while (0)

/// Sets the named gauge (and folds its high-water mark).
#define LD_OBS_GAUGE_SET(name, value)                            \
  do {                                                           \
    if (LD_OBS_ACTIVE()) {                                       \
      static ::ld::obs::Gauge& ld_obs_metric_ =                  \
          ::ld::obs::Registry::Get().GetGauge(name);             \
      ld_obs_metric_.Set(value);                                 \
    }                                                            \
  } while (0)

/// Records `value` into the named log2 histogram.
#define LD_OBS_HIST_RECORD(name, value)                          \
  do {                                                           \
    if (LD_OBS_ACTIVE()) {                                       \
      static ::ld::obs::Histogram& ld_obs_metric_ =              \
          ::ld::obs::Registry::Get().GetHistogram(name);         \
      ld_obs_metric_.Record(value);                              \
    }                                                            \
  } while (0)

/// RAII trace span covering the rest of the enclosing scope.  `name`
/// must be a string literal; use LD_OBS_SPAN_DYN for computed names.
#define LD_OBS_SPAN(name) \
  ::ld::obs::Span LD_OBS_CONCAT_(ld_obs_span_, __LINE__)(name)

/// Span with a computed (std::string) name; the string is copied only
/// while the tracer is armed.
#define LD_OBS_SPAN_DYN(name_expr) \
  ::ld::obs::Span LD_OBS_CONCAT_(ld_obs_span_, __LINE__)(name_expr)

#endif  // LOGDIVER_OBS_DISABLED
