// Build provenance baked in at configure time: which git commit, build
// type, compiler and flags produced this binary.  The run manifest
// embeds this so every number in EXPERIMENTS.md can be traced to the
// exact build that measured it.  Values come from CMake (configure_file
// over build_info.cpp.in); a source tree without git reports "unknown".
#pragma once

namespace ld::obs {

struct BuildInfo {
  const char* git_sha;        // full SHA, or "unknown" / "<sha>-dirty"
  const char* build_type;     // CMAKE_BUILD_TYPE
  const char* compiler;       // id + version
  const char* cxx_flags;      // CMAKE_CXX_FLAGS as configured
  const char* sanitizers;     // LOGDIVER_SANITIZE, "" when none
  bool obs_compiled_in;       // false when built with -DLOGDIVER_OBS=OFF
};

const BuildInfo& GetBuildInfo();

}  // namespace ld::obs
