#include "common/obs/manifest.hpp"

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <thread>

#include "common/obs/build_info.hpp"
#include "common/obs/json.hpp"
#include "common/obs/metrics.hpp"
#include "common/simd.hpp"

namespace ld::obs {

namespace {

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::string HexU64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// ru_maxrss is kilobytes on Linux (bytes on macOS; we only build on
/// Linux — see CI — so no branch).
std::int64_t MaxRssKb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::int64_t>(usage.ru_maxrss);
}

}  // namespace

std::uint64_t Fnv1a64(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = kFnvOffsetBasis;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

Result<std::uint64_t> Fnv1a64File(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFoundError("manifest: cannot open " + path);
  std::uint64_t hash = kFnvOffsetBasis;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      hash ^= static_cast<unsigned char>(buf[i]);
      hash *= kFnvPrime;
    }
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return InternalError("manifest: read error on " + path);
  return hash;
}

ManifestBuilder::ManifestBuilder(std::string tool)
    : tool_(std::move(tool)),
      epoch_ns_(NowNanos()),
      created_unix_(static_cast<std::int64_t>(std::time(nullptr))) {}

void ManifestBuilder::SetArgv(int argc, const char* const* argv) {
  argv_.assign(argv, argv + argc);
}

void ManifestBuilder::Set(std::string key, std::string value) {
  config_.emplace_back(std::move(key), std::move(value));
}

void ManifestBuilder::SetUint(std::string key, std::uint64_t value) {
  Set(std::move(key), std::to_string(value));
}

void ManifestBuilder::SetInt(std::string key, std::int64_t value) {
  Set(std::move(key), std::to_string(value));
}

void ManifestBuilder::AddInput(const std::string& path) {
  InputRecord record;
  record.path = path;
  auto hash = Fnv1a64File(path);
  if (!hash.ok()) {
    record.error = hash.status().ToString();
  } else {
    record.fnv1a64 = *hash;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f != nullptr) {
      std::fseek(f, 0, SEEK_END);
      const long size = std::ftell(f);
      if (size > 0) record.bytes = static_cast<std::uint64_t>(size);
      std::fclose(f);
    }
  }
  inputs_.push_back(std::move(record));
}

void ManifestBuilder::RecordEnv(const char* name) {
  const char* value = std::getenv(name);
  env_.emplace_back(name, value == nullptr
                              ? std::nullopt
                              : std::optional<std::string>(value));
}

void ManifestBuilder::SetExitCode(int code) {
  exit_code_ = code;
  have_exit_code_ = true;
}

std::string ManifestBuilder::ToJson() const {
  const BuildInfo& build = GetBuildInfo();
  JsonWriter w;
  w.BeginObject();
  w.KV("schema_version", std::uint64_t{kManifestSchemaVersion});
  w.KV("tool", std::string_view(tool_));
  w.KV("created_unix", created_unix_);

  w.Key("argv");
  w.BeginArray();
  for (const std::string& arg : argv_) w.String(arg);
  w.EndArray();

  w.Key("build");
  w.BeginObject();
  w.KV("git_sha", std::string_view(build.git_sha));
  w.KV("build_type", std::string_view(build.build_type));
  w.KV("compiler", std::string_view(build.compiler));
  w.KV("cxx_flags", std::string_view(build.cxx_flags));
  w.KV("sanitizers", std::string_view(build.sanitizers));
  w.KV("obs_compiled_in", build.obs_compiled_in);
  w.KV("simd_backend", std::string_view(simd::CompiledBackends()));
  w.EndObject();

  // build.simd_backend above is the compiled capability; the backend
  // runtime dispatch actually resolved to (CPU probe + LD_SIMD_FORCE)
  // is a per-run fact and lives here.
  w.Key("runtime");
  w.BeginObject();
  w.KV("simd_dispatch", std::string_view(simd::BackendName()));
  w.EndObject();

  w.Key("host");
  w.BeginObject();
  w.KV("hardware_concurrency",
       static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.EndObject();

  w.Key("config");
  w.BeginObject();
  for (const auto& [key, value] : config_) w.KV(key, std::string_view(value));
  w.EndObject();

  w.Key("env");
  w.BeginObject();
  for (const auto& [name, value] : env_) {
    w.Key(name);
    if (value.has_value()) {
      w.String(*value);
    } else {
      w.Null();
    }
  }
  w.EndObject();

  w.Key("inputs");
  w.BeginArray();
  for (const InputRecord& input : inputs_) {
    w.BeginObject();
    w.KV("path", std::string_view(input.path));
    if (input.error.empty()) {
      w.KV("bytes", input.bytes);
      w.KV("fnv1a64", std::string_view(HexU64(input.fnv1a64)));
    } else {
      w.KV("error", std::string_view(input.error));
    }
    w.EndObject();
  }
  w.EndArray();

  // The self-measurement: everything the pipeline counted about its own
  // behaviour during this run.
  w.Key("metrics");
  w.BeginObject();
  for (const MetricSnapshot& metric : Registry::Get().Snapshot()) {
    w.Key(metric.name);
    w.BeginObject();
    w.KV("type", std::string_view(MetricTypeName(metric.type)));
    switch (metric.type) {
      case MetricType::kCounter:
        w.KV("value", metric.count);
        break;
      case MetricType::kGauge:
        w.KV("value", metric.gauge_value);
        w.KV("max", metric.gauge_max);
        break;
      case MetricType::kHistogram:
        w.KV("count", metric.count);
        w.KV("sum", metric.sum);
        w.Key("buckets");
        w.BeginArray();
        for (const auto& [upper, count] : metric.buckets) {
          w.BeginObject();
          w.KV("lt", upper);
          w.KV("n", count);
          w.EndObject();
        }
        w.EndArray();
        break;
    }
    w.EndObject();
  }
  w.EndObject();

  w.KVDouble("wall_seconds",
             static_cast<double>(NowNanos() - epoch_ns_) / 1e9);
  w.KV("max_rss_kb", MaxRssKb());
  if (have_exit_code_) {
    w.KV("exit_code", static_cast<std::int64_t>(exit_code_));
  }
  w.EndObject();
  return w.Take();
}

Status ManifestBuilder::Write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return InternalError("manifest: cannot open " + path);
  out << ToJson() << '\n';
  out.flush();
  if (!out) return InternalError("manifest: short write to " + path);
  return Status::Ok();
}

}  // namespace ld::obs
