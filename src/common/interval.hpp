// Time intervals and interval sets.
//
// LogDiver's correlation step repeatedly asks "did error event E fall
// inside application A's execution window (± a category-specific slack)?"
// and "how many node-hours overlap this outage?".  IntervalSet keeps a
// sorted, coalesced list so overlap queries are O(log n).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace ld {

/// Half-open interval [start, end).  An interval with end <= start is empty.
struct Interval {
  TimePoint start;
  TimePoint end;

  bool empty() const { return end <= start; }
  Duration length() const {
    return empty() ? Duration(0) : end - start;
  }
  bool Contains(TimePoint t) const { return t >= start && t < end; }
  bool Overlaps(const Interval& o) const {
    return start < o.end && o.start < end;
  }
  /// Intersection; empty interval if disjoint.
  Interval Intersect(const Interval& o) const;
  /// Widens by `slack` on both sides.
  Interval Inflate(Duration slack) const {
    return {start - slack, end + slack};
  }

  bool operator==(const Interval&) const = default;
};

/// A set of disjoint, sorted intervals with union semantics.
class IntervalSet {
 public:
  void Add(Interval iv);

  bool Contains(TimePoint t) const;
  /// Total covered duration.
  Duration TotalLength() const;
  /// Length of the overlap between this set and [iv.start, iv.end).
  Duration OverlapWith(Interval iv) const;
  std::size_t size() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

 private:
  std::vector<Interval> intervals_;  // sorted by start, disjoint
};

}  // namespace ld
