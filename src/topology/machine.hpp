// Machine model: the structural substrate of the field study.
//
// Blue Waters is a Cray XE6/XK7 hybrid: 288 cabinets, each with 3
// chassis of 8 blades of 4 nodes (27,648 node slots).  22,640 slots hold
// XE6 compute nodes (2x AMD Interlagos, 64 GB), 4,224 hold XK7 hybrid
// nodes (1x Interlagos + 1x NVIDIA K20X, 32 GB + 6 GB GDDR5), and the
// remainder are service nodes (I/O, login, MOM).  Two nodes share one
// Gemini router ASIC; the routers form a 3-D torus.
//
// The correlation logic in LogDiver keys on node identity (cname),
// blade co-location (blade-level failures take out 4 nodes), and Gemini
// placement (link failures affect traffic through a router), so the
// model preserves exactly that structure.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "topology/cname.hpp"

namespace ld {

enum class NodeType : std::uint8_t {
  kXE,       // CPU-only compute node (XE6)
  kXK,       // CPU+GPU hybrid compute node (XK7)
  kService,  // service node (not schedulable for compute)
};

const char* NodeTypeName(NodeType type);

/// Index of a node in the Machine's node table.  Dense, stable, and cheap
/// to use as an array index; the cname is the external identity.
using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kInvalidNode = 0xffffffffu;

/// Coordinate of a Gemini router in the 3-D torus.
struct GeminiCoord {
  int x = 0;
  int y = 0;
  int z = 0;
  bool operator==(const GeminiCoord&) const = default;
};

struct Node {
  NodeIndex index = kInvalidNode;
  NodeType type = NodeType::kService;
  Cname cname;
  GeminiCoord gemini;
  std::uint16_t dimm_count = 0;  // DDR3 DIMMs on the node board
  bool has_gpu = false;
};

/// Configuration for building a machine; defaults reproduce Blue Waters.
struct MachineConfig {
  int cabinet_cols = 24;
  int cabinet_rows = 12;
  std::uint32_t xe_nodes = 22640;
  std::uint32_t xk_nodes = 4224;
  // Everything left over becomes service nodes.
};

class Machine {
 public:
  /// The Blue Waters configuration (A1: 13.1 PF, 22,640 XE + 4,224 XK).
  static Machine BlueWaters();
  /// A small machine for tests and examples (fast to iterate over).
  static Machine Testbed(std::uint32_t xe_nodes, std::uint32_t xk_nodes);
  /// Builds from an explicit configuration; throws on infeasible counts.
  static Machine Build(const MachineConfig& config);

  std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  std::uint32_t xe_count() const { return xe_count_; }
  std::uint32_t xk_count() const { return xk_count_; }
  std::uint32_t service_count() const {
    return node_count() - xe_count_ - xk_count_;
  }
  std::uint32_t compute_count() const { return xe_count_ + xk_count_; }

  const Node& node(NodeIndex i) const { return nodes_.at(i); }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Indices of all compute nodes of the given type, in cname order.
  const std::vector<NodeIndex>& nodes_of_type(NodeType type) const;

  /// Looks a node up by its rendered cname.
  Result<NodeIndex> FindByCname(const std::string& cname) const;

  /// The 4 nodes sharing the blade of `i` (including `i` itself).
  std::vector<NodeIndex> BladeSiblings(NodeIndex i) const;

  /// Nodes whose traffic transits the Gemini router at `coord` — i.e.,
  /// the (at most 2) nodes attached to that router.
  std::vector<NodeIndex> NodesOnGemini(const GeminiCoord& coord) const;

 private:
  Machine() = default;

  std::vector<Node> nodes_;
  std::vector<NodeIndex> xe_nodes_;
  std::vector<NodeIndex> xk_nodes_;
  std::vector<NodeIndex> service_nodes_;
  std::unordered_map<std::string, NodeIndex> by_cname_;
  std::uint32_t xe_count_ = 0;
  std::uint32_t xk_count_ = 0;
};

}  // namespace ld
