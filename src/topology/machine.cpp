#include "topology/machine.hpp"

#include <stdexcept>

namespace ld {
namespace {

constexpr int kChassisPerCabinet = 3;
constexpr int kSlotsPerChassis = 8;
constexpr int kNodesPerBlade = 4;
constexpr int kNodesPerCabinet =
    kChassisPerCabinet * kSlotsPerChassis * kNodesPerBlade;  // 96

}  // namespace

const char* NodeTypeName(NodeType type) {
  switch (type) {
    case NodeType::kXE: return "XE";
    case NodeType::kXK: return "XK";
    case NodeType::kService: return "service";
  }
  return "unknown";
}

Machine Machine::BlueWaters() { return Build(MachineConfig{}); }

Machine Machine::Testbed(std::uint32_t xe_nodes, std::uint32_t xk_nodes) {
  MachineConfig cfg;
  // Smallest cabinet grid that fits the request plus a handful of
  // service nodes; keeps test machines tiny and fast.
  const std::uint32_t needed = xe_nodes + xk_nodes + 4;
  std::uint32_t cabinets = (needed + kNodesPerCabinet - 1) / kNodesPerCabinet;
  cfg.cabinet_cols = static_cast<int>(cabinets < 4 ? cabinets : 4);
  cfg.cabinet_rows = static_cast<int>((cabinets + cfg.cabinet_cols - 1) /
                                      static_cast<std::uint32_t>(cfg.cabinet_cols));
  cfg.xe_nodes = xe_nodes;
  cfg.xk_nodes = xk_nodes;
  return Build(cfg);
}

Machine Machine::Build(const MachineConfig& config) {
  const std::uint64_t slots = static_cast<std::uint64_t>(config.cabinet_cols) *
                              config.cabinet_rows * kNodesPerCabinet;
  if (config.xe_nodes + config.xk_nodes > slots) {
    throw std::invalid_argument("MachineConfig: more compute nodes than slots");
  }

  Machine m;
  m.nodes_.reserve(slots);
  m.by_cname_.reserve(slots);

  // XK cabinets are physically clustered (on Blue Waters they occupy
  // dedicated cabinet columns).  We lay out XE nodes first, then XK,
  // then service nodes, walking cabinets in column-major order; this
  // yields the same "XK nodes are spatially contiguous" property the
  // real machine has, which matters for blade-level failure blast radius.
  std::uint32_t xe_left = config.xe_nodes;
  std::uint32_t xk_left = config.xk_nodes;

  for (int cx = 0; cx < config.cabinet_cols; ++cx) {
    for (int cy = 0; cy < config.cabinet_rows; ++cy) {
      for (int ch = 0; ch < kChassisPerCabinet; ++ch) {
        for (int sl = 0; sl < kSlotsPerChassis; ++sl) {
          for (int nd = 0; nd < kNodesPerBlade; ++nd) {
            Node node;
            node.index = static_cast<NodeIndex>(m.nodes_.size());
            node.cname = Cname{cx, cy, ch, sl, nd};
            // One Gemini ASIC serves 2 adjacent nodes on a blade; torus
            // coordinates derive deterministically from the physical
            // position (X from cabinet column, Y from row+chassis,
            // Z from slot and node pair).
            node.gemini = GeminiCoord{cx, cy * kChassisPerCabinet + ch,
                                      sl * (kNodesPerBlade / 2) + nd / 2};
            if (xe_left > 0) {
              node.type = NodeType::kXE;
              node.dimm_count = 16;  // 64 GB in 4 GB DDR3 DIMMs
              node.has_gpu = false;
              --xe_left;
            } else if (xk_left > 0) {
              node.type = NodeType::kXK;
              node.dimm_count = 8;  // 32 GB host memory
              node.has_gpu = true;  // NVIDIA K20X with 6 GB GDDR5
              --xk_left;
            } else {
              node.type = NodeType::kService;
              node.dimm_count = 8;
              node.has_gpu = false;
            }
            m.by_cname_.emplace(node.cname.ToString(), node.index);
            switch (node.type) {
              case NodeType::kXE: m.xe_nodes_.push_back(node.index); break;
              case NodeType::kXK: m.xk_nodes_.push_back(node.index); break;
              case NodeType::kService:
                m.service_nodes_.push_back(node.index);
                break;
            }
            m.nodes_.push_back(std::move(node));
          }
        }
      }
    }
  }
  m.xe_count_ = config.xe_nodes;
  m.xk_count_ = config.xk_nodes;
  return m;
}

const std::vector<NodeIndex>& Machine::nodes_of_type(NodeType type) const {
  switch (type) {
    case NodeType::kXE: return xe_nodes_;
    case NodeType::kXK: return xk_nodes_;
    case NodeType::kService: return service_nodes_;
  }
  throw std::logic_error("nodes_of_type: bad type");
}

Result<NodeIndex> Machine::FindByCname(const std::string& cname) const {
  const auto it = by_cname_.find(cname);
  if (it == by_cname_.end()) {
    return NotFoundError("no node with cname '" + cname + "'");
  }
  return it->second;
}

std::vector<NodeIndex> Machine::BladeSiblings(NodeIndex i) const {
  const Cname& c = node(i).cname;
  std::vector<NodeIndex> out;
  out.reserve(kNodesPerBlade);
  for (int nd = 0; nd < kNodesPerBlade; ++nd) {
    Cname sib = c;
    sib.node = nd;
    const auto it = by_cname_.find(sib.ToString());
    if (it != by_cname_.end()) out.push_back(it->second);
  }
  return out;
}

std::vector<NodeIndex> Machine::NodesOnGemini(const GeminiCoord& coord) const {
  // Geminis serve node pairs laid out deterministically (see Build), so
  // we can compute the candidate cname range instead of scanning.
  std::vector<NodeIndex> out;
  const int cx = coord.x;
  const int cy = coord.y / kChassisPerCabinet;
  const int ch = coord.y % kChassisPerCabinet;
  const int sl = coord.z / (kNodesPerBlade / 2);
  const int pair = coord.z % (kNodesPerBlade / 2);
  for (int nd = pair * 2; nd < pair * 2 + 2; ++nd) {
    const Cname c{cx, cy, ch, sl, nd};
    const auto it = by_cname_.find(c.ToString());
    if (it != by_cname_.end()) out.push_back(it->second);
  }
  return out;
}

}  // namespace ld
