// Cray component names ("cnames").
//
// Every hardware component on a Cray XE/XK system is addressed by a
// hierarchical cname, e.g. "c12-3c2s7n1" = cabinet column 12, cabinet row
// 3, chassis 2, slot (blade) 7, node 1.  Log sources identify error
// locations by cname, so LogDiver must parse them; the simulator's
// emitters must render them.
#pragma once

#include <string>

#include "common/status.hpp"

namespace ld {

struct Cname {
  int cabinet_x = 0;  // cabinet column
  int cabinet_y = 0;  // cabinet row
  int chassis = 0;    // 0..2
  int slot = 0;       // blade slot, 0..7
  int node = 0;       // node on blade, 0..3

  /// "c{X}-{Y}c{C}s{S}n{N}".
  std::string ToString() const;
  /// Blade-level prefix "c{X}-{Y}c{C}s{S}" (a blade houses 4 nodes and
  /// 2 Gemini ASICs; blade-level failures take down all of them).
  std::string BladePrefix() const;

  bool operator==(const Cname&) const = default;
};

/// Parses a node-level cname; rejects malformed or component-level names.
Result<Cname> ParseCname(const std::string& text);

}  // namespace ld
