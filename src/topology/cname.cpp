#include "topology/cname.hpp"

#include <cstdio>

namespace ld {

std::string Cname::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "c%d-%dc%ds%dn%d", cabinet_x, cabinet_y,
                chassis, slot, node);
  return buf;
}

std::string Cname::BladePrefix() const {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "c%d-%dc%ds%d", cabinet_x, cabinet_y,
                chassis, slot);
  return buf;
}

Result<Cname> ParseCname(const std::string& text) {
  Cname c;
  int consumed = 0;
  const int got = std::sscanf(text.c_str(), "c%d-%dc%ds%dn%d%n", &c.cabinet_x,
                              &c.cabinet_y, &c.chassis, &c.slot, &c.node,
                              &consumed);
  if (got != 5 || static_cast<std::size_t>(consumed) != text.size()) {
    return ParseError("bad cname: '" + text + "'");
  }
  if (c.cabinet_x < 0 || c.cabinet_y < 0 || c.chassis < 0 || c.chassis > 2 ||
      c.slot < 0 || c.slot > 7 || c.node < 0 || c.node > 3) {
    return ParseError("out-of-range cname: '" + text + "'");
  }
  return c;
}

}  // namespace ld
