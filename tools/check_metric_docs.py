#!/usr/bin/env python3
"""Fail when the metric catalog in code and docs drift apart.

Every metric name registered in src/common/obs/names.hpp must have a row
in docs/OBSERVABILITY.md, and every `ld.*` name mentioned in that doc
must exist in names.hpp.  Run from the repository root (ctest and the CI
docs job both do); exits non-zero listing every missing name.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
NAMES_HPP = ROOT / "src" / "common" / "obs" / "names.hpp"
DOC = ROOT / "docs" / "OBSERVABILITY.md"

# Matches the string literals in names.hpp and the backticked names in
# the doc; the shared shape is the catalog's naming scheme.
METRIC_RE = re.compile(r"ld\.[a-z0-9_]+(?:\.[a-z0-9_]+)+")


def metrics_in_code() -> set[str]:
    text = NAMES_HPP.read_text(encoding="utf-8")
    names = set()
    for line in text.splitlines():
        # Only string literals count — the scheme comment in the header
        # mentions `ld.<area>.<what>`, which is not a metric.
        for literal in re.findall(r'"([^"]*)"', line):
            if METRIC_RE.fullmatch(literal):
                names.add(literal)
    return names


def metrics_in_docs() -> set[str]:
    text = DOC.read_text(encoding="utf-8")
    names = set()
    for backticked in re.findall(r"`([^`]*)`", text):
        if METRIC_RE.fullmatch(backticked):
            names.add(backticked)
    return names


def main() -> int:
    for path in (NAMES_HPP, DOC):
        if not path.exists():
            print(f"check_metric_docs: missing {path}", file=sys.stderr)
            return 1
    code = metrics_in_code()
    docs = metrics_in_docs()
    failed = False
    for name in sorted(code - docs):
        print(f"undocumented metric: {name} is in names.hpp but not in "
              f"{DOC.relative_to(ROOT)}", file=sys.stderr)
        failed = True
    for name in sorted(docs - code):
        print(f"stale doc row: {name} is in {DOC.relative_to(ROOT)} but not "
              f"in names.hpp", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"check_metric_docs: {len(code)} metric names consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
