#!/usr/bin/env python3
"""Perf-regression gate over two google-benchmark JSON files.

Usage:
    tools/compare_bench.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Matches benchmarks by name and computes the geometric mean of the
candidate/baseline real-time ratios across every benchmark present in
both files.  Exits non-zero when that geomean exceeds 1 + threshold
(default: a 10% slowdown) — single-benchmark jitter is tolerated, a
broad slowdown is not.

The CI release job runs this with the committed BENCH_*.json baseline
against numbers it just regenerated on its own runner, so the
comparison is same-host in steady state: the committed baseline is
refreshed whenever a PR intentionally changes performance, and the gate
catches the PRs that change it unintentionally.  Benchmarks present in
only one file (added or removed since the baseline) are reported but
never fail the gate.
"""

import argparse
import json
import math
import pathlib
import sys


def load_benchmarks(path: pathlib.Path) -> dict[str, float]:
    """Benchmark name -> real_time, normalized to nanoseconds."""
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    doc = json.loads(path.read_text(encoding="utf-8"))
    times: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev of repetitions) would be
        # double-counted next to their iteration rows; skip them.
        if bench.get("run_type") == "aggregate":
            continue
        # A hand-edited or truncated baseline can carry entries without
        # the keys this gate needs; skip them visibly rather than dying
        # with a stack trace mid-CI.
        name = bench.get("name")
        real_time = bench.get("real_time")
        time_unit = bench.get("time_unit")
        if name is None or real_time is None or time_unit not in scale:
            label = name if name is not None else "<unnamed entry>"
            print(f"note: skipping {label} in {path}: missing or "
                  f"unrecognized name/real_time/time_unit")
            continue
        times[name] = real_time * scale[time_unit]
    return times


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("candidate", type=pathlib.Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed geomean slowdown as a fraction (default 0.10 = 10%%)",
    )
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    candidate = load_benchmarks(args.candidate)
    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline}")
        return 2

    shared = sorted(baseline.keys() & candidate.keys())
    for name in sorted(baseline.keys() - candidate.keys()):
        print(f"note: only in baseline (removed?): {name}")
    for name in sorted(candidate.keys() - baseline.keys()):
        print(f"note: only in candidate (new?): {name}")
    if not shared:
        print("error: no benchmark names in common; nothing to compare")
        return 2

    width = max(len(name) for name in shared)
    log_sum = 0.0
    for name in shared:
        ratio = candidate[name] / baseline[name]
        log_sum += math.log(ratio)
        print(f"{name:<{width}}  baseline {baseline[name] / 1e6:10.3f} ms"
              f"  candidate {candidate[name] / 1e6:10.3f} ms"
              f"  ratio {ratio:6.3f}")
    geomean = math.exp(log_sum / len(shared))
    limit = 1.0 + args.threshold

    print(f"\ngeomean ratio over {len(shared)} shared benchmarks: "
          f"{geomean:.3f} (limit {limit:.3f})")
    if geomean > limit:
        print(f"FAIL: candidate is {(geomean - 1.0) * 100:.1f}% slower than "
              f"the baseline (threshold {args.threshold * 100:.0f}%)")
        return 1
    print("OK: within the regression threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
