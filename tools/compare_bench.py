#!/usr/bin/env python3
"""Perf-regression gate over two google-benchmark JSON files.

Usage:
    tools/compare_bench.py BASELINE.json CANDIDATE.json [--threshold 0.10]
        [--min-bytes-per-second NAME=BYTES] [--max-rss-mb NAME=MB]
        [--min-speedup SLOW_NAME,FAST_NAME,RATIO]

Matches benchmarks by name and computes the geometric mean of the
candidate/baseline real-time ratios across every benchmark present in
both files.  Exits non-zero when that geomean exceeds 1 + threshold
(default: a 10% slowdown) — single-benchmark jitter is tolerated, a
broad slowdown is not.

Three absolute gates run on the *candidate* file alone (repeatable; all
violations are reported before the gate fails):

  --min-bytes-per-second NAME=BYTES   the row's bytes_per_second must be
                                      at least BYTES (a throughput floor
                                      for ingest-path benchmarks).
  --max-rss-mb NAME=MB                the row's rss_mb counter must not
                                      exceed MB (a peak-memory ceiling).
  --min-speedup SLOW,FAST,RATIO       real_time(SLOW) / real_time(FAST)
                                      must be at least RATIO — e.g. the
                                      warm parsed-bundle-cache run must
                                      be 5x the cold one, the SIMD scan
                                      must beat the scalar reference.
  --min-speedup-optional SLOW,FAST,RATIO
                                      same, but skips (with a note)
                                      when either row is absent from
                                      the candidate — for per-backend
                                      rows the host may not run (a
                                      SkipWithError'd AVX2 row on a
                                      pre-AVX2 CPU is dropped on load).

The CI release job runs this with the committed BENCH_*.json baseline
against numbers it just regenerated on its own runner, so the
comparison is same-host in steady state: the committed baseline is
refreshed whenever a PR intentionally changes performance, and the gate
catches the PRs that change it unintentionally.  Benchmarks present in
only one file (added or removed since the baseline) are reported but
never fail the gate; a row *named* by an absolute gate, though, must
exist in the candidate.
"""

import argparse
import json
import math
import pathlib
import sys


def load_benchmarks(path: pathlib.Path) -> dict[str, dict[str, float]]:
    """Benchmark name -> {time_ns, bytes_per_second?, rss_mb?}."""
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    doc = json.loads(path.read_text(encoding="utf-8"))
    rows: dict[str, dict[str, float]] = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev of repetitions) would be
        # double-counted next to their iteration rows; skip them.
        if bench.get("run_type") == "aggregate":
            continue
        # Rows the benchmark skipped (SkipWithError — e.g. an AVX2
        # kernel on a host without AVX2) carry no meaningful timing;
        # drop them so gates can treat the name as absent.
        if bench.get("error_occurred"):
            print(f"note: skipping {bench.get('name')} in {path}: "
                  f"{bench.get('error_message', 'benchmark reported an error')}")
            continue
        # A hand-edited or truncated baseline can carry entries without
        # the keys this gate needs; skip them visibly rather than dying
        # with a stack trace mid-CI.
        name = bench.get("name")
        real_time = bench.get("real_time")
        time_unit = bench.get("time_unit")
        if name is None or real_time is None or time_unit not in scale:
            label = name if name is not None else "<unnamed entry>"
            print(f"note: skipping {label} in {path}: missing or "
                  f"unrecognized name/real_time/time_unit")
            continue
        row = {"time_ns": real_time * scale[time_unit]}
        for key in ("bytes_per_second", "rss_mb"):
            value = bench.get(key)
            if isinstance(value, (int, float)):
                row[key] = float(value)
        rows[name] = row
    return rows


def parse_name_value(spec: str, flag: str) -> tuple[str, float]:
    name, sep, value = spec.rpartition("=")
    if not sep or not name:
        raise SystemExit(f"error: {flag} wants NAME=VALUE, got {spec!r}")
    try:
        return name, float(value)
    except ValueError:
        raise SystemExit(f"error: {flag}: {value!r} is not a number")


def absolute_gates(args, candidate: dict[str, dict[str, float]]) -> int:
    """Runs the candidate-only gates; returns the number of violations."""
    failures = 0

    def missing(name: str, what: str) -> bool:
        nonlocal failures
        if name not in candidate:
            print(f"FAIL: {what} names {name}, absent from the candidate")
            failures += 1
            return True
        return False

    for spec in args.min_bytes_per_second:
        name, floor = parse_name_value(spec, "--min-bytes-per-second")
        if missing(name, "--min-bytes-per-second"):
            continue
        got = candidate[name].get("bytes_per_second")
        if got is None:
            print(f"FAIL: {name} reports no bytes_per_second")
            failures += 1
        elif got < floor:
            print(f"FAIL: {name} at {got / 1e6:.1f} MB/s, floor is "
                  f"{floor / 1e6:.1f} MB/s")
            failures += 1
        else:
            print(f"ok: {name} at {got / 1e6:.1f} MB/s "
                  f"(floor {floor / 1e6:.1f} MB/s)")

    for spec in args.max_rss_mb:
        name, ceiling = parse_name_value(spec, "--max-rss-mb")
        if missing(name, "--max-rss-mb"):
            continue
        got = candidate[name].get("rss_mb")
        if got is None:
            print(f"FAIL: {name} reports no rss_mb counter")
            failures += 1
        elif got > ceiling:
            print(f"FAIL: {name} peaked at {got:.0f} MB RSS, ceiling is "
                  f"{ceiling:.0f} MB")
            failures += 1
        else:
            print(f"ok: {name} peaked at {got:.0f} MB RSS "
                  f"(ceiling {ceiling:.0f} MB)")

    def parse_speedup(spec: str, flag: str) -> tuple[str, str, float]:
        parts = spec.split(",")
        if len(parts) != 3:
            raise SystemExit(
                f"error: {flag} wants SLOW,FAST,RATIO, got {spec!r}")
        try:
            return parts[0], parts[1], float(parts[2])
        except ValueError:
            raise SystemExit(f"error: {flag}: {parts[2]!r} is not a number")

    def check_speedup(slow: str, fast: str, ratio_floor: float) -> None:
        nonlocal failures
        ratio = candidate[slow]["time_ns"] / candidate[fast]["time_ns"]
        if ratio < ratio_floor:
            print(f"FAIL: {fast} is only {ratio:.2f}x faster than {slow}, "
                  f"floor is {ratio_floor:.2f}x")
            failures += 1
        else:
            print(f"ok: {fast} is {ratio:.2f}x faster than {slow} "
                  f"(floor {ratio_floor:.2f}x)")

    for spec in args.min_speedup:
        slow, fast, ratio_floor = parse_speedup(spec, "--min-speedup")
        if missing(slow, "--min-speedup") or missing(fast, "--min-speedup"):
            continue
        check_speedup(slow, fast, ratio_floor)

    # The skip-if-unsupported variant: a backend row the host cannot run
    # (SkipWithError, or not compiled in) is simply absent from the
    # candidate, and the gate passes with a note instead of failing —
    # e.g. the AVX2-over-SSE2 margin only binds on an AVX2 runner.
    for spec in args.min_speedup_optional:
        slow, fast, ratio_floor = parse_speedup(spec, "--min-speedup-optional")
        absent = [n for n in (slow, fast) if n not in candidate]
        if absent:
            print(f"skip: --min-speedup-optional {spec}: "
                  f"{', '.join(absent)} not runnable on this host")
            continue
        check_speedup(slow, fast, ratio_floor)

    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("candidate", type=pathlib.Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed geomean slowdown as a fraction (default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--min-bytes-per-second",
        action="append",
        default=[],
        metavar="NAME=BYTES",
        help="candidate row NAME must sustain at least BYTES bytes/s",
    )
    parser.add_argument(
        "--max-rss-mb",
        action="append",
        default=[],
        metavar="NAME=MB",
        help="candidate row NAME's rss_mb counter must not exceed MB",
    )
    parser.add_argument(
        "--min-speedup",
        action="append",
        default=[],
        metavar="SLOW,FAST,RATIO",
        help="candidate real_time(SLOW)/real_time(FAST) must be >= RATIO",
    )
    parser.add_argument(
        "--min-speedup-optional",
        action="append",
        default=[],
        metavar="SLOW,FAST,RATIO",
        help="like --min-speedup, but a row absent from the candidate "
             "(backend not runnable on this host) skips the gate instead "
             "of failing it",
    )
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    candidate = load_benchmarks(args.candidate)
    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline}")
        return 2

    shared = sorted(baseline.keys() & candidate.keys())
    for name in sorted(baseline.keys() - candidate.keys()):
        print(f"note: only in baseline (removed?): {name}")
    for name in sorted(candidate.keys() - baseline.keys()):
        print(f"note: only in candidate (new?): {name}")
    if not shared:
        print("error: no benchmark names in common; nothing to compare")
        return 2

    width = max(len(name) for name in shared)
    log_sum = 0.0
    for name in shared:
        ratio = candidate[name]["time_ns"] / baseline[name]["time_ns"]
        log_sum += math.log(ratio)
        print(f"{name:<{width}}"
              f"  baseline {baseline[name]['time_ns'] / 1e6:10.3f} ms"
              f"  candidate {candidate[name]['time_ns'] / 1e6:10.3f} ms"
              f"  ratio {ratio:6.3f}")
    geomean = math.exp(log_sum / len(shared))
    limit = 1.0 + args.threshold

    print(f"\ngeomean ratio over {len(shared)} shared benchmarks: "
          f"{geomean:.3f} (limit {limit:.3f})")
    failed = False
    if geomean > limit:
        print(f"FAIL: candidate is {(geomean - 1.0) * 100:.1f}% slower than "
              f"the baseline (threshold {args.threshold * 100:.0f}%)")
        failed = True

    if absolute_gates(args, candidate) > 0:
        failed = True
    if failed:
        return 1
    print("OK: within the regression threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
