#!/usr/bin/env python3
"""Markdown link checker: every relative link target must exist.

Scans *.md at the repository root and everything under docs/, extracts
inline `[text](target)` links, and verifies that relative file targets
resolve (anchors are stripped; external http(s)/mailto links are not
fetched).  Run from the repository root; exits non-zero listing every
broken link.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

# Inline links, ignoring images' leading ! (image targets are checked
# the same way).  Reference-style links are not used in this repo.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def markdown_files() -> list[pathlib.Path]:
    files = sorted(ROOT.glob("*.md"))
    docs = ROOT / "docs"
    if docs.is_dir():
        files += sorted(docs.rglob("*.md"))
    return files


def links_in(path: pathlib.Path) -> list[tuple[int, str]]:
    links = []
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8")
                                  .splitlines(), start=1):
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def main() -> int:
    broken = []
    checked = 0
    for md in markdown_files():
        for lineno, target in links_in(md):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            checked += 1
            resolved = (md.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(f"{md.relative_to(ROOT)}:{lineno}: "
                              f"broken link -> {target}")
    for line in broken:
        print(line, file=sys.stderr)
    if broken:
        return 1
    print(f"check_md_links: {checked} relative links OK "
          f"across {len(markdown_files())} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
