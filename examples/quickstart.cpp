// Quickstart: simulate a small campaign, run LogDiver over its logs, and
// score the result against the injector's ground truth.
//
//   ./quickstart [seed]
//
// This is the 60-second tour of the whole system: machine model ->
// workload -> fault injection -> log emission -> parse -> coalesce ->
// reconstruct -> classify -> metrics -> scoring.
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "analysis/scoring.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/report.hpp"
#include "simlog/scenario.hpp"

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. Simulate a month on a 1,152-node testbed.
  const ld::ScenarioConfig config = ld::SmallScenario(seed);
  const ld::Machine machine = ld::MakeMachine(config);
  auto campaign = ld::RunCampaign(machine, config);
  if (!campaign.ok()) {
    std::cerr << "campaign failed: " << campaign.status().ToString() << "\n";
    return 1;
  }
  std::cout << "simulated " << campaign->workload.apps.size()
            << " application runs in " << campaign->workload.jobs.size()
            << " jobs; " << campaign->injection.events.size()
            << " error events injected\n\n";

  // 2. Run LogDiver over the emitted text logs.
  ld::LogDiver diver(machine, ld::LogDiverConfig{});
  ld::LogSet logs;
  logs.torque = campaign->logs.torque;
  logs.alps = campaign->logs.alps;
  logs.syslog = campaign->logs.syslog;
  logs.hwerr = campaign->logs.hwerr;
  auto analysis = diver.Analyze(logs);
  if (!analysis.ok()) {
    std::cerr << "analysis failed: " << analysis.status().ToString() << "\n";
    return 1;
  }

  ld::PrintParseSummary(std::cout, *analysis);
  std::cout << "\n--- headline metrics ---\n";
  ld::PrintHeadline(std::cout, analysis->metrics);
  std::cout << "\n--- outcome breakdown ---\n";
  ld::PrintOutcomeBreakdown(std::cout, analysis->metrics);
  std::cout << "\n--- root-cause attribution ---\n";
  ld::PrintAttributionTable(std::cout, analysis->metrics);

  // 3. Score against ground truth (the field study couldn't do this;
  //    the simulated substrate can).
  const ld::ScoreReport score = ld::ScoreClassification(
      analysis->runs, analysis->classified, campaign->injection.truth);
  std::cout << "\n--- scoring vs injected ground truth ---\n";
  std::cout << "scored runs:        " << score.scored_runs << "\n";
  std::cout << "overall accuracy:   " << score.overall_accuracy << "\n";
  std::cout << "system precision:   " << score.system_precision << "\n";
  std::cout << "system recall:      " << score.system_recall << "\n";
  std::cout << "cause accuracy:     " << score.cause_accuracy << "\n";
  std::cout << "cause unattributed: " << score.cause_unattributed << "\n";
  return 0;
}
