// Scale study: "what failure probability should I expect at N nodes?"
//
// Runs a calibrated campaign, measures the failure-probability-vs-scale
// curve with confidence intervals, fits the exposure model, and answers
// for user-supplied node counts.
//
//   ./scale_study [nodes...]     (default: 1024 4096 16384 22000)
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analysis/scaling.hpp"
#include "common/strings.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/report.hpp"
#include "simlog/scenario.hpp"

int main(int argc, char** argv) {
  std::vector<double> queries;
  for (int i = 1; i < argc; ++i) {
    queries.push_back(std::strtod(argv[i], nullptr));
  }
  if (queries.empty()) queries = {1024, 4096, 16384, 22000};

  // A moderately sized campaign with oversampled large runs: per-bucket
  // estimates stay unbiased, large buckets get usable counts.
  ld::ScenarioConfig config;
  config.seed = 7;
  config.full_machine = true;
  config.workload.target_app_runs = 120000;
  config.workload.campaign = ld::Duration::Days(518);
  config.workload.large_bucket_boost = 40.0;

  const ld::Machine machine = ld::MakeMachine(config);
  auto campaign = ld::RunCampaign(machine, config);
  if (!campaign.ok()) {
    std::cerr << campaign.status().ToString() << "\n";
    return 1;
  }
  ld::LogDiver diver(machine, {});
  ld::LogSet logs{campaign->logs.torque, campaign->logs.alps,
                  campaign->logs.syslog, campaign->logs.hwerr};
  auto analysis = diver.Analyze(logs);
  if (!analysis.ok()) {
    std::cerr << analysis.status().ToString() << "\n";
    return 1;
  }

  ld::PrintScaleCurve(std::cout, analysis->metrics.xe_scale,
                      "measured XE failure probability by scale");

  auto fit = ld::FitScaleCurve(analysis->metrics.xe_scale);
  if (!fit.ok()) {
    std::cerr << "fit failed: " << fit.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nexposure model: ln(-ln(1-P)) = "
            << ld::FormatDouble(fit->exponent, 3) << " ln(N) + "
            << ld::FormatDouble(fit->log_c, 3)
            << " (R^2 = " << ld::FormatDouble(fit->r_squared, 3) << ")\n\n";
  for (double n : queries) {
    auto measured = ld::InterpolateScaleCurve(analysis->metrics.xe_scale, n);
    std::cout << "expected P(system failure) for a typical run at "
              << ld::WithThousands(static_cast<std::uint64_t>(n))
              << " nodes: " << ld::FormatDouble(measured.value_or(0.0), 4)
              << " (measured curve)  vs  "
              << ld::FormatDouble(fit->Predict(n), 4) << " (power-law fit)\n";
  }
  std::cout << "\n(the power-law fit marginalizes over the campaign's "
               "run-duration mix and underestimates the full-scale blowup; "
               "the measured curve is authoritative)\n";
  return 0;
}
