// logdiverd: the always-on multi-tenant LogDiver service.
//
//   logdiverd --snapshot-dir <dir> [--listen ADDR] [--max-tenants N]
//       [--tenant-budget N] [--tenant-fraction F] [--tenant-policy P]
//       [--queue-cap N] [--snapshot-interval N] [--small] [--seed N]
//       [--enable-fault-injection]
//
// One daemon process multiplexes up to --max-tenants tenants, each a
// StreamingAnalyzer shard with its own write-ahead journal, bounded
// ingest queue and rolling snapshots under --snapshot-dir/<tenant>/.
// Clients speak the line protocol documented in docs/SERVICE.md:
//
//   INGEST <tenant> <source> <raw line>   -> OK <seq> | BUSY | SHED
//   QUERY  <tenant> report|ingest|health  -> OK ...
//   SNAPSHOT | DRAIN | PING               -> OK ...
//
// --listen takes sockio spellings: "unix:/path/sock" or "<ipv4>:<port>"
// (port 0 = kernel-assigned).  The daemon prints the resolved address
// as its first stdout line ("listening on <addr>") so wrappers started
// with port 0 know where to connect.
//
// --tenant-budget / --tenant-fraction set each tenant's per-window
// error budget (malformed must exceed BOTH to trip); --tenant-policy
// picks what tripping does: "degrade" (default; quarantine-and-
// continue, health turns degraded) or "shed" (fail-fast; INGEST
// answers SHED with a retry-after hint until the cooloff passes).
//
// On restart the daemon re-adopts every tenant directory found under
// --snapshot-dir: latest valid snapshot + journal-suffix replay,
// bit-identical to never having stopped.  SIGINT/SIGTERM drain every
// tenant (flush + final snapshot) before exiting.
//
// --small selects the 1,152-node testbed machine instead of the full
// Blue Waters model (must match what the traffic was generated on).
//
// Exit codes: 0 clean shutdown, 1 startup/runtime error, 2 usage.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <unistd.h>

#include "logdiver/service/daemon.hpp"
#include "simlog/scenario.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage() {
  std::cerr
      << "usage: logdiverd --snapshot-dir <dir> [options]\n"
      << "  --listen ADDR            unix:<path> or <ipv4>:<port> "
         "(default 127.0.0.1:0)\n"
      << "  --max-tenants N          admission cap (default 128)\n"
      << "  --tenant-budget N        per-window malformed-line floor "
         "(default 32)\n"
      << "  --tenant-fraction F      per-window malformed fraction "
         "(default 0.25)\n"
      << "  --tenant-policy P        shed | degrade (default degrade)\n"
      << "  --queue-cap N            per-tenant ingest queue depth "
         "(default 1024)\n"
      << "  --snapshot-interval N    snapshot every N applied lines "
         "(default 4096)\n"
      << "  --small                  1,152-node testbed machine\n"
      << "  --seed N                 scenario seed for --small "
         "(default 42)\n"
      << "  --enable-fault-injection accept FAULT commands (tests only)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ld::service::ServiceOptions options;
  bool small = false;
  std::uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--snapshot-dir") {
      const char* v = next();
      if (!v) return Usage();
      options.data_dir = v;
    } else if (arg == "--listen") {
      const char* v = next();
      if (!v) return Usage();
      options.listen = v;
    } else if (arg == "--max-tenants") {
      const char* v = next();
      if (!v) return Usage();
      options.max_tenants = std::strtoull(v, nullptr, 10);
    } else if (arg == "--tenant-budget") {
      const char* v = next();
      if (!v) return Usage();
      options.tenant.budget.min_malformed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--tenant-fraction") {
      const char* v = next();
      if (!v) return Usage();
      options.tenant.budget.max_malformed_fraction = std::strtod(v, nullptr);
    } else if (arg == "--tenant-policy") {
      const char* v = next();
      if (!v) return Usage();
      if (std::strcmp(v, "shed") == 0) {
        options.tenant.budget.policy = ld::DegradationPolicy::kFailFast;
      } else if (std::strcmp(v, "degrade") == 0) {
        options.tenant.budget.policy =
            ld::DegradationPolicy::kQuarantineAndContinue;
      } else {
        return Usage();
      }
    } else if (arg == "--queue-cap") {
      const char* v = next();
      if (!v) return Usage();
      options.tenant.queue_capacity = std::strtoull(v, nullptr, 10);
    } else if (arg == "--snapshot-interval") {
      const char* v = next();
      if (!v) return Usage();
      options.tenant.snapshot_interval_lines = std::strtoull(v, nullptr, 10);
    } else if (arg == "--small") {
      small = true;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return Usage();
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--enable-fault-injection") {
      options.enable_fault_commands = true;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return Usage();
    }
  }
  if (options.data_dir.empty()) {
    std::cerr << "--snapshot-dir is required\n";
    return Usage();
  }

  ld::ScenarioConfig config = small ? ld::SmallScenario(seed)
                                    : ld::ScenarioConfig{};
  config.seed = seed;
  if (!small) config.full_machine = true;
  const ld::Machine machine = ld::MakeMachine(config);

  ld::service::LogDiverDaemon daemon(machine, options);
  const ld::Status started = daemon.Start();
  if (!started.ok()) {
    std::cerr << "logdiverd: " << started.ToString() << "\n";
    return 1;
  }
  // First stdout line: the resolved address (port 0 becomes concrete
  // here) — the CI smoke test and the campaign parse it.
  std::cout << "listening on " << daemon.address() << std::endl;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) ::usleep(50 * 1000);

  std::cout << "logdiverd: draining " << daemon.tenant_count()
            << " tenant(s)\n";
  daemon.Stop();
  return 0;
}
