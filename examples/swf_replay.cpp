// SWF replay: run the fault injector and LogDiver over a *real* machine
// trace in Standard Workload Format (Parallel Workloads Archive) instead
// of the synthetic generator.
//
//   ./swf_replay [trace.swf] [cores_per_node]
//
// Without arguments a small demonstration trace is synthesized in
// memory so the example is runnable offline.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/scoring.hpp"
#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/report.hpp"
#include "simlog/emitters.hpp"
#include "workload/swf.hpp"

namespace {

std::vector<std::string> DemoTrace() {
  std::vector<std::string> lines;
  lines.push_back("; synthetic demonstration trace (SWF v2 fields)");
  ld::Rng rng(4242);
  std::int64_t submit = 0;
  for (int i = 0; i < 2000; ++i) {
    submit += rng.UniformInt(30, 600);
    const std::int64_t wait = rng.UniformInt(0, 900);
    const std::int64_t run = rng.UniformInt(120, 4 * 3600);
    const int procs = static_cast<int>(rng.UniformInt(1, 128)) * 32;
    const int status = rng.Bernoulli(0.93) ? 1 : 0;
    const int user = static_cast<int>(rng.UniformInt(1, 40));
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "%d %lld %lld %lld %d -1 -1 %d %lld -1 %d %d -1 -1 -1 -1 "
                  "-1 -1",
                  i + 1, static_cast<long long>(submit),
                  static_cast<long long>(wait), static_cast<long long>(run),
                  procs, procs, static_cast<long long>(run * 2), status,
                  user);
    lines.push_back(buf);
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  const ld::Machine machine = ld::Machine::Testbed(960, 192);
  ld::SwfImportConfig import_config;
  import_config.cores_per_node =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10))
               : 32;
  ld::Rng rng(1);

  ld::SwfImportStats stats;
  auto workload =
      argc > 1
          ? ld::ImportSwfFile(argv[1], machine, import_config,
                              rng, &stats)
          : ld::ImportSwf(DemoTrace(), machine, import_config, rng, &stats);
  if (!workload.ok()) {
    std::cerr << "import failed: " << workload.status().ToString() << "\n";
    return 1;
  }
  std::cout << "imported " << stats.jobs << " jobs (" << stats.skipped
            << " skipped, " << stats.malformed << " malformed, "
            << stats.clamped << " clamped)\n";

  // Overlay faults and render logs, exactly as for a synthetic campaign.
  ld::FaultModelConfig faults;  // calibrated defaults
  faults.xe_fatal_per_node_hour = 4e-5;  // testbed is small; heat it up
  ld::FaultInjector injector(machine, faults);
  ld::Rng fault_rng(2);
  const ld::TimePoint epoch = import_config.epoch;
  auto injection =
      injector.Inject(*workload, epoch, ld::Duration::Days(30), fault_rng);
  if (!injection.ok()) {
    std::cerr << "injection failed: " << injection.status().ToString() << "\n";
    return 1;
  }

  ld::Rng emit_rng(3);
  const ld::EmittedLogs logs =
      ld::EmitLogs(machine, *workload, *injection, {}, emit_rng);

  ld::LogDiver diver(machine, {});
  auto analysis = diver.Analyze(
      ld::LogSet{logs.torque, logs.alps, logs.syslog, logs.hwerr});
  if (!analysis.ok()) {
    std::cerr << "analysis failed: " << analysis.status().ToString() << "\n";
    return 1;
  }

  ld::PrintHeadline(std::cout, analysis->metrics);
  std::cout << "\n";
  ld::PrintOutcomeBreakdown(std::cout, analysis->metrics);

  const ld::ScoreReport score = ld::ScoreClassification(
      analysis->runs, analysis->classified, injection->truth);
  std::cout << "\nscored against injected truth: F1 = " << score.system_f1
            << ", cause accuracy = " << score.cause_accuracy << "\n";
  return 0;
}
